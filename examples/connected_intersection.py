#!/usr/bin/env python
"""Connected intersection: several street signs sharing the FM band.

The paper's vision (section 1) has street signs broadcasting crossing
information for accessibility; its discussion (section 8) sketches how
multiple devices coexist — different ``fback`` values when free channels
allow it, ALOHA-style sharing otherwise. This example plays a small
deployment end to end:

1. Scan the band and pick the quietest free channels near the strong
   local station (the receiver-side dual of the paper's fback guidance).
2. Signs with their own channel transmit continuously.
3. Two signs forced to share one channel run slotted ALOHA; we verify a
   pedestrian's phone decodes the "WALK" frame from a shared slot.

Run:
    python examples/connected_intersection.py
"""

import numpy as np

from repro.data import FrameCodec, SlottedAlohaSimulator
from repro.data.fsk import BinaryFskModem
from repro.experiments.common import ExperimentChain
from repro.receiver.scanner import BandScanner, ChannelObservation


def main() -> None:
    # Band snapshot around the strong station on channel 50 (94.9-ish).
    rng = np.random.default_rng(5)
    observations = [
        ChannelObservation(channel=c, power_dbm=p)
        for c, p in [
            (47, -92.0), (48, -45.0), (49, -88.0),
            (50, -35.0),               # the station the signs backscatter
            (51, -86.0), (52, -44.0), (53, -95.0),
        ]
    ]
    scanner = BandScanner(occupancy_threshold_dbm=-70.0)
    print("occupied channels:", scanner.occupied_channels(observations))

    best = scanner.best_backscatter_channel(observations, source_channel=50)
    fback = BandScanner.fback_for_channels(50, best)
    print(f"sign #1 -> channel {best} (fback = {fback / 1e3:.0f} kHz)")

    # Remove the taken channel and place sign #2.
    remaining = [o for o in observations if o.channel != best]
    second = scanner.best_backscatter_channel(remaining, source_channel=50)
    print(f"sign #2 -> channel {second} "
          f"(fback = {BandScanner.fback_for_channels(50, second) / 1e3:.0f} kHz)")

    # Signs #3 and #4 arrive; no free channels remain in reach, so they
    # share sign #2's channel with slotted ALOHA.
    sim = SlottedAlohaSimulator(n_devices=2, transmit_probability=0.5)
    stats = sim.run(2000, rng=rng)
    print(f"two signs sharing one channel: throughput {stats.throughput:.2f} "
          f"({stats.collisions} collisions in {stats.n_slots} slots)")

    # A successful slot end to end: one sign transmits the WALK frame.
    modem = BinaryFskModem()
    codec = FrameCodec(modem)
    frame = codec.encode(b"WALK 12S")
    chain = ExperimentChain(
        program="news", power_dbm=-35.0, distance_ft=8.0, stereo_decode=False
    )
    received = chain.transmit(frame, rng=9)
    decoded = codec.decode(chain.payload_channel(received))
    print(f"pedestrian's phone decodes: {decoded.payload.decode('ascii')!r}")


if __name__ == "__main__":
    main()

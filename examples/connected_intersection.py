#!/usr/bin/env python
"""Connected intersection: several street signs sharing the FM band.

The paper's vision (section 1) has street signs broadcasting crossing
information for accessibility; its discussion (section 8) sketches how
multiple devices coexist — different ``fback`` values when free channels
allow it, ALOHA-style sharing otherwise. Both policies now live in the
deployment layer (`repro.engine.deployment`), so this example is a thin
driver: declare the signs, let the `ChannelPlan` scan the band and hand
out channels, and run the whole intersection as one engine sweep (cached
ambient synthesis, any `REPRO_SWEEP_BACKEND`).

Run:
    python examples/connected_intersection.py
"""

import os

from repro.engine import ChannelPlan, DeploymentScenario, DeviceSpec


def main(fast=None) -> None:
    if fast is None:
        fast = os.environ.get("REPRO_EXAMPLE_FAST", "") == "1"

    # Band snapshot around the strong station on channel 50 (94.9-ish);
    # fback can only move energy 2 channels, so two free channels are in
    # reach and the late-arriving signs must share one with slotted ALOHA.
    plan = ChannelPlan(
        policy="auto",
        source_channel=50,
        max_shift_channels=2,
        slots_per_frame=4,
    )
    print("occupied channels:", plan.occupied_channels())
    print("free channels in reach (quietest first):", plan.free_channels())

    signs = (
        DeviceSpec(name="walk-sign", payload=b"WALK 12S", distance_ft=8.0),
        DeviceSpec(name="dont-walk", payload=b"DONT WALK", distance_ft=8.0),
        DeviceSpec(name="bus-stop", payload=b"BUS 44 2MIN", distance_ft=10.0),
        DeviceSpec(name="xing-sign", payload=b"XING CLEAR", distance_ft=12.0),
    )
    assignment = plan.assign(len(signs))
    for sign, line in zip(signs, assignment.describe()):
        print(f"{sign.name:10s} {line.split(': ', 1)[1]}")
    n_sharing = len(assignment.sharing_indices)
    print(
        f"sharing group of {n_sharing}: framed-ALOHA per-device success "
        f"{plan.framed_success_probability(n_sharing, plan.slots_per_frame):.2f}"
        + (
            f", analytic slotted throughput {plan.mac(n_sharing).expected_throughput():.2f}"
            if n_sharing
            else ""
        )
    )

    deployment = DeploymentScenario(
        name="intersection",
        devices=signs,
        plan=plan,
        frames_per_device=1 if fast else 2,
    )
    result = deployment.run(rng=5)
    outcome = result.values[0]

    print(f"\npedestrian's phone, {outcome['window_s']:.1f} s air window:")
    for sign, stats in zip(signs, outcome["per_device"]):
        if stats["delivered"]:
            status = f"decodes {sign.payload.decode('ascii')!r}"
        elif stats["mac_lost"] == stats["frames"]:
            status = "lost every slot to ALOHA collisions"
        else:
            status = "frame not recovered"
        print(f"  {stats['name']:10s} ({stats['delivery_rate']:.0%}) {status}")
    print(
        f"aggregate goodput {outcome['aggregate_goodput_bps']:.1f} bps "
        f"across {outcome['n_devices']} signs "
        f"({outcome['n_shared']} sharing one channel)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Cooperative backscatter (paper section 3.3): two phones, clean audio.

Two users stand near a backscattering poster. Phone 1 tunes to the
backscattered channel (fc + 600 kHz) and hears the ambient program plus
the poster's audio; phone 2 tunes to the original station and hears only
the program. Sharing audio over Wi-Fi Direct, the phones time-align,
calibrate gain with the 13 kHz pilot, and subtract — cancelling the
ambient program entirely.

The power sweep runs through the deployment layer as ``audio`` traffic
with a cooperative receiver placement: one declared scenario, ambient
program synthesized once for the whole grid, any sweep backend.

Run:
    python examples/cooperative_listening.py
"""

import os

from repro.engine import DeploymentScenario, DeviceSpec, ReceiverPlacement


def main(fast=None) -> None:
    if fast is None:
        fast = os.environ.get("REPRO_EXAMPLE_FAST", "") == "1"

    powers_dbm = (-20.0, -40.0) if fast else (-20.0, -30.0, -40.0, -50.0)
    deployment = DeploymentScenario(
        name="coop-listening",
        devices=(DeviceSpec(name="poster", distance_ft=4.0),),
        traffic="audio",
        receiver=ReceiverPlacement(cooperative=True),
        station_stereo=False,
        audio_seconds=0.8 if fast else 2.0,
        axes={"power_dbm": powers_dbm},
    )
    result = deployment.run(rng=11)

    print("power   overlay-PESQ   cooperative-PESQ")
    for power, value in zip(powers_dbm, result.values):
        poster = value["per_device"][0]
        print(
            f"{power:6.0f}      {poster['overlay_pesq']:4.2f}            "
            f"{poster['cooperative_pesq']:4.2f}"
        )

    print("\ncooperative cancellation turns a PESQ-2 composite into")
    print("near-transparent audio until the FM threshold bites (~-60 dBm)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Cooperative backscatter (paper section 3.3): two phones, clean audio.

Two users stand near a backscattering poster. Phone 1 tunes to the
backscattered channel (fc + 600 kHz) and hears the ambient program plus
the poster's audio; phone 2 tunes to the original station and hears only
the program. Sharing audio over Wi-Fi Direct, the phones time-align
(10x resampling + cross-correlation), calibrate gain with the 13 kHz
pilot, and subtract — cancelling the ambient program entirely.

Run:
    python examples/cooperative_listening.py
"""

from repro.audio import speech_like
from repro.audio.pesq import pesq_like
from repro.constants import AUDIO_RATE_HZ
from repro.experiments.common import ExperimentChain
from repro.experiments.fig12_pesq_cooperative import simulate_two_phones


def main() -> None:
    message = speech_like(2.0, AUDIO_RATE_HZ, rng=3, amplitude=0.9)

    print("power   overlay-PESQ   cooperative-PESQ")
    for power_dbm in (-20.0, -30.0, -40.0, -50.0):
        # Baseline: one phone, overlay only (program remains audible).
        chain = ExperimentChain(
            program="news", power_dbm=power_dbm, distance_ft=4.0, stereo_decode=False
        )
        overlay_audio = chain.payload_channel(chain.transmit(message, rng=10))
        overlay = pesq_like(message, overlay_audio, AUDIO_RATE_HZ)

        # Cooperative: second phone cancels the program.
        recovered, sync = simulate_two_phones(message, power_dbm, 4.0, rng=11)
        n = min(message.size, recovered.size)
        coop = pesq_like(message[:n], recovered[:n], AUDIO_RATE_HZ)

        print(f"{power_dbm:6.0f}      {overlay:4.2f}            {coop:4.2f}")

    print("\ncooperative cancellation turns a PESQ-2 composite into")
    print("near-transparent audio until the FM threshold bites (~-60 dBm)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Stereo backscatter (paper section 3.3.1): hide audio in the L-R stream.

Two scenarios from the paper:

* A stereo *news* station barely uses its L-R stream (Fig. 5) — the
  poster transmits there and the receiver recovers it by differencing its
  left and right outputs.
* A *mono* station has no stereo stream at all; the device injects the
  19 kHz pilot itself, tricking any stereo receiver into decoding the
  (device-supplied) L-R stream. At low power the receiver cannot detect
  the pilot and falls back to mono — the failure mode Fig. 13 shows.

Run:
    python examples/stereo_trick.py
"""

import os

from repro.audio import speech_like
from repro.audio.pesq import pesq_like
from repro.backscatter.device import BackscatterMode
from repro.constants import AUDIO_RATE_HZ
from repro.experiments.common import ExperimentChain


def run_case(label, station_stereo, mode, power_dbm, duration_s=1.5):
    message = speech_like(duration_s, AUDIO_RATE_HZ, rng=3, amplitude=0.9)
    chain = ExperimentChain(
        program="news",
        station_stereo=station_stereo,
        mode=mode,
        power_dbm=power_dbm,
        distance_ft=4.0,
        stereo_decode=True,
    )
    received = chain.transmit(message, rng=5)
    audio = chain.payload_channel(received)
    n = min(message.size, audio.size)
    score = pesq_like(message[:n], audio[:n], AUDIO_RATE_HZ)
    lock = "stereo locked" if received.stereo_locked else "MONO FALLBACK"
    print(f"  {label:34s} P={power_dbm:5.0f} dBm  PESQ={score:4.2f}  [{lock}]")
    return score


def main(fast=None) -> None:
    if fast is None:
        fast = os.environ.get("REPRO_EXAMPLE_FAST", "") == "1"
    duration_s = 0.5 if fast else 1.5

    print("overlay baseline (program interferes):")
    message = speech_like(duration_s, AUDIO_RATE_HZ, rng=3, amplitude=0.9)
    chain = ExperimentChain(program="news", power_dbm=-20.0, distance_ft=4.0, stereo_decode=False)
    audio = chain.payload_channel(chain.transmit(message, rng=5))
    print(f"  overlay on news station            P=  -20 dBm  PESQ={pesq_like(message, audio, AUDIO_RATE_HZ):4.2f}")

    print("stereo backscatter:")
    run_case("L-R stream of a stereo news station", True, BackscatterMode.STEREO, -20.0, duration_s)
    run_case("mono station + injected pilot", False, BackscatterMode.MONO_TO_STEREO, -20.0, duration_s)
    if not fast:
        print("the low-power failure mode (pilot undetectable):")
        run_case("mono station + injected pilot", False, BackscatterMode.MONO_TO_STEREO, -55.0, duration_s)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Talking poster (paper section 6.1): notifications + music to a phone.

A bus-stop poster with a copper-tape dipole backscatters the local news
station. It sends a 100 bps framed text notification (decoded by the
phone's FM receiver + app) and overlays a music-like snippet on the
broadcast. Optionally writes the received composite audio to a WAV file
so you can listen to what the phone hears.

Run:
    python examples/talking_poster.py [output.wav]
"""

import os
import sys

from repro.apps.poster import TalkingPoster
from repro.audio import music_like, write_wav
from repro.constants import AUDIO_RATE_HZ


def main(fast=None, wav_path=None) -> None:
    if fast is None:
        fast = os.environ.get("REPRO_EXAMPLE_FAST", "") == "1"

    poster = TalkingPoster(
        notification_text="3 SHOWS" if fast else "SIMPLY THREE 50% OFF TONIGHT",
        ambient_power_dbm=-37.0,  # measured at the paper's bus stop
    )

    print("== 100 bps notification, phone at 10 ft ==")
    result = poster.broadcast_notification(distance_ft=10.0, rng=42)
    if result.notification is None:
        print("  frame not decoded (out of range)")
    else:
        print(f"  phone shows: {result.notification!r}")
        print(f"  preamble bit errors: {result.preamble_errors}")

    if not fast:
        print("== same notification into a parked car at 10 ft ==")
        car = poster.broadcast_notification(distance_ft=10.0, receiver_kind="car", rng=43)
        print(f"  car decodes: {car.notification!r}")

    print("== music snippet overlaid on the news broadcast, 4 ft ==")
    snippet = music_like(0.5 if fast else 2.0, AUDIO_RATE_HZ, rng=7, amplitude=0.9)
    audio, received = poster.broadcast_audio(snippet, distance_ft=4.0, rng=44)
    print(f"  received {audio.size / AUDIO_RATE_HZ:.1f} s of composite audio")

    if wav_path:
        write_wav(wav_path, audio, int(AUDIO_RATE_HZ))
        print(f"  wrote what the phone hears to {wav_path}")


if __name__ == "__main__":
    main(wav_path=sys.argv[1] if len(sys.argv) > 1 else None)

#!/usr/bin/env python
"""Smart fabric (paper section 6.2): shirts streaming vital signs.

Three wearers — standing, walking, running — each wear a shirt whose
sewn conductive-thread antenna backscatters a telemetry frame to their
phone at 100 bps. Motion fades the link (Fig. 17b), so each shirt gets a
few frame retries. The fleet runs through the deployment layer: every
shirt is a `DeviceSpec` (built by the fabric app itself), the channel
plan gives each its own free channel, and the whole session is one
engine sweep with a shared ambient-station synthesis.

Run:
    python examples/smart_fabric.py
"""

import os

from repro.apps.fabric import SmartFabricSensor, VitalSigns
from repro.engine import ChannelPlan, DeploymentScenario


def main(fast=None) -> None:
    if fast is None:
        fast = os.environ.get("REPRO_EXAMPLE_FAST", "") == "1"

    sessions = {
        "standing": VitalSigns(heart_rate_bpm=68, breathing_rate_bpm=14, step_count=0),
        "walking": VitalSigns(heart_rate_bpm=95, breathing_rate_bpm=20, step_count=1200),
        "running": VitalSigns(heart_rate_bpm=162, breathing_rate_bpm=38, step_count=5400),
    }
    if fast:
        sessions = {k: sessions[k] for k in ("standing", "running")}

    shirts = tuple(
        SmartFabricSensor(motion=motion, ambient_power_dbm=-37.0).device_spec(
            vitals, distance_ft=3.0
        )
        for motion, vitals in sessions.items()
    )
    deployment = DeploymentScenario(
        name="fabric",
        devices=shirts,
        plan=ChannelPlan(policy="dedicated"),
        frames_per_device=1 if fast else 3,  # retries against deep fades
    )
    outcome = deployment.run(rng=100).values[0]

    for (motion, vitals), stats in zip(sessions.items(), outcome["per_device"]):
        if not stats["delivered"]:
            print(f"{motion:9s}: telemetry lost after {stats['frames']} attempts")
            continue
        print(
            f"{motion:9s}: HR {vitals.heart_rate_bpm:3d} bpm, "
            f"breathing {vitals.breathing_rate_bpm:2d}/min, "
            f"steps {vitals.step_count:5d}  "
            f"({stats['delivered']}/{stats['frames']} frames through, "
            f"channel {stats['channel']})"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Smart fabric (paper section 6.2): a shirt streaming vital signs.

The sewn conductive-thread antenna backscatters heart rate, breathing
rate and step count to the wearer's phone at 100 bps while the wearer
stands, walks, and runs. Motion fades the link (Fig. 17b); the telemetry
link retries like the real system would.

Run:
    python examples/smart_fabric.py
"""

from repro.apps.fabric import SmartFabricSensor, VitalSigns


def main() -> None:
    sessions = {
        "standing": VitalSigns(heart_rate_bpm=68, breathing_rate_bpm=14, step_count=0),
        "walking": VitalSigns(heart_rate_bpm=95, breathing_rate_bpm=20, step_count=1200),
        "running": VitalSigns(heart_rate_bpm=162, breathing_rate_bpm=38, step_count=5400),
    }

    for motion, vitals in sessions.items():
        sensor = SmartFabricSensor(motion=motion, ambient_power_dbm=-37.0)
        decoded = None
        attempts = 0
        while decoded is None and attempts < 3:
            attempts += 1
            decoded = sensor.transmit_vitals(vitals, distance_ft=3.0, rng=100 + attempts)
        if decoded is None:
            print(f"{motion:9s}: telemetry lost after {attempts} attempts")
            continue
        print(
            f"{motion:9s}: HR {decoded.heart_rate_bpm:3d} bpm, "
            f"breathing {decoded.breathing_rate_bpm:2d}/min, "
            f"steps {decoded.step_count:5d}  "
            f"({attempts} transmission{'s' if attempts > 1 else ''})"
        )


if __name__ == "__main__":
    main()

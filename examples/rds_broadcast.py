#!/usr/bin/env python
"""RDS end to end: station name and radiotext through the full FM stack.

The paper's Fig. 3 includes the 57 kHz RDS subcarrier in the FM baseband
structure. This example builds a complete broadcast — stereo program,
19 kHz pilot, RDS groups 0A (station name) and 2A (radiotext) with CRC
checkwords — FM-modulates it, demodulates, and decodes the text back.

Run:
    python examples/rds_broadcast.py
"""

import os

from repro.audio import program_material
from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.fm import compose_mpx, fm_demodulate, fm_modulate
from repro.fm.mpx import MpxComponents
from repro.fm.rds import RdsDecoder, RdsEncoder


def main(fast=None) -> None:
    if fast is None:
        fast = os.environ.get("REPRO_EXAMPLE_FAST", "") == "1"
    # Even in fast mode the broadcast must carry all four PS-name
    # segments (group 0A), so the floor is ~0.5 s of RDS bitstream.
    duration = 0.8 if fast else 1.5
    left, right = program_material("pop", duration, AUDIO_RATE_HZ, rng=9)
    encoder = RdsEncoder(
        pi_code=0x4B0F,
        ps_name="KUOW",
        radiotext="FM BACKSCATTER: CONNECTED CITIES AND SMART FABRICS",
    )

    mpx = compose_mpx(
        MpxComponents(
            left=left,
            right=right,
            rds_bipolar=encoder.baseband(duration, MPX_RATE_HZ),
        )
    )
    iq = fm_modulate(mpx)
    print(f"broadcasting {duration} s: stereo pop program + RDS "
          f"({iq.size} IQ samples at {MPX_RATE_HZ / 1e3:.0f} kHz)")

    message = RdsDecoder().decode(fm_demodulate(iq))
    print(f"receiver display:  PI={message.pi_code:#06x}")
    print(f"  station name:    {message.ps_name!r}")
    print(f"  radiotext:       {message.radiotext!r}")
    print(f"  CRC-clean groups: {message.groups_decoded}")


if __name__ == "__main__":
    main()

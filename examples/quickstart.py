#!/usr/bin/env python
"""Quickstart: backscatter a tone over an FM broadcast and decode it.

Reproduces the core loop of the paper in ~20 lines of API:

1. A simulated FM station broadcasts a news program.
2. A backscatter device overlays a 1 kHz tone (paper Eq. 2: the switch
   drive turns RF multiplication into audio addition).
3. A smartphone tuned 600 kHz away demodulates and hears both the
   program and the tone.

Run:
    python examples/quickstart.py
"""

from repro.audio import tone
from repro.constants import AUDIO_RATE_HZ
from repro.dsp import tone_snr_db
from repro.experiments.common import ExperimentChain


def main() -> None:
    # Ambient power at the device: -35 dBm, the level the paper measured
    # at a real bus stop. Receiver is a phone 8 feet away.
    chain = ExperimentChain(
        program="news",
        power_dbm=-35.0,
        distance_ft=8.0,
        receiver_kind="smartphone",
        stereo_decode=False,
    )

    payload = tone(1000.0, duration_s=1.0, sample_rate=AUDIO_RATE_HZ, amplitude=0.9)
    received = chain.transmit(payload, rng=1)
    audio = chain.payload_channel(received)

    snr = tone_snr_db(audio, AUDIO_RATE_HZ, 1000.0)
    print(f"link RF SNR:        {chain.rf_snr_db():6.1f} dB")
    print(f"received tone SNR:  {snr:6.1f} dB (tone vs. rest of the audio band)")
    print("the 1 kHz tone is clearly audible over the news program"
          if snr > 0 else "tone buried — move closer or find a stronger station")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: backscatter a tone over an FM broadcast and decode it.

Reproduces the core loop of the paper in ~20 lines of API:

1. A simulated FM station broadcasts a news program.
2. A backscatter device overlays a 1 kHz tone (paper Eq. 2: the switch
   drive turns RF multiplication into audio addition).
3. A smartphone tuned 600 kHz away demodulates and hears both the
   program and the tone.

Then sweeps the same link over a power × distance grid through the sweep
engine (`repro.engine`): the grid is declared once, the ambient program
is synthesized once and shared by every grid point, and setting
``REPRO_SWEEP_WORKERS=<n>`` parallelizes it without code changes.

Run:
    python examples/quickstart.py
"""

import os

from repro.audio import tone
from repro.constants import AUDIO_RATE_HZ
from repro.dsp import tone_snr_db
from repro.engine import Scenario, SweepSpec, run_scenario
from repro.experiments.common import ExperimentChain


def main(fast=None) -> None:
    if fast is None:
        fast = os.environ.get("REPRO_EXAMPLE_FAST", "") == "1"

    # Ambient power at the device: -35 dBm, the level the paper measured
    # at a real bus stop. Receiver is a phone 8 feet away.
    chain = ExperimentChain(
        program="news",
        power_dbm=-35.0,
        distance_ft=8.0,
        receiver_kind="smartphone",
        stereo_decode=False,
    )

    payload = tone(
        1000.0,
        duration_s=0.3 if fast else 1.0,
        sample_rate=AUDIO_RATE_HZ,
        amplitude=0.9,
    )
    received = chain.transmit(payload, rng=1)
    audio = chain.payload_channel(received)

    snr = tone_snr_db(audio, AUDIO_RATE_HZ, 1000.0)
    print(f"link RF SNR:        {chain.rf_snr_db():6.1f} dB")
    print(f"received tone SNR:  {snr:6.1f} dB (tone vs. rest of the audio band)")
    print("the 1 kHz tone is clearly audible over the news program"
          if snr > 0 else "tone buried — move closer or find a stronger station")

    sweep(fast)


def sweep(fast=False) -> None:
    """Declare a link-budget sweep and run it through the engine.

    Over program audio the tone SNR is interference-limited (the program
    *is* the noise), so — like the paper's Fig. 7 — the sweep backscatters
    over an unmodulated carrier to expose the power/distance dependence.
    """
    payload = tone(
        1000.0,
        duration_s=0.2 if fast else 0.5,
        sample_rate=AUDIO_RATE_HZ,
        amplitude=0.9,
    )

    def measure(run):
        received = run.chain.transmit(payload, run.rng)
        return tone_snr_db(run.chain.payload_channel(received), AUDIO_RATE_HZ, 1000.0)

    scenario = Scenario(
        name="quickstart",
        sweep=SweepSpec.grid(power_dbm=(-25.0, -35.0), distance_ft=(2, 8, 16)),
        base_chain={"program": "silence", "receiver_kind": "smartphone", "stereo_decode": False},
        chain_params=lambda p: {
            "power_dbm": p["power_dbm"],
            "distance_ft": p["distance_ft"],
        },
        measure=measure,
    )
    result = run_scenario(scenario, rng=1)

    hits = result.cache_stats["hits"] if result.cache_stats else 0
    print(f"\nsweep: {len(result)} grid points in {result.elapsed_s:.2f} s "
          f"({result.n_workers} worker(s), {hits} ambient cache hits)")
    print("tone SNR (dB) by distance:")
    for power in (-25.0, -35.0):
        series = result.series(along="distance_ft", power_dbm=power)
        cells = "  ".join(f"{s:6.1f}" for s in series)
        print(f"  {power:6.1f} dBm:  {cells}")


if __name__ == "__main__":
    main()

"""Ablation (paper section 4): the capacitor-bank DCO resolution.

The IC synthesizes Eq. 2 with 8 binary-weighted capacitors — 256
frequency steps. This bench sweeps the bank width and measures the
received audio SNR: the design question is how few bits still leave
quantization noise below the program-audio floor, and the answer (8 is
plenty, 4 audibly hurts) explains the paper's hardware choice.
"""

import numpy as np

from conftest import print_series, run_once
from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.experiments.common import ExperimentChain


def dco_sweep(bits_options=(2, 4, 8, None), power_dbm=-30.0, distance_ft=4.0):
    payload = tone(1000.0, 0.5, AUDIO_RATE_HZ, amplitude=0.9)
    results = {}
    for n_bits in bits_options:
        chain = ExperimentChain(
            program="silence",
            power_dbm=power_dbm,
            distance_ft=distance_ft,
            stereo_decode=False,
            dco_bits=n_bits,
        )
        received = chain.transmit(payload, rng=31)
        snr = tone_snr_db(chain.payload_channel(received), AUDIO_RATE_HZ, 1000.0)
        label = "ideal" if n_bits is None else f"{n_bits}bit"
        results[label] = snr
    return results


def test_dco_resolution(benchmark):
    result = run_once(benchmark, dco_sweep)
    print_series("Ablation: capacitor-bank DCO bits vs audio SNR", result)
    # Coarse banks audibly hurt; the paper's 8-bit bank is near-ideal.
    assert result["2bit"] < result["4bit"] < result["8bit"] + 1.0
    assert result["8bit"] > result["ideal"] - 3.0
    assert result["2bit"] < result["ideal"] - 10.0

"""Section 4 power table + section 2 battery-life comparison.

Paper: 1 uW baseband + 9.94 uW modulator + 0.13 uW switch = 11.07 uW
total; a conventional FM transmitter chip drains a 225 mAh coin cell in
under 12 hours while the backscatter tag runs for almost 3 years.
"""

import pytest

from conftest import print_series, run_once
from repro.backscatter.power import (
    battery_life_hours,
    duty_cycled_power_w,
    fm_chip_power_w,
    ic_power_budget,
)


def full_power_table():
    budget = ic_power_budget()
    fm_chip_hours = battery_life_hours(fm_chip_power_w())
    tag_hours = battery_life_hours(budget.total_w)
    duty_hours = battery_life_hours(duty_cycled_power_w(budget.total_w, 0.05))
    return {
        "baseband_uW": budget.baseband_w * 1e6,
        "modulator_uW": budget.modulator_w * 1e6,
        "switch_uW": budget.switch_w * 1e6,
        "total_uW (paper 11.07)": budget.total_uw,
        "fm_chip_battery_hours (paper <12)": fm_chip_hours,
        "backscatter_battery_years (paper ~3)": tag_hours / (24 * 365),
        "5pct_duty_cycle_years (sec. 8)": duty_hours / (24 * 365),
    }


def test_power_table(benchmark):
    table = run_once(benchmark, full_power_table)
    print_series("Section 4 power model", table)
    assert table["total_uW (paper 11.07)"] == pytest.approx(11.07, abs=0.01)
    assert table["fm_chip_battery_hours (paper <12)"] < 12.5
    assert 2.0 < table["backscatter_battery_years (paper ~3)"] < 10.0
    assert table["5pct_duty_cycle_years (sec. 8)"] > table[
        "backscatter_battery_years (paper ~3)"
    ]

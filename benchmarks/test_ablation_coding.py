"""Ablation (paper section 8): error-correction coding extends range.

Not a paper figure — the discussion names coding as the lever for longer
range; this bench quantifies it: Hamming(7,4)-coded 100 bps versus
uncoded, at a distance where the uncoded link has begun to fail.
"""

import numpy as np

from conftest import print_series, run_once
from repro.data.ber import bit_error_rate
from repro.data.bits import random_bits
from repro.data.coding import hamming74_decode, hamming74_encode
from repro.data.fsk import BinaryFskModem
from repro.experiments.common import ExperimentChain


def coding_ablation(distance_ft=10.0, power_dbm=-60.0, n_bits=96):
    modem = BinaryFskModem()
    bits = random_bits(n_bits, rng=81)
    chain = ExperimentChain(
        program="news", power_dbm=power_dbm, distance_ft=distance_ft, stereo_decode=False
    )

    uncoded_rx = chain.transmit(modem.modulate(bits), rng=82)
    uncoded = modem.demodulate(chain.payload_channel(uncoded_rx), bits.size)

    coded = hamming74_encode(bits)
    coded_rx = chain.transmit(modem.modulate(coded), rng=82)
    coded_det = modem.demodulate(chain.payload_channel(coded_rx), coded.size)
    decoded = hamming74_decode(coded_det)[: bits.size]

    return {
        "uncoded_ber": bit_error_rate(bits, uncoded),
        "hamming74_ber": bit_error_rate(bits, decoded),
        "distance_ft": distance_ft,
        "power_dbm": power_dbm,
    }


def test_coding_extends_range(benchmark):
    result = run_once(benchmark, coding_ablation)
    print_series("Ablation: Hamming(7,4) at the range edge", result)
    # Coding never hurts, and strictly helps once raw errors appear.
    assert result["hamming74_ber"] <= result["uncoded_ber"] + 0.01
    if result["uncoded_ber"] > 0.02:
        assert result["hamming74_ber"] < result["uncoded_ber"]

"""Fig. 11 — PESQ of overlay-backscattered speech.

Paper: PESQ sits consistently near 2 for -20..-40 dBm out to 20 ft (the
limit is the ambient program, not noise), holds at -50 dBm to ~12 ft, and
audio (unlike data) fails at -60 dBm.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig11_pesq_overlay


def test_fig11_overlay_pesq(benchmark):
    result = run_once(
        benchmark,
        fig11_pesq_overlay.run,
        powers_dbm=(-20.0, -40.0, -60.0),
        distances_ft=(4, 12, 20),
        duration_s=1.5,
        rng=2017,
    )
    print_series("Fig. 11 PESQ overlay", result)
    # PESQ ~2 at high power regardless of distance (interference-limited).
    for score in result["P-20"]:
        assert 1.5 < score < 3.0
    assert abs(result["P-20"][0] - result["P-20"][-1]) < 0.8
    # -40 dBm close range still ~2.
    assert result["P-40"][0] > 1.5
    # -60 dBm: audio quality collapses (paper: audio needs ~-50 dBm).
    assert result["P-60"][-1] < result["P-20"][0] - 0.4

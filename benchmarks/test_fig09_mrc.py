"""Fig. 9 — BER with maximal-ratio combining (1.6 kbps at -40 dBm).

Paper: combining two transmissions is already enough to significantly
reduce BER; more repetitions help monotonically.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig09_mrc


def test_fig09_mrc_collapses_ber(benchmark):
    result = run_once(
        benchmark,
        fig09_mrc.run,
        distances_ft=(8, 16),
        mrc_factors=(1, 2, 4),
        power_dbm=-40.0,
        program="pop",
        n_bits=800,
        rng=2017,
    )
    print_series("Fig. 9 BER with MRC", result)
    mean_ber = {f: float(np.mean(result[f"mrc{f}"])) for f in (1, 2, 4)}
    # 2x MRC does not hurt, 4x is at least as good as 2x, and combining
    # never exceeds the single-shot BER by more than noise.
    assert mean_ber[2] <= mean_ber[1] + 0.01
    assert mean_ber[4] <= mean_ber[2] + 0.01
    # With interference-limited errors present, combining strictly helps
    # whenever the single-shot BER is nonzero.
    if mean_ber[1] > 0.005:
        assert mean_ber[2] < mean_ber[1]

"""Distributed launcher: N-worker fan-out vs serial, cold and warm store.

One measurement, written to ``benchmarks/BENCH_engine.json`` under
``distributed_launcher``: the Fig. 9 fading-free MRC grid run serially,
then through :func:`launch_sweep` across worker processes against a
fresh shared spill directory (cold: the parent warms the store once),
then again against the now-warm directory. The hard, non-flaky asserts
are the launcher's contract — the merged result is bit-identical to
serial and the warm re-run performs zero syntheses anywhere (parent
warm-up included). The N-worker speedup is recorded, not asserted: on a
grid this size the fork + dispatch overhead can eat the win on a loaded
shared runner, and the artifact is the measurement of record.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.data.fdm import FdmFskModem
from repro.engine import SweepRunner, launch_sweep
from repro.experiments import fig09_mrc as fig09

SEED = 2017
N_WORKERS = 2
DISTANCES = (2, 4, 8, 12, 16, 20)
MRC_REPS = 4
N_BITS = 100


def _scenario():
    return fig09.build_scenario(
        FdmFskModem(symbol_rate=200),
        distances_ft=DISTANCES,
        max_factor=MRC_REPS,
        n_bits=N_BITS,
    )


@pytest.mark.engine_bench
def test_distributed_launcher_speedup(tmp_path, bench_artifact):
    store_dir = str(tmp_path / "spill")
    n_points = len(DISTANCES) * MRC_REPS

    start = time.perf_counter()
    serial = SweepRunner(_scenario(), rng=SEED, backend="serial").run()
    serial_s = time.perf_counter() - start

    cold = launch_sweep(
        _scenario(), rng=SEED, n_workers=N_WORKERS, cache_dir=store_dir
    )
    warm = launch_sweep(
        _scenario(), rng=SEED, n_workers=N_WORKERS, cache_dir=store_dir
    )

    record = {
        "benchmark": "fig09_grid_launcher_vs_serial",
        "grid": {"distances_ft": list(DISTANCES), "mrc_reps": MRC_REPS},
        "n_points": n_points,
        "n_bits": N_BITS,
        "n_workers": N_WORKERS,
        "n_shards": cold.n_shards,
        "serial_s": round(serial_s, 4),
        "launcher_cold_s": round(cold.wall_s, 4),
        "launcher_warm_s": round(warm.wall_s, 4),
        "speedup_cold": round(serial_s / cold.wall_s, 3),
        "speedup_warm": round(serial_s / warm.wall_s, 3),
        "cold": {
            "warm_syntheses": cold.warm_syntheses,
            "worker_cache": cold.result.cache_stats,
        },
        "warm": {
            "warm_syntheses": warm.warm_syntheses,
            "worker_cache": warm.result.cache_stats,
        },
        "retries": cold.retries + warm.retries,
    }
    bench_artifact("distributed_launcher", record)
    print(f"\n=== distributed launcher ===\n{json.dumps(record, indent=2)}")

    # Contract asserts (exact in every numerics mode: both sides run the
    # same serial per-point path, so bit-identity is like-for-like).
    for report in (cold, warm):
        assert len(report.result.values) == n_points
        for ours, reference in zip(report.result.values, serial.values):
            assert np.array_equal(ours, reference)
    # Cold run: the parent synthesized each distinct composite once ...
    assert cold.warm_syntheses > 0
    assert cold.result.cache_stats["syntheses"] == 0  # workers only load
    # ... and a warm re-run synthesizes nothing anywhere.
    assert warm.warm_syntheses == 0
    assert warm.result.cache_stats["syntheses"] == 0
    assert warm.result.cache_stats["disk_hits"] > 0

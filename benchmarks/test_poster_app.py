"""Section 6.1 — the talking-poster deployment.

Paper: at a real bus stop with -35..-40 dBm ambient news radio, the
poster delivers 100 bps notifications to a phone at 10 ft and overlays
music snippets audible at 4 ft; a parked car decodes it at 10 ft.
"""

import numpy as np

from conftest import print_series, run_once
from repro.apps.poster import TalkingPoster
from repro.audio.pesq import pesq_like
from repro.audio.speech import speech_like
from repro.constants import AUDIO_RATE_HZ


def poster_scenario():
    poster = TalkingPoster(notification_text="SIMPLY THREE 50% OFF")
    notification = poster.broadcast_notification(distance_ft=10.0, rng=61)
    snippet = speech_like(1.0, AUDIO_RATE_HZ, rng=62, amplitude=0.9)
    audio, _ = poster.broadcast_audio(snippet, distance_ft=4.0, rng=63)
    n = min(snippet.size, audio.size)
    score = pesq_like(snippet[:n], audio[:n], AUDIO_RATE_HZ)
    car = poster.broadcast_notification(distance_ft=10.0, receiver_kind="car", rng=64)
    return {
        "phone_notification": notification.notification,
        "phone_preamble_errors": notification.preamble_errors,
        "audio_pesq_at_4ft": score,
        "car_notification": car.notification,
    }


def test_poster_deployment(benchmark):
    result = run_once(benchmark, poster_scenario)
    print_series("Section 6.1 talking poster", result)
    assert result["phone_notification"] == "SIMPLY THREE 50% OFF"
    assert result["car_notification"] == "SIMPLY THREE 50% OFF"
    # Overlay audio at 4 ft: composite is clearly audible (paper plays it).
    assert result["audio_pesq_at_4ft"] > 1.5

"""Ablation (paper section 8): multiple devices sharing one FM band.

The discussion proposes ALOHA-style sharing when devices cannot use
different ``fback`` values; this bench sweeps offered load and shows the
classic slotted-ALOHA throughput curve peaking near 1/e.
"""

import numpy as np

from conftest import print_series, run_once
from repro.data.mac import SlottedAlohaSimulator


def aloha_sweep(n_devices=10, n_slots=50_000):
    probabilities = (0.02, 0.05, 0.1, 0.2, 0.4)
    throughputs = [
        SlottedAlohaSimulator(n_devices, p).run(n_slots, rng=7).throughput
        for p in probabilities
    ]
    return {
        "probabilities": list(probabilities),
        "throughputs": throughputs,
        "peak": max(throughputs),
    }


def test_aloha_throughput_curve(benchmark):
    result = run_once(benchmark, aloha_sweep)
    print_series("Ablation: slotted ALOHA sharing", result)
    t = dict(zip(result["probabilities"], result["throughputs"]))
    # Throughput peaks near p = 1/N = 0.1 and collapses under overload.
    assert t[0.1] > t[0.02]
    assert t[0.1] > t[0.4]
    # The peak approaches but cannot exceed 1/e.
    assert result["peak"] < 0.40
    assert result["peak"] > 0.30

"""Fig. 13 — PESQ with stereo backscatter (news station / mono station).

Paper: at high power stereo backscatter clearly beats overlay (the L-R
stream is nearly interference-free); below ~-40 dBm receivers cannot
detect the pilot and fall back to mono, so the technique fails. The
mono-to-stereo conversion (panel b) is cleaner still, since a mono
station has *nothing* in the stereo stream.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig13_pesq_stereo


def test_fig13a_stereo_station(benchmark):
    result = run_once(
        benchmark,
        fig13_pesq_stereo.run,
        scenario="stereo_station",
        powers_dbm=(-20.0,),
        distances_ft=(2, 8),
        duration_s=1.5,
        rng=2017,
    )
    print_series("Fig. 13a PESQ stereo backscatter (news station)", result)
    # High power: clearly above the overlay baseline (~2).
    assert result["P-20"][0] > 2.8
    assert all(result["lock_P-20"]), "pilot must be detected at -20 dBm"


def test_fig13b_mono_station(benchmark):
    result = run_once(
        benchmark,
        fig13_pesq_stereo.run,
        scenario="mono_station",
        powers_dbm=(-20.0, -40.0),
        distances_ft=(2, 8),
        duration_s=1.5,
        rng=2017,
    )
    print_series("Fig. 13b PESQ mono-to-stereo conversion", result)
    assert result["P-20"][0] > 2.8
    # The injected pilot converts the mono broadcast: receivers lock.
    assert all(result["lock_P-20"])
    # Fig. 13b's point: the converted mono station still works at
    # -40 dBm close range (one step below the news-station case).
    assert result["P-40"][0] > 1.8

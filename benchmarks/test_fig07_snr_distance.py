"""Fig. 7 — received SNR versus power and distance.

Paper: at -30 dBm the link reaches 20 ft; at -50 dBm the SNR is still
reasonable at close range; curves order by ambient power.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig07_snr_distance


def test_fig07_snr_vs_power_and_distance(benchmark):
    distances = (1, 4, 8, 16, 20)
    result = run_once(
        benchmark,
        fig07_snr_distance.run,
        powers_dbm=(-20.0, -30.0, -50.0),
        distances_ft=distances,
        duration_s=0.4,
        rng=2017,
    )
    print_series("Fig. 7 SNR vs distance", result)

    # Paper shape: -30 dBm usable at 20 ft.
    assert result["P-30"][-1] > 15.0
    # -50 dBm still reasonable at close range.
    assert result["P-50"][0] > 20.0
    # SNR decreases with distance for the weak-signal curve.
    assert result["P-50"][0] > result["P-50"][-1]
    # Higher ambient power never loses to lower at the same distance
    # (tolerance for noise in the estimate).
    for i in range(len(distances)):
        assert result["P-20"][i] >= result["P-50"][i] - 3.0

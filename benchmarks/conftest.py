"""Benchmark-suite helpers.

Every benchmark regenerates one paper figure/table with a reduced grid,
prints the series the paper plots (so EXPERIMENTS.md can quote them), and
asserts the paper's qualitative shape. ``benchmark.pedantic`` with a
single round keeps wall-clock sane — these are end-to-end simulations,
not micro-benchmarks.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_series(title: str, results: dict) -> None:
    """Pretty-print an experiment's series for the benchmark log."""
    print(f"\n=== {title} ===")
    for key, value in results.items():
        if isinstance(value, list) and value and isinstance(value[0], float):
            formatted = ", ".join(f"{v:.3f}" for v in value)
            print(f"  {key}: [{formatted}]")
        else:
            print(f"  {key}: {value}")

"""Benchmark-suite helpers.

Every benchmark regenerates one paper figure/table with a reduced grid,
prints the series the paper plots (so EXPERIMENTS.md can quote them), and
asserts the paper's qualitative shape. ``benchmark.pedantic`` with a
single round keeps wall-clock sane — these are end-to-end simulations,
not micro-benchmarks.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import pytest

from repro.engine.planner import host_context

ENGINE_ARTIFACT = Path(__file__).with_name("BENCH_engine.json")


def merge_artifact(artifact: Path, section: str, payload: dict) -> dict:
    """Update one section of a benchmark artifact, keeping the rest.

    Every section is stamped with the measuring host's context (CPU
    count, numpy version, platform) so recorded crossovers and speedups
    stay interpretable across machines. The write is atomic (temp file +
    rename in the artifact's directory): a crash or a concurrent reader
    mid-write can never leave a truncated JSON behind.
    """
    record = {}
    if artifact.exists():
        try:
            record = json.loads(artifact.read_text())
        except ValueError:
            record = {}
    record[section] = dict(payload, host=host_context())
    text = json.dumps(record, indent=2) + "\n"
    fd, tmp = tempfile.mkstemp(
        dir=str(artifact.parent), prefix=artifact.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, artifact)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return record


@pytest.fixture
def bench_artifact():
    """Writer for sections of ``BENCH_engine.json`` (atomic, host-stamped)."""

    def write(section: str, payload: dict) -> dict:
        return merge_artifact(ENGINE_ARTIFACT, section, payload)

    return write


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_series(title: str, results: dict) -> None:
    """Pretty-print an experiment's series for the benchmark log."""
    print(f"\n=== {title} ===")
    for key, value in results.items():
        if isinstance(value, list) and value and isinstance(value[0], float):
            formatted = ", ".join(f"{v:.3f}" for v in value)
            print(f"  {key}: [{formatted}]")
        else:
            print(f"  {key}: {value}")

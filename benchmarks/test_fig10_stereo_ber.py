"""Fig. 10 — overlay vs stereo backscatter BER at -30 dBm.

Paper: placing data in the under-used stereo stream of a news station
significantly reduces interference and therefore BER at both 1.6 and
3.2 kbps.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig10_stereo_ber


def test_fig10_stereo_beats_overlay(benchmark):
    result = run_once(
        benchmark,
        fig10_stereo_ber.run,
        distances_ft=(1, 2, 4),
        power_dbm=-30.0,
        n_bits=800,
        rng=2017,
    )
    print_series("Fig. 10 overlay vs stereo BER", result)
    for rate in ("1.6k", "3.2k"):
        overlay = float(np.mean(result[f"overlay_{rate}"]))
        stereo = float(np.mean(result[f"stereo_{rate}"]))
        # Stereo never loses to overlay; when overlay shows interference
        # errors, stereo is strictly better.
        assert stereo <= overlay + 0.005, f"{rate}: stereo should not lose"
    total_overlay = np.mean(result["overlay_1.6k"] + result["overlay_3.2k"])
    total_stereo = np.mean(result["stereo_1.6k"] + result["stereo_3.2k"])
    assert total_stereo <= total_overlay

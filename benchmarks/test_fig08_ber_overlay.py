"""Fig. 8 — BER of overlay backscatter vs distance/power for three rates.

Paper: (a) 100 bps is error-free to >= 6 ft at every power down to
-60 dBm and past 12 ft above -60 dBm; (b, c) higher bit rates trade
range — 1.6/3.2 kbps hold to ~16 ft at >= -40 dBm but only feet at
-50/-60 dBm.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig08_ber_overlay


def test_fig08a_100bps(benchmark):
    result = run_once(
        benchmark,
        fig08_ber_overlay.run,
        rate="100bps",
        powers_dbm=(-20.0, -60.0),
        distances_ft=(2, 6, 12, 20),
        n_bits=120,
        rng=2017,
    )
    print_series("Fig. 8a BER, 100 bps", result)
    # Error-free at 6 ft even at -60 dBm.
    assert result["P-60"][1] < 0.02
    # High power: error-free everywhere measured.
    assert max(result["P-20"]) < 0.02
    # -60 dBm collapses by 20 ft.
    assert result["P-60"][-1] > 0.1


def test_fig08b_1600bps(benchmark):
    result = run_once(
        benchmark,
        fig08_ber_overlay.run,
        rate="1.6kbps",
        powers_dbm=(-40.0, -60.0),
        distances_ft=(2, 6, 16),
        n_bits=800,
        rng=2017,
    )
    print_series("Fig. 8b BER, 1.6 kbps", result)
    # -40 dBm works out to 16 ft (paper's headline for this rate).
    assert result["P-40"][-1] < 0.05
    # -60 dBm: short range only; broken by 16 ft.
    assert result["P-60"][-1] > 0.1


def test_fig08c_3200bps(benchmark):
    result = run_once(
        benchmark,
        fig08_ber_overlay.run,
        rate="3.2kbps",
        powers_dbm=(-40.0, -50.0),
        distances_ft=(2, 8, 16),
        n_bits=1600,
        rng=2017,
    )
    print_series("Fig. 8c BER, 3.2 kbps", result)
    # -40 dBm still fine at 16 ft.
    assert result["P-40"][-1] < 0.05
    # Rate/range tradeoff: 3.2 kbps at -50 dBm degrades with distance.
    assert result["P-50"][-1] >= result["P-50"][0]

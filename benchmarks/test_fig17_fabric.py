"""Fig. 17b — smart-fabric BER while standing, walking, running.

Paper: 100 bps stays below ~0.005 BER even while running; 1.6 kbps with
2x MRC sits around 0.02 standing and degrades with motion.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig17_fabric


def test_fig17b_fabric_mobility(benchmark):
    result = run_once(
        benchmark,
        fig17_fabric.run,
        motions=("standing", "running"),
        n_bits_low=150,
        n_bits_high=800,
        n_trials=2,
        rng=2017,
    )
    print_series("Fig. 17b fabric BER", result)
    standing_idx, running_idx = 0, 1
    # 100 bps robust even running.
    assert result["ber_100bps"][running_idx] < 0.02
    # The high rate is the fragile one, and motion does not improve it.
    assert (
        result["ber_1.6kbps_mrc2"][running_idx]
        >= result["ber_1.6kbps_mrc2"][standing_idx] - 0.01
    )
    # Rate ordering within each mobility state.
    for i in (standing_idx, running_idx):
        assert result["ber_100bps"][i] <= result["ber_1.6kbps_mrc2"][i] + 0.01

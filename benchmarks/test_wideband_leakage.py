"""Physical validation: adjacent-channel leakage in the wideband model.

The link budget treats the ambient station's leakage through the
receiver's selectivity as a noise floor (section 3.3: "the noise floor
may instead be limited by power leaked from an adjacent channel"). This
bench demonstrates the underlying physics with the wideband simulator: a
strong station raises the measured power in nearby nominally-empty
channels, and a scanning receiver picks its backscatter channel to avoid
exactly that.
"""

import numpy as np

from conftest import print_series, run_once
from repro.fm.band import BandStation, FMBandSimulator
from repro.receiver.scanner import BandScanner, ChannelObservation


def leakage_scenario():
    sim = FMBandSimulator(sample_rate=2_400_000.0, rng=11)
    band = sim.synthesize(
        [
            BandStation(0, -30.0, program="rock"),     # strong local station
            BandStation(-4, -65.0, program="news"),    # weak distant station
        ],
        duration_s=0.25,
    )
    offsets = list(range(-5, 6))
    powers = sim.channel_powers_dbm(band, offsets)

    scanner = BandScanner(occupancy_threshold_dbm=-72.0)
    observations = [
        ChannelObservation(channel=50 + off, power_dbm=powers[off]) for off in offsets
    ]
    chosen = scanner.best_backscatter_channel(
        observations, source_channel=50, max_shift_channels=5
    )
    return {
        "ch+1 (adjacent to strong)": powers[1],
        "ch+3 (600 kHz away)": powers[3],
        "ch+5 (1 MHz away)": powers[5],
        "scanner_choice": chosen,
        "scanner_choice_power": powers[chosen - 50] if chosen else None,
    }


def test_adjacent_leakage_physics(benchmark):
    result = run_once(benchmark, leakage_scenario)
    print_series("Wideband adjacent-channel leakage", result)
    # Leakage decays with channel distance from the strong station.
    assert result["ch+1 (adjacent to strong)"] > result["ch+3 (600 kHz away)"]
    assert result["ch+3 (600 kHz away)"] >= result["ch+5 (1 MHz away)"] - 2.0
    # The scanner avoids the splatter next to the strong carrier.
    assert result["scanner_choice"] is not None
    assert abs(result["scanner_choice"] - 50) >= 2

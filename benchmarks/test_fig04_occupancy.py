"""Fig. 4 — FM channel usage across five US cities.

Paper: a large fraction of the 100 channels is unoccupied; the median
minimum shift frequency is 200 kHz and the worst case stays under 800 kHz.
"""

from conftest import print_series, run_once
from repro.experiments import fig04_occupancy
from repro.survey.stations import CITY_PROFILES


def test_fig04_station_counts_and_min_shift(benchmark):
    result = run_once(benchmark, fig04_occupancy.run, rng=2017)
    summary = {
        city: (
            f"licensed={result[city]['licensed']} "
            f"detectable={result[city]['detectable']} "
            f"median_shift={result[city]['median_shift_khz']:.0f}kHz "
            f"max_shift={result[city]['max_shift_khz']:.0f}kHz"
        )
        for city in CITY_PROFILES
    }
    summary["pooled median (paper 200 kHz)"] = result["median_shift_khz"]
    summary["pooled max (paper < 800 kHz)"] = result["max_shift_khz"]
    print_series("Fig. 4 occupancy", summary)

    # Panel (a): counts match the figure's encodings exactly.
    assert result["Chicago"]["licensed"] > result["Chicago"]["detectable"]
    assert result["Seattle"]["detectable"] > result["Seattle"]["licensed"]
    # Panel (b): median shift one channel, bounded worst case.
    assert result["median_shift_khz"] == 200.0
    assert result["max_shift_khz"] <= 800.0

"""Fig. 14 — overlay backscatter received by a car radio.

Paper: the car's antenna and front end extend range to 60+ ft at
-20/-30 dBm, with SNR 25-45 dB and PESQ comfortably above the floor even
through the cabin-microphone recording.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig14_car


def test_fig14_car_snr_and_pesq(benchmark):
    result = run_once(
        benchmark,
        fig14_car.run,
        powers_dbm=(-20.0, -30.0),
        distances_ft=(20, 60, 80),
        duration_s=1.0,
        rng=2017,
    )
    print_series("Fig. 14 car receiver", result)
    # Works well out to 60 ft (the paper's headline range).
    assert result["snr_P-20"][1] > 15.0
    assert result["snr_P-30"][1] > 15.0
    assert result["pesq_P-20"][1] > 1.5
    # And the chain is still alive at 80 ft at -20 dBm.
    assert result["snr_P-20"][2] > 10.0

"""Fig. 12 — PESQ with cooperative (two-phone) backscatter.

Paper: cancelling the ambient program with a second phone lifts PESQ to
~4 for -20..-50 dBm; cooperative works at powers where stereo backscatter
already fails, collapsing only at -60 dBm.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig12_pesq_cooperative


def test_fig12_cooperative_pesq(benchmark):
    result = run_once(
        benchmark,
        fig12_pesq_cooperative.run,
        powers_dbm=(-20.0, -40.0, -60.0),
        distances_ft=(4, 12),
        duration_s=1.5,
        rng=2017,
    )
    print_series("Fig. 12 PESQ cooperative", result)
    # High power: near-transparent (paper ~4).
    assert result["P-20"][0] > 3.5
    # Still clearly better than the overlay baseline (~2) at -40 dBm.
    assert result["P-40"][0] > 2.5
    # Collapse at -60 dBm.
    assert result["P-60"][0] < result["P-20"][0] - 1.5

"""Engine speedup: cached sweep vs legacy resynthesis, plus backends.

Two measurements, both written to ``benchmarks/BENCH_engine.json``:

1. The full 5-power × 8-distance Fig. 8 BER sweep through the engine
   (cold ambient cache: one program synthesis + one composite modulation
   shared by all 40 points) versus the hand-rolled legacy loop it
   replaced (a fresh front-end synthesis at every point). Acceptance bar:
   a >= 2x wall-clock win for the cached path, asserted with headroom for
   machine noise.
2. The same sweep under each execution backend — serial, thread,
   process and batched — with a warm front-end cache, so the numbers
   isolate the per-point link + receive work each backend parallelizes
   or vectorizes. Backends must agree bit-for-bit with serial (asserted),
   so the timings compare equal work.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.data.bits import random_bits
from repro.engine import BACKENDS, default_cache
from repro.experiments import fig08_ber_overlay as fig08
from repro.experiments.common import ExperimentChain, measure_data_ber
from repro.utils.rand import as_generator, child_generator

ARTIFACT = Path(__file__).with_name("BENCH_engine.json")

RATE = "100bps"
N_BITS = 40
SEED = 2017
POWERS = fig08.DEFAULT_POWERS_DBM  # 5 powers
DISTANCES = fig08.DEFAULT_DISTANCES_FT  # 8 distances


def _merge_artifact(section: str, payload: dict) -> dict:
    """Update one section of the benchmark artifact, keeping the rest."""
    record = {}
    if ARTIFACT.exists():
        try:
            record = json.loads(ARTIFACT.read_text())
        except ValueError:
            record = {}
    record[section] = payload
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def _legacy_sweep() -> dict:
    """The pre-engine Fig. 8 loop: every grid point rebuilds the ambient
    program, composite MPX and FM modulation from scratch."""
    gen = as_generator(SEED)
    modem = fig08.make_modem(RATE)
    bits = random_bits(N_BITS, child_generator(gen, "payload", RATE))
    results = {"distances_ft": [float(d) for d in DISTANCES]}
    for power in POWERS:
        series = []
        for distance in DISTANCES:
            chain = ExperimentChain(
                program="news",
                power_dbm=power,
                distance_ft=distance,
                stereo_decode=False,
            )
            series.append(
                measure_data_ber(chain, modem, bits, child_generator(gen, RATE, power, distance))
            )
        results[f"P{int(power)}"] = series
    return results


@pytest.fixture
def no_persistent_cache(monkeypatch):
    """Detach any REPRO_CACHE_DIR spill for the duration of a benchmark.

    The 'cold cache' measurement must actually synthesize: with a warm
    persistent store attached, clear() keeps the .npz files (by design)
    and the timing would silently measure disk loads instead.
    """
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


@pytest.mark.engine_bench
def test_engine_cached_sweep_speedup(no_persistent_cache):
    cache = default_cache()
    assert cache.store is None
    cache.clear()

    start = time.perf_counter()
    cached_result = fig08.run(rate=RATE, n_bits=N_BITS, rng=SEED)
    cached_s = time.perf_counter() - start
    stats = cache.stats

    start = time.perf_counter()
    legacy_result = _legacy_sweep()
    uncached_s = time.perf_counter() - start

    n_points = len(POWERS) * len(DISTANCES)
    speedup = uncached_s / cached_s
    record = {
        "benchmark": "fig08_cached_vs_uncached_sweep",
        "grid": {"powers_dbm": list(POWERS), "distances_ft": list(DISTANCES)},
        "n_points": n_points,
        "rate": RATE,
        "n_bits": N_BITS,
        "cached_s": round(cached_s, 4),
        "uncached_s": round(uncached_s, 4),
        "speedup": round(speedup, 3),
        "cache": {k: stats[k] for k in ("hits", "misses", "items")},
    }
    _merge_artifact("cached_vs_uncached", record)
    print(f"\n=== engine speedup ===\n{json.dumps(record, indent=2)}")

    # One ambient MPX + one modulated composite for the whole grid,
    # instead of one front-end synthesis per point.
    assert stats["misses"] == 2
    assert stats["hits"] == n_points - 1
    # Both paths cover the full grid with the agreed key scheme.
    assert set(cached_result) == set(legacy_result)
    # The acceptance target is 2x; assert with headroom for CI noise
    # (locally ~2.5x) so the suite doesn't flake on a loaded machine.
    assert speedup > 1.5, f"cached sweep only {speedup:.2f}x faster"


@pytest.mark.engine_bench
def test_engine_backend_matrix_timings(no_persistent_cache):
    """Time the Fig. 8 sweep under every backend; record to the artifact.

    The front-end cache is warmed once up front, so each measurement is
    the per-point link + receive work the backends differ on. Results
    must be bit-identical across backends (the engine's contract), which
    also guarantees the timings compare equal work.
    """
    default_cache().clear()
    fig08.run(rate=RATE, n_bits=N_BITS, rng=SEED)  # warm the front end

    timings = {}
    results = {}
    before = os.environ.get("REPRO_SWEEP_BACKEND")
    try:
        for backend in BACKENDS:
            os.environ["REPRO_SWEEP_BACKEND"] = backend
            start = time.perf_counter()
            results[backend] = fig08.run(rate=RATE, n_bits=N_BITS, rng=SEED)
            timings[backend] = round(time.perf_counter() - start, 4)
    finally:
        if before is None:
            os.environ.pop("REPRO_SWEEP_BACKEND", None)
        else:
            os.environ["REPRO_SWEEP_BACKEND"] = before

    record = {
        "benchmark": "fig08_backend_matrix_warm_cache",
        "grid": {"powers_dbm": list(POWERS), "distances_ft": list(DISTANCES)},
        "n_points": len(POWERS) * len(DISTANCES),
        "rate": RATE,
        "n_bits": N_BITS,
        "backend_s": timings,
        "speedup_vs_serial": {
            backend: round(timings["serial"] / timings[backend], 3)
            for backend in BACKENDS
        },
    }
    _merge_artifact("backend_matrix", record)
    print(f"\n=== backend matrix ===\n{json.dumps(record, indent=2)}")

    for backend in BACKENDS[1:]:
        assert results[backend] == results["serial"], backend

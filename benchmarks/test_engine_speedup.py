"""Engine speedup: cached sweep vs legacy resynthesis, plus backends.

Three measurements, all written to ``benchmarks/BENCH_engine.json``:

1. The full 5-power × 8-distance Fig. 8 BER sweep through the engine
   (cold ambient cache: one program synthesis + one composite modulation
   shared by all 40 points) versus the hand-rolled legacy loop it
   replaced (a fresh front-end synthesis at every point). Acceptance bar:
   a >= 2x wall-clock win for the cached path, asserted with headroom for
   machine noise.
2. The same sweep under each execution backend — serial, thread,
   process and batched — with a warm front-end cache, so the numbers
   isolate the per-point link + receive work each backend parallelizes
   or vectorizes. Backends must agree bit-for-bit with serial (asserted),
   so the timings compare equal work.
3. The Fig. 10 stereo grid, serial vs batched with a warm cache: the
   stereo half of that grid runs the pilot PLL — a sequential per-sample
   loop — at every point, and the batched backend's multi-waveform
   ``track_batch`` amortizes the Python iteration cost across the whole
   stack. This is the measurement that shows stereo decoding no longer
   forces per-point fallback.
4. A Fig. 9-style grid with body-motion fading on every link, serial vs
   batched with a warm cache. Before the zero-fallback backend, any
   fading link forced per-point serial fallback, so this grid saw none
   of the batched speedups; now every point rides the vectorized path
   (``SweepResult.n_fallbacks == 0``, asserted) and the batched-vs-serial
   win is real.
5. The ``auto`` backend on the two grids with *opposite* best backends:
   the long-row Fig. 8 grid (where batched measurably loses) and the
   short-row fading grid (where batched measurably wins). The planner
   must land within a small factor of the best hand-picked backend on
   both — the measurement that a wrong calibration can't hide behind.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.channel.fading import MotionFadingSpec
from repro.data.bits import random_bits
from repro.data.fdm import FdmFskModem
from repro.engine import (
    BACKENDS,
    AmbientCache,
    AxisRef,
    Scenario,
    SweepRunner,
    SweepSpec,
    default_cache,
)
from repro.experiments import fig08_ber_overlay as fig08
from repro.experiments import fig09_mrc as fig09
from repro.experiments import fig10_stereo_ber as fig10
from repro.experiments import fig13_pesq_stereo as fig13
from repro.experiments.common import ExperimentChain, measure_data_ber
from repro.utils.env import NUMERICS_ENV_VAR, fast_numerics
from repro.utils.rand import as_generator, child_generator

exact_numerics_only = pytest.mark.skipif(
    fast_numerics(),
    reason="benchmark asserts bit-identity across backends, an exact-numerics "
    "contract; REPRO_NUMERICS=fast is gated by the tolerance golden tier",
)

RATE = "100bps"
N_BITS = 40
SEED = 2017
POWERS = fig08.DEFAULT_POWERS_DBM  # 5 powers
DISTANCES = fig08.DEFAULT_DISTANCES_FT  # 8 distances


def _legacy_sweep() -> dict:
    """The pre-engine Fig. 8 loop: every grid point rebuilds the ambient
    program, composite MPX and FM modulation from scratch."""
    gen = as_generator(SEED)
    modem = fig08.make_modem(RATE)
    bits = random_bits(N_BITS, child_generator(gen, "payload", RATE))
    results = {"distances_ft": [float(d) for d in DISTANCES]}
    for power in POWERS:
        series = []
        for distance in DISTANCES:
            chain = ExperimentChain(
                program="news",
                power_dbm=power,
                distance_ft=distance,
                stereo_decode=False,
            )
            series.append(
                measure_data_ber(chain, modem, bits, child_generator(gen, RATE, power, distance))
            )
        results[f"P{int(power)}"] = series
    return results


@pytest.fixture
def no_persistent_cache(monkeypatch):
    """Detach any REPRO_CACHE_DIR spill for the duration of a benchmark.

    The 'cold cache' measurement must actually synthesize: with a warm
    persistent store attached, clear() keeps the .npz files (by design)
    and the timing would silently measure disk loads instead.
    """
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


@pytest.mark.engine_bench
def test_engine_cached_sweep_speedup(no_persistent_cache, bench_artifact):
    cache = default_cache()
    assert cache.store is None
    cache.clear()

    start = time.perf_counter()
    cached_result = fig08.run(rate=RATE, n_bits=N_BITS, rng=SEED)
    cached_s = time.perf_counter() - start
    stats = cache.stats

    start = time.perf_counter()
    legacy_result = _legacy_sweep()
    uncached_s = time.perf_counter() - start

    n_points = len(POWERS) * len(DISTANCES)
    speedup = uncached_s / cached_s
    record = {
        "benchmark": "fig08_cached_vs_uncached_sweep",
        "grid": {"powers_dbm": list(POWERS), "distances_ft": list(DISTANCES)},
        "n_points": n_points,
        "rate": RATE,
        "n_bits": N_BITS,
        "cached_s": round(cached_s, 4),
        "uncached_s": round(uncached_s, 4),
        "speedup": round(speedup, 3),
        "cache": {k: stats[k] for k in ("hits", "misses", "items")},
    }
    bench_artifact("cached_vs_uncached", record)
    print(f"\n=== engine speedup ===\n{json.dumps(record, indent=2)}")

    # One ambient MPX + one modulated composite for the whole grid,
    # instead of one front-end synthesis per point.
    assert stats["misses"] == 2
    assert stats["hits"] == n_points - 1
    # Both paths cover the full grid with the agreed key scheme.
    assert set(cached_result) == set(legacy_result)
    # The acceptance target is 2x; assert with headroom for CI noise
    # (locally ~2.5x) so the suite doesn't flake on a loaded machine.
    assert speedup > 1.5, f"cached sweep only {speedup:.2f}x faster"


@pytest.mark.engine_bench
@exact_numerics_only
def test_engine_backend_matrix_timings(no_persistent_cache, bench_artifact):
    """Time the Fig. 8 sweep under every backend; record to the artifact.

    The front-end cache is warmed once up front, so each measurement is
    the per-point link + receive work the backends differ on. Results
    must be bit-identical across backends (the engine's contract), which
    also guarantees the timings compare equal work.
    """
    default_cache().clear()
    fig08.run(rate=RATE, n_bits=N_BITS, rng=SEED)  # warm the front end

    timings = {}
    results = {}
    before = os.environ.get("REPRO_SWEEP_BACKEND")
    try:
        for backend in BACKENDS:
            os.environ["REPRO_SWEEP_BACKEND"] = backend
            start = time.perf_counter()
            results[backend] = fig08.run(rate=RATE, n_bits=N_BITS, rng=SEED)
            timings[backend] = round(time.perf_counter() - start, 4)
    finally:
        if before is None:
            os.environ.pop("REPRO_SWEEP_BACKEND", None)
        else:
            os.environ["REPRO_SWEEP_BACKEND"] = before

    record = {
        "benchmark": "fig08_backend_matrix_warm_cache",
        "grid": {"powers_dbm": list(POWERS), "distances_ft": list(DISTANCES)},
        "n_points": len(POWERS) * len(DISTANCES),
        "rate": RATE,
        "n_bits": N_BITS,
        "backend_s": timings,
        "speedup_vs_serial": {
            backend: round(timings["serial"] / timings[backend], 3)
            for backend in BACKENDS
        },
    }
    bench_artifact("backend_matrix", record)
    print(f"\n=== backend matrix ===\n{json.dumps(record, indent=2)}")

    for backend in BACKENDS[1:]:
        assert results[backend] == results["serial"], backend


STEREO_DISTANCES = (1, 2, 3, 4, 6, 8, 12, 16)
STEREO_N_BITS = 200
PLL_BENCH_WAVEFORMS = 16
PLL_BENCH_SAMPLES = 12_000


@pytest.mark.engine_bench
@exact_numerics_only
def test_stereo_batched_speedup(no_persistent_cache, bench_artifact):
    """Stereo vectorization, measured at two levels on bit-identical work.

    1. Component: ``PhaseLockedLoop.track_batch`` versus per-waveform
       ``track`` on a 16-wide pilot stack. The loop is sequential in
       time, so the vector form amortizes Python/NumPy dispatch across
       the stack — this is where the multi-waveform PLL wins big.
    2. End to end: the Fig. 10 grid (overlay + stereo placements, two
       rates, 32 points), serial vs batched with a warm front-end cache.
       Stereo points used to force per-point fallback; now they ride the
       vectorized path. The end-to-end win is Amdahl-bounded — the PLL
       is ~a quarter of a stereo point's cost, chunking keeps FFT
       working sets cache-sized, and the overlay half of the grid was
       already vectorized — so the bar here is deliberately modest.
    """
    from repro.dsp.pll import PhaseLockedLoop

    # Component measurement: the multi-waveform loop itself.
    pll = PhaseLockedLoop(19_000.0, 96_000.0)
    t = np.arange(PLL_BENCH_SAMPLES) / 96_000.0
    gen = np.random.default_rng(SEED)
    stack = np.stack(
        [
            0.1 * np.cos(2 * np.pi * 19_000.0 * t + gen.uniform(0, 2 * np.pi))
            + 0.01 * gen.standard_normal(t.size)
            for _ in range(PLL_BENCH_WAVEFORMS)
        ]
    )
    pll.track_batch(stack)  # warm-up (allocator, ufunc caches)
    start = time.perf_counter()
    batch_track = pll.track_batch(stack)
    pll_batch_s = time.perf_counter() - start
    start = time.perf_counter()
    scalar_tracks = [pll.track(row) for row in stack]
    pll_scalar_s = time.perf_counter() - start
    assert all(
        np.array_equal(batch_track.phase[i], scalar_tracks[i].phase)
        for i in range(PLL_BENCH_WAVEFORMS)
    )
    pll_speedup = round(pll_scalar_s / pll_batch_s, 3)

    # End-to-end measurement: the Fig. 10 grid.
    default_cache().clear()
    kwargs = dict(distances_ft=STEREO_DISTANCES, n_bits=STEREO_N_BITS, rng=SEED)
    fig10.run(**kwargs)  # warm the front-end cache

    timings = {}
    results = {}
    before = os.environ.get("REPRO_SWEEP_BACKEND")
    try:
        for backend in ("serial", "batched"):
            os.environ["REPRO_SWEEP_BACKEND"] = backend
            start = time.perf_counter()
            results[backend] = fig10.run(**kwargs)
            timings[backend] = round(time.perf_counter() - start, 4)
    finally:
        if before is None:
            os.environ.pop("REPRO_SWEEP_BACKEND", None)
        else:
            os.environ["REPRO_SWEEP_BACKEND"] = before

    speedup = round(timings["serial"] / timings["batched"], 3)
    record = {
        "benchmark": "stereo_batch_vectorization",
        "pll_track_batch": {
            "n_waveforms": PLL_BENCH_WAVEFORMS,
            "n_samples": PLL_BENCH_SAMPLES,
            "batch_s": round(pll_batch_s, 4),
            "per_waveform_s": round(pll_scalar_s, 4),
            "speedup": pll_speedup,
        },
        "fig10_end_to_end": {
            "grid": {
                "modes": ["overlay", "stereo"],
                "rates": ["1.6k", "3.2k"],
                "distances_ft": list(STEREO_DISTANCES),
            },
            "n_points": 2 * 2 * len(STEREO_DISTANCES),
            "n_bits": STEREO_N_BITS,
            "backend_s": timings,
            "speedup": speedup,
        },
    }
    bench_artifact("stereo_batch", record)
    print(f"\n=== stereo batch ===\n{json.dumps(record, indent=2)}")

    assert results["batched"] == results["serial"]
    # Component bar: dispatch amortization is worth >= 2x at width 16
    # locally; assert with CI headroom.
    assert pll_speedup > 1.5, f"track_batch only {pll_speedup:.2f}x faster"
    # End-to-end bar: a no-significant-regression guard only (locally
    # ~1.2x, but the two sub-second timings leave too little margin for
    # a hard >1x assert on shared CI runners; the recorded artifact is
    # the measurement of record).
    assert speedup > 0.8, f"batched stereo sweep regressed to {speedup:.2f}x"


FADING_DISTANCES = (1, 2, 3, 4, 6, 8, 12, 16)
FADING_REPS = 4
FADING_N_BITS = 100
"""Short payloads keep each waveform row small, so the 64 MB chunk cap
admits wide stacks — the regime the vectorized path is built for (the
dispatch-amortization win shrinks as rows lengthen and the chunker
narrows the stack; see ``_chunk_limit``)."""


@pytest.mark.engine_bench
@exact_numerics_only
def test_zero_fallback_speedup(no_persistent_cache, bench_artifact):
    """Fading grid, serial vs batched: the lane that used to be closed.

    The Fig. 9 MRC grid with ``MotionFadingSpec`` fading on every link —
    the shape of the paper's mobility scenarios (smart fabric, moving
    receivers). Before the zero-fallback backend every one of these
    points dropped to the serial per-point path (``n_fallbacks`` would
    have equalled the grid size); ``envelope_batch`` + the vectorized
    output-effects path now batch all of them, asserted here along with
    bit-identical results and the measured win.
    """
    modem = FdmFskModem(symbol_rate=200)
    scenario = fig09.build_scenario(
        modem,
        distances_ft=FADING_DISTANCES,
        max_factor=FADING_REPS,
        n_bits=FADING_N_BITS,
    )
    scenario.base_chain = dict(
        scenario.base_chain, fading=MotionFadingSpec("running")
    )
    n_points = len(FADING_DISTANCES) * FADING_REPS

    cache = AmbientCache()
    SweepRunner(scenario, rng=SEED, cache=cache, backend="serial").run()  # warm

    timings = {}
    results = {}
    for backend in ("serial", "batched"):
        start = time.perf_counter()
        results[backend] = SweepRunner(
            scenario, rng=SEED, cache=cache, backend=backend
        ).run()
        timings[backend] = round(time.perf_counter() - start, 4)

    speedup = round(timings["serial"] / timings["batched"], 3)
    record = {
        "benchmark": "fading_grid_batched_vs_serial",
        "grid": {
            "distances_ft": list(FADING_DISTANCES),
            "mrc_reps": FADING_REPS,
            "fading": "running",
        },
        "n_points": n_points,
        "n_bits": FADING_N_BITS,
        "backend_s": timings,
        "speedup": speedup,
        "n_fallbacks": {
            # Every point carries a fading link, so the pre-zero-fallback
            # backend ran this grid 100% through the serial path.
            "before_zero_fallback_backend": n_points,
            "batched_now": results["batched"].n_fallbacks,
        },
    }
    bench_artifact("zero_fallback", record)
    print(f"\n=== zero fallback ===\n{json.dumps(record, indent=2)}")

    assert all(
        np.array_equal(b, s)
        for b, s in zip(results["batched"].values, results["serial"].values)
    )
    assert results["batched"].n_fallbacks == 0
    assert results["batched"].backend == f"batched[{n_points}/{n_points}]"
    # The acceptance bar is a real measured win (> 1x) on the grid that
    # previously saw none of the batched speedups.
    assert speedup > 1.0, f"fading grid batched only {speedup:.2f}x vs serial"


def _fig08_bench_scenario(modem) -> Scenario:
    """The exact Fig. 8 grid the backend matrix times, as a Scenario
    (so ``SweepResult.plan`` is observable)."""

    def prepare(gen):
        bits = random_bits(N_BITS, child_generator(gen, "payload", RATE))
        return {"bits": bits, "waveform": modem.modulate(bits)}

    return Scenario(
        name="fig08",
        sweep=SweepSpec.grid(power_dbm=POWERS, distance_ft=DISTANCES),
        prepare=prepare,
        base_chain={"program": "news", "stereo_decode": False},
        chain_axes=("power_dbm", "distance_ft"),
        rng_keys=(RATE, AxisRef("power_dbm"), AxisRef("distance_ft")),
        payload="waveform",
        measure=fig08.score_ber,
        measure_params={"modem": modem},
    )


def _best_of(scenario, cache, backend: str, repeats: int = 2):
    """Best-of-N wall time (and last result) of one warm backend run."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = SweepRunner(
            scenario, rng=SEED, cache=cache, backend=backend
        ).run()
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.mark.engine_bench
@exact_numerics_only
def test_auto_backend(no_persistent_cache, bench_artifact):
    """``auto`` vs the best hand-picked backend, on opposed grids.

    The two grids whose best backends *differ*: the long-row Fig. 8 BER
    grid, where the chunker narrows the batched stack until it loses to
    serial, and the short-row fading grid, where the vectorized stack
    wins. The planner must stay within a small factor of the best single
    backend on both (acceptance bar 1.1x; asserted at 1.35x for CI
    noise — the decision asserts below are the non-flaky part), record a
    decision for every partition, and stay bit-identical with serial.
    """
    grids = {
        "fig08_long_rows": _fig08_bench_scenario(fig08.make_modem(RATE)),
    }
    fading = fig09.build_scenario(
        FdmFskModem(symbol_rate=200),
        distances_ft=FADING_DISTANCES,
        max_factor=FADING_REPS,
        n_bits=FADING_N_BITS,
    )
    fading.base_chain = dict(fading.base_chain, fading=MotionFadingSpec("running"))
    grids["fading_short_rows"] = fading

    record = {"benchmark": "auto_vs_best_hand_picked_backend"}
    for name, scenario in grids.items():
        cache = AmbientCache()
        SweepRunner(scenario, rng=SEED, cache=cache, backend="serial").run()  # warm
        timings = {}
        results = {}
        for backend in ("serial", "batched", "auto"):
            results[backend], timings[backend] = _best_of(scenario, cache, backend)
        auto = results["auto"]
        best = min(timings["serial"], timings["batched"])
        ratio = timings["auto"] / best
        record[name] = {
            "n_points": scenario.sweep.n_points,
            "backend_s": {k: round(v, 4) for k, v in timings.items()},
            "auto_vs_best": round(ratio, 3),
            "auto_label": auto.backend,
            "plan": [
                {"partition": d.partition, "backend": d.backend, "rows": len(d.point_indices)}
                for d in auto.plan
            ],
        }

        # Structural (non-flaky) acceptance: every point planned exactly
        # once, results bit-identical, and the decisions match the
        # measured crossover — no batched on long rows, batched on short.
        planned = sorted(i for d in auto.plan for i in d.point_indices)
        assert planned == list(range(scenario.sweep.n_points))
        assert all(
            np.array_equal(a, s)
            for a, s in zip(auto.values, results["serial"].values)
        ), name
        if name == "fig08_long_rows":
            assert all(d.backend != "batched" for d in auto.plan)
        else:
            assert all(d.backend == "batched" for d in auto.plan)
            assert auto.n_fallbacks == 0
        # Timing bar, with headroom over the 1.1x acceptance target for
        # shared-runner noise; the artifact records the exact ratio.
        assert ratio < 1.35, f"auto {ratio:.2f}x of best backend on {name}"

    bench_artifact("auto_backend", record)
    print(f"\n=== auto backend ===\n{json.dumps(record, indent=2)}")


FAST_FIG13_POWERS = (-20.0, -40.0)
FAST_FIG13_DISTANCES = (1, 2, 4, 8)
FAST_FIG13_DURATION_S = 0.3


@pytest.mark.engine_bench
def test_numerics_fast(no_persistent_cache, bench_artifact):
    """``REPRO_NUMERICS=fast`` vs exact on the batched backend.

    Two grids where the fused 2-D kernels have the most to fuse: the
    Fig. 9 fading grid (stacked envelope interpolation + batched noise
    draws across a 32-row stack — the acceptance grid, target >= 1.3x
    end to end) and the Fig. 13 stereo-PESQ grid (fused discriminator +
    single-precision receive chain feeding the stereo decoder). Both
    modes run the same warm-cache batched sweep, so the ratio isolates
    what fast mode buys; the tolerance golden tier separately bounds
    what it costs in accuracy.
    """
    fading = fig09.build_scenario(
        FdmFskModem(symbol_rate=200),
        distances_ft=FADING_DISTANCES,
        max_factor=FADING_REPS,
        n_bits=FADING_N_BITS,
    )
    fading.base_chain = dict(fading.base_chain, fading=MotionFadingSpec("running"))
    stereo = fig13.build_scenario(
        "stereo_station",
        powers_dbm=FAST_FIG13_POWERS,
        distances_ft=FAST_FIG13_DISTANCES,
        duration_s=FAST_FIG13_DURATION_S,
    )
    grids = {"fig09_fading": fading, "fig13_stereo_pesq": stereo}

    record = {"benchmark": "numerics_fast_vs_exact_batched"}
    before = os.environ.get(NUMERICS_ENV_VAR)
    try:
        for name, scenario in grids.items():
            cache = AmbientCache()
            os.environ[NUMERICS_ENV_VAR] = "exact"
            SweepRunner(scenario, rng=SEED, cache=cache, backend="serial").run()
            timings = {}
            for mode in ("exact", "fast"):
                os.environ[NUMERICS_ENV_VAR] = mode
                _, timings[mode] = _best_of(scenario, cache, "batched", repeats=3)
            speedup = round(timings["exact"] / timings["fast"], 3)
            record[name] = {
                "n_points": scenario.sweep.n_points,
                "mode_s": {k: round(v, 4) for k, v in timings.items()},
                "speedup": speedup,
            }
    finally:
        if before is None:
            os.environ.pop(NUMERICS_ENV_VAR, None)
        else:
            os.environ[NUMERICS_ENV_VAR] = before

    bench_artifact("numerics_fast", record)
    print(f"\n=== numerics fast ===\n{json.dumps(record, indent=2)}")

    # Acceptance target on the fading grid is 1.3x (locally ~1.4x);
    # asserted with headroom for shared-runner noise. The stereo grid is
    # Amdahl-bounded by the PLL and PESQ scoring, so it gets a
    # no-regression guard only — the artifact records the measured win.
    assert record["fig09_fading"]["speedup"] > 1.15, (
        f"fast numerics only {record['fig09_fading']['speedup']:.2f}x on the "
        "fading grid"
    )
    assert record["fig13_stereo_pesq"]["speedup"] > 0.9, (
        f"fast numerics regressed the stereo grid to "
        f"{record['fig13_stereo_pesq']['speedup']:.2f}x"
    )

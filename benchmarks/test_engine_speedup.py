"""Engine speedup: cached sweep vs the legacy per-point resynthesis.

Times the full 5-power × 8-distance Fig. 8 BER sweep twice — once through
the engine (cold ambient cache: one program synthesis + one composite
modulation shared by all 40 points) and once through the hand-rolled
legacy loop it replaced (a fresh front-end synthesis at every point) —
and records both wall times to ``benchmarks/BENCH_engine.json``.

The acceptance bar is a >= 2x wall-clock win for the cached path; the
assertion leaves headroom for machine noise while the artifact records
the exact measured ratio.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.data.bits import random_bits
from repro.engine import default_cache
from repro.experiments import fig08_ber_overlay as fig08
from repro.experiments.common import ExperimentChain, measure_data_ber
from repro.utils.rand import as_generator, child_generator

ARTIFACT = Path(__file__).with_name("BENCH_engine.json")

RATE = "100bps"
N_BITS = 40
SEED = 2017
POWERS = fig08.DEFAULT_POWERS_DBM  # 5 powers
DISTANCES = fig08.DEFAULT_DISTANCES_FT  # 8 distances


def _legacy_sweep() -> dict:
    """The pre-engine Fig. 8 loop: every grid point rebuilds the ambient
    program, composite MPX and FM modulation from scratch."""
    gen = as_generator(SEED)
    modem = fig08.make_modem(RATE)
    bits = random_bits(N_BITS, child_generator(gen, "payload", RATE))
    results = {"distances_ft": [float(d) for d in DISTANCES]}
    for power in POWERS:
        series = []
        for distance in DISTANCES:
            chain = ExperimentChain(
                program="news",
                power_dbm=power,
                distance_ft=distance,
                stereo_decode=False,
            )
            series.append(
                measure_data_ber(chain, modem, bits, child_generator(gen, RATE, power, distance))
            )
        results[f"P{int(power)}"] = series
    return results


@pytest.mark.engine_bench
def test_engine_cached_sweep_speedup():
    cache = default_cache()
    cache.clear()

    start = time.perf_counter()
    cached_result = fig08.run(rate=RATE, n_bits=N_BITS, rng=SEED)
    cached_s = time.perf_counter() - start
    stats = cache.stats

    start = time.perf_counter()
    legacy_result = _legacy_sweep()
    uncached_s = time.perf_counter() - start

    n_points = len(POWERS) * len(DISTANCES)
    speedup = uncached_s / cached_s
    record = {
        "benchmark": "fig08_cached_vs_uncached_sweep",
        "grid": {"powers_dbm": list(POWERS), "distances_ft": list(DISTANCES)},
        "n_points": n_points,
        "rate": RATE,
        "n_bits": N_BITS,
        "cached_s": round(cached_s, 4),
        "uncached_s": round(uncached_s, 4),
        "speedup": round(speedup, 3),
        "cache": stats,
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n=== engine speedup ===\n{json.dumps(record, indent=2)}")

    # One ambient MPX + one modulated composite for the whole grid,
    # instead of one front-end synthesis per point.
    assert stats["misses"] == 2
    assert stats["hits"] == n_points - 1
    # Both paths cover the full grid with the agreed key scheme.
    assert set(cached_result) == set(legacy_result)
    # The acceptance target is 2x; assert with headroom for CI noise
    # (locally ~2.5x) so the suite doesn't flake on a loaded machine.
    assert speedup > 1.5, f"cached sweep only {speedup:.2f}x faster"

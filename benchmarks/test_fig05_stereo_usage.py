"""Fig. 5 — stereo-stream power by program format.

Paper: news/talk stations leave the stereo (L-R) band nearly empty (same
speech in both channels); music stations fill it — the opening for stereo
backscatter.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig05_stereo_usage


def test_fig05_stereo_band_ratios(benchmark):
    result = run_once(
        benchmark, fig05_stereo_usage.run, n_snapshots=6, snapshot_seconds=1.0, rng=2017
    )
    print_series(
        "Fig. 5 stereo/guard power ratio (dB)",
        {p: result[p]["median_db"] for p in ("news", "mixed", "pop", "rock")},
    )
    medians = {p: result[p]["median_db"] for p in result}
    # Shape: news lowest, music formats highest, mixed in between.
    assert medians["news"] < medians["mixed"] < max(medians["pop"], medians["rock"])
    assert medians["news"] < medians["pop"] - 5
    assert medians["news"] < medians["rock"] - 5

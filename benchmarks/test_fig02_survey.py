"""Fig. 2 — FM signal-strength survey (city CDF + 24 h stability).

Paper: power spans -10..-55 dBm with median -35.15 dBm across 69 grid
cells; a fixed location varies with sigma ~= 0.7 dB over 24 h.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig02_survey


def test_fig02_city_survey_and_diurnal(benchmark):
    result = run_once(benchmark, fig02_survey.run, rng=2017)
    print_series(
        "Fig. 2 survey",
        {
            "median_dbm (paper -35.15)": result["median_dbm"],
            "min_dbm (paper ~-55)": result["min_dbm"],
            "max_dbm (paper ~-10)": result["max_dbm"],
            "n_cells": result["n_cells"],
            "diurnal_std_db (paper 0.7)": result["diurnal_std_db"],
        },
    )
    # Shape: the distribution spans tens of dB with a median in the -30s,
    # comfortably above the -60 dBm the backscatter link needs.
    assert -45.0 < result["median_dbm"] < -25.0
    assert result["max_dbm"] - result["min_dbm"] > 20.0
    assert result["median_dbm"] > -60.0
    # Fixed-location power is stable over the day.
    assert result["diurnal_std_db"] < 1.5

"""Deployment-scale benchmark: device-count sweep across all backends.

Acceptance bars for the deployment layer, measured and recorded to
``benchmarks/BENCH_engine.json``:

- the device-count sweep returns bit-identical results on all four
  ``REPRO_SWEEP_BACKEND`` backends;
- with a warm persistent cache (``REPRO_CACHE_DIR``), a repeat run
  performs **zero** ambient syntheses regardless of device count — the
  grid shares one ambient synthesis instead of one per device.
"""

from __future__ import annotations

import json
import time

import pytest

import repro.engine.cache as cache_mod
from repro.engine import BACKENDS
from repro.experiments import deployment_scale

SEED = 2017
DEVICE_COUNTS = (1, 2, 4, 8)
KWARGS = dict(device_counts=DEVICE_COUNTS, frames_per_device=1, rng=SEED)


@pytest.mark.engine_bench
def test_deployment_backend_matrix_with_warm_cache(
    tmp_path, monkeypatch, bench_artifact
):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    # Pin the cold run to the default backend regardless of the shell's
    # REPRO_SWEEP_BACKEND, so cold_s compares across environments.
    monkeypatch.delenv("REPRO_SWEEP_BACKEND", raising=False)

    # Cold run fills the persistent store (and is itself timed).
    monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
    cold_cache = cache_mod.default_cache()
    start = time.perf_counter()
    reference = deployment_scale.run(**KWARGS)
    cold_s = round(time.perf_counter() - start, 4)
    cold_syntheses = cold_cache.stats["syntheses"]
    assert cold_syntheses > 0

    timings = {}
    warm_syntheses = {}
    for backend in BACKENDS:
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", backend)
        # Fresh default cache per backend = a fresh process on the
        # same spill dir; every ambient must come from disk.
        monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
        cache = cache_mod.default_cache()
        start = time.perf_counter()
        result = deployment_scale.run(**KWARGS)
        timings[backend] = round(time.perf_counter() - start, 4)
        warm_syntheses[backend] = cache.stats["syntheses"]
        assert result == reference, backend
    monkeypatch.delenv("REPRO_SWEEP_BACKEND")

    record = {
        "benchmark": "deployment_scale_backend_matrix_warm_cache",
        "device_counts": list(DEVICE_COUNTS),
        "frames_per_device": 1,
        "cold_s": cold_s,
        "cold_syntheses": cold_syntheses,
        "backend_s": timings,
        "warm_syntheses": warm_syntheses,
        "per_device_delivery": reference["per_device_delivery"],
        "aggregate_goodput_bps": [
            round(v, 3) for v in reference["aggregate_goodput_bps"]
        ],
    }
    bench_artifact("deployment_scale", record)
    print(f"\n=== deployment scale ===\n{json.dumps(record, indent=2)}")

    # The acceptance bar: warm runs synthesize nothing, on any backend,
    # at any device count.
    assert all(count == 0 for count in warm_syntheses.values()), warm_syntheses

"""Ablation (paper section 8): imperceptible data inside audible audio.

Sweeps the embedding level of 100 bps FSK under a speech program and
reports the perceptual score alongside the BER — the quantified version
of the discussion's "make the data transmission inaudible" proposal.
"""

import numpy as np

from conftest import print_series, run_once
from repro.audio.imperceptible import embed_imperceptible
from repro.audio.pesq import pesq_like
from repro.audio.speech import speech_like
from repro.data.bits import random_bits
from repro.data.fsk import BinaryFskModem

FS = 48_000.0


def embedding_sweep(levels_db=(-20.0, -32.0, -40.0)):
    program = speech_like(2.0, FS, rng=3, amplitude=0.9)
    modem = BinaryFskModem()
    bits = random_bits(150, rng=2)
    wave = modem.modulate(bits)
    results = {}
    for level in levels_db:
        composite = embed_imperceptible(program, wave, embed_db=level, sample_rate=FS)
        ber = float(np.mean(modem.demodulate(composite, bits.size) != bits))
        score = pesq_like(program, composite, FS)
        results[f"{level:.0f}dB"] = f"PESQ={score:.2f} BER={ber:.3f}"
        results[f"pesq_{level:.0f}"] = score
        results[f"ber_{level:.0f}"] = ber
    return results


def test_imperceptible_embedding(benchmark):
    result = run_once(benchmark, embedding_sweep)
    print_series(
        "Ablation: imperceptible embedding level",
        {k: v for k, v in result.items() if k.endswith("dB")},
    )
    # Quieter embedding -> better perceptual score.
    assert result["pesq_-40"] > result["pesq_-32"] > result["pesq_-20"]
    # The transparent level still decodes over speech.
    assert result["ber_-40"] < 0.1
    # And the near-transparent point clears the "good audio" bar.
    assert result["pesq_-40"] > 3.5

"""Job journal: durability overhead of fsync'd per-shard records.

One measurement, written to ``benchmarks/BENCH_engine.json`` under
``journal_overhead``: the Fig. 9 grid through :func:`launch_sweep` bare,
then with a :class:`~repro.engine.journal.JobJournal` attached (every
dispatch/completion fsync'd), then resumed from the journal it just
wrote. The hard, non-flaky asserts are the journal's contract — the
journaled run is bit-identical to the bare one, its replay covers the
whole grid, and the resumed run reloads every point without forking a
single worker. The overhead ratio is recorded, not asserted: fsync cost
is the property of the host's filesystem, and the artifact is the
measurement of record.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.fdm import FdmFskModem
from repro.engine import launch_sweep
from repro.engine.journal import JobJournal
from repro.experiments import fig09_mrc as fig09

SEED = 2017
N_WORKERS = 2
DISTANCES = (2, 4, 8, 12)
MRC_REPS = 2
N_BITS = 100


def _scenario():
    return fig09.build_scenario(
        FdmFskModem(symbol_rate=200),
        distances_ft=DISTANCES,
        max_factor=MRC_REPS,
        n_bits=N_BITS,
    )


@pytest.mark.engine_bench
def test_journal_overhead(tmp_path, bench_artifact):
    store_dir = str(tmp_path / "spill")
    journal = JobJournal(tmp_path / "jobs")
    n_points = len(DISTANCES) * MRC_REPS

    bare = launch_sweep(
        _scenario(), rng=SEED, n_workers=N_WORKERS, cache_dir=store_dir
    )
    journaled = launch_sweep(
        _scenario(), rng=SEED, n_workers=N_WORKERS, cache_dir=store_dir,
        journal=journal, job_id="bench-0001",
    )
    replayed = journal.replay_job("bench-0001")
    resumed = launch_sweep(
        _scenario(), rng=SEED, n_workers=N_WORKERS, cache_dir=store_dir,
        resume_values=replayed.values,
    )

    journal_bytes = journal.path_for("bench-0001").stat().st_size
    record = {
        "benchmark": "fig09_grid_journal_overhead",
        "grid": {"distances_ft": list(DISTANCES), "mrc_reps": MRC_REPS},
        "n_points": n_points,
        "n_bits": N_BITS,
        "n_workers": N_WORKERS,
        "bare_s": round(bare.wall_s, 4),
        "journaled_s": round(journaled.wall_s, 4),
        "resume_s": round(resumed.wall_s, 4),
        "overhead_ratio": round(journaled.wall_s / bare.wall_s, 3),
        "journal_bytes": journal_bytes,
        "journal_bytes_per_point": round(journal_bytes / n_points, 1),
        "resumed_points": resumed.resumed_points,
    }
    bench_artifact("journal_overhead", record)
    print(f"\n=== journal overhead ===\n{json.dumps(record, indent=2)}")

    # Contract asserts (exact in every numerics mode: all three runs walk
    # the same serial per-point path, so bit-identity is like-for-like).
    for report in (journaled, resumed):
        assert len(report.result.values) == n_points
        for ours, reference in zip(report.result.values, bare.result.values):
            assert np.array_equal(ours, reference)
    assert sorted(replayed.values) == list(range(n_points))
    # The resume reloaded everything: no forks, no failures, no compute.
    assert resumed.resumed_points == n_points
    assert resumed.failures == 0
    assert resumed.exit_codes == ()

"""Fig. 6 — receiver SNR versus backscattered tone frequency.

Paper: the smartphone chain is flat below ~13 kHz, then falls off a
cliff; both the mono band and the stereo (L-R) band carry tones usably.
"""

import numpy as np

from conftest import print_series, run_once
from repro.experiments import fig06_freq_response


def test_fig06_frequency_response(benchmark):
    freqs = (1000, 4000, 8000, 12000, 14500)
    result = run_once(
        benchmark,
        fig06_freq_response.run,
        freqs_hz=freqs,
        power_dbm=-20.0,
        distance_ft=4.0,
        duration_s=0.4,
        rng=2017,
    )
    print_series("Fig. 6 SNR vs frequency", result)
    mono = dict(zip(result["freq_hz"], result["mono_snr_db"]))
    stereo = dict(zip(result["freq_hz"], result["stereo_snr_db"]))

    # Flat, usable response through 12 kHz in the mono band...
    for f in (1000, 4000, 8000, 12000):
        assert mono[f] > 15.0, f"mono response at {f} Hz should be usable"
    # ...then the cliff above ~13 kHz.
    assert mono[14500] < mono[12000] - 20.0
    # The stereo band also carries tones (Fig. 6's second curve).
    for f in (1000, 4000, 8000):
        assert stereo[f] > 10.0, f"stereo response at {f} Hz should be usable"
    assert stereo[14500] < stereo[8000] - 15.0

"""Setup shim so legacy editable installs work without the wheel package.

The environment has setuptools but no `wheel`, which breaks PEP 660
editable installs; `python setup.py develop` (or `pip install -e .` with
older tooling) goes through this shim instead. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()

"""Setup shim so legacy editable installs work without the wheel package.

The environment has setuptools but no `wheel`, which breaks PEP 660
editable installs; `python setup.py develop` (or `pip install -e .` with
older tooling) goes through this shim. Metadata is kept minimal — the
project is normally used straight from the tree via ``PYTHONPATH=src``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.7",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # The sweep planner's default cost-model constants ship with the code.
    package_data={"repro.engine": ["calibration.json"]},
    entry_points={
        "console_scripts": [
            "repro-calibrate = repro.engine.planner:main",
        ]
    },
)

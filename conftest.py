"""Repo-level pytest configuration.

Lives at the repository root so its command-line options are registered
no matter which test directory an invocation targets (pytest only loads
*initial* conftests — those on the path from the rootdir to the given
test paths — before parsing options).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help=(
            "Rewrite the golden-regression fixtures under "
            "tests/experiments/golden/ from the current code instead of "
            "comparing against them. Use after an *intentional* "
            "output-changing DSP or backend change, and commit the diff."
        ),
    )


    parser.addoption(
        "--regen-golden-tol",
        action="store_true",
        default=False,
        help=(
            "Rewrite the tolerance-tier fixtures under "
            "tests/experiments/golden_tol/ (the reference that gates "
            "REPRO_NUMERICS=fast) from the current code. Must run under "
            "exact numerics (REPRO_NUMERICS unset or 'exact'); commit "
            "the diff alongside any --regen-golden regen."
        ),
    )


@pytest.fixture
def regen_golden(request) -> bool:
    """Whether this run should regenerate golden fixtures."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture
def regen_golden_tol(request) -> bool:
    """Whether this run should regenerate tolerance-tier fixtures."""
    return bool(request.config.getoption("--regen-golden-tol"))

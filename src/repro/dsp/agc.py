"""Automatic gain control.

Section 3.3 of the paper notes that smartphone FM receivers apply hardware
gain control that rescales the ambient audio when the backscattered signal
appears, which is why cooperative backscatter needs the 13 kHz calibration
pilot. This module models that behaviour: a feed-forward AGC that drives
the block RMS toward a target level with a first-order attack/release.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_positive, ensure_real


class AutomaticGainControl:
    """Feed-forward RMS-tracking AGC.

    Defaults are slow (0.1 s attack, 10 s release) like real recording
    chains, which settle quickly and then hold to avoid audible pumping;
    the residual behaviour is a near-step gain change when the backscatter
    payload appears — exactly what the paper's single pilot-ratio
    calibration corrects.

    Args:
        target_rms: output RMS level the AGC drives toward.
        attack_seconds: time constant when the gain must drop (input grew).
        release_seconds: time constant when the gain may rise.
        sample_rate: sample rate of the processed audio.
        max_gain: upper bound on gain so silence is not amplified into
            noise.
    """

    def __init__(
        self,
        target_rms: float = 0.25,
        attack_seconds: float = 0.100,
        release_seconds: float = 10.000,
        sample_rate: float = 48_000.0,
        max_gain: float = 100.0,
    ) -> None:
        self.target_rms = ensure_positive(target_rms, "target_rms")
        self.attack_seconds = ensure_positive(attack_seconds, "attack_seconds")
        self.release_seconds = ensure_positive(release_seconds, "release_seconds")
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        self.max_gain = ensure_positive(max_gain, "max_gain")

    def apply(self, signal: np.ndarray) -> np.ndarray:
        """Process a block and return the gain-controlled output.

        The envelope tracker runs on 1 ms sub-blocks, which is fast enough
        to capture the receiver behaviour the paper compensates for while
        keeping the loop vectorizable per block.
        """
        signal = ensure_real(signal, "signal")
        block = max(int(self.sample_rate // 1000), 1)
        n_blocks = int(np.ceil(signal.size / block))
        attack_alpha = float(np.exp(-block / (self.attack_seconds * self.sample_rate)))
        release_alpha = float(np.exp(-block / (self.release_seconds * self.sample_rate)))

        output = np.empty_like(signal)
        envelope = max(float(np.sqrt(np.mean(signal[: 4 * block] ** 2))), 1e-9)
        for i in range(n_blocks):
            chunk = signal[i * block : (i + 1) * block]
            rms = max(float(np.sqrt(np.mean(chunk**2))), 1e-9)
            alpha = attack_alpha if rms > envelope else release_alpha
            envelope = alpha * envelope + (1.0 - alpha) * rms
            gain = min(self.target_rms / envelope, self.max_gain)
            output[i * block : (i + 1) * block] = gain * chunk
        return output

    def static_gain(self, signal: np.ndarray) -> float:
        """Gain the AGC converges to for a stationary input block."""
        signal = ensure_real(signal, "signal")
        rms = max(float(np.sqrt(np.mean(signal**2))), 1e-9)
        return min(self.target_rms / rms, self.max_gain)

"""Goertzel tone-power estimation.

The paper's receiver is a non-coherent FSK detector: it compares received
power at candidate tone frequencies and picks the strongest (section 3.4).
The Goertzel algorithm computes power at a single frequency in O(N) without
an FFT, matching the paper's emphasis on computational simplicity.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive, ensure_real


def goertzel_power(signal: np.ndarray, freq_hz: float, sample_rate: float) -> float:
    """Power of ``signal`` at a single frequency via the Goertzel recursion.

    Args:
        signal: real 1-D block (one symbol's worth of samples).
        freq_hz: analysis frequency; need not be an exact DFT bin.
        sample_rate: sample rate of ``signal``.

    Returns:
        Squared magnitude of the DTFT of the block at ``freq_hz``,
        normalized by block length so different block sizes are comparable.
    """
    signal = ensure_real(signal, "signal")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    if not 0 <= freq_hz <= sample_rate / 2:
        raise ConfigurationError(
            f"freq_hz must be within [0, Nyquist={sample_rate / 2}], got {freq_hz}"
        )
    n = signal.size
    omega = 2.0 * np.pi * freq_hz / sample_rate
    # Vectorized equivalent of the Goertzel recursion: project onto the
    # complex exponential. Numerically identical for our block sizes and
    # much faster in numpy than a per-sample Python loop.
    phase = np.exp(-1j * omega * np.arange(n))
    dft = np.dot(signal, phase)
    return float(np.abs(dft) ** 2) / n


def goertzel_power_many(
    signal: np.ndarray, freqs_hz: Sequence[float], sample_rate: float
) -> np.ndarray:
    """Power at several frequencies at once.

    Equivalent to calling :func:`goertzel_power` per frequency but computes
    the projection matrix in one shot.

    Args:
        signal: real 1-D block.
        freqs_hz: iterable of analysis frequencies.
        sample_rate: sample rate of ``signal``.

    Returns:
        Array of powers, one per frequency, in the order given.
    """
    signal = ensure_real(signal, "signal")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    freqs = np.asarray(list(freqs_hz), dtype=float)
    if freqs.size == 0:
        raise ConfigurationError("freqs_hz must contain at least one frequency")
    if np.any(freqs < 0) or np.any(freqs > sample_rate / 2):
        raise ConfigurationError("all frequencies must lie within [0, Nyquist]")
    n = signal.size
    omegas = 2.0 * np.pi * freqs / sample_rate
    phases = np.exp(-1j * np.outer(omegas, np.arange(n)))
    dfts = phases @ signal
    return np.abs(dfts) ** 2 / n

"""Analytic-signal helpers for single-sideband processing.

The paper's footnote 2 points to single-sideband backscatter (as in
Interscatter) to remove the mirror ``cos(A - B)`` mixing product. SSB
synthesis needs the Hilbert transform of the subcarrier waveform, wrapped
here with validation.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.utils.validation import ensure_real


def analytic_signal(signal: np.ndarray) -> np.ndarray:
    """Complex analytic signal (signal + j * Hilbert(signal))."""
    signal = ensure_real(signal, "signal")
    return sp_signal.hilbert(signal)


def hilbert_transform(signal: np.ndarray) -> np.ndarray:
    """Hilbert transform (the imaginary part of the analytic signal)."""
    return np.imag(analytic_signal(signal))


def envelope(signal: np.ndarray) -> np.ndarray:
    """Instantaneous amplitude envelope via the analytic signal."""
    return np.abs(analytic_signal(signal))

"""Sample-rate conversion.

The library runs audio at 48 kHz and the MPX/complex-baseband domain at
480 kHz (an exact factor of 10), so the main path is exact polyphase
up/down-sampling. The cooperative receiver additionally resamples by 10x
before cross-correlation, per section 3.3 of the paper, which reuses the
same machinery.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
from scipy import signal as sp_signal

from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive, ensure_signal


def resample_poly_exact(signal: np.ndarray, up: int, down: int) -> np.ndarray:
    """Polyphase resampling by the exact rational factor ``up / down``.

    Thin, validated wrapper over ``scipy.signal.resample_poly``; exists so
    every resampling step in the library funnels through one place.

    Args:
        signal: real or complex input; 1-D, or 2-D ``(batch, samples)`` to
            resample a stack of waveforms along the last axis in one
            polyphase pass (each row bit-identical to resampling it
            alone).
        up: integer upsampling factor (>= 1).
        down: integer downsampling factor (>= 1).

    Returns:
        The resampled signal whose last axis has length
        ``ceil(samples * up / down)``.
    """
    signal = ensure_signal(signal, "signal")
    if not isinstance(up, (int, np.integer)) or up < 1:
        raise ConfigurationError(f"up must be a positive integer, got {up!r}")
    if not isinstance(down, (int, np.integer)) or down < 1:
        raise ConfigurationError(f"down must be a positive integer, got {down!r}")
    if up == down:
        return signal.copy()
    return sp_signal.resample_poly(signal, int(up), int(down), axis=-1)


def resample_by_ratio(
    signal: np.ndarray, rate_in: float, rate_out: float, max_denominator: int = 1000
) -> np.ndarray:
    """Resample between two rates expressed in Hz.

    The ratio is converted to the nearest rational with a bounded
    denominator, then handed to :func:`resample_poly_exact`. For the
    library's standard rates (48 kHz <-> 480 kHz) the ratio is exact.

    Args:
        signal: 1-D input.
        rate_in: current sample rate in Hz.
        rate_out: desired sample rate in Hz.
        max_denominator: bound on the rational approximation.
    """
    rate_in = ensure_positive(rate_in, "rate_in")
    rate_out = ensure_positive(rate_out, "rate_out")
    ratio = Fraction(rate_out / rate_in).limit_denominator(max_denominator)
    return resample_poly_exact(signal, ratio.numerator, ratio.denominator)

"""Second-order IIR sections and the FM pre/de-emphasis networks.

FM broadcasting boosts treble before modulation (pre-emphasis) and the
receiver undoes it (de-emphasis, 75 us in North America). Both are
first-order shelving networks; they are represented here with the same
:class:`Biquad` machinery used elsewhere so the whole receive chain is a
couple of composable filter objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from repro.constants import DEEMPHASIS_US_SECONDS
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive, ensure_real_signal


@dataclass(frozen=True)
class Biquad:
    """A direct-form II transposed IIR section ``b / a``.

    Attributes:
        b: numerator coefficients (length <= 3).
        a: denominator coefficients (length <= 3, ``a[0]`` normalized to 1).
    """

    b: tuple
    a: tuple

    def __post_init__(self) -> None:
        if len(self.b) > 3 or len(self.a) > 3 or len(self.a) < 1:
            raise ConfigurationError("biquad sections take at most 3 coefficients")
        if abs(self.a[0] - 1.0) > 1e-12:
            raise ConfigurationError("a[0] must be normalized to 1")

    def apply(self, signal: np.ndarray) -> np.ndarray:
        """Filter a real signal through this section.

        Accepts a 1-D waveform or a 2-D ``(batch, samples)`` stack — the
        IIR recursion runs along the last axis independently per row, so
        each row's output is bit-identical to filtering it alone. This is
        what lets the sweep engine's batched backend keep de-emphasizing
        receivers on the vectorized path instead of falling back.
        """
        signal = ensure_real_signal(signal, "signal")
        return sp_signal.lfilter(self.b, self.a, signal, axis=-1)

    def frequency_response(self, freqs_hz: np.ndarray, sample_rate: float) -> np.ndarray:
        """Complex response at the given frequencies."""
        w = 2.0 * np.pi * np.asarray(freqs_hz, dtype=float) / sample_rate
        _, h = sp_signal.freqz(self.b, self.a, worN=w)
        return h


def deemphasis_filter(sample_rate: float, tau: float = DEEMPHASIS_US_SECONDS) -> Biquad:
    """First-order de-emphasis network (RC low shelf) as a biquad.

    Bilinear-transform discretization of ``H(s) = 1 / (1 + s * tau)``.

    Args:
        sample_rate: audio sample rate.
        tau: time constant; 75 us (default) for North America, 50 us for
            Europe.
    """
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    tau = ensure_positive(tau, "tau")
    # Bilinear transform with frequency pre-warping at the pole.
    k = 2.0 * sample_rate
    b0 = 1.0 / (1.0 + k * tau)
    b1 = b0
    a1 = (1.0 - k * tau) / (1.0 + k * tau)
    return Biquad(b=(b0, b1), a=(1.0, a1))


def preemphasis_filter(sample_rate: float, tau: float = DEEMPHASIS_US_SECONDS) -> Biquad:
    """First-order pre-emphasis network, the inverse of de-emphasis.

    Discretizes ``H(s) = 1 + s * tau`` via the bilinear transform. Applying
    pre-emphasis then de-emphasis returns the original signal (validated by
    round-trip tests).
    """
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    tau = ensure_positive(tau, "tau")
    k = 2.0 * sample_rate
    # Exact inverse of deemphasis_filter: swap numerator and denominator,
    # then normalize so a[0] == 1. The resulting pole sits at z = -1
    # (Nyquist); that is fine for broadcast audio, which is band-limited to
    # 15 kHz, far below Nyquist at the rates used here.
    return Biquad(b=(1.0 + k * tau, 1.0 - k * tau), a=(1.0, 1.0))

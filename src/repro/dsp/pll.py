"""A type-2 phase-locked loop for pilot-tone recovery.

Stereo FM decoding regenerates the 38 kHz subcarrier by doubling a 19 kHz
pilot recovered with a PLL (section 3.2 notes that real receivers decode
with PLL circuits). The loop here is a standard second-order digital PLL:
a numerically controlled oscillator, a multiplier phase detector, and a
proportional-integral loop filter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive, ensure_real


@dataclass
class PLLResult:
    """Output of :meth:`PhaseLockedLoop.track`.

    Attributes:
        phase: per-sample NCO phase in radians (unwrapped).
        frequency_hz: per-sample NCO frequency estimate.
        locked: True when the tail-end frequency error settled within
            ``lock_tolerance_hz`` of the carrier.
        amplitude: estimated amplitude of the tracked tone.
    """

    phase: np.ndarray
    frequency_hz: np.ndarray
    locked: bool
    amplitude: float

    def reference(self) -> np.ndarray:
        """Unit-amplitude cosine locked to the input tone."""
        return np.cos(self.phase)

    def reference_harmonic(self, multiplier: int) -> np.ndarray:
        """Unit cosine at an integer multiple of the tracked frequency.

        Used to regenerate the 38 kHz stereo subcarrier (``multiplier=2``)
        and the 57 kHz RDS carrier (``multiplier=3``) from the 19 kHz pilot
        with phase coherence.
        """
        if multiplier < 1:
            raise ConfigurationError(f"multiplier must be >= 1, got {multiplier}")
        return np.cos(multiplier * self.phase)


class PhaseLockedLoop:
    """Second-order PLL tracking a sinusoid near a known center frequency.

    Args:
        center_freq_hz: expected tone frequency (e.g. 19 kHz pilot).
        sample_rate: input sample rate.
        loop_bandwidth_hz: closed-loop bandwidth; small values reject
            neighboring program audio but lock more slowly.
        damping: loop damping factor (0.707 default).
        lock_tolerance_hz: residual frequency error below which the loop
            reports lock.
    """

    def __init__(
        self,
        center_freq_hz: float,
        sample_rate: float,
        loop_bandwidth_hz: float = 50.0,
        damping: float = 0.707,
        lock_tolerance_hz: float = 5.0,
    ) -> None:
        self.center_freq_hz = ensure_positive(center_freq_hz, "center_freq_hz")
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        if center_freq_hz >= sample_rate / 2:
            raise ConfigurationError("center frequency must be below Nyquist")
        self.loop_bandwidth_hz = ensure_positive(loop_bandwidth_hz, "loop_bandwidth_hz")
        self.damping = ensure_positive(damping, "damping")
        self.lock_tolerance_hz = ensure_positive(lock_tolerance_hz, "lock_tolerance_hz")
        # Standard loop-gain derivation for a second-order PLL.
        wn = 2.0 * np.pi * loop_bandwidth_hz
        ts = 1.0 / sample_rate
        self._kp = 2.0 * self.damping * wn * ts
        self._ki = (wn * ts) ** 2

    def track(self, signal: np.ndarray) -> PLLResult:
        """Run the loop over a real input block and return the NCO track.

        The phase detector multiplies the input by the NCO quadrature
        output and low-passes implicitly through the loop filter.
        """
        signal = ensure_real(signal, "signal")
        n = signal.size
        # Scale the detector by the input RMS so loop gain is amplitude
        # independent; amplitude is re-estimated at the end.
        rms = float(np.sqrt(np.mean(signal**2)))
        scale = 1.0 / rms if rms > 0 else 1.0

        phase = np.empty(n)
        freq = np.empty(n)
        theta = 0.0
        integrator = 0.0
        omega0 = 2.0 * np.pi * self.center_freq_hz / self.sample_rate
        for i in range(n):
            error = scale * signal[i] * -np.sin(theta)
            integrator += self._ki * error
            step = omega0 + self._kp * error + integrator
            phase[i] = theta
            freq[i] = step * self.sample_rate / (2.0 * np.pi)
            theta += step

        tail = max(n // 8, 1)
        freq_err = abs(float(np.mean(freq[-tail:])) - self.center_freq_hz)
        locked = freq_err < self.lock_tolerance_hz
        # Amplitude: correlate the tail of the input with the locked cosine.
        ref_tail = np.cos(phase[-tail:])
        amplitude = 2.0 * float(np.mean(signal[-tail:] * ref_tail))
        return PLLResult(phase=phase, frequency_hz=freq, locked=locked, amplitude=amplitude)

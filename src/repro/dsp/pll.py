"""A type-2 phase-locked loop for pilot-tone recovery.

Stereo FM decoding regenerates the 38 kHz subcarrier by doubling a 19 kHz
pilot recovered with a PLL (section 3.2 notes that real receivers decode
with PLL circuits). The loop here is a standard second-order digital PLL:
a numerically controlled oscillator, a multiplier phase detector, and a
proportional-integral loop filter.

The loop is inherently sequential in *time* (each step's phase feeds the
next), but independent waveforms share no state, so :meth:`track_batch`
runs the same time loop with an ``(n_waveforms,)`` state vector per step.
That is what lets the sweep engine's batched backend vectorize stereo
decoding across grid points instead of falling back to per-point loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import ensure_positive, ensure_real

MIN_VECTOR_WAVEFORMS = 6
"""Stack width below which :meth:`PhaseLockedLoop.track_batch` runs the
scalar loop per row instead of the vector loop. The vector loop's
per-step cost is dominated by fixed NumPy dispatch overhead (~10 ufunc
calls regardless of width), so it only beats ``width`` scalar loops past
roughly this many waveforms (measured crossover ~5-6 on the benchmark
machine). Either path returns bit-identical results."""


@dataclass
class PLLResult:
    """Output of :meth:`PhaseLockedLoop.track`.

    Attributes:
        phase: per-sample NCO phase in radians (unwrapped).
        frequency_hz: per-sample NCO frequency estimate.
        locked: True when the tail-end frequency error settled within
            ``lock_tolerance_hz`` of the carrier.
        amplitude: estimated amplitude of the tracked tone.
    """

    phase: np.ndarray
    frequency_hz: np.ndarray
    locked: bool
    amplitude: float

    def reference(self) -> np.ndarray:
        """Unit-amplitude cosine locked to the input tone."""
        return np.cos(self.phase)

    def reference_harmonic(self, multiplier: int) -> np.ndarray:
        """Unit cosine at an integer multiple of the tracked frequency.

        Used to regenerate the 38 kHz stereo subcarrier (``multiplier=2``)
        and the 57 kHz RDS carrier (``multiplier=3``) from the 19 kHz pilot
        with phase coherence.
        """
        if multiplier < 1:
            raise ConfigurationError(f"multiplier must be >= 1, got {multiplier}")
        return np.cos(multiplier * self.phase)


@dataclass
class PLLBatchResult:
    """Output of :meth:`PhaseLockedLoop.track_batch`.

    The batch counterpart of :class:`PLLResult`: per-sample arrays gain a
    leading waveform axis and the scalar summaries become per-waveform
    vectors. Row ``i`` is bit-identical to ``track(signals[i])``.

    Attributes:
        phase: per-sample NCO phase in radians, ``(n_waveforms, n_samples)``.
        frequency_hz: per-sample NCO frequency estimate, same shape.
        locked: per-waveform lock flags, ``(n_waveforms,)`` bool.
        amplitude: per-waveform amplitude estimates, ``(n_waveforms,)``.
    """

    phase: np.ndarray
    frequency_hz: np.ndarray
    locked: np.ndarray
    amplitude: np.ndarray

    def reference(self) -> np.ndarray:
        """Unit-amplitude cosines locked to each input tone."""
        return np.cos(self.phase)

    def reference_harmonic(self, multiplier: int) -> np.ndarray:
        """Unit cosines at an integer multiple of each tracked frequency."""
        if multiplier < 1:
            raise ConfigurationError(f"multiplier must be >= 1, got {multiplier}")
        return np.cos(multiplier * self.phase)

    def row(self, index: int) -> PLLResult:
        """One waveform's track as a scalar :class:`PLLResult`."""
        return PLLResult(
            phase=self.phase[index],
            frequency_hz=self.frequency_hz[index],
            locked=bool(self.locked[index]),
            amplitude=float(self.amplitude[index]),
        )


class PhaseLockedLoop:
    """Second-order PLL tracking a sinusoid near a known center frequency.

    Args:
        center_freq_hz: expected tone frequency (e.g. 19 kHz pilot).
        sample_rate: input sample rate.
        loop_bandwidth_hz: closed-loop bandwidth; small values reject
            neighboring program audio but lock more slowly.
        damping: loop damping factor (0.707 default).
        lock_tolerance_hz: residual frequency error below which the loop
            reports lock.
    """

    def __init__(
        self,
        center_freq_hz: float,
        sample_rate: float,
        loop_bandwidth_hz: float = 50.0,
        damping: float = 0.707,
        lock_tolerance_hz: float = 5.0,
    ) -> None:
        self.center_freq_hz = ensure_positive(center_freq_hz, "center_freq_hz")
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        if center_freq_hz >= sample_rate / 2:
            raise ConfigurationError("center frequency must be below Nyquist")
        self.loop_bandwidth_hz = ensure_positive(loop_bandwidth_hz, "loop_bandwidth_hz")
        self.damping = ensure_positive(damping, "damping")
        self.lock_tolerance_hz = ensure_positive(lock_tolerance_hz, "lock_tolerance_hz")
        # Standard loop-gain derivation for a second-order PLL.
        wn = 2.0 * np.pi * loop_bandwidth_hz
        ts = 1.0 / sample_rate
        self._kp = 2.0 * self.damping * wn * ts
        self._ki = (wn * ts) ** 2

    def track(self, signal: np.ndarray) -> PLLResult:
        """Run the loop over a real input block and return the NCO track.

        The phase detector multiplies the input by the NCO quadrature
        output and low-passes implicitly through the loop filter.
        """
        signal = ensure_real(signal, "signal")
        n = signal.size
        # Scale the detector by the input RMS so loop gain is amplitude
        # independent; amplitude is re-estimated at the end.
        rms = float(np.sqrt(np.mean(signal**2)))
        scale = 1.0 / rms if rms > 0 else 1.0

        phase = np.empty(n)
        freq = np.empty(n)
        theta = 0.0
        integrator = 0.0
        omega0 = 2.0 * np.pi * self.center_freq_hz / self.sample_rate
        for i in range(n):
            error = scale * signal[i] * -np.sin(theta)
            integrator += self._ki * error
            step = omega0 + self._kp * error + integrator
            phase[i] = theta
            freq[i] = step * self.sample_rate / (2.0 * np.pi)
            theta += step

        tail = max(n // 8, 1)
        freq_err = abs(float(np.mean(freq[-tail:])) - self.center_freq_hz)
        locked = freq_err < self.lock_tolerance_hz
        # Amplitude: correlate the tail of the input with the locked cosine.
        ref_tail = np.cos(phase[-tail:])
        amplitude = 2.0 * float(np.mean(signal[-tail:] * ref_tail))
        return PLLResult(phase=phase, frequency_hz=freq, locked=locked, amplitude=amplitude)

    def track_batch(self, signals: np.ndarray) -> PLLBatchResult:
        """Run the loop over a stack of independent waveforms at once.

        The time loop stays sequential — a PLL's phase recursion cannot be
        unrolled — but each step advances an ``(n_waveforms,)`` state
        vector instead of a scalar, so the Python iteration cost is paid
        once for the whole stack. Waveforms are independent (no state is
        shared between rows) and every per-step operation is elementwise,
        so row ``i`` of the result is bit-identical to
        ``track(signals[i])``.

        Args:
            signals: real waveform stack, shape ``(n_waveforms, n_samples)``.
                An empty *batch* (zero waveforms) is allowed and returns
                empty results; zero-length *waveforms* are rejected
                exactly like :meth:`track`.
        """
        signals = np.asarray(signals)
        if signals.ndim != 2:
            raise SignalError(
                f"signals must be 2-D (waveforms, samples), got shape {signals.shape}"
            )
        if np.iscomplexobj(signals):
            raise SignalError("signals must be real-valued")
        n_waveforms, n = signals.shape
        if n_waveforms and n == 0:
            raise SignalError("signals must be non-empty")
        signals = signals.astype(float, copy=False)
        if n_waveforms == 0:
            return PLLBatchResult(
                phase=np.empty((0, n)),
                frequency_hz=np.empty((0, n)),
                locked=np.zeros(0, dtype=bool),
                amplitude=np.empty(0),
            )
        if n_waveforms < MIN_VECTOR_WAVEFORMS:
            # Narrow stacks: NumPy dispatch overhead makes the vector
            # loop slower than running the scalar loop per row, and the
            # results are identical either way.
            rows = [self.track(signals[i]) for i in range(n_waveforms)]
            return PLLBatchResult(
                phase=np.stack([r.phase for r in rows]),
                frequency_hz=np.stack([r.frequency_hz for r in rows]),
                locked=np.array([r.locked for r in rows], dtype=bool),
                amplitude=np.array([r.amplitude for r in rows]),
            )

        # Same amplitude normalization as track, per waveform.
        rms = np.sqrt(np.mean(signals**2, axis=-1))
        scale = np.ones(n_waveforms)
        nonzero = rms > 0
        scale[nonzero] = 1.0 / rms[nonzero]

        # The loop below is the scalar recursion of track with every
        # operation widened to an (n_waveforms,) vector. Each rewrite
        # keeps the scalar path's association order (only operands are
        # hoisted or buffers reused), so every element stays bit-identical
        # to the scalar loop:
        #  - track's `scale * signal[i]` factor is precomputed for all
        #    steps in one 2-D multiply;
        #  - `step * sample_rate / (2 pi)` is deferred to one 2-D pass
        #    after the loop (the loop stores raw phase increments);
        #  - per-step results are written to (time, waveform)-major
        #    buffers so the inner writes are contiguous.
        scaled = signals * scale[:, np.newaxis]
        columns = np.ascontiguousarray(scaled.T)
        phase_t = np.empty((n, n_waveforms))
        steps_t = np.empty((n, n_waveforms))
        theta = np.zeros(n_waveforms)
        integrator = np.zeros(n_waveforms)
        omega0 = 2.0 * np.pi * self.center_freq_hz / self.sample_rate
        neg_sin = np.empty(n_waveforms)
        error = np.empty(n_waveforms)
        scratch = np.empty(n_waveforms)
        for i in range(n):
            np.sin(theta, out=neg_sin)
            np.negative(neg_sin, out=neg_sin)
            np.multiply(columns[i], neg_sin, out=error)
            np.multiply(error, self._ki, out=scratch)
            integrator += scratch
            np.multiply(error, self._kp, out=scratch)
            scratch += omega0
            scratch += integrator
            phase_t[i] = theta
            steps_t[i] = scratch
            theta += scratch

        phase = np.ascontiguousarray(phase_t.T)
        freq = np.ascontiguousarray(steps_t.T) * self.sample_rate / (2.0 * np.pi)

        tail = max(n // 8, 1)
        freq_err = np.abs(np.mean(freq[:, -tail:], axis=-1) - self.center_freq_hz)
        locked = freq_err < self.lock_tolerance_hz
        ref_tail = np.cos(phase[:, -tail:])
        amplitude = 2.0 * np.mean(signals[:, -tail:] * ref_tail, axis=-1)
        return PLLBatchResult(
            phase=phase, frequency_hz=freq, locked=locked, amplitude=amplitude
        )

"""Digital signal processing substrate.

Everything the FM stack needs, implemented on numpy/scipy: FIR design and
filtering, RBJ biquads, polyphase resampling, Goertzel tone detection,
Welch spectra, a type-2 PLL, AGC, and phase integration for FM synthesis.
"""

from repro.dsp.filters import (
    bandpass_fir,
    design_lowpass_fir,
    filter_signal,
    highpass_fir,
)
from repro.dsp.biquad import Biquad, deemphasis_filter, preemphasis_filter
from repro.dsp.resample import resample_by_ratio, resample_poly_exact
from repro.dsp.goertzel import goertzel_power, goertzel_power_many
from repro.dsp.spectrum import band_power, power_spectrum, tone_snr_db
from repro.dsp.phase import frequency_to_phase, phase_to_frequency
from repro.dsp.pll import PhaseLockedLoop, PLLBatchResult, PLLResult
from repro.dsp.agc import AutomaticGainControl
from repro.dsp.windows import hann_window, raised_cosine_edges

__all__ = [
    "AutomaticGainControl",
    "Biquad",
    "PLLBatchResult",
    "PLLResult",
    "PhaseLockedLoop",
    "band_power",
    "bandpass_fir",
    "deemphasis_filter",
    "design_lowpass_fir",
    "filter_signal",
    "frequency_to_phase",
    "goertzel_power",
    "goertzel_power_many",
    "hann_window",
    "highpass_fir",
    "phase_to_frequency",
    "power_spectrum",
    "preemphasis_filter",
    "raised_cosine_edges",
    "resample_by_ratio",
    "resample_poly_exact",
    "tone_snr_db",
]

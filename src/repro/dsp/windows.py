"""Window functions and smooth symbol shaping.

Only the windows the rest of the library actually uses are implemented:
Hann (for spectral estimation and FIR design) and raised-cosine edge
shaping (to band-limit FSK symbol transitions so keying clicks do not
splatter across the audio band).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def hann_window(length: int) -> np.ndarray:
    """Periodic-symmetric Hann window of ``length`` samples.

    Matches ``numpy.hanning`` for length >= 1 but rejects nonsense input
    with a library error instead of returning an empty array.
    """
    if length < 1:
        raise ConfigurationError(f"window length must be >= 1, got {length}")
    if length == 1:
        return np.ones(1)
    n = np.arange(length)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * n / (length - 1))


def raised_cosine_edges(length: int, ramp: int) -> np.ndarray:
    """Unit-amplitude envelope with raised-cosine ramps at both ends.

    Args:
        length: total envelope length in samples.
        ramp: samples in each ramp; ``0`` returns a rectangular envelope.

    Returns:
        Array of ``length`` samples rising smoothly from 0 to 1 and back.

    Raises:
        ConfigurationError: if ``2 * ramp > length`` or arguments are
            negative.
    """
    if length < 1:
        raise ConfigurationError(f"envelope length must be >= 1, got {length}")
    if ramp < 0:
        raise ConfigurationError(f"ramp must be >= 0, got {ramp}")
    if 2 * ramp > length:
        raise ConfigurationError(
            f"ramps ({ramp} samples each) do not fit in envelope of {length}"
        )
    envelope = np.ones(length)
    if ramp == 0:
        return envelope
    ramp_shape = 0.5 * (1.0 - np.cos(np.pi * np.arange(ramp) / ramp))
    envelope[:ramp] = ramp_shape
    envelope[length - ramp :] = ramp_shape[::-1]
    return envelope

"""A small LRU cache for deterministic DSP "plans".

A sweep grid re-runs the same receive chain at every point, and each run
used to re-design the same FIR filters (windowed-sinc synthesis is a few
hundred numpy ops) and rebuild the same Welch window. Those objects are
pure functions of their design parameters, so this module gives the DSP
layer one process-wide plan cache: :mod:`repro.dsp.filters` keys FIR
designs by (kind, band edges, sample rate, taps) and
:mod:`repro.dsp.spectrum` keys Welch windows by segment length.

Cached arrays are returned **non-writable** (and every hit returns the
same object), so an accidental in-place mutation by a caller raises
instead of silently poisoning every later user of that plan.

The capacity knob is ``REPRO_DSP_PLAN_CACHE`` (entries; ``0`` disables
caching entirely); malformed values raise
:class:`~repro.errors.ConfigurationError` naming the offending string.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Tuple

import numpy as np

from repro.utils.env import env_int

PLAN_CACHE_ENV_VAR = "REPRO_DSP_PLAN_CACHE"
"""Maximum number of cached DSP plans (FIR designs, Welch windows);
``0`` disables the cache."""

DEFAULT_PLAN_CACHE_ENTRIES = 128
"""Default capacity — generous for the library's filter vocabulary (a
few dozen distinct designs) while bounding memory for exotic sweeps."""

_cache: "OrderedDict[Tuple[object, ...], np.ndarray]" = OrderedDict()
_stats: Dict[str, int] = {"hits": 0, "misses": 0}
_lock = threading.Lock()
"""The cache is process-wide and the thread sweep backend runs points
concurrently; the lock keeps lookup + LRU reorder + eviction atomic
(an unguarded get/move_to_end pair can KeyError under concurrent
eviction). Builders run outside the lock — a racing miss just builds
the same deterministic plan twice."""


def plan_cache_capacity() -> int:
    """The configured capacity (strictly parsed from the environment)."""
    return env_int(PLAN_CACHE_ENV_VAR, DEFAULT_PLAN_CACHE_ENTRIES, minimum=0)


def cached_plan(key: Tuple[object, ...], build: Callable[[], np.ndarray]) -> np.ndarray:
    """Return the plan for ``key``, building (and caching) it on a miss.

    Args:
        key: hashable design key; include a kind tag so different plan
            families never collide.
        build: zero-argument builder invoked on a miss.

    Returns:
        The plan array, marked non-writable. With caching disabled the
        builder's fresh output is returned (still non-writable, so code
        behaves identically either way).
    """
    capacity = plan_cache_capacity()
    if capacity > 0:
        with _lock:
            hit = _cache.get(key)
            if hit is not None:
                _cache.move_to_end(key)
                _stats["hits"] += 1
                return hit
    with _lock:
        _stats["misses"] += 1
    plan = np.asarray(build())
    plan.setflags(write=False)
    if capacity > 0:
        with _lock:
            _cache[key] = plan
            _cache.move_to_end(key)
            while len(_cache) > capacity:
                _cache.popitem(last=False)
    return plan


def plan_cache_stats() -> Dict[str, int]:
    """Cache counters: ``hits`` / ``misses`` / ``items`` / ``capacity``."""
    with _lock:
        return {
            "hits": _stats["hits"],
            "misses": _stats["misses"],
            "items": len(_cache),
            "capacity": plan_cache_capacity(),
        }


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters (test isolation)."""
    with _lock:
        _cache.clear()
        _stats["hits"] = 0
        _stats["misses"] = 0

"""Frequency <-> phase integration for FM synthesis and analysis.

An FM signal is ``cos(2 pi fc t + 2 pi df * integral(audio))`` (paper
Eq. 1). Synthesis therefore needs a running integral of the instantaneous
frequency; analysis needs the discrete derivative of unwrapped phase.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_positive, ensure_real


def frequency_to_phase(freq_hz: np.ndarray, sample_rate: float) -> np.ndarray:
    """Integrate instantaneous frequency (Hz) into phase (radians).

    Uses a cumulative sum with the convention that ``phase[0]`` reflects the
    first frequency sample, matching a causal accumulator in hardware.

    Args:
        freq_hz: instantaneous frequency per sample.
        sample_rate: sample rate of the frequency track.

    Returns:
        Phase in radians, same length as the input.
    """
    freq_hz = ensure_real(freq_hz, "freq_hz")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    return 2.0 * np.pi * np.cumsum(freq_hz) / sample_rate


def phase_to_frequency(phase_rad: np.ndarray, sample_rate: float) -> np.ndarray:
    """Differentiate unwrapped phase (radians) into frequency (Hz).

    The inverse of :func:`frequency_to_phase` up to the first sample. The
    first output sample duplicates the second so the result has the same
    length as the input.
    """
    phase_rad = ensure_real(phase_rad, "phase_rad")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    freq = np.diff(phase_rad) * sample_rate / (2.0 * np.pi)
    if freq.size == 0:
        return np.zeros_like(phase_rad)
    return np.concatenate([[freq[0]], freq])

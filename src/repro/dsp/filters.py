"""FIR filter design (windowed-sinc) and zero-phase filtering helpers.

The FM stack needs sharp audio-band filters: a 15 kHz low-pass before FM
modulation, band-passes to isolate the pilot / stereo / RDS subcarriers,
and narrow filters around FSK tones. Windowed-sinc FIRs with Hann windows
are simple, linear-phase, and entirely adequate at these sample rates.

Designs are memoized through the process-wide DSP plan cache
(:mod:`repro.dsp.plan_cache`): a sweep that runs the same receive chain
at every grid point designs each filter once instead of once per point.
Cached taps are returned non-writable; derive a fresh array before
mutating.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.dsp.plan_cache import cached_plan
from repro.dsp.windows import hann_window
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive, ensure_signal


def design_lowpass_fir(cutoff_hz: float, sample_rate: float, num_taps: int = 257) -> np.ndarray:
    """Design a linear-phase low-pass FIR via the windowed-sinc method.

    Args:
        cutoff_hz: -6 dB cutoff frequency.
        sample_rate: sample rate of the signal the filter will run at.
        num_taps: filter length; must be odd so group delay is an integer.

    Returns:
        Filter taps normalized to unity DC gain (non-writable; designs
        are shared through the DSP plan cache).
    """
    cutoff_hz = ensure_positive(cutoff_hz, "cutoff_hz")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    if cutoff_hz >= sample_rate / 2:
        raise ConfigurationError(
            f"cutoff {cutoff_hz} Hz must be below Nyquist {sample_rate / 2} Hz"
        )
    if num_taps < 3 or num_taps % 2 == 0:
        raise ConfigurationError(f"num_taps must be odd and >= 3, got {num_taps}")
    return cached_plan(
        ("lowpass_fir", cutoff_hz, sample_rate, num_taps),
        lambda: _design_lowpass(cutoff_hz, sample_rate, num_taps),
    )


def _design_lowpass(cutoff_hz: float, sample_rate: float, num_taps: int) -> np.ndarray:
    """The actual (validated-input) windowed-sinc synthesis."""
    n = np.arange(num_taps) - (num_taps - 1) / 2
    fc = cutoff_hz / sample_rate
    taps = 2.0 * fc * np.sinc(2.0 * fc * n)
    taps *= hann_window(num_taps)
    return taps / np.sum(taps)


def highpass_fir(cutoff_hz: float, sample_rate: float, num_taps: int = 257) -> np.ndarray:
    """Design a linear-phase high-pass FIR by spectral inversion."""
    lowpass = design_lowpass_fir(cutoff_hz, sample_rate, num_taps)
    highpass = -lowpass
    highpass[(num_taps - 1) // 2] += 1.0
    return highpass


def bandpass_fir(
    low_hz: float, high_hz: float, sample_rate: float, num_taps: int = 257
) -> np.ndarray:
    """Design a linear-phase band-pass FIR as the difference of two low-passes.

    Args:
        low_hz: lower band edge.
        high_hz: upper band edge (must exceed ``low_hz``).
        sample_rate: sample rate the filter targets.
        num_taps: odd filter length.
    """
    if high_hz <= low_hz:
        raise ConfigurationError(f"high_hz ({high_hz}) must exceed low_hz ({low_hz})")
    return cached_plan(
        ("bandpass_fir", low_hz, high_hz, sample_rate, num_taps),
        lambda: design_lowpass_fir(high_hz, sample_rate, num_taps)
        - design_lowpass_fir(low_hz, sample_rate, num_taps),
    )


def filter_signal(taps: np.ndarray, signal: np.ndarray) -> np.ndarray:
    """Apply an FIR filter with group-delay compensation.

    Uses FFT convolution (fast for the long filters used here) and trims
    the (num_taps - 1) / 2 sample group delay so the output is aligned with
    the input, which keeps symbol boundaries where the modulator put them.

    Args:
        taps: FIR taps with odd length.
        signal: real or complex input; 1-D, or 2-D ``(batch, samples)`` to
            filter a stack of waveforms along the last axis in one FFT
            pass. Each row's output is bit-identical to filtering that row
            alone, so the sweep engine's batched backend can share this
            exact code path with the serial one.

    Returns:
        Filtered signal, same shape and alignment as the input.
    """
    signal = ensure_signal(signal, "signal")
    taps = np.asarray(taps, dtype=float)
    if taps.ndim != 1 or taps.size % 2 == 0:
        raise ConfigurationError("taps must be a 1-D odd-length array")
    if signal.dtype in (np.float32, np.complex64):
        # Single-precision signals stay single precision (and the FFT
        # convolution runs the cheaper float32 transforms) instead of
        # being silently promoted through float64 taps. Double-precision
        # inputs — everything the exact numerics mode produces — are
        # untouched.
        taps = taps.astype(np.float32)
    delay = (taps.size - 1) // 2
    pad = np.zeros(signal.shape[:-1] + (delay,), dtype=signal.dtype)
    padded = np.concatenate([signal, pad], axis=-1)
    kernel = taps if signal.ndim == 1 else taps[np.newaxis, :]
    filtered = sp_signal.fftconvolve(padded, kernel, mode="full", axes=-1)
    return filtered[..., delay : delay + signal.shape[-1]]

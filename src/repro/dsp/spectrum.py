"""Spectral estimation helpers: Welch PSD, band power, and tone SNR.

Figure 6 of the paper computes SNR as the power at the transmitted tone
frequency divided by the summed power at all other audio frequencies;
:func:`tone_snr_db` reproduces exactly that estimator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import signal as sp_signal

from repro.dsp.plan_cache import cached_plan
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive, ensure_real_signal


def _welch_window(nperseg: int) -> np.ndarray:
    """The Hann segment window Welch would build internally, cached.

    ``scipy.signal.welch`` resolves a window *name* to an array on every
    call; passing the pre-built array through the DSP plan cache skips
    that per-call synthesis while producing bit-identical spectra (the
    array is exactly ``get_window("hann", nperseg)``).
    """
    return cached_plan(
        ("welch_window", "hann", int(nperseg)),
        lambda: sp_signal.get_window("hann", int(nperseg)),
    )


def power_spectrum(
    signal: np.ndarray, sample_rate: float, nperseg: int = 4096
) -> Tuple[np.ndarray, np.ndarray]:
    """Welch power spectral density of a real signal.

    Args:
        signal: real input; 1-D, or 2-D ``(batch, samples)`` to estimate a
            stack of waveforms along the last axis in one pass (each row
            bit-identical to estimating it alone — the batched sweep
            backend's pilot detection relies on this).
        sample_rate: sample rate in Hz.
        nperseg: Welch segment length (clipped to the signal length).

    Returns:
        ``(freqs_hz, psd)`` arrays; ``psd`` carries the batch axis when
        the input does.
    """
    signal = ensure_real_signal(signal, "signal")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    nperseg = int(min(nperseg, signal.shape[-1]))
    freqs, psd = sp_signal.welch(
        signal,
        fs=sample_rate,
        window=_welch_window(nperseg),
        nperseg=nperseg,
        axis=-1,
    )
    return freqs, psd


def band_power(
    signal: np.ndarray,
    sample_rate: float,
    low_hz: float,
    high_hz: float,
    nperseg: int = 4096,
):
    """Total power of ``signal`` within ``[low_hz, high_hz]``.

    Integrates the Welch PSD over the band, so it is robust to spectral
    leakage from strong out-of-band components.

    Returns:
        A float for 1-D input; a ``(batch,)`` array of per-row band
        powers for 2-D ``(batch, samples)`` input.
    """
    if high_hz <= low_hz:
        raise ConfigurationError(f"high_hz ({high_hz}) must exceed low_hz ({low_hz})")
    freqs, psd = power_spectrum(signal, sample_rate, nperseg)
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    if not np.any(mask):
        raise ConfigurationError(
            f"band [{low_hz}, {high_hz}] Hz contains no PSD bins at fs={sample_rate}"
        )
    df = freqs[1] - freqs[0]
    if psd.ndim == 1:
        return float(np.sum(psd[mask]) * df)
    return np.sum(psd[..., mask], axis=-1) * df


def tone_snr_db(
    signal: np.ndarray,
    sample_rate: float,
    tone_hz: float,
    tone_halfwidth_hz: float = 100.0,
    band_low_hz: float = 100.0,
    band_high_hz: float = 15_000.0,
) -> float:
    """SNR of a tone against all other in-band audio power, in dB.

    This is the Fig. 6 estimator: ``P_tone / (sum_f P_f - P_tone)`` where
    the sum runs over the audio band.

    Args:
        signal: received real audio.
        sample_rate: audio sample rate.
        tone_hz: frequency of the transmitted tone.
        tone_halfwidth_hz: half-width of the window counted as "the tone".
        band_low_hz: lower edge of the audio band for the noise sum.
        band_high_hz: upper edge of the audio band for the noise sum.

    Returns:
        SNR in dB; large and positive when the tone dominates.
    """
    tone_power = band_power(
        signal, sample_rate, tone_hz - tone_halfwidth_hz, tone_hz + tone_halfwidth_hz
    )
    total = band_power(signal, sample_rate, band_low_hz, band_high_hz)
    noise = max(total - tone_power, 1e-30)
    return float(10.0 * np.log10(max(tone_power, 1e-30) / noise))

"""Data transmission over backscattered audio.

Implements the paper's three bit rates (section 3.4): 2-FSK at 100 bps
(8/12 kHz tones) and FDM-4FSK at 1.6 / 3.2 kbps (sixteen tones between
800 Hz and 12.8 kHz in four groups, 8 bits per symbol), all decoded
non-coherently by comparing Goertzel tone powers. Maximal-ratio combining,
framing, error-correction coding (section 8 future work) and a slotted-
ALOHA MAC round out the stack.
"""

from repro.data.bits import bits_to_bytes, bytes_to_bits, random_bits
from repro.data.fsk import BinaryFskModem
from repro.data.fdm import FdmFskModem
from repro.data.mrc import mrc_combine
from repro.data.ber import bit_error_rate, count_bit_errors
from repro.data.framing import FrameCodec, FrameSyncResult
from repro.data.coding import (
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
)
from repro.data.mac import SlottedAlohaSimulator, AlohaStats
from repro.data.interleave import deinterleave, interleave
from repro.data.crc16 import append_crc16, crc16, verify_crc16

__all__ = [
    "AlohaStats",
    "BinaryFskModem",
    "FdmFskModem",
    "FrameCodec",
    "FrameSyncResult",
    "SlottedAlohaSimulator",
    "append_crc16",
    "bit_error_rate",
    "bits_to_bytes",
    "bytes_to_bits",
    "count_bit_errors",
    "crc16",
    "deinterleave",
    "interleave",
    "verify_crc16",
    "hamming74_decode",
    "hamming74_encode",
    "mrc_combine",
    "random_bits",
    "repetition_decode",
    "repetition_encode",
]

"""FDM-4FSK: the paper's 1.6 and 3.2 kbps high-rate modes.

Sixteen tones between 800 Hz and 12.8 kHz are split into four consecutive
groups of four; each group signals 2 bits via 4-FSK, so a symbol carries
8 bits while only four tones are active at once (section 3.4 — keeping
transmitter complexity low). Symbol rates of 200 and 400 Hz give 1.6 and
3.2 kbps; the paper found BER degrades sharply above 400 symbols/s, making
3.2 kbps the maximum rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.constants import (
    AUDIO_RATE_HZ,
    FDM_NUM_GROUPS,
    FDM_NUM_TONES,
    FDM_TONE_LOW_HZ,
)
from repro.data.bits import bits_to_symbols, symbols_to_bits
from repro.dsp.goertzel import goertzel_power_many
from repro.dsp.windows import raised_cosine_edges
from repro.errors import ConfigurationError, DemodulationError
from repro.utils.validation import ensure_real

BITS_PER_GROUP = 2
BITS_PER_SYMBOL = FDM_NUM_GROUPS * BITS_PER_GROUP


@dataclass
class FdmFskModem:
    """Frequency-division-multiplexed 4-FSK modem.

    Args:
        symbol_rate: 200 (1.6 kbps) or 400 (3.2 kbps); other rates are
            allowed for ablation studies.
        sample_rate: audio sample rate.
        amplitude: peak amplitude of the four-tone sum.
        tone_spacing_hz: spacing between adjacent tones (800 Hz default,
            so the tones land on 800, 1600, ..., 12800 Hz).
        edge_fraction: raised-cosine symbol edge fraction.
    """

    symbol_rate: int = 200
    sample_rate: float = AUDIO_RATE_HZ
    amplitude: float = 1.0
    tone_spacing_hz: float = FDM_TONE_LOW_HZ
    edge_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.symbol_rate < 1:
            raise ConfigurationError("symbol_rate must be >= 1")
        top = self.tone_spacing_hz * FDM_NUM_TONES
        if top >= self.sample_rate / 2:
            raise ConfigurationError(
                f"highest tone {top} Hz must be below Nyquist"
            )
        if not 0.0 <= self.edge_fraction < 0.5:
            raise ConfigurationError("edge_fraction must be in [0, 0.5)")

    @property
    def tones_hz(self) -> np.ndarray:
        """All sixteen tone frequencies."""
        return self.tone_spacing_hz * np.arange(1, FDM_NUM_TONES + 1)

    def group_tones_hz(self, group: int) -> np.ndarray:
        """The four candidate frequencies of one group (0-3)."""
        if not 0 <= group < FDM_NUM_GROUPS:
            raise ConfigurationError(f"group must be 0-3, got {group}")
        return self.tones_hz[4 * group : 4 * group + 4]

    @property
    def samples_per_symbol(self) -> int:
        """Samples in one symbol period."""
        sps = self.sample_rate / self.symbol_rate
        if abs(sps - round(sps)) > 1e-9:
            raise ConfigurationError(
                "sample_rate must be an integer multiple of symbol_rate"
            )
        return int(round(sps))

    @property
    def bit_rate(self) -> float:
        """Bits per second: 8 bits per symbol."""
        return float(self.symbol_rate * BITS_PER_SYMBOL)

    def modulate(self, bits: Sequence[int]) -> np.ndarray:
        """Render bits as the four-tone-per-symbol FDM waveform."""
        bits = np.asarray(list(bits), dtype=int)
        if bits.size == 0:
            raise ConfigurationError("bits must be non-empty")
        if np.any((bits != 0) & (bits != 1)):
            raise ConfigurationError("bits must be 0/1")
        symbols = bits_to_symbols(bits, BITS_PER_SYMBOL)
        sps = self.samples_per_symbol
        t = np.arange(sps) / self.sample_rate
        envelope = raised_cosine_edges(sps, int(self.edge_fraction * sps))
        waveform = np.empty(symbols.size * sps)
        for i, symbol in enumerate(symbols):
            chunk = np.zeros(sps)
            for group in range(FDM_NUM_GROUPS):
                # MSB-first: group 0 carries the two most significant bits.
                shift = BITS_PER_GROUP * (FDM_NUM_GROUPS - 1 - group)
                idx = (int(symbol) >> shift) & 0x3
                freq = self.group_tones_hz(group)[idx]
                chunk += np.cos(2.0 * np.pi * freq * t)
            waveform[i * sps : (i + 1) * sps] = envelope * chunk
        peak = float(np.max(np.abs(waveform)))
        if peak > 0:
            waveform *= self.amplitude / peak
        return waveform

    def demodulate(self, audio: np.ndarray, n_bits: int) -> np.ndarray:
        """Per-group non-coherent 4-FSK detection."""
        audio = ensure_real(audio, "audio")
        if n_bits % BITS_PER_SYMBOL != 0:
            raise ConfigurationError(
                f"n_bits must be a multiple of {BITS_PER_SYMBOL}"
            )
        n_symbols = n_bits // BITS_PER_SYMBOL
        sps = self.samples_per_symbol
        if audio.size < n_symbols * sps:
            raise DemodulationError(
                f"audio has {audio.size} samples, need {n_symbols * sps}"
            )
        symbols = np.empty(n_symbols, dtype=int)
        for i in range(n_symbols):
            block = audio[i * sps : (i + 1) * sps]
            symbol = 0
            for group in range(FDM_NUM_GROUPS):
                powers = goertzel_power_many(
                    block, self.group_tones_hz(group), self.sample_rate
                )
                idx = int(np.argmax(powers))
                shift = BITS_PER_GROUP * (FDM_NUM_GROUPS - 1 - group)
                symbol |= idx << shift
            symbols[i] = symbol
        return symbols_to_bits(symbols, BITS_PER_SYMBOL)[:n_bits]

"""Bit-array utilities: packing, unpacking, pseudo-random payloads."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rand import RngLike, as_generator


def random_bits(n: int, rng: RngLike = None) -> np.ndarray:
    """``n`` uniform random bits as an int array of 0/1."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    gen = as_generator(rng)
    return gen.integers(0, 2, size=n).astype(int)


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Unpack bytes MSB-first into a 0/1 int array."""
    if len(data) == 0:
        raise ConfigurationError("data must be non-empty")
    arr = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(arr).astype(int)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a 0/1 array (length a multiple of 8) MSB-first into bytes."""
    bits = np.asarray(bits, dtype=int)
    if bits.size == 0 or bits.size % 8 != 0:
        raise ConfigurationError(
            f"bit count must be a positive multiple of 8, got {bits.size}"
        )
    if np.any((bits != 0) & (bits != 1)):
        raise ConfigurationError("bits must be 0/1")
    return np.packbits(bits.astype(np.uint8)).tobytes()


def bits_to_symbols(bits: np.ndarray, bits_per_symbol: int) -> np.ndarray:
    """Group bits MSB-first into integer symbols.

    Pads with zeros to a whole number of symbols, matching a transmitter
    that flushes its symbol register.
    """
    bits = np.asarray(bits, dtype=int)
    if bits_per_symbol < 1:
        raise ConfigurationError("bits_per_symbol must be >= 1")
    if bits.size == 0:
        raise ConfigurationError("bits must be non-empty")
    remainder = bits.size % bits_per_symbol
    if remainder:
        bits = np.concatenate([bits, np.zeros(bits_per_symbol - remainder, dtype=int)])
    grouped = bits.reshape(-1, bits_per_symbol)
    weights = 1 << np.arange(bits_per_symbol - 1, -1, -1)
    return grouped @ weights


def symbols_to_bits(symbols: np.ndarray, bits_per_symbol: int) -> np.ndarray:
    """Inverse of :func:`bits_to_symbols` (MSB-first)."""
    symbols = np.asarray(symbols, dtype=int)
    if bits_per_symbol < 1:
        raise ConfigurationError("bits_per_symbol must be >= 1")
    if symbols.size == 0:
        raise ConfigurationError("symbols must be non-empty")
    if np.any(symbols < 0) or np.any(symbols >= (1 << bits_per_symbol)):
        raise ConfigurationError("symbol out of range for bits_per_symbol")
    shifts = np.arange(bits_per_symbol - 1, -1, -1)
    return ((symbols[:, None] >> shifts) & 1).reshape(-1).astype(int)

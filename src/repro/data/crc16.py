"""CRC-16/CCITT-FALSE for frame integrity.

The 100 bps link delivers notifications (Fig. 16) — a wrong character in
a discount code is worse than a lost frame, so frames carry a 16-bit CRC
the receiver verifies before surfacing the payload.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

_POLY = 0x1021
_INIT = 0xFFFF


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection)."""
    if not isinstance(data, (bytes, bytearray)):
        raise ConfigurationError("data must be bytes")
    register = _INIT
    for byte in data:
        register ^= byte << 8
        for _ in range(8):
            if register & 0x8000:
                register = ((register << 1) ^ _POLY) & 0xFFFF
            else:
                register = (register << 1) & 0xFFFF
    return register


def append_crc16(payload: bytes) -> bytes:
    """Payload followed by its big-endian CRC-16."""
    if not payload:
        raise ConfigurationError("payload must be non-empty")
    check = crc16(payload)
    return payload + bytes([(check >> 8) & 0xFF, check & 0xFF])


def verify_crc16(frame: bytes) -> bytes:
    """Strip and verify the trailing CRC-16.

    Returns:
        The payload without the checksum.

    Raises:
        ValueError: when the checksum does not match (callers treat this
            as a lost frame and wait for the retransmission).
    """
    if len(frame) < 3:
        raise ConfigurationError("frame too short to contain a CRC")
    payload, received = frame[:-2], frame[-2:]
    expected = crc16(payload)
    if received != bytes([(expected >> 8) & 0xFF, expected & 0xFF]):
        raise ValueError("CRC-16 mismatch")
    return payload

"""Bit-error-rate measurement."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def count_bit_errors(sent: np.ndarray, received: np.ndarray) -> int:
    """Number of positions where the two bit arrays disagree.

    Compares over the shorter length; missing tail bits (an early-
    terminated reception) count as errors.
    """
    sent = np.asarray(sent, dtype=int)
    received = np.asarray(received, dtype=int)
    if sent.size == 0:
        raise ConfigurationError("sent bits must be non-empty")
    n = min(sent.size, received.size)
    errors = int(np.sum(sent[:n] != received[:n]))
    return errors + (sent.size - n)


def bit_error_rate(sent: np.ndarray, received: np.ndarray) -> float:
    """Fraction of ``sent`` bits received incorrectly, in [0, 1]."""
    sent = np.asarray(sent, dtype=int)
    return count_bit_errors(sent, received) / sent.size

"""Slotted-ALOHA MAC for multiple backscatter devices on one FM band.

Section 8: devices far apart coexist spatially; nearby devices can either
use different ``fback`` values (different empty channels) or share a band
with "MAC protocols similar to the Aloha protocol". This simulator
quantifies that sharing: N devices each transmit in a slot with
probability p, a slot succeeds when exactly one device transmits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rand import RngLike, as_generator


@dataclass
class AlohaStats:
    """Results of a slotted-ALOHA run.

    Attributes:
        n_slots: simulated slots.
        successes: slots with exactly one transmitter.
        collisions: slots with two or more transmitters.
        idle: empty slots.
        throughput: successes / n_slots.
    """

    n_slots: int
    successes: int
    collisions: int
    idle: int

    @property
    def throughput(self) -> float:
        """Fraction of slots carrying a successful transmission."""
        return self.successes / self.n_slots if self.n_slots else 0.0


class SlottedAlohaSimulator:
    """Monte-Carlo slotted ALOHA.

    Args:
        n_devices: number of backscatter devices sharing the band.
        transmit_probability: per-slot transmission probability of each
            device.
    """

    def __init__(self, n_devices: int, transmit_probability: float) -> None:
        if n_devices < 1:
            raise ConfigurationError("n_devices must be >= 1")
        if not 0.0 <= transmit_probability <= 1.0:
            raise ConfigurationError("transmit_probability must be in [0, 1]")
        self.n_devices = n_devices
        self.transmit_probability = transmit_probability

    def run(self, n_slots: int, rng: RngLike = None) -> AlohaStats:
        """Simulate ``n_slots`` slots and tally outcomes."""
        if n_slots < 1:
            raise ConfigurationError("n_slots must be >= 1")
        gen = as_generator(rng)
        transmissions = (
            gen.random((n_slots, self.n_devices)) < self.transmit_probability
        )
        per_slot = transmissions.sum(axis=1)
        successes = int(np.sum(per_slot == 1))
        collisions = int(np.sum(per_slot > 1))
        idle = int(np.sum(per_slot == 0))
        return AlohaStats(n_slots, successes, collisions, idle)

    def frame_outcome(self, n_slots: int, rng: RngLike = None) -> np.ndarray:
        """One framed-ALOHA round: every device transmits exactly once.

        Each device picks one of ``n_slots`` slots uniformly at random
        (the framed variant deployments use for frame scheduling, as
        opposed to :meth:`run`'s per-slot Bernoulli transmissions); a
        device succeeds when no other device chose its slot.

        Returns:
            Boolean array of length ``n_devices``: per-device success.
        """
        if n_slots < 1:
            raise ConfigurationError("n_slots must be >= 1")
        gen = as_generator(rng)
        slots = gen.integers(0, n_slots, size=self.n_devices)
        counts = np.bincount(slots, minlength=n_slots)
        return counts[slots] == 1

    def framed_success_probability(self, n_slots: int) -> float:
        """Analytic per-device framed-ALOHA success: ((m-1)/m)^(N-1)."""
        if n_slots < 1:
            raise ConfigurationError("n_slots must be >= 1")
        return ((n_slots - 1) / n_slots) ** (self.n_devices - 1)

    def expected_throughput(self) -> float:
        """Analytic throughput: N p (1-p)^(N-1)."""
        p = self.transmit_probability
        return self.n_devices * p * (1.0 - p) ** (self.n_devices - 1)

    @staticmethod
    def optimal_probability(n_devices: int) -> float:
        """Throughput-maximizing per-device probability (1/N)."""
        if n_devices < 1:
            raise ConfigurationError("n_devices must be >= 1")
        return 1.0 / n_devices

"""Binary FSK: the paper's 100 bps low-rate mode.

Zero and one map to 8 and 12 kHz tones — chosen above most human speech
so news/talk programs interfere little (section 3.4) — at 100 symbols per
second. The receiver is non-coherent: it compares Goertzel powers at the
two frequencies and picks the larger, eliminating phase/amplitude
estimation and making the design resilient to channel changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.constants import (
    AUDIO_RATE_HZ,
    FSK_LOW_RATE_FREQS_HZ,
    FSK_LOW_RATE_SYMBOL_RATE,
)
from repro.dsp.goertzel import goertzel_power_many
from repro.dsp.windows import raised_cosine_edges
from repro.errors import ConfigurationError, DemodulationError
from repro.utils.validation import ensure_real


@dataclass
class BinaryFskModem:
    """2-FSK modulator/demodulator.

    Args:
        freq_zero_hz: tone for a 0 bit (8 kHz default).
        freq_one_hz: tone for a 1 bit (12 kHz default).
        symbol_rate: symbols (== bits) per second.
        sample_rate: audio sample rate.
        amplitude: tone amplitude in the device baseband.
        edge_fraction: fraction of the symbol ramped with raised-cosine
            shaping to limit keying splatter.
    """

    freq_zero_hz: float = FSK_LOW_RATE_FREQS_HZ[0]
    freq_one_hz: float = FSK_LOW_RATE_FREQS_HZ[1]
    symbol_rate: int = FSK_LOW_RATE_SYMBOL_RATE
    sample_rate: float = AUDIO_RATE_HZ
    amplitude: float = 1.0
    edge_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.freq_zero_hz == self.freq_one_hz:
            raise ConfigurationError("FSK tones must differ")
        for f in (self.freq_zero_hz, self.freq_one_hz):
            if not 0 < f < self.sample_rate / 2:
                raise ConfigurationError(f"tone {f} Hz outside (0, Nyquist)")
        if self.symbol_rate < 1:
            raise ConfigurationError("symbol_rate must be >= 1")
        if not 0.0 <= self.edge_fraction < 0.5:
            raise ConfigurationError("edge_fraction must be in [0, 0.5)")

    @property
    def samples_per_symbol(self) -> int:
        """Samples in one symbol period."""
        sps = self.sample_rate / self.symbol_rate
        if abs(sps - round(sps)) > 1e-9:
            raise ConfigurationError(
                f"sample_rate {self.sample_rate} must be an integer multiple "
                f"of symbol_rate {self.symbol_rate}"
            )
        return int(round(sps))

    @property
    def bit_rate(self) -> float:
        """Bits per second (equals the symbol rate for binary FSK)."""
        return float(self.symbol_rate)

    def modulate(self, bits: Sequence[int]) -> np.ndarray:
        """Render a bit sequence as an FSK audio waveform.

        Phase is continuous across symbol boundaries (CPFSK) — the
        hardware generates the drive by retuning one oscillator, so no
        phase jumps occur.
        """
        bits = np.asarray(list(bits), dtype=int)
        if bits.size == 0:
            raise ConfigurationError("bits must be non-empty")
        if np.any((bits != 0) & (bits != 1)):
            raise ConfigurationError("bits must be 0/1")
        sps = self.samples_per_symbol
        freqs = np.where(bits == 1, self.freq_one_hz, self.freq_zero_hz)
        inst_freq = np.repeat(freqs, sps)
        phase = 2.0 * np.pi * np.cumsum(inst_freq) / self.sample_rate
        waveform = self.amplitude * np.cos(phase)
        ramp = int(self.edge_fraction * sps)
        if ramp > 0:
            shaped = waveform.reshape(bits.size, sps) * raised_cosine_edges(sps, ramp)
            waveform = shaped.reshape(-1)
        return waveform

    def demodulate(self, audio: np.ndarray, n_bits: int) -> np.ndarray:
        """Non-coherent detection: larger Goertzel power wins.

        Args:
            audio: received audio, symbol-aligned at sample 0.
            n_bits: number of bits to detect.

        Raises:
            DemodulationError: if the audio is shorter than ``n_bits``
                symbols.
        """
        audio = ensure_real(audio, "audio")
        sps = self.samples_per_symbol
        if audio.size < n_bits * sps:
            raise DemodulationError(
                f"audio has {audio.size} samples, need {n_bits * sps}"
            )
        bits = np.empty(n_bits, dtype=int)
        freqs = (self.freq_zero_hz, self.freq_one_hz)
        for i in range(n_bits):
            block = audio[i * sps : (i + 1) * sps]
            powers = goertzel_power_many(block, freqs, self.sample_rate)
            bits[i] = int(np.argmax(powers))
        return bits

    def soft_powers(self, audio: np.ndarray, n_bits: int) -> np.ndarray:
        """Per-symbol (P_zero, P_one) tone powers, for MRC-style combining."""
        audio = ensure_real(audio, "audio")
        sps = self.samples_per_symbol
        if audio.size < n_bits * sps:
            raise DemodulationError("audio shorter than requested symbols")
        out = np.empty((n_bits, 2))
        freqs = (self.freq_zero_hz, self.freq_one_hz)
        for i in range(n_bits):
            block = audio[i * sps : (i + 1) * sps]
            out[i] = goertzel_power_many(block, freqs, self.sample_rate)
        return out

"""Error-correction coding (paper section 8: "we can use coding to improve
the FM backscatter range").

Two codes suited to a microwatt transmitter: repetition (decode by
majority) and Hamming(7,4) (single-error correction per block). Both add
negligible transmitter complexity — exactly the design point the paper's
discussion targets — and the coding ablation bench quantifies the range
they buy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

# Hamming(7,4) generator (systematic: data bits then parity) and
# parity-check matrices over GF(2).
_G = np.array(
    [
        [1, 0, 0, 0, 1, 1, 0],
        [0, 1, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=int,
)
_H = np.array(
    [
        [1, 1, 0, 1, 1, 0, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [0, 1, 1, 1, 0, 0, 1],
    ],
    dtype=int,
)
# Syndrome -> error position lookup: column i of H is the syndrome of a
# single error at position i.
_SYNDROME_TO_POSITION = {
    tuple(_H[:, i]): i for i in range(7)
}


def _check_bits(bits: np.ndarray, name: str) -> np.ndarray:
    bits = np.asarray(bits, dtype=int)
    if bits.size == 0:
        raise ConfigurationError(f"{name} must be non-empty")
    if np.any((bits != 0) & (bits != 1)):
        raise ConfigurationError(f"{name} must contain only 0/1")
    return bits


def hamming74_encode(bits: np.ndarray) -> np.ndarray:
    """Encode bits with Hamming(7,4); pads to a multiple of 4 with zeros."""
    bits = _check_bits(bits, "bits")
    if bits.size % 4:
        bits = np.concatenate([bits, np.zeros(4 - bits.size % 4, dtype=int)])
    blocks = bits.reshape(-1, 4)
    coded = (blocks @ _G) % 2
    return coded.reshape(-1)


def hamming74_decode(coded: np.ndarray) -> np.ndarray:
    """Decode Hamming(7,4), correcting one error per 7-bit block.

    Raises:
        ConfigurationError: if the input length is not a multiple of 7.
    """
    coded = _check_bits(coded, "coded")
    if coded.size % 7:
        raise ConfigurationError("coded length must be a multiple of 7")
    blocks = coded.reshape(-1, 7).copy()
    syndromes = (blocks @ _H.T) % 2
    for i, syndrome in enumerate(syndromes):
        key = tuple(int(s) for s in syndrome)
        if key in _SYNDROME_TO_POSITION:
            pos = _SYNDROME_TO_POSITION[key]
            blocks[i, pos] ^= 1
    return blocks[:, :4].reshape(-1)


def repetition_encode(bits: np.ndarray, factor: int = 3) -> np.ndarray:
    """Repeat each bit ``factor`` times (odd factor for clean majority)."""
    bits = _check_bits(bits, "bits")
    if factor < 1 or factor % 2 == 0:
        raise ConfigurationError("factor must be a positive odd integer")
    return np.repeat(bits, factor)


def repetition_decode(coded: np.ndarray, factor: int = 3) -> np.ndarray:
    """Majority-decode a repetition code."""
    coded = _check_bits(coded, "coded")
    if factor < 1 or factor % 2 == 0:
        raise ConfigurationError("factor must be a positive odd integer")
    if coded.size % factor:
        raise ConfigurationError("coded length must be a multiple of factor")
    blocks = coded.reshape(-1, factor)
    return (np.sum(blocks, axis=1) > factor // 2).astype(int)

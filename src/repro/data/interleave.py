"""Block interleaving.

Body-motion fades (Fig. 17b) and FM threshold clicks produce *burst*
errors, which defeat the single-error-correcting Hamming(7,4) code. A
block interleaver spreads a burst across many codewords so each sees at
most one error — the classic pairing, benchmarked in
``benchmarks/test_ablation_dco.py``'s companion coding ablation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def interleave(bits: np.ndarray, depth: int) -> np.ndarray:
    """Row-in, column-out block interleaving.

    Bits fill a ``depth x width`` matrix row by row and are read column
    by column. Pads with zeros to a full matrix; the same ``depth`` and
    original length must be supplied to :func:`deinterleave`.

    Args:
        bits: 0/1 array.
        depth: interleaver rows — the maximum burst length (in bits) that
            deinterleaving converts into isolated single errors.
    """
    bits = np.asarray(bits, dtype=int)
    if bits.size == 0:
        raise ConfigurationError("bits must be non-empty")
    if depth < 1:
        raise ConfigurationError("depth must be >= 1")
    if np.any((bits != 0) & (bits != 1)):
        raise ConfigurationError("bits must be 0/1")
    width = int(np.ceil(bits.size / depth))
    padded = np.concatenate([bits, np.zeros(depth * width - bits.size, dtype=int)])
    return padded.reshape(depth, width).T.reshape(-1)


def deinterleave(bits: np.ndarray, depth: int, original_length: int) -> np.ndarray:
    """Invert :func:`interleave`.

    Args:
        bits: interleaved 0/1 array (length ``depth * width``).
        depth: the interleaver depth used at the transmitter.
        original_length: pre-padding bit count to trim back to.
    """
    bits = np.asarray(bits, dtype=int)
    if depth < 1:
        raise ConfigurationError("depth must be >= 1")
    if bits.size % depth != 0:
        raise ConfigurationError(
            f"interleaved length {bits.size} is not a multiple of depth {depth}"
        )
    if not 0 < original_length <= bits.size:
        raise ConfigurationError("original_length out of range")
    width = bits.size // depth
    deinterleaved = bits.reshape(width, depth).T.reshape(-1)
    return deinterleaved[:original_length]

"""Packet framing: preamble synchronization and length-prefixed payloads.

The experiment harness keeps signals sample-aligned, but real receptions
(the talking-poster app, the cooperative receiver) need to *find* the
transmission. Frames carry a fixed pseudo-noise bit preamble; the receiver
correlates the demodulated soft powers against it to locate symbol 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.ber import count_bit_errors
from repro.data.bits import bits_to_bytes, bytes_to_bits
from repro.errors import ConfigurationError, DemodulationError
from repro.utils.validation import ensure_real

# 32-bit PN preamble (fixed, good autocorrelation: balanced, low runs).
PREAMBLE_BITS = np.array(
    [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1,
     0, 1, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 1, 0, 1, 1], dtype=int
)

LENGTH_FIELD_BITS = 16
"""Payload length prefix, in bits (counts payload bytes)."""


@dataclass
class FrameSyncResult:
    """Outcome of preamble search.

    Attributes:
        sample_offset: sample index where the frame starts.
        preamble_errors: bit errors in the detected preamble.
        payload: decoded payload bytes.
    """

    sample_offset: int
    preamble_errors: int
    payload: bytes


class FrameCodec:
    """Wrap payload bytes in a preamble + length + payload frame.

    Args:
        modem: any modem object exposing ``modulate(bits)``,
            ``demodulate(audio, n_bits)`` and ``samples_per_symbol`` /
            ``bit_rate`` (both library modems qualify).
        max_preamble_errors: tolerated preamble bit errors during search.
    """

    def __init__(self, modem, max_preamble_errors: int = 4) -> None:
        if max_preamble_errors < 0:
            raise ConfigurationError("max_preamble_errors must be >= 0")
        self.modem = modem
        self.max_preamble_errors = max_preamble_errors

    def _bits_per_symbol(self) -> int:
        return max(int(round(self.modem.bit_rate / self.modem.symbol_rate)), 1)

    def encode(self, payload: bytes) -> np.ndarray:
        """Build the frame waveform for a payload."""
        if not payload:
            raise ConfigurationError("payload must be non-empty")
        if len(payload) >= (1 << LENGTH_FIELD_BITS):
            raise ConfigurationError("payload too long for the length field")
        length_bits = np.array(
            [(len(payload) >> (LENGTH_FIELD_BITS - 1 - i)) & 1 for i in range(LENGTH_FIELD_BITS)],
            dtype=int,
        )
        bits = np.concatenate([PREAMBLE_BITS, length_bits, bytes_to_bits(payload)])
        # Pad to a whole symbol for multi-bit-per-symbol modems.
        bps = self._bits_per_symbol()
        if bits.size % bps:
            bits = np.concatenate([bits, np.zeros(bps - bits.size % bps, dtype=int)])
        return self.modem.modulate(bits)

    def frame_bits(self, payload: bytes) -> int:
        """Total bits in the frame for a payload (after padding)."""
        raw = PREAMBLE_BITS.size + LENGTH_FIELD_BITS + 8 * len(payload)
        bps = self._bits_per_symbol()
        return raw + (-raw % bps)

    def decode(self, audio: np.ndarray, search: bool = True) -> FrameSyncResult:
        """Locate and decode one frame from received audio.

        Args:
            audio: received audio containing (at least) one frame.
            search: slide the demodulator over candidate sample offsets to
                find the preamble; with False the frame must start at
                sample 0.

        Raises:
            DemodulationError: when no preamble is found within the
                error budget, or the length field is implausible.
        """
        audio = ensure_real(audio, "audio")
        sps = self.modem.samples_per_symbol
        bps = self._bits_per_symbol()
        header_symbols = int(np.ceil((PREAMBLE_BITS.size + LENGTH_FIELD_BITS) / bps))

        offsets = range(0, max(audio.size - header_symbols * sps, 1), max(sps // 8, 1)) if search else (0,)
        best: Optional[Tuple[int, int]] = None
        for offset in offsets:
            try:
                header = self.modem.demodulate(
                    audio[offset:], header_symbols * bps
                )
            except DemodulationError:
                break
            errors = count_bit_errors(PREAMBLE_BITS, header[: PREAMBLE_BITS.size])
            if best is None or errors < best[1]:
                best = (offset, errors)
            if errors == 0:
                break
        if best is None or best[1] > self.max_preamble_errors:
            raise DemodulationError("preamble not found")
        offset, errors = best

        header = self.modem.demodulate(audio[offset:], header_symbols * bps)
        length_bits = header[PREAMBLE_BITS.size : PREAMBLE_BITS.size + LENGTH_FIELD_BITS]
        length = int("".join(str(int(b)) for b in length_bits), 2)
        if length == 0 or length > 4096:
            raise DemodulationError(f"implausible payload length {length}")

        total_bits = PREAMBLE_BITS.size + LENGTH_FIELD_BITS + 8 * length
        total_bits += -total_bits % bps
        frame_bits = self.modem.demodulate(audio[offset:], total_bits)
        payload_bits = frame_bits[
            PREAMBLE_BITS.size + LENGTH_FIELD_BITS : PREAMBLE_BITS.size + LENGTH_FIELD_BITS + 8 * length
        ]
        return FrameSyncResult(
            sample_offset=offset,
            preamble_errors=errors,
            payload=bits_to_bytes(payload_bits),
        )

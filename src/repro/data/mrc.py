"""Maximal-ratio combining over repeated transmissions.

Section 3.4: the ambient program audio acts as noise that is uncorrelated
across repeated transmissions of the same data, so summing N received raw
signals raises the effective SNR by up to N. (True MRC weights by per-
branch SNR; with equal-power branches — same link, repeated in time — the
equal-weight sum the paper describes is optimal, and we implement both.)
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import ensure_real


def mrc_combine(
    receptions: Sequence[np.ndarray],
    snrs_db: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Combine repeated receptions of the same transmission.

    Args:
        receptions: list of received audio arrays (trimmed to the shortest).
        snrs_db: optional per-branch SNR estimates; when given, branches
            are weighted proportionally to their linear SNR (true MRC).
            When omitted, equal weights are used (the paper's scheme).

    Returns:
        The combined waveform, scaled by 1/N so amplitudes stay comparable
        to a single reception.

    Raises:
        ConfigurationError: on empty input or mismatched SNR list.
        SignalError: if any reception is not a real 1-D signal.
    """
    receptions = list(receptions)
    if not receptions:
        raise ConfigurationError("receptions must be non-empty")
    arrays = [ensure_real(r, f"receptions[{i}]") for i, r in enumerate(receptions)]
    n = min(a.size for a in arrays)
    if n == 0:
        raise SignalError("receptions contain an empty signal")

    if snrs_db is None:
        weights = np.ones(len(arrays))
    else:
        snrs = list(snrs_db)
        if len(snrs) != len(arrays):
            raise ConfigurationError("snrs_db length must match receptions")
        weights = np.asarray([10.0 ** (s / 10.0) for s in snrs], dtype=float)
        if np.any(weights <= 0):
            raise ConfigurationError("SNR weights must be positive")

    weights = weights / np.sum(weights)
    combined = np.zeros(n)
    for weight, arr in zip(weights, arrays):
        combined += weight * arr[:n]
    return combined


def expected_snr_gain_db(n_branches: int) -> float:
    """Ideal combining gain: up to N-fold SNR (10 log10 N)."""
    if n_branches < 1:
        raise ConfigurationError("n_branches must be >= 1")
    return float(10.0 * np.log10(n_branches))

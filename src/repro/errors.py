"""Exception hierarchy for the FM backscatter reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class SignalError(ReproError):
    """An input signal does not satisfy the requirements of an operation.

    Examples: wrong dimensionality, mismatched sample rates, empty input
    where a non-empty waveform is required.
    """


class SampleRateError(SignalError):
    """Two signals (or a signal and a component) disagree on sample rate."""


class DemodulationError(ReproError):
    """The receiver could not extract the requested information.

    Raised for example when a frame preamble cannot be located, or when
    stereo decoding is requested but no 19 kHz pilot is present.
    """


class SynchronizationError(DemodulationError):
    """Cross-correlation alignment between two receivers failed."""


class LinkBudgetError(ReproError):
    """A link-budget computation received physically meaningless inputs."""


class LauncherError(ReproError):
    """The distributed sweep launcher could not complete a shard.

    Raised when a shard keeps failing (worker crash or an exception in the
    measure) past the launcher's retry budget. The engine's seed
    discipline makes a retried shard bit-identical to the original, so a
    shard that fails identically on every attempt is a deterministic bug,
    not transient bad luck — retrying further would loop forever.
    """

"""Exception hierarchy for the FM backscatter reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class SignalError(ReproError):
    """An input signal does not satisfy the requirements of an operation.

    Examples: wrong dimensionality, mismatched sample rates, empty input
    where a non-empty waveform is required.
    """


class SampleRateError(SignalError):
    """Two signals (or a signal and a component) disagree on sample rate."""


class DemodulationError(ReproError):
    """The receiver could not extract the requested information.

    Raised for example when a frame preamble cannot be located, or when
    stereo decoding is requested but no 19 kHz pilot is present.
    """


class SynchronizationError(DemodulationError):
    """Cross-correlation alignment between two receivers failed."""


class LinkBudgetError(ReproError):
    """A link-budget computation received physically meaningless inputs."""


class LauncherError(ReproError):
    """The distributed sweep launcher could not complete a shard.

    Raised when a shard keeps failing (worker crash or an exception in the
    measure) past the launcher's retry budget *and* the in-process
    degradation pass could not salvage the range either. The engine's
    seed discipline makes a retried shard bit-identical to the original,
    so a shard that fails identically on every attempt is a deterministic
    bug, not transient bad luck — retrying further would loop forever.

    Beyond the message, the exception carries structured provenance so a
    caller (or an operator reading a service log) can pinpoint the
    failing work and salvage what completed:

    Attributes:
        scenario: name of the scenario whose launch failed.
        shard_id: id of the shard that exhausted its retries.
        point_range: the ``(start, stop)`` half-open global point range
            of that shard.
        attempts: how many times the range was attempted before giving
            up (re-queues + the final in-process salvage).
        exit_codes: exit codes of every worker death observed during the
            launch (empty when workers failed by reporting measure
            errors rather than dying).
        partial_result: a *partial-grid*
            :class:`~repro.engine.results.SweepResult` holding every
            point that did complete (merged via
            ``SweepResult.merge(..., partial=True)``), or ``None`` when
            nothing completed. Full-grid accessors (``series`` /
            ``grid`` / ``value_at``) refuse it; iterate it or call
            ``to_table()`` to salvage the covered points.
    """

    def __init__(
        self,
        message: str,
        *,
        scenario: str = "",
        shard_id: int = -1,
        point_range: tuple = (-1, -1),
        attempts: int = 0,
        exit_codes: tuple = (),
        partial_result: object = None,
    ) -> None:
        super().__init__(message)
        self.scenario = scenario
        self.shard_id = shard_id
        self.point_range = tuple(point_range)
        self.attempts = attempts
        self.exit_codes = tuple(exit_codes)
        self.partial_result = partial_result


class JournalError(ReproError):
    """A job journal could not be read back.

    Raised on structurally corrupt journals: a record of an unknown
    version, or an undecodable line *before* the final one (a torn final
    line is the expected crash signature and is tolerated silently).
    """

"""Perceptual speech-quality metric on the PESQ 1-4.5 scale.

The paper scores backscattered audio with ITU-T P.862 PESQ (section 5.3).
Full P.862 conformance is out of scope for this reproduction (DESIGN.md
section 2); this module implements the pipeline's load-bearing stages —
level alignment, time alignment, Bark-band loudness with an absolute
hearing threshold, masked disturbance aggregation, and a logistic mapping
onto [1.0, 4.5] — so the score is a *monotone* function of perceptual
degradation, which is what the paper's comparisons (overlay ~= 2,
cooperative ~= 4) rely on.

Calibration anchors (see tests/audio/test_pesq.py): identical signals
score 4.5; speech over equal-level competing speech (the overlay
situation) scores ~2; speech buried 10 dB under interference approaches
the 1.0 floor; light wideband noise (40 dB SNR) stays near 4.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.windows import hann_window
from repro.errors import SignalError
from repro.utils.validation import ensure_positive, ensure_real

_SCORE_MIN = 1.0
_SCORE_MAX = 4.5

_N_BARK_BANDS = 24
_HEARING_THRESHOLD_FRACTION = 1e-3
"""Per-band hearing threshold as a fraction of the mean band power —
models playback at a comfortable level where -30 dB components are barely
audible."""

_MASK_FRACTION = 0.25
"""Center-clipping deadzone: differences below this fraction of the local
loudness are masked (inaudible)."""

_LOGISTIC_MIDPOINT_DB = 23.0
_LOGISTIC_SLOPE_DB = 9.5
"""Perceptual-SNR -> score mapping, fitted to the calibration anchors."""


def _hz_to_bark(freq_hz: np.ndarray) -> np.ndarray:
    """Traunmuller's Hz -> Bark approximation."""
    return 26.81 * freq_hz / (1960.0 + freq_hz) - 0.53


def _apply_lag(degraded: np.ndarray, lag: int) -> np.ndarray:
    if lag > 0:
        return np.concatenate([degraded[lag:], np.zeros(lag)])
    if lag < 0:
        return np.concatenate([np.zeros(-lag), degraded[:lag]])
    return degraded


def _align(reference: np.ndarray, degraded: np.ndarray, max_lag: int) -> np.ndarray:
    """Shift ``degraded`` to best match ``reference``.

    Two stages: a decimated cross-correlation finds the coarse lag, then a
    sample-exact search over the remaining window removes the residual —
    a misalignment of even ten samples reads as high-frequency
    disturbance in the Bark domain and would wrongly depress the score.
    """
    if max_lag <= 0:
        return degraded
    step = max(max_lag // 2048, 1)
    ref_d = reference[::step]
    deg_d = degraded[::step]
    corr = np.correlate(deg_d, ref_d, mode="full")
    lag_d = int(np.argmax(np.abs(corr))) - (len(ref_d) - 1)
    coarse = lag_d * step

    # Fine search: +/- step samples around the coarse estimate using a
    # short representative segment.
    seg_start = len(reference) // 4
    seg = slice(seg_start, min(seg_start + 16_384, len(reference)))
    best_lag, best_score = coarse, -np.inf
    for lag in range(coarse - step, coarse + step + 1):
        candidate = _apply_lag(degraded, lag)
        score = float(np.dot(candidate[seg], reference[seg]))
        if score > best_score:
            best_score, best_lag = score, lag
    return _apply_lag(degraded, best_lag), best_lag


def _bark_loudness(frames: np.ndarray, sample_rate: float) -> np.ndarray:
    """Per-frame Bark-band loudness with hearing threshold.

    Band power is compressed with Zwicker's 0.23 exponent *relative to a
    hearing threshold*: ``((p + p0)/p0)^0.23 - 1``. The subtraction keeps
    barely-audible components (noise 30+ dB down) from inflating the
    loudness difference the way raw power-law compression would.
    """
    n_fft = frames.shape[1]
    freqs = np.fft.rfftfreq(n_fft, 1.0 / sample_rate)
    spectra = np.abs(np.fft.rfft(frames, axis=1)) ** 2
    bark = _hz_to_bark(freqs)
    edges = np.linspace(
        _hz_to_bark(np.array([100.0]))[0],
        _hz_to_bark(np.array([15000.0]))[0],
        _N_BARK_BANDS + 1,
    )
    bands = np.zeros((frames.shape[0], _N_BARK_BANDS))
    for b in range(_N_BARK_BANDS):
        mask = (bark >= edges[b]) & (bark < edges[b + 1])
        if np.any(mask):
            bands[:, b] = np.sum(spectra[:, mask], axis=1)
    nonzero = bands[bands > 0]
    p0 = _HEARING_THRESHOLD_FRACTION * float(np.mean(nonzero)) if nonzero.size else 1e-30
    return np.maximum(((bands + p0) / p0) ** 0.23 - 1.0, 0.0)


def mos_lqo(score) -> np.ndarray | float:
    """Map a PESQ-scale score onto the normalized MOS-LQO axis [0, 1].

    The raw :func:`pesq_like` scale spans [1.0, 4.5]; tolerance
    comparisons (and the paper's cross-figure quality deltas) are easier
    to reason about on a unit scale where 0 is the floor and 1 is a
    perfect score. Values outside the PESQ range — which can only come
    from a corrupted fixture, never from :func:`pesq_like` itself — are
    clipped rather than rejected so the mapping is total.

    Args:
        score: scalar or array of scores on the [1.0, 4.5] PESQ scale.

    Returns:
        ``(score - 1.0) / 3.5`` clipped to [0, 1]; a float for scalar
        input, an ndarray otherwise.
    """
    scaled = np.clip(
        (np.asarray(score, dtype=float) - _SCORE_MIN) / (_SCORE_MAX - _SCORE_MIN),
        0.0,
        1.0,
    )
    return float(scaled) if np.isscalar(score) or np.ndim(score) == 0 else scaled


def pesq_like(
    reference: np.ndarray,
    degraded: np.ndarray,
    sample_rate: float,
    frame_seconds: float = 0.032,
) -> float:
    """Perceptual quality of ``degraded`` speech against ``reference``.

    Args:
        reference: the clean source audio (what the backscatter device
            intended to send).
        degraded: the audio the listener actually hears.
        sample_rate: sample rate of both signals.
        frame_seconds: analysis frame length (~32 ms like P.862).

    Returns:
        Score in [1.0, 4.5]; identical signals score 4.5 and heavily
        buried speech approaches 1.0.

    Raises:
        SignalError: on silent reference or inputs too short for framing.
    """
    reference = ensure_real(reference, "reference")
    degraded = ensure_real(degraded, "degraded")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    n = min(reference.size, degraded.size)
    if n < int(4 * frame_seconds * sample_rate):
        raise SignalError("signals too short for perceptual scoring")
    reference = reference[:n].copy()
    degraded = degraded[:n].copy()

    ref_rms = float(np.sqrt(np.mean(reference**2)))
    deg_rms = float(np.sqrt(np.mean(degraded**2)))
    if ref_rms <= 0:
        raise SignalError("reference signal is silent")
    if deg_rms <= 0:
        return _SCORE_MIN
    reference /= ref_rms
    degraded /= deg_rms

    degraded, lag = _align(reference, degraded, max_lag=int(0.5 * sample_rate))
    # Shifting invalidated |lag| samples at one end (zero padding); exclude
    # them so the metric scores only genuinely compared audio.
    if lag > 0:
        reference, degraded = reference[: n - lag], degraded[: n - lag]
    elif lag < 0:
        reference, degraded = reference[-lag:], degraded[-lag:]
    n = reference.size

    frame = int(frame_seconds * sample_rate)
    n_frames = n // frame
    window = hann_window(frame)
    ref_frames = reference[: n_frames * frame].reshape(n_frames, frame) * window
    deg_frames = degraded[: n_frames * frame].reshape(n_frames, frame) * window

    ref_loud = _bark_loudness(ref_frames, sample_rate)
    deg_loud = _bark_loudness(deg_frames, sample_rate)

    # Keep only frames where the reference is active (speech frames).
    activity = np.sum(ref_loud, axis=1)
    positive = activity[activity > 0]
    if positive.size == 0:
        raise SignalError("reference contains no active frames")
    active = activity > 0.25 * np.median(positive)
    ref_loud = ref_loud[active]
    deg_loud = deg_loud[active]

    # Masked disturbance: absolute loudness difference with a deadzone of
    # a fraction of the local loudness (P.862's center clipping).
    mask = _MASK_FRACTION * np.minimum(ref_loud, deg_loud)
    disturbance = np.maximum(np.abs(deg_loud - ref_loud) - mask, 0.0)

    ref_level = float(np.mean(np.linalg.norm(ref_loud, axis=1))) + 1e-12
    d_norm = float(np.mean(np.linalg.norm(disturbance, axis=1))) / ref_level
    if d_norm <= 0:
        return _SCORE_MAX

    perceptual_snr_db = -20.0 * np.log10(d_norm)
    raw = _SCORE_MIN + (_SCORE_MAX - _SCORE_MIN) / (
        1.0 + np.exp(-(perceptual_snr_db - _LOGISTIC_MIDPOINT_DB) / _LOGISTIC_SLOPE_DB)
    )
    return float(np.clip(raw, _SCORE_MIN, _SCORE_MAX))

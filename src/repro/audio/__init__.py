"""Audio-domain signal generation, quality metrics, and I/O.

Program-material generators stand in for the paper's recorded station
clips (news / mixed / pop / rock), and :mod:`repro.audio.pesq` provides the
perceptual quality score used by the Figs. 11-14 reproductions.
"""

from repro.audio.tones import multitone, silence, sweep, tone
from repro.audio.speech import speech_like
from repro.audio.music import music_like, program_material
from repro.audio.metrics import rms, segmental_snr_db, snr_db
from repro.audio.pesq import pesq_like
from repro.audio.imperceptible import embed_imperceptible
from repro.audio.io import read_wav, write_wav

__all__ = [
    "embed_imperceptible",
    "multitone",
    "music_like",
    "pesq_like",
    "program_material",
    "read_wav",
    "rms",
    "segmental_snr_db",
    "silence",
    "snr_db",
    "speech_like",
    "sweep",
    "tone",
    "write_wav",
]

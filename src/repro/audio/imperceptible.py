"""Imperceptible data embedding in audible audio (paper section 8).

The discussion cites recent work on hiding data in audible audio; the
backscatter twist is trivial to support: the device already *adds* its
waveform to the program audio, so keeping the FSK tones a fixed margin
below the local program level makes the data transmission inaudible while
the Goertzel detector — which looks only at narrow tone bins where speech
and music carry little energy — still decodes it.

The perceptual cost is measured with the library's own PESQ-class metric.
The trade-off is program-dependent: over *speech* programs (news/talk —
the station type the paper's deployments use) the default -40 dB level is
near-transparent (PESQ ~3.9) with low BER, because speech carries almost
no energy at the 8/12 kHz tone bins; over *music*, the percussion's
high-frequency energy forces a louder (audible) embedding. Real
imperceptible-audio schemes add psychoacoustic masking models to win back
that margin; this module implements the simple level-tracking variant.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import ensure_real

DEFAULT_EMBED_DB = -40.0
"""Data level relative to the local program level. Near-transparent over
speech programs; music needs a louder, audible embedding."""


def embed_imperceptible(
    program_audio: np.ndarray,
    data_waveform: np.ndarray,
    embed_db: float = DEFAULT_EMBED_DB,
    window_seconds: float = 0.25,
    sample_rate: float = 48_000.0,
) -> np.ndarray:
    """Mix a data waveform under a program at a fixed perceptual margin.

    The data is scaled to track the program's *local* RMS (computed over
    ``window_seconds`` blocks) so quiet passages do not expose the tones
    and loud passages do not bury them.

    Args:
        program_audio: the audible program (speech/music).
        data_waveform: modem output (e.g. :class:`BinaryFskModem`), same
            sample rate, trimmed/padded to the program length.
        embed_db: data level relative to local program level (negative).
        window_seconds: local-level estimation window.
        sample_rate: common sample rate.

    Returns:
        The composite audio, same length as ``program_audio``.
    """
    program_audio = ensure_real(program_audio, "program_audio")
    data_waveform = ensure_real(data_waveform, "data_waveform")
    if embed_db >= 0:
        raise ConfigurationError("embed_db must be negative (below the program)")
    n = program_audio.size
    if data_waveform.size < n:
        data_waveform = np.concatenate(
            [data_waveform, np.zeros(n - data_waveform.size)]
        )
    data_waveform = data_waveform[:n]

    block = max(int(window_seconds * sample_rate), 16)
    local_rms = np.empty(n)
    floor = float(np.sqrt(np.mean(program_audio**2))) * 0.1 + 1e-9
    for start in range(0, n, block):
        seg = slice(start, min(start + block, n))
        local_rms[seg] = max(float(np.sqrt(np.mean(program_audio[seg] ** 2))), floor)

    data_rms = float(np.sqrt(np.mean(data_waveform**2)))
    if data_rms <= 0:
        raise SignalError("data waveform is silent")
    gain_track = local_rms * 10.0 ** (embed_db / 20.0) / data_rms
    return program_audio + gain_track * data_waveform


def embedding_level_track(
    composite: np.ndarray, program_audio: np.ndarray
) -> np.ndarray:
    """The residual (data) component of a composite, for diagnostics."""
    composite = ensure_real(composite, "composite")
    program_audio = ensure_real(program_audio, "program_audio")
    n = min(composite.size, program_audio.size)
    return composite[:n] - program_audio[:n]

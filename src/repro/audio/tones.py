"""Deterministic test-tone generators.

These produce the single tones and sweeps used by the Fig. 6 / Fig. 7
micro-benchmarks and by unit tests throughout the library.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive


def _num_samples(duration_s: float, sample_rate: float) -> int:
    duration_s = ensure_positive(duration_s, "duration_s")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    n = int(round(duration_s * sample_rate))
    if n < 1:
        raise ConfigurationError("duration too short for one sample")
    return n


def tone(
    freq_hz: float,
    duration_s: float,
    sample_rate: float,
    amplitude: float = 1.0,
    phase_rad: float = 0.0,
) -> np.ndarray:
    """A cosine tone.

    Args:
        freq_hz: tone frequency (must be below Nyquist).
        duration_s: duration in seconds.
        sample_rate: sample rate in Hz.
        amplitude: peak amplitude.
        phase_rad: starting phase.
    """
    n = _num_samples(duration_s, sample_rate)
    if not 0 <= freq_hz < sample_rate / 2:
        raise ConfigurationError(
            f"freq_hz must be in [0, Nyquist={sample_rate / 2}), got {freq_hz}"
        )
    t = np.arange(n) / sample_rate
    return amplitude * np.cos(2.0 * np.pi * freq_hz * t + phase_rad)


def multitone(
    freqs_hz: Sequence[float],
    duration_s: float,
    sample_rate: float,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Sum of equal-amplitude cosines, peak-normalized to ``amplitude``."""
    freqs = list(freqs_hz)
    if not freqs:
        raise ConfigurationError("freqs_hz must contain at least one frequency")
    total = sum(tone(f, duration_s, sample_rate) for f in freqs)
    peak = float(np.max(np.abs(total)))
    if peak == 0:
        return total
    return amplitude * total / peak


def sweep(
    start_hz: float,
    stop_hz: float,
    duration_s: float,
    sample_rate: float,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Linear chirp from ``start_hz`` to ``stop_hz``."""
    n = _num_samples(duration_s, sample_rate)
    for name, f in (("start_hz", start_hz), ("stop_hz", stop_hz)):
        if not 0 <= f < sample_rate / 2:
            raise ConfigurationError(f"{name} must be in [0, Nyquist), got {f}")
    t = np.arange(n) / sample_rate
    rate = (stop_hz - start_hz) / (duration_s)
    phase = 2.0 * np.pi * (start_hz * t + 0.5 * rate * t**2)
    return amplitude * np.cos(phase)


def silence(duration_s: float, sample_rate: float) -> np.ndarray:
    """All-zero signal (the ``FMaudio = 0`` station of section 5.1)."""
    return np.zeros(_num_samples(duration_s, sample_rate))

"""Minimal WAV file I/O built on the stdlib ``wave`` module.

Examples write received audio to disk so a human can listen to the overlay
result; no external audio dependency is needed for 16-bit PCM.
"""

from __future__ import annotations

import wave
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.errors import SignalError
from repro.utils.validation import ensure_real


def write_wav(path: Union[str, Path], signal: np.ndarray, sample_rate: int) -> None:
    """Write a mono float signal to a 16-bit PCM WAV file.

    The signal is peak-normalized only if it exceeds full scale, so
    deliberate level differences are preserved.

    Args:
        path: output file path.
        signal: real 1-D audio in roughly [-1, 1].
        sample_rate: sample rate in Hz (integer).
    """
    signal = ensure_real(signal, "signal")
    peak = float(np.max(np.abs(signal)))
    if peak > 1.0:
        signal = signal / peak
    samples = np.clip(np.round(signal * 32767.0), -32768, 32767).astype(np.int16)
    with wave.open(str(path), "wb") as fh:
        fh.setnchannels(1)
        fh.setsampwidth(2)
        fh.setframerate(int(sample_rate))
        fh.writeframes(samples.tobytes())


def read_wav(path: Union[str, Path]) -> Tuple[np.ndarray, int]:
    """Read a mono or stereo 16-bit PCM WAV file.

    Returns:
        ``(signal, sample_rate)``; stereo files are returned with shape
        ``(n, 2)`` scaled to [-1, 1].

    Raises:
        SignalError: for sample widths other than 16-bit PCM.
    """
    with wave.open(str(path), "rb") as fh:
        if fh.getsampwidth() != 2:
            raise SignalError("only 16-bit PCM WAV files are supported")
        n_channels = fh.getnchannels()
        rate = fh.getframerate()
        raw = fh.readframes(fh.getnframes())
    data = np.frombuffer(raw, dtype=np.int16).astype(float) / 32767.0
    if n_channels > 1:
        data = data.reshape(-1, n_channels)
    return data, rate

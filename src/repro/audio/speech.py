"""Synthetic speech-like program material.

The paper's experiments replay 8-second clips recorded from local news and
talk stations. We cannot ship those recordings, so this module synthesizes
a signal with the statistical properties the experiments depend on:

* energy concentrated below ~4 kHz (so the 8/12 kHz FSK tones of the
  100 bps mode sit above it, as section 3.4 intends);
* a pitch harmonic stack with formant-like spectral envelope;
* syllabic amplitude modulation (~4 Hz) with pauses, so the interference
  is nonstationary like real speech.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import design_lowpass_fir, filter_signal
from repro.utils.rand import RngLike, as_generator
from repro.utils.validation import ensure_positive


def speech_like(
    duration_s: float,
    sample_rate: float,
    rng: RngLike = None,
    pitch_hz: float = 120.0,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Generate a speech-like waveform.

    Args:
        duration_s: length in seconds.
        sample_rate: sample rate in Hz.
        rng: seed or Generator for the stochastic components.
        pitch_hz: fundamental of the harmonic stack (male ~120 Hz).
        amplitude: peak amplitude of the output.

    Returns:
        Real array, peak-normalized to ``amplitude``.
    """
    duration_s = ensure_positive(duration_s, "duration_s")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    gen = as_generator(rng)
    n = int(round(duration_s * sample_rate))
    t = np.arange(n) / sample_rate

    # Harmonic stack with a formant-like 1/k^0.8 envelope plus slow vibrato.
    vibrato = 1.0 + 0.02 * np.sin(2.0 * np.pi * 5.0 * t + gen.uniform(0, 2 * np.pi))
    voiced = np.zeros(n)
    max_harmonic = int(min(3800.0, sample_rate / 2 - 1) // pitch_hz)
    for k in range(1, max_harmonic + 1):
        phase = gen.uniform(0, 2 * np.pi)
        weight = k ** (-0.8)
        # Formant emphasis near 500 Hz and 1500 Hz.
        f = k * pitch_hz
        formant = 1.0 + 1.5 * np.exp(-((f - 500.0) ** 2) / (2 * 200.0**2))
        formant += 1.0 * np.exp(-((f - 1500.0) ** 2) / (2 * 300.0**2))
        voiced += weight * formant * np.cos(2.0 * np.pi * f * vibrato * t + phase)

    # Unvoiced component: band-limited noise (fricative energy 2-4 kHz).
    noise = gen.standard_normal(n)
    cutoff = min(4000.0, sample_rate / 2 * 0.9)
    noise = filter_signal(design_lowpass_fir(cutoff, sample_rate, 129), noise)

    # Syllabic envelope: rectified low-pass noise at ~4 Hz with pauses.
    env_noise = gen.standard_normal(n)
    env_taps = design_lowpass_fir(4.0, sample_rate, 513)
    envelope = filter_signal(env_taps, env_noise)
    envelope = np.clip(envelope / (np.std(envelope) + 1e-12), 0.0, None)

    speech = envelope * (voiced + 0.15 * np.std(voiced) / (np.std(noise) + 1e-12) * noise)
    peak = float(np.max(np.abs(speech)))
    if peak == 0:
        return speech
    return amplitude * speech / peak

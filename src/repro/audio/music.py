"""Synthetic music-like program material and the four station programs.

Section 5.2 of the paper replays clips from four local stations — news,
mixed, pop music, rock music — to measure BER against different background
audio. :func:`program_material` synthesizes stand-ins for each: music
programs fill the whole 30 Hz-15 kHz band and use the stereo stream
heavily; news is speech-dominated, nearly identical in L and R.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.audio.speech import speech_like
from repro.dsp.filters import design_lowpass_fir, filter_signal
from repro.errors import ConfigurationError
from repro.utils.rand import RngLike, as_generator, child_generator
from repro.utils.validation import ensure_positive

PROGRAM_TYPES = ("news", "mixed", "pop", "rock")
"""The four program categories of the paper's Figs. 5 and 8."""

# Equal-tempered scale degrees used to synthesize chord progressions.
_PENTATONIC = np.array([0, 2, 4, 7, 9])


def music_like(
    duration_s: float,
    sample_rate: float,
    rng: RngLike = None,
    tempo_bpm: float = 110.0,
    brightness: float = 1.0,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Generate a music-like waveform: chords + beat + wideband sparkle.

    Args:
        duration_s: clip length in seconds.
        sample_rate: sample rate in Hz.
        rng: seed or Generator.
        tempo_bpm: beat rate.
        brightness: scales high-frequency content (rock > pop).
        amplitude: output peak amplitude.
    """
    duration_s = ensure_positive(duration_s, "duration_s")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    gen = as_generator(rng)
    n = int(round(duration_s * sample_rate))
    t = np.arange(n) / sample_rate

    beat_period = 60.0 / tempo_bpm
    beat_phase = (t % beat_period) / beat_period
    beat_env = np.exp(-6.0 * beat_phase)

    # Chord pad: three pentatonic notes per bar, re-rolled each bar.
    bar_len = int(round(4 * beat_period * sample_rate))
    music = np.zeros(n)
    root_hz = 220.0 * 2.0 ** (gen.integers(-3, 4) / 12.0)
    for bar_start in range(0, n, max(bar_len, 1)):
        bar = slice(bar_start, min(bar_start + bar_len, n))
        degrees = gen.choice(_PENTATONIC, size=3, replace=False)
        tt = t[bar]
        for degree in degrees:
            f = root_hz * 2.0 ** (float(degree) / 12.0)
            for harmonic, weight in ((1, 1.0), (2, 0.5), (3, 0.3), (4, 0.2 * brightness)):
                fh = f * harmonic
                if fh >= sample_rate / 2:
                    continue
                music[bar] += weight * np.cos(
                    2.0 * np.pi * fh * tt + gen.uniform(0, 2 * np.pi)
                )

    # Percussion: noise bursts on the beat, brightness-scaled bandwidth.
    noise = gen.standard_normal(n)
    cutoff = min(4000.0 + 8000.0 * brightness, sample_rate / 2 * 0.95)
    noise = filter_signal(design_lowpass_fir(cutoff, sample_rate, 129), noise)
    percussion = beat_env * noise

    # Bass line on the beat.
    bass_f = root_hz / 2.0
    bass = beat_env * np.cos(2.0 * np.pi * bass_f * t)

    mix = music / (np.std(music) + 1e-12)
    mix += 0.8 * percussion / (np.std(percussion) + 1e-12)
    mix += 0.6 * bass / (np.std(bass) + 1e-12)
    peak = float(np.max(np.abs(mix)))
    return amplitude * mix / peak if peak else mix


def program_material(
    program: str,
    duration_s: float,
    sample_rate: float,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthesize (left, right) program audio for one station category.

    Args:
        program: one of ``"news"``, ``"mixed"``, ``"pop"``, ``"rock"``.
        duration_s: clip length in seconds (the paper uses 8 s clips).
        sample_rate: sample rate in Hz.
        rng: seed or Generator.

    Returns:
        ``(left, right)`` channel arrays, peak-normalized. News programs
        have L essentially equal to R (tiny decorrelation), music programs
        have significant stereo content — matching Fig. 5.
    """
    if program not in PROGRAM_TYPES:
        raise ConfigurationError(
            f"program must be one of {PROGRAM_TYPES}, got {program!r}"
        )
    gen = as_generator(rng)

    if program == "news":
        mono = speech_like(duration_s, sample_rate, child_generator(gen, "speech"))
        # News: same speech both channels; residual stereo is just a tiny
        # amount of studio ambience.
        ambience = 0.01 * speech_like(
            duration_s, sample_rate, child_generator(gen, "amb"), pitch_hz=90.0
        )
        return mono + ambience, mono - ambience

    if program == "mixed":
        speech = speech_like(duration_s, sample_rate, child_generator(gen, "speech"))
        music = music_like(
            duration_s, sample_rate, child_generator(gen, "music"), brightness=0.6
        )
        left = 0.7 * speech + 0.3 * music
        right = 0.7 * speech + 0.24 * music  # music panned slightly left
        return left, right

    brightness = 0.8 if program == "pop" else 1.4
    tempo = 118.0 if program == "pop" else 140.0
    base = music_like(
        duration_s, sample_rate, child_generator(gen, "base"), tempo, brightness
    )
    side = music_like(
        duration_s, sample_rate, child_generator(gen, "side"), tempo * 1.01, brightness
    )
    stereo_width = 0.35 if program == "pop" else 0.5
    left = base + stereo_width * side
    right = base - stereo_width * side
    peak = max(float(np.max(np.abs(left))), float(np.max(np.abs(right))), 1e-12)
    return left / peak, right / peak

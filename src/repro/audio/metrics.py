"""Basic audio fidelity metrics: RMS, SNR, segmental SNR."""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError
from repro.utils.validation import ensure_equal_length, ensure_real


def rms(signal: np.ndarray) -> float:
    """Root-mean-square level of a real signal."""
    signal = ensure_real(signal, "signal")
    return float(np.sqrt(np.mean(signal**2)))


def snr_db(reference: np.ndarray, degraded: np.ndarray) -> float:
    """Global SNR of ``degraded`` against ``reference``, in dB.

    The noise is the residual after optimally scaling the degraded signal
    onto the reference, so a pure gain difference scores as noiseless.

    Raises:
        SignalError: if the reference is silent.
    """
    reference = ensure_real(reference, "reference")
    degraded = ensure_real(degraded, "degraded")
    ensure_equal_length(reference, degraded, "reference/degraded")
    ref_power = float(np.dot(reference, reference))
    if ref_power == 0:
        raise SignalError("reference signal is silent; SNR undefined")
    scale = float(np.dot(degraded, reference)) / float(np.dot(degraded, degraded) + 1e-30)
    residual = reference - scale * degraded
    noise_power = float(np.dot(residual, residual))
    return 10.0 * np.log10(ref_power / max(noise_power, 1e-30))


def segmental_snr_db(
    reference: np.ndarray,
    degraded: np.ndarray,
    sample_rate: float,
    frame_seconds: float = 0.032,
    floor_db: float = -10.0,
    ceiling_db: float = 35.0,
) -> float:
    """Frame-averaged SNR, the classic speech-quality correlate.

    Each ~32 ms frame's SNR is clamped to ``[floor_db, ceiling_db]``
    (standard practice so silent frames do not dominate), then averaged.
    """
    reference = ensure_real(reference, "reference")
    degraded = ensure_real(degraded, "degraded")
    ensure_equal_length(reference, degraded, "reference/degraded")
    frame = max(int(frame_seconds * sample_rate), 8)
    n_frames = reference.size // frame
    if n_frames == 0:
        raise SignalError("signals shorter than one frame")
    snrs = []
    for i in range(n_frames):
        seg = slice(i * frame, (i + 1) * frame)
        ref_p = float(np.dot(reference[seg], reference[seg]))
        if ref_p < 1e-12:
            continue  # skip silent frames
        err = reference[seg] - degraded[seg]
        err_p = float(np.dot(err, err))
        snr = 10.0 * np.log10(ref_p / max(err_p, 1e-30))
        snrs.append(min(max(snr, floor_db), ceiling_db))
    if not snrs:
        raise SignalError("reference contains only silence")
    return float(np.mean(snrs))

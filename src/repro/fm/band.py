"""Wideband multi-station FM band simulation.

The per-channel complex-baseband model (DESIGN.md §5) is the efficient
path; this module is the physically-faithful one: a slice of the FM band
with several stations at their channel offsets, synthesized at a wideband
rate. It backs three things the narrowband path cannot:

* scanner integration — measure per-channel powers from actual IQ and
  let :class:`repro.receiver.scanner.BandScanner` choose ``fback``;
* adjacent-channel leakage — demonstrate that a strong neighbor raises
  the floor in the backscatter channel, the effect the link budget's
  ``adjacent_suppression_db`` models;
* mixing-product placement — confirm the backscatter sidebands land
  ``fback`` away from the source station.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import FM_CHANNEL_SPACING_HZ
from repro.errors import ConfigurationError
from repro.fm.modulator import fm_modulate
from repro.fm.station import FMStation, StationConfig
from repro.utils.rand import RngLike, as_generator, child_generator
from repro.utils.units import dbm_to_watts


@dataclass(frozen=True)
class BandStation:
    """One station in the simulated band slice.

    Attributes:
        channel_offset: channel index relative to the slice center
            (0 = center; each step is 200 kHz).
        power_dbm: received power of this station at the observation
            point.
        program: program material name (``silence`` for a bare carrier).
        stereo: broadcast stereo (pilot + L-R) or mono.
    """

    channel_offset: int
    power_dbm: float
    program: str = "news"
    stereo: bool = True


class FMBandSimulator:
    """Synthesizes a wideband IQ slice containing several stations.

    Args:
        sample_rate: wideband rate; must cover every requested channel
            offset (e.g. 2.4 MHz covers offsets -5..+5).
        rng: seed or Generator for program material.
    """

    def __init__(self, sample_rate: float = 2_400_000.0, rng: RngLike = None) -> None:
        if sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        self.sample_rate = float(sample_rate)
        self._rng = as_generator(rng)

    def _check_offset(self, offset: int) -> None:
        edge = abs(offset) * FM_CHANNEL_SPACING_HZ + 150e3
        if edge > self.sample_rate / 2:
            raise ConfigurationError(
                f"channel offset {offset} does not fit at fs={self.sample_rate}"
            )

    def synthesize(
        self, stations: Sequence[BandStation], duration_s: float
    ) -> np.ndarray:
        """Build the band slice: sum of offset, power-scaled FM signals."""
        stations = list(stations)
        if not stations:
            raise ConfigurationError("stations must be non-empty")
        offsets = [s.channel_offset for s in stations]
        if len(set(offsets)) != len(offsets):
            raise ConfigurationError("two stations share a channel offset")
        n = int(round(duration_s * self.sample_rate))
        band = np.zeros(n, dtype=complex)
        t = np.arange(n) / self.sample_rate
        for station in stations:
            self._check_offset(station.channel_offset)
            source = FMStation(
                StationConfig(
                    program=station.program,
                    stereo=station.stereo,
                    mpx_rate=self.sample_rate,
                ),
                rng=child_generator(self._rng, "station", station.channel_offset),
            )
            mpx = source.mpx(duration_s)[:n]
            iq = fm_modulate(mpx, self.sample_rate)
            offset_hz = station.channel_offset * FM_CHANNEL_SPACING_HZ
            amplitude = np.sqrt(dbm_to_watts(station.power_dbm))
            band += amplitude * iq * np.exp(2j * np.pi * offset_hz * t)
        return band

    def channel_powers_dbm(
        self, band_iq: np.ndarray, channel_offsets: Sequence[int]
    ) -> Dict[int, float]:
        """Measure in-channel power (dBm) at each offset via the FFT.

        This is what a scanning receiver computes while deciding where a
        backscatter device should place its signal.
        """
        band_iq = np.asarray(band_iq)
        if band_iq.ndim != 1 or band_iq.size == 0:
            raise ConfigurationError("band_iq must be a non-empty 1-D array")
        n = band_iq.size
        spectrum = np.fft.fftshift(np.fft.fft(band_iq))
        freqs = np.fft.fftshift(np.fft.fftfreq(n, 1.0 / self.sample_rate))
        # Parseval: |X[k]|^2 / n^2 sums to mean power.
        psd = np.abs(spectrum) ** 2 / n**2
        powers: Dict[int, float] = {}
        half = FM_CHANNEL_SPACING_HZ / 2
        for offset in channel_offsets:
            self._check_offset(offset)
            center = offset * FM_CHANNEL_SPACING_HZ
            mask = (freqs >= center - half) & (freqs < center + half)
            in_channel = float(np.sum(psd[mask]))
            powers[offset] = 10.0 * np.log10(max(in_channel, 1e-30) / 1e-3)
        return powers

"""FM broadcast stack: MPX composition, modulation, demodulation, RDS.

Implements the full transmit chain of paper Fig. 3 (mono + 19 kHz pilot +
38 kHz DSB-SC stereo + 57 kHz RDS) and the corresponding receive chain
(quadrature discriminator, pilot-gated stereo decode, RDS decode).
"""

from repro.fm.band import BandStation, FMBandSimulator
from repro.fm.mpx import MpxComponents, compose_mpx, decompose_mpx
from repro.fm.modulator import fm_modulate, fm_modulate_mpx
from repro.fm.demodulator import fm_demodulate
from repro.fm.pilot import detect_pilot, pilot_power_ratio_db
from repro.fm.stereo import StereoAudio, decode_mono, decode_stereo, decode_stereo_batch
from repro.fm.station import FMStation, StationConfig

__all__ = [
    "BandStation",
    "FMBandSimulator",
    "FMStation",
    "MpxComponents",
    "StationConfig",
    "StereoAudio",
    "compose_mpx",
    "decode_mono",
    "decode_stereo",
    "decode_stereo_batch",
    "decompose_mpx",
    "detect_pilot",
    "fm_demodulate",
    "fm_modulate",
    "fm_modulate_mpx",
    "pilot_power_ratio_db",
]

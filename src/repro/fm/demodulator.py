"""FM demodulation: quadrature (polar) discriminator.

Section 3.2 of the paper describes FM decoding as differentiating the
baseband phase; real receivers implement it with PLLs or quadrature
discriminators. We use the discriminator form: the angle of
``x[n] * conj(x[n-1])`` is the per-sample phase increment, i.e. the
instantaneous frequency, which *is* the MPX baseband scaled by the
deviation.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FM_MAX_DEVIATION_HZ, MPX_RATE_HZ
from repro.errors import SignalError
from repro.utils.validation import ensure_1d, ensure_positive


def fm_demodulate(
    iq: np.ndarray,
    sample_rate: float = MPX_RATE_HZ,
    deviation_hz: float = FM_MAX_DEVIATION_HZ,
) -> np.ndarray:
    """Recover the MPX baseband from a complex FM envelope.

    Args:
        iq: complex envelope samples.
        sample_rate: sample rate of ``iq``.
        deviation_hz: deviation used at the modulator; output is scaled so
            full deviation maps back to +/-1.

    Returns:
        Real MPX estimate, same length as the input (first sample
        duplicated, matching :func:`repro.dsp.phase.phase_to_frequency`).

    Raises:
        SignalError: if the input is not complex or is all zeros (no
            carrier to demodulate).
    """
    iq = ensure_1d(iq, "iq")
    if not np.iscomplexobj(iq):
        raise SignalError("iq must be a complex envelope")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    deviation_hz = ensure_positive(deviation_hz, "deviation_hz")
    if not np.any(np.abs(iq) > 0):
        raise SignalError("iq contains no signal (all zeros)")
    # Quadrature discriminator. Guard against zero samples from hard
    # channel fades by substituting the previous sample (limiter behavior).
    magnitude = np.abs(iq)
    floor = 1e-12 * float(np.max(magnitude))
    safe = np.where(magnitude > floor, iq, floor)
    increments = np.angle(safe[1:] * np.conj(safe[:-1]))
    inst_freq = increments * sample_rate / (2.0 * np.pi)
    if inst_freq.size == 0:
        return np.zeros(1)
    inst_freq = np.concatenate([[inst_freq[0]], inst_freq])
    return inst_freq / deviation_hz

"""FM demodulation: quadrature (polar) discriminator.

Section 3.2 of the paper describes FM decoding as differentiating the
baseband phase; real receivers implement it with PLLs or quadrature
discriminators. We use the discriminator form: the angle of
``x[n] * conj(x[n-1])`` is the per-sample phase increment, i.e. the
instantaneous frequency, which *is* the MPX baseband scaled by the
deviation.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FM_MAX_DEVIATION_HZ, MPX_RATE_HZ
from repro.errors import SignalError
from repro.utils.env import fast_numerics
from repro.utils.validation import ensure_positive, ensure_signal


def fm_demodulate(
    iq: np.ndarray,
    sample_rate: float = MPX_RATE_HZ,
    deviation_hz: float = FM_MAX_DEVIATION_HZ,
) -> np.ndarray:
    """Recover the MPX baseband from a complex FM envelope.

    Args:
        iq: complex envelope samples; 1-D, or 2-D ``(batch, samples)`` to
            demodulate a stack of envelopes along the last axis in one
            vectorized pass. Each row's output is bit-identical to
            demodulating that row alone.
        sample_rate: sample rate of ``iq``.
        deviation_hz: deviation used at the modulator; output is scaled so
            full deviation maps back to +/-1.

    Returns:
        Real MPX estimate, same shape as the input (first sample
        duplicated, matching :func:`repro.dsp.phase.phase_to_frequency`).

    Raises:
        SignalError: if the input is not complex or any waveform is all
            zeros (no carrier to demodulate).
    """
    iq = ensure_signal(iq, "iq")
    if not np.iscomplexobj(iq):
        raise SignalError("iq must be a complex envelope")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    deviation_hz = ensure_positive(deviation_hz, "deviation_hz")
    if fast_numerics():
        # REPRO_NUMERICS=fast: one fused lag product over the whole
        # stack. This gives up the exact-mode contract twice over — the
        # 2-D buffered iterator perturbs the complex multiply by an ULP
        # for some lengths, and the below-floor limiter substitution is
        # skipped entirely (an exactly-zero sample contributes a zero
        # phase increment instead of holding the previous sample), which
        # also skips the magnitude/floor passes over the stack. The
        # no-carrier guard stays, on the cheaper complex compare.
        if not np.all(np.any(iq != 0, axis=-1)):
            raise SignalError("iq contains no signal (all zeros)")
        increments = np.angle(iq[..., 1:] * np.conj(iq[..., :-1]))
        if increments.shape[-1] == 0:
            return np.zeros(iq.shape[:-1] + (1,))
        # Single fused scaling written straight into the output (the
        # exact path's two scaling passes and the concatenate collapse
        # into one multiply plus a first-sample copy). The dtype follows
        # the input: a complex64 stack from the fast transmit path keeps
        # the MPX in float32 for the receive chain's filters.
        out = np.empty(iq.shape, dtype=increments.dtype)
        np.multiply(
            increments, sample_rate / (2.0 * np.pi * deviation_hz), out=out[..., 1:]
        )
        out[..., 0] = out[..., 1]
        return out
    else:
        magnitude = np.abs(iq)
        if not np.all(np.any(magnitude > 0, axis=-1)):
            raise SignalError("iq contains no signal (all zeros)")
        # Quadrature discriminator. Guard against zero samples from hard
        # channel fades by substituting the previous sample (limiter
        # behavior). The floor is per waveform, so a batch demodulates
        # each row exactly as it would alone.
        floor = 1e-12 * np.max(magnitude, axis=-1, keepdims=True)
        safe = np.where(magnitude > floor, iq, floor)
        if safe.ndim == 1:
            increments = np.angle(safe[1:] * np.conj(safe[:-1]))
        else:
            # Per-row evaluation of the exact 1-D expression. A single
            # 2-D pass over the lag-product views routes through numpy's
            # buffered iterator, whose chunk boundaries differ from the
            # 1-D case and perturb the complex multiply by an ULP for
            # some waveform lengths — per-row contiguous views take the
            # same code path as the serial demodulate for every length,
            # keeping the batched backend's bit-identity contract
            # unconditional. (Each row is still one vectorized C call;
            # only the cross-row fusion is given up — that is what
            # REPRO_NUMERICS=fast buys back.)
            increments = np.empty(safe.shape[:-1] + (safe.shape[-1] - 1,))
            for row in range(safe.shape[0]):
                increments[row] = np.angle(safe[row, 1:] * np.conj(safe[row, :-1]))
    inst_freq = increments * sample_rate / (2.0 * np.pi)
    if inst_freq.shape[-1] == 0:
        return np.zeros(iq.shape[:-1] + (1,))
    inst_freq = np.concatenate([inst_freq[..., :1], inst_freq], axis=-1)
    return inst_freq / deviation_hz

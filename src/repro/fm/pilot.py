"""19 kHz stereo-pilot detection.

A stereo receiver enables its stereo decoder only when it detects the
19 kHz pilot with sufficient power (paper sections 3.2 and 5.3: at low FM
power "receivers cannot decode the pilot signal and default back to mono
mode"). Detection compares pilot-band power against the neighboring empty
16-18 kHz guard band.
"""

from __future__ import annotations

import numpy as np

from repro.constants import MPX_RATE_HZ, PILOT_FREQ_HZ
from repro.dsp.spectrum import band_power
from repro.utils.validation import ensure_positive, ensure_real_signal

PILOT_DETECT_THRESHOLD_DB = 6.0
"""Pilot-to-guard-band power ratio above which the pilot is declared."""


def pilot_power_ratio_db(mpx: np.ndarray, mpx_rate: float = MPX_RATE_HZ):
    """Ratio (dB) of 19 kHz pilot-band power to 16-18 kHz guard power.

    Accepts a 1-D MPX (returns a float) or a 2-D ``(batch, samples)``
    stack (returns a ``(batch,)`` array, each element bit-identical to
    the scalar computation on that row) — the batched sweep backend
    gates every grid point's stereo decoder in one pass.
    """
    mpx = ensure_real_signal(mpx, "mpx")
    mpx_rate = ensure_positive(mpx_rate, "mpx_rate")
    pilot = band_power(mpx, mpx_rate, PILOT_FREQ_HZ - 250.0, PILOT_FREQ_HZ + 250.0)
    guard = band_power(mpx, mpx_rate, 16e3, 18e3)
    if mpx.ndim == 1:
        return float(10.0 * np.log10(max(pilot, 1e-30) / max(guard, 1e-30)))
    return 10.0 * np.log10(np.maximum(pilot, 1e-30) / np.maximum(guard, 1e-30))


def detect_pilot(
    mpx: np.ndarray,
    mpx_rate: float = MPX_RATE_HZ,
    threshold_db: float = PILOT_DETECT_THRESHOLD_DB,
):
    """True when the 19 kHz pilot is detectably present in the MPX.

    A bool for 1-D input; a ``(batch,)`` bool array for a 2-D stack.
    """
    return pilot_power_ratio_db(mpx, mpx_rate) > threshold_db

"""Stereo MPX decoding: pilot-locked L/R separation.

Receivers do not expose the L-R stream directly (paper section 3.3.1);
they output left and right channels. This module reproduces that: it
recovers the pilot with a PLL, regenerates the 38 kHz subcarrier,
synchronously demodulates L-R, and matrixes L = (L+R) + (L-R),
R = (L+R) - (L-R). When no pilot is detected the receiver stays in mono
mode and L == R, exactly the fallback behaviour the paper leans on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ, PILOT_FREQ_HZ
from repro.dsp.filters import bandpass_fir, design_lowpass_fir, filter_signal
from repro.dsp.pll import PhaseLockedLoop
from repro.dsp.resample import resample_by_ratio
from repro.errors import SignalError
from repro.fm.pilot import detect_pilot
from repro.utils.validation import ensure_positive, ensure_real, ensure_signal


@dataclass
class StereoAudio:
    """Result of stereo decoding.

    Attributes:
        left: left channel at ``audio_rate``.
        right: right channel at ``audio_rate``.
        stereo_locked: True when the pilot was detected and the stereo
            matrix was applied; False means mono fallback (left == right).
        audio_rate: sample rate of the channels.
    """

    left: np.ndarray
    right: np.ndarray
    stereo_locked: bool
    audio_rate: float

    @property
    def mono(self) -> np.ndarray:
        """The (L+R)/2 mono mix."""
        return 0.5 * (self.left + self.right)

    @property
    def difference(self) -> np.ndarray:
        """The (L-R)/2 stereo difference — the paper's stereo-backscatter
        recovery step (subtract the receiver's L and R outputs)."""
        return 0.5 * (self.left - self.right)


def decode_mono(
    mpx: np.ndarray,
    mpx_rate: float = MPX_RATE_HZ,
    audio_rate: float = AUDIO_RATE_HZ,
) -> np.ndarray:
    """Extract only the mono (L+R) audio from an MPX baseband.

    This is the 0-15 kHz slice every receiver produces before any stereo
    processing; mono-only receive paths (``stereo_capable=False``) use it
    directly and skip pilot recovery entirely.

    Accepts a 1-D MPX or a 2-D ``(batch, samples)`` stack — the batched
    sweep backend decodes every grid point's MPX in one filtering +
    resampling pass, each row bit-identical to decoding it alone.
    """
    mpx = ensure_signal(mpx, "mpx")
    if np.iscomplexobj(mpx):
        raise SignalError("mpx must be real-valued")
    mpx_rate = ensure_positive(mpx_rate, "mpx_rate")
    audio_rate = ensure_positive(audio_rate, "audio_rate")
    mono_mpx = filter_signal(design_lowpass_fir(15e3, mpx_rate, 513), mpx)
    return resample_by_ratio(mono_mpx, mpx_rate, audio_rate)


def decode_stereo(
    mpx: np.ndarray,
    mpx_rate: float = MPX_RATE_HZ,
    audio_rate: float = AUDIO_RATE_HZ,
    force_stereo: bool = False,
) -> StereoAudio:
    """Decode an MPX baseband into left/right audio.

    Args:
        mpx: demodulated composite baseband.
        mpx_rate: sample rate of ``mpx``.
        audio_rate: desired output audio rate.
        force_stereo: decode the stereo matrix even without a confident
            pilot detection (used by tests; real receivers gate on the
            pilot, which is the default).

    Returns:
        :class:`StereoAudio` with mono fallback when no pilot is present.
    """
    mpx = ensure_real(mpx, "mpx")
    mpx_rate = ensure_positive(mpx_rate, "mpx_rate")
    audio_rate = ensure_positive(audio_rate, "audio_rate")

    mono = decode_mono(mpx, mpx_rate, audio_rate)

    has_pilot = detect_pilot(mpx, mpx_rate)
    if not (has_pilot or force_stereo):
        return StereoAudio(left=mono, right=mono.copy(), stereo_locked=False, audio_rate=audio_rate)

    # Recover the pilot and regenerate the 38 kHz carrier coherently. The
    # PLL runs on a 5x-decimated pilot band (the 19 kHz tone is still well
    # below the decimated Nyquist) and its unwrapped phase is linearly
    # interpolated back to the MPX rate — the phase of a narrowband tone
    # is nearly linear over 5 samples, and this cuts the loop's Python
    # iteration count fivefold.
    pilot_band = filter_signal(bandpass_fir(18.5e3, 19.5e3, mpx_rate, 1025), mpx)
    decimation = 5
    decimated_rate = mpx_rate / decimation
    pll = PhaseLockedLoop(PILOT_FREQ_HZ, decimated_rate, loop_bandwidth_hz=30.0)
    track = pll.track(pilot_band[::decimation])
    if not (track.locked or force_stereo):
        return StereoAudio(left=mono, right=mono.copy(), stereo_locked=False, audio_rate=audio_rate)

    sample_positions = np.arange(mpx.size) / decimation
    phase_full = np.interp(
        sample_positions, np.arange(track.phase.size), track.phase
    )
    carrier38 = np.cos(2.0 * phase_full)
    stereo_band = filter_signal(bandpass_fir(23e3, 53e3, mpx_rate, 513), mpx)
    # Synchronous AM detection; factor 2 undoes the 1/2 from the product.
    diff_mpx = 2.0 * stereo_band * carrier38
    diff_mpx = filter_signal(design_lowpass_fir(15e3, mpx_rate, 513), diff_mpx)
    diff = resample_by_ratio(diff_mpx, mpx_rate, audio_rate)

    n = min(mono.size, diff.size)
    left = mono[:n] + diff[:n]
    right = mono[:n] - diff[:n]
    return StereoAudio(left=left, right=right, stereo_locked=True, audio_rate=audio_rate)

"""Stereo MPX decoding: pilot-locked L/R separation.

Receivers do not expose the L-R stream directly (paper section 3.3.1);
they output left and right channels. This module reproduces that: it
recovers the pilot with a PLL, regenerates the 38 kHz subcarrier,
synchronously demodulates L-R, and matrixes L = (L+R) + (L-R),
R = (L+R) - (L-R). When no pilot is detected the receiver stays in mono
mode and L == R, exactly the fallback behaviour the paper leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ, PILOT_FREQ_HZ
from repro.dsp.filters import bandpass_fir, design_lowpass_fir, filter_signal
from repro.dsp.pll import PhaseLockedLoop
from repro.dsp.resample import resample_by_ratio
from repro.errors import SignalError
from repro.fm.pilot import PILOT_DETECT_THRESHOLD_DB, detect_pilot, pilot_power_ratio_db
from repro.utils.validation import ensure_positive, ensure_real, ensure_real_signal


@dataclass
class StereoAudio:
    """Result of stereo decoding.

    Attributes:
        left: left channel at ``audio_rate``.
        right: right channel at ``audio_rate``.
        stereo_locked: True when the pilot was detected and the stereo
            matrix was applied; False means mono fallback (left == right).
        audio_rate: sample rate of the channels.
    """

    left: np.ndarray
    right: np.ndarray
    stereo_locked: bool
    audio_rate: float

    @property
    def mono(self) -> np.ndarray:
        """The (L+R)/2 mono mix."""
        return 0.5 * (self.left + self.right)

    @property
    def difference(self) -> np.ndarray:
        """The (L-R)/2 stereo difference — the paper's stereo-backscatter
        recovery step (subtract the receiver's L and R outputs)."""
        return 0.5 * (self.left - self.right)


def decode_mono(
    mpx: np.ndarray,
    mpx_rate: float = MPX_RATE_HZ,
    audio_rate: float = AUDIO_RATE_HZ,
) -> np.ndarray:
    """Extract only the mono (L+R) audio from an MPX baseband.

    This is the 0-15 kHz slice every receiver produces before any stereo
    processing; mono-only receive paths (``stereo_capable=False``) use it
    directly and skip pilot recovery entirely.

    Accepts a 1-D MPX or a 2-D ``(batch, samples)`` stack — the batched
    sweep backend decodes every grid point's MPX in one filtering +
    resampling pass, each row bit-identical to decoding it alone.
    """
    mpx = ensure_real_signal(mpx, "mpx")
    mpx_rate = ensure_positive(mpx_rate, "mpx_rate")
    audio_rate = ensure_positive(audio_rate, "audio_rate")
    mono_mpx = filter_signal(design_lowpass_fir(15e3, mpx_rate, 513), mpx)
    return resample_by_ratio(mono_mpx, mpx_rate, audio_rate)


def decode_stereo(
    mpx: np.ndarray,
    mpx_rate: float = MPX_RATE_HZ,
    audio_rate: float = AUDIO_RATE_HZ,
    force_stereo: bool = False,
) -> StereoAudio:
    """Decode an MPX baseband into left/right audio.

    Args:
        mpx: demodulated composite baseband.
        mpx_rate: sample rate of ``mpx``.
        audio_rate: desired output audio rate.
        force_stereo: decode the stereo matrix even without a confident
            pilot detection (used by tests; real receivers gate on the
            pilot, which is the default).

    Returns:
        :class:`StereoAudio` with mono fallback when no pilot is present.
    """
    mpx = ensure_real(mpx, "mpx")
    mpx_rate = ensure_positive(mpx_rate, "mpx_rate")
    audio_rate = ensure_positive(audio_rate, "audio_rate")

    mono = decode_mono(mpx, mpx_rate, audio_rate)

    has_pilot = detect_pilot(mpx, mpx_rate)
    if not (has_pilot or force_stereo):
        return StereoAudio(left=mono, right=mono.copy(), stereo_locked=False, audio_rate=audio_rate)

    # Recover the pilot and regenerate the 38 kHz carrier coherently. The
    # PLL runs on a 5x-decimated pilot band (the 19 kHz tone is still well
    # below the decimated Nyquist) and its unwrapped phase is linearly
    # interpolated back to the MPX rate — the phase of a narrowband tone
    # is nearly linear over 5 samples, and this cuts the loop's Python
    # iteration count fivefold.
    pilot_band = filter_signal(bandpass_fir(18.5e3, 19.5e3, mpx_rate, 1025), mpx)
    decimation = 5
    decimated_rate = mpx_rate / decimation
    pll = PhaseLockedLoop(PILOT_FREQ_HZ, decimated_rate, loop_bandwidth_hz=30.0)
    track = pll.track(pilot_band[::decimation])
    if not (track.locked or force_stereo):
        return StereoAudio(left=mono, right=mono.copy(), stereo_locked=False, audio_rate=audio_rate)

    sample_positions = np.arange(mpx.size) / decimation
    phase_full = np.interp(
        sample_positions, np.arange(track.phase.size), track.phase
    )
    carrier38 = np.cos(2.0 * phase_full)
    stereo_band = filter_signal(bandpass_fir(23e3, 53e3, mpx_rate, 513), mpx)
    # Synchronous AM detection; factor 2 undoes the 1/2 from the product.
    diff_mpx = 2.0 * stereo_band * carrier38
    diff_mpx = filter_signal(design_lowpass_fir(15e3, mpx_rate, 513), diff_mpx)
    diff = resample_by_ratio(diff_mpx, mpx_rate, audio_rate)

    n = min(mono.size, diff.size)
    left = mono[:n] + diff[:n]
    right = mono[:n] - diff[:n]
    return StereoAudio(left=left, right=right, stereo_locked=True, audio_rate=audio_rate)


def row_chunks(n_rows: int, max_rows: Optional[int]) -> List[slice]:
    """Contiguous row slices of at most ``max_rows`` (one slice if None).

    The shared chunking helper for every ``max_fft_rows``-capped batch
    decode stage (here and in :mod:`repro.receiver.fm_receiver`).
    """
    if max_rows is None or max_rows >= n_rows:
        return [slice(0, n_rows)]
    step = max(int(max_rows), 1)
    return [
        slice(start, min(start + step, n_rows)) for start in range(0, n_rows, step)
    ]


def decode_stereo_batch(
    mpx: np.ndarray,
    mpx_rate: float = MPX_RATE_HZ,
    audio_rate: float = AUDIO_RATE_HZ,
    force_stereo: bool = False,
    max_fft_rows: Optional[int] = None,
) -> List[StereoAudio]:
    """Decode a stack of MPX basebands into left/right audio in one pass.

    The batched counterpart of :func:`decode_stereo`: pilot detection runs
    as one vectorized power-ratio computation, the pilot PLL advances all
    pilot-bearing waveforms together through
    :meth:`~repro.dsp.pll.PhaseLockedLoop.track_batch`, and the 38 kHz
    regeneration, L-R demodulation and audio filtering are 2-D NumPy ops.
    Every stage either is the same code path the 1-D calls take or is
    elementwise across waveforms, so row ``i``'s result is bit-identical
    to ``decode_stereo(mpx[i])`` — including per-row mono fallback when a
    row's pilot is absent or its loop fails to lock.

    Args:
        mpx: demodulated composite basebands, shape ``(batch, samples)``.
        mpx_rate: sample rate of each row.
        audio_rate: desired output audio rate.
        force_stereo: decode the stereo matrix on every row regardless of
            pilot detection and lock (same testing knob as the scalar
            decoder).
        max_fft_rows: cap on how many rows each FFT-heavy stage (mono
            low-pass, pilot/stereo band-passes, Welch pilot gate, the
            L-R filtering) spans per pass, keeping its working set
            cache-sized. The pilot PLL is *not* capped: its per-step
            state vector always spans every pilot-bearing row, so its
            vectorization width no longer depends on memory chunking.
            Purely a performance knob — results are bit-identical at any
            value (each stage is row-independent).

    Returns:
        One :class:`StereoAudio` per row, in order.
    """
    mpx = np.asarray(mpx)
    if mpx.ndim != 2:
        raise SignalError(f"mpx must be 2-D (batch, samples), got shape {mpx.shape}")
    if np.iscomplexobj(mpx):
        raise SignalError("mpx must be real-valued")
    mpx_rate = ensure_positive(mpx_rate, "mpx_rate")
    audio_rate = ensure_positive(audio_rate, "audio_rate")
    n_rows = mpx.shape[0]
    if n_rows == 0:
        return []
    mpx = mpx.astype(float, copy=False)

    # Mono (L+R) decode for every row; chunked — the 15 kHz low-pass and
    # the polyphase resample are the FFT-heavy part of the mono path.
    mono: Optional[np.ndarray] = None
    for rows in row_chunks(n_rows, max_fft_rows):
        chunk = decode_mono(mpx[rows], mpx_rate, audio_rate)
        if mono is None:
            mono = np.empty((n_rows, chunk.shape[-1]))
        mono[rows] = chunk
    results: List[Optional[StereoAudio]] = [None] * n_rows

    # Stage 1: vectorized pilot gate (the per-row detect_pilot decision),
    # Welch working set capped like the filters.
    if force_stereo:
        candidates = np.arange(n_rows)
    else:
        ratios = np.empty(n_rows)
        for rows in row_chunks(n_rows, max_fft_rows):
            ratios[rows] = pilot_power_ratio_db(mpx[rows], mpx_rate)
        candidates = np.flatnonzero(ratios > PILOT_DETECT_THRESHOLD_DB)

    if candidates.size:
        # Stage 2: multi-waveform pilot recovery — same decimated loop,
        # same coefficients as the scalar path. The band-pass runs in
        # memory-capped chunks; only the (5x smaller) decimated pilot
        # band persists, so the PLL advances ALL candidate rows per time
        # step regardless of the FFT chunk size.
        decimation = 5
        pilot_taps = bandpass_fir(18.5e3, 19.5e3, mpx_rate, 1025)
        n_decimated = len(range(0, mpx.shape[-1], decimation))
        pilot_decimated = np.empty((candidates.size, n_decimated))
        for rows in row_chunks(candidates.size, max_fft_rows):
            pilot_decimated[rows] = filter_signal(pilot_taps, mpx[candidates[rows]])[
                :, ::decimation
            ]
        decimated_rate = mpx_rate / decimation
        pll = PhaseLockedLoop(PILOT_FREQ_HZ, decimated_rate, loop_bandwidth_hz=30.0)
        track = pll.track_batch(pilot_decimated)

        engaged = np.flatnonzero(track.locked | force_stereo)
        if engaged.size:
            rows = candidates[engaged]
            # Stage 3: subcarrier regeneration + L-R matrix for the
            # locked rows, stacked and chunked like the other filters.
            sample_positions = np.arange(mpx.shape[-1]) / decimation
            decimated_index = np.arange(track.phase.shape[-1])
            stereo_taps = bandpass_fir(23e3, 53e3, mpx_rate, 513)
            diff_taps = design_lowpass_fir(15e3, mpx_rate, 513)
            diff: Optional[np.ndarray] = None
            for chunk in row_chunks(engaged.size, max_fft_rows):
                phase_full = np.stack(
                    [
                        np.interp(sample_positions, decimated_index, track.phase[pos])
                        for pos in engaged[chunk]
                    ]
                )
                carrier38 = np.cos(2.0 * phase_full)
                stereo_band = filter_signal(stereo_taps, mpx[rows[chunk]])
                diff_mpx = 2.0 * stereo_band * carrier38
                diff_mpx = filter_signal(diff_taps, diff_mpx)
                diff_chunk = resample_by_ratio(diff_mpx, mpx_rate, audio_rate)
                if diff is None:
                    diff = np.empty((engaged.size, diff_chunk.shape[-1]))
                diff[chunk] = diff_chunk

            n = min(mono.shape[-1], diff.shape[-1])
            for k, row in enumerate(rows):
                results[row] = StereoAudio(
                    left=mono[row, :n] + diff[k, :n],
                    right=mono[row, :n] - diff[k, :n],
                    stereo_locked=True,
                    audio_rate=audio_rate,
                )

    for row in range(n_rows):
        if results[row] is None:
            fallback = np.ascontiguousarray(mono[row])
            results[row] = StereoAudio(
                left=fallback,
                right=fallback.copy(),
                stereo_locked=False,
                audio_rate=audio_rate,
            )
    return results

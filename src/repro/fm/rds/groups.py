"""RDS group construction and parsing (types 0A and 2A).

A group is four 26-bit blocks (104 bits, ~87.6 ms at 1187.5 bps):

* Block 1 (offset A): the 16-bit Program Identification (PI) code.
* Block 2 (offset B): group type, version, traffic flags, and the low
  bits of the segment address.
* Blocks 3/4 (offsets C/D): payload — PS-name characters for 0A, radiotext
  characters for 2A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fm.rds.crc import append_checkword, block_information

PS_NAME_LENGTH = 8
RADIOTEXT_LENGTH = 64


@dataclass(frozen=True)
class Group:
    """One RDS group: four 16-bit information words (pre-checkword)."""

    block1: int
    block2: int
    block3: int
    block4: int

    def to_blocks(self) -> Tuple[int, int, int, int]:
        """Render the group as four 26-bit blocks with checkwords."""
        return (
            append_checkword(self.block1, "A"),
            append_checkword(self.block2, "B"),
            append_checkword(self.block3, "C"),
            append_checkword(self.block4, "D"),
        )

    @property
    def group_type(self) -> int:
        """Group type code (0-15) from block 2."""
        return (self.block2 >> 12) & 0xF

    @property
    def version_b(self) -> bool:
        """True for B-version groups (bit 11 of block 2)."""
        return bool((self.block2 >> 11) & 1)


def _encode_char(ch: str) -> int:
    code = ord(ch)
    if not 32 <= code < 127:
        raise ConfigurationError(f"RDS text supports printable ASCII only, got {ch!r}")
    return code


def make_group_0a(
    pi_code: int, ps_name: str, segment: int, program_type: int = 0
) -> Group:
    """Build a type-0A group carrying two characters of the PS name.

    Args:
        pi_code: 16-bit program identification.
        ps_name: full 8-character program-service name (padded if shorter).
        segment: which character pair (0-3) this group carries.
        program_type: 5-bit PTY code.
    """
    if not 0 <= pi_code < (1 << 16):
        raise ConfigurationError("pi_code must be 16-bit")
    if not 0 <= segment < 4:
        raise ConfigurationError(f"segment must be 0-3, got {segment}")
    if not 0 <= program_type < 32:
        raise ConfigurationError("program_type must be 5-bit")
    padded = ps_name.ljust(PS_NAME_LENGTH)[:PS_NAME_LENGTH]
    block2 = (0 << 12) | (0 << 11) | (1 << 10) | (program_type << 5) | segment
    char_a = _encode_char(padded[2 * segment])
    char_b = _encode_char(padded[2 * segment + 1])
    # Block 3 of a 0A group carries alternative frequencies; we transmit
    # the "no AF" filler code 0xE0CD.
    return Group(pi_code, block2, 0xE0CD, (char_a << 8) | char_b)


def make_group_2a(
    pi_code: int, radiotext: str, segment: int, program_type: int = 0
) -> Group:
    """Build a type-2A group carrying four characters of radiotext.

    Args:
        pi_code: 16-bit program identification.
        radiotext: full radiotext message (up to 64 chars, padded).
        segment: which 4-character slice (0-15) this group carries.
        program_type: 5-bit PTY code.
    """
    if not 0 <= pi_code < (1 << 16):
        raise ConfigurationError("pi_code must be 16-bit")
    if not 0 <= segment < 16:
        raise ConfigurationError(f"segment must be 0-15, got {segment}")
    padded = radiotext.ljust(RADIOTEXT_LENGTH)[:RADIOTEXT_LENGTH]
    block2 = (2 << 12) | (0 << 11) | (0 << 10) | (program_type << 5) | segment
    chars = [
        _encode_char(padded[4 * segment + k]) for k in range(4)
    ]
    block3 = (chars[0] << 8) | chars[1]
    block4 = (chars[2] << 8) | chars[3]
    return Group(pi_code, block2, block3, block4)


def groups_for_program(
    pi_code: int, ps_name: str, radiotext: str = "", program_type: int = 0
) -> List[Group]:
    """All groups needed to broadcast a PS name plus optional radiotext."""
    groups = [
        make_group_0a(pi_code, ps_name, seg, program_type) for seg in range(4)
    ]
    if radiotext:
        n_segments = (min(len(radiotext), RADIOTEXT_LENGTH) + 3) // 4
        groups.extend(
            make_group_2a(pi_code, radiotext, seg, program_type)
            for seg in range(n_segments)
        )
    return groups


def make_group_4a(
    pi_code: int,
    mjd: int,
    hour: int,
    minute: int,
    utc_offset_half_hours: int = 0,
    program_type: int = 0,
) -> Group:
    """Build a type-4A clock-time group.

    Args:
        pi_code: 16-bit program identification.
        mjd: Modified Julian Day (17 bits).
        hour: UTC hour, 0-23.
        minute: 0-59.
        utc_offset_half_hours: local offset in half hours, -31..31.
        program_type: 5-bit PTY code.
    """
    if not 0 <= pi_code < (1 << 16):
        raise ConfigurationError("pi_code must be 16-bit")
    if not 0 <= mjd < (1 << 17):
        raise ConfigurationError("mjd must fit in 17 bits")
    if not 0 <= hour < 24:
        raise ConfigurationError("hour must be 0-23")
    if not 0 <= minute < 60:
        raise ConfigurationError("minute must be 0-59")
    if not -31 <= utc_offset_half_hours <= 31:
        raise ConfigurationError("utc offset must be -31..31 half hours")
    block2 = (4 << 12) | (0 << 11) | (0 << 10) | (program_type << 5) | ((mjd >> 15) & 0x3)
    block3 = ((mjd & 0x7FFF) << 1) | ((hour >> 4) & 0x1)
    offset_sign = 1 if utc_offset_half_hours < 0 else 0
    block4 = (
        ((hour & 0xF) << 12)
        | (minute << 6)
        | (offset_sign << 5)
        | (abs(utc_offset_half_hours) & 0x1F)
    )
    return Group(pi_code, block2, block3, block4)


def decode_groups(groups: Sequence[Tuple[int, int, int, int]]) -> Dict[str, object]:
    """Reassemble PS name and radiotext from decoded information words.

    Args:
        groups: sequence of ``(block1, block2, block3, block4)`` 16-bit
            information words (checkwords already stripped/validated).

    Returns:
        dict with keys ``pi_code``, ``ps_name`` and ``radiotext``.
        Unreceived character positions remain as spaces.
    """
    ps_chars = [" "] * PS_NAME_LENGTH
    rt_chars = [" "] * RADIOTEXT_LENGTH
    pi_code: Optional[int] = None
    rt_seen = False
    clock: Optional[Dict[str, int]] = None
    for b1, b2, b3, b4 in groups:
        pi_code = b1 if pi_code is None else pi_code
        group_type = (b2 >> 12) & 0xF
        if group_type == 0:
            segment = b2 & 0x3
            ps_chars[2 * segment] = chr((b4 >> 8) & 0xFF)
            ps_chars[2 * segment + 1] = chr(b4 & 0xFF)
        elif group_type == 2:
            segment = b2 & 0xF
            rt_seen = True
            text = [(b3 >> 8) & 0xFF, b3 & 0xFF, (b4 >> 8) & 0xFF, b4 & 0xFF]
            for k, code in enumerate(text):
                rt_chars[4 * segment + k] = chr(code)
        elif group_type == 4:
            mjd = ((b2 & 0x3) << 15) | ((b3 >> 1) & 0x7FFF)
            hour = ((b3 & 0x1) << 4) | ((b4 >> 12) & 0xF)
            minute = (b4 >> 6) & 0x3F
            offset = b4 & 0x1F
            if (b4 >> 5) & 1:
                offset = -offset
            clock = {
                "mjd": mjd,
                "hour": hour,
                "minute": minute,
                "utc_offset_half_hours": offset,
            }
    return {
        "pi_code": pi_code,
        "ps_name": "".join(ps_chars).rstrip(),
        "radiotext": "".join(rt_chars).rstrip() if rt_seen else "",
        "clock": clock,
    }

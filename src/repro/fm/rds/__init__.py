"""Radio Data System (RDS) encoder/decoder.

The paper's Fig. 3 includes the 57 kHz RDS subcarrier as part of the FM
baseband structure; this subpackage implements enough of the RDS standard
(CENELEC EN 50067) to broadcast and decode program-service names and
radiotext: 26-bit blocks with CRC checkwords and offset words, group types
0A and 2A, differential encoding and biphase symbols on the 57 kHz
carrier.
"""

from repro.fm.rds.crc import (
    OFFSET_WORDS,
    append_checkword,
    compute_crc,
    syndrome,
    verify_block,
)
from repro.fm.rds.groups import (
    Group,
    decode_groups,
    make_group_0a,
    make_group_2a,
    make_group_4a,
    groups_for_program,
)
from repro.fm.rds.bitstream import (
    biphase_waveform,
    bits_from_waveform,
    differential_decode,
    differential_encode,
)
from repro.fm.rds.encoder import RdsEncoder
from repro.fm.rds.decoder import RdsDecoder, RdsMessage

__all__ = [
    "Group",
    "OFFSET_WORDS",
    "RdsDecoder",
    "RdsEncoder",
    "RdsMessage",
    "append_checkword",
    "biphase_waveform",
    "bits_from_waveform",
    "compute_crc",
    "decode_groups",
    "differential_decode",
    "differential_encode",
    "groups_for_program",
    "make_group_0a",
    "make_group_2a",
    "make_group_4a",
    "syndrome",
    "verify_block",
]

"""RDS block CRC (checkword) arithmetic.

Each RDS block is 26 bits: a 16-bit information word followed by a 10-bit
checkword. The checkword is the remainder of ``m(x) * x^10`` modulo the
generator ``g(x) = x^10 + x^8 + x^7 + x^5 + x^4 + x^3 + 1``, XORed with a
block-position-dependent *offset word* that gives the receiver block
synchronization for free.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

GENERATOR = 0b10110111001
"""g(x) = x^10 + x^8 + x^7 + x^5 + x^4 + x^3 + 1."""

OFFSET_WORDS: Dict[str, int] = {
    "A": 0b0011111100,
    "B": 0b0110011000,
    "C": 0b0101101000,
    "C'": 0b1101010000,
    "D": 0b0110110100,
}
"""Offset words for the four block positions (C' replaces C in B-version
groups)."""


def compute_crc(information: int) -> int:
    """10-bit CRC of a 16-bit information word (before offset)."""
    if not 0 <= information < (1 << 16):
        raise ConfigurationError(f"information word must be 16-bit, got {information}")
    register = information << 10
    for bit in range(25, 9, -1):
        if register & (1 << bit):
            register ^= GENERATOR << (bit - 10)
    return register & 0x3FF


def append_checkword(information: int, offset_name: str) -> int:
    """Build the full 26-bit block: information + (CRC xor offset)."""
    if offset_name not in OFFSET_WORDS:
        raise ConfigurationError(f"unknown offset word {offset_name!r}")
    return (information << 10) | (compute_crc(information) ^ OFFSET_WORDS[offset_name])


def syndrome(block: int) -> int:
    """Syndrome of a received 26-bit block.

    For an error-free block the syndrome equals a constant determined only
    by the offset word, which is how receivers identify the block position.
    """
    if not 0 <= block < (1 << 26):
        raise ConfigurationError(f"block must be 26-bit, got {block}")
    register = block
    for bit in range(25, 9, -1):
        if register & (1 << bit):
            register ^= GENERATOR << (bit - 10)
    return register & 0x3FF


# Precompute the expected syndrome for each offset word: syndrome of a
# zero information word with that offset applied.
EXPECTED_SYNDROMES: Dict[str, int] = {
    name: syndrome(offset) for name, offset in OFFSET_WORDS.items()
}


def verify_block(block: int) -> Optional[str]:
    """Return the offset-word name if the block checks out, else ``None``.

    Because the code is linear, ``syndrome(data<<10 | crc^offset)`` equals
    ``syndrome(offset)`` whenever the CRC matches; comparing against the
    five expected syndromes both validates and position-labels the block.
    """
    s = syndrome(block)
    for name, expected in EXPECTED_SYNDROMES.items():
        if s == expected:
            return name
    return None


def block_information(block: int) -> int:
    """Extract the 16-bit information word from a 26-bit block."""
    if not 0 <= block < (1 << 26):
        raise ConfigurationError(f"block must be 26-bit, got {block}")
    return block >> 10

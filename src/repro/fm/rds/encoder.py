"""RDS encoder: program metadata -> 57 kHz-ready baseband waveform."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.constants import MPX_RATE_HZ, RDS_BITRATE_BPS
from repro.errors import ConfigurationError
from repro.fm.rds.bitstream import biphase_waveform, differential_encode
from repro.fm.rds.groups import Group, groups_for_program


class RdsEncoder:
    """Encode station metadata into the RDS baseband bitstream.

    Args:
        pi_code: 16-bit program identification code.
        ps_name: up-to-8-character station name shown on receivers.
        radiotext: optional up-to-64-character message (group 2A).
        program_type: 5-bit PTY code.
    """

    def __init__(
        self,
        pi_code: int,
        ps_name: str,
        radiotext: str = "",
        program_type: int = 0,
    ) -> None:
        if not 0 <= pi_code < (1 << 16):
            raise ConfigurationError("pi_code must be a 16-bit integer")
        self.pi_code = pi_code
        self.ps_name = ps_name
        self.radiotext = radiotext
        self.program_type = program_type

    def groups(self) -> List[Group]:
        """The repeating group schedule for this program."""
        return groups_for_program(
            self.pi_code, self.ps_name, self.radiotext, self.program_type
        )

    def bits(self, repetitions: int = 1) -> np.ndarray:
        """Raw (pre-differential) bitstream for ``repetitions`` schedules."""
        if repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        bits: List[int] = []
        for _ in range(repetitions):
            for group in self.groups():
                for block in group.to_blocks():
                    bits.extend((block >> (25 - k)) & 1 for k in range(26))
        return np.asarray(bits, dtype=int)

    def baseband(
        self,
        duration_s: float,
        sample_rate: float = MPX_RATE_HZ,
    ) -> np.ndarray:
        """Biphase baseband waveform spanning at least ``duration_s``.

        The group schedule repeats until the duration is covered, then the
        waveform is truncated to the exact sample count, mirroring a
        continuously-running broadcast encoder.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        n_samples = int(round(duration_s * sample_rate))
        schedule_bits = self.bits(repetitions=1).size
        bits_needed = int(np.ceil(duration_s * RDS_BITRATE_BPS)) + 1
        repetitions = int(np.ceil(bits_needed / schedule_bits))
        raw = self.bits(repetitions=repetitions)
        encoded = differential_encode(raw)
        waveform = biphase_waveform(encoded, sample_rate)
        if waveform.size < n_samples:
            # Loop the waveform; the schedule already repeats so the seam
            # only costs a couple of corrupted groups, like a real retune.
            reps = int(np.ceil(n_samples / waveform.size))
            waveform = np.tile(waveform, reps)
        return waveform[:n_samples]

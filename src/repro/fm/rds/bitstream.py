"""RDS physical-layer bit coding: differential encoding and biphase symbols.

The RDS bitstream is differentially encoded (``e[i] = d[i] xor e[i-1]``)
so carrier phase ambiguity at the receiver cannot flip the data, then each
bit becomes a biphase (Manchester) symbol: a half-period positive pulse
followed by its negation (or the reverse, for a zero). The waveform
produced here is the *baseband* biphase signal; the MPX composer
multiplies it onto the 57 kHz carrier.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.constants import MPX_RATE_HZ, RDS_BITRATE_BPS
from repro.dsp.filters import design_lowpass_fir, filter_signal
from repro.errors import ConfigurationError, DemodulationError
from repro.utils.validation import ensure_positive, ensure_real


def differential_encode(bits: Sequence[int], initial: int = 0) -> np.ndarray:
    """Differential encode: ``e[i] = d[i] xor e[i-1]``."""
    bits = np.asarray(list(bits), dtype=int)
    if bits.size == 0:
        raise ConfigurationError("bits must be non-empty")
    if np.any((bits != 0) & (bits != 1)):
        raise ConfigurationError("bits must be 0/1")
    encoded = np.empty_like(bits)
    prev = int(initial)
    for i, d in enumerate(bits):
        prev = int(d) ^ prev
        encoded[i] = prev
    return encoded


def differential_decode(bits: Sequence[int], initial: int = 0) -> np.ndarray:
    """Invert :func:`differential_encode`: ``d[i] = e[i] xor e[i-1]``."""
    bits = np.asarray(list(bits), dtype=int)
    if bits.size == 0:
        raise ConfigurationError("bits must be non-empty")
    shifted = np.concatenate([[int(initial)], bits[:-1]])
    return bits ^ shifted


def biphase_waveform(
    bits: Sequence[int],
    sample_rate: float = MPX_RATE_HZ,
    bitrate: float = RDS_BITRATE_BPS,
    shape: bool = True,
) -> np.ndarray:
    """Render differentially-encoded bits as a biphase baseband waveform.

    Args:
        bits: already differentially encoded bit sequence.
        sample_rate: output sample rate.
        bitrate: RDS bit rate (1187.5 bps).
        shape: band-limit the square pulses to ~2.4 kHz so the subcarrier
            stays within the 56-58 kHz slot (real RDS uses root-raised-
            cosine shaping; a sharp low-pass preserves the behaviour that
            matters here).

    Returns:
        Real waveform of ``round(len(bits) * sample_rate / bitrate)``
        samples, values around [-1, 1].
    """
    bits = np.asarray(list(bits), dtype=int)
    if bits.size == 0:
        raise ConfigurationError("bits must be non-empty")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    bitrate = ensure_positive(bitrate, "bitrate")
    samples_per_bit = sample_rate / bitrate
    n_total = int(round(bits.size * samples_per_bit))
    waveform = np.zeros(n_total)
    for i, bit in enumerate(bits):
        start = int(round(i * samples_per_bit))
        stop = int(round((i + 1) * samples_per_bit))
        mid = (start + stop) // 2
        level = 1.0 if bit else -1.0
        waveform[start:mid] = level
        waveform[mid:stop] = -level
    if shape:
        taps = design_lowpass_fir(2.4e3, sample_rate, 513)
        waveform = filter_signal(taps, waveform)
        peak = float(np.max(np.abs(waveform)))
        if peak > 0:
            waveform = waveform / peak
    return waveform


def bits_from_waveform(
    waveform: np.ndarray,
    n_bits: int,
    sample_rate: float = MPX_RATE_HZ,
    bitrate: float = RDS_BITRATE_BPS,
) -> np.ndarray:
    """Recover (differentially encoded) bits from a biphase waveform.

    Correlates each bit period against the biphase template
    (+1 first half, -1 second half); the sign of the correlation is the
    bit. Assumes symbol timing is aligned to the start of the waveform,
    which holds for the library's synchronous decode path.

    Raises:
        DemodulationError: if the waveform is shorter than ``n_bits``
            periods.
    """
    waveform = ensure_real(waveform, "waveform")
    samples_per_bit = sample_rate / bitrate
    needed = int(round(n_bits * samples_per_bit))
    if waveform.size < needed:
        raise DemodulationError(
            f"waveform has {waveform.size} samples, need {needed} for {n_bits} bits"
        )
    bits = np.empty(n_bits, dtype=int)
    for i in range(n_bits):
        start = int(round(i * samples_per_bit))
        stop = int(round((i + 1) * samples_per_bit))
        mid = (start + stop) // 2
        metric = float(np.sum(waveform[start:mid]) - np.sum(waveform[mid:stop]))
        bits[i] = 1 if metric > 0 else 0
    return bits

"""RDS decoder: 57 kHz subcarrier -> PS name / radiotext.

Pipeline: band-pass around 57 kHz, synchronous demodulation with a carrier
derived from the 19 kHz pilot (3rd harmonic) or a local 57 kHz reference,
matched-filter bit detection, differential decode, then a sliding 26-bit
block synchronizer driven by the CRC syndromes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.constants import MPX_RATE_HZ, PILOT_FREQ_HZ, RDS_BITRATE_BPS, RDS_SUBCARRIER_HZ
from repro.dsp.filters import bandpass_fir, design_lowpass_fir, filter_signal
from repro.dsp.pll import PhaseLockedLoop
from repro.errors import DemodulationError
from repro.fm.rds.bitstream import bits_from_waveform, differential_decode
from repro.fm.rds.crc import block_information, verify_block
from repro.fm.rds.groups import decode_groups
from repro.utils.validation import ensure_real


@dataclass
class RdsMessage:
    """Decoded RDS content.

    Attributes:
        pi_code: program identification, or None if nothing decoded.
        ps_name: reassembled program-service name.
        radiotext: reassembled radiotext (empty if not broadcast).
        groups_decoded: number of CRC-clean groups used.
    """

    pi_code: Optional[int]
    ps_name: str
    radiotext: str
    groups_decoded: int


class RdsDecoder:
    """Decode RDS from a demodulated MPX baseband.

    Args:
        mpx_rate: sample rate of the MPX input.
        use_pilot: derive the 57 kHz carrier from the 19 kHz pilot PLL
            (phase-coherent, like real receivers). When False a free
            57 kHz reference with phase search is used — needed for
            mono-with-RDS signals that carry no pilot.
    """

    def __init__(self, mpx_rate: float = MPX_RATE_HZ, use_pilot: bool = True) -> None:
        self.mpx_rate = mpx_rate
        self.use_pilot = use_pilot

    def _carrier(self, mpx: np.ndarray) -> np.ndarray:
        n = mpx.size
        if self.use_pilot:
            pilot_band = filter_signal(
                bandpass_fir(18.5e3, 19.5e3, self.mpx_rate, 1025), mpx
            )
            pll = PhaseLockedLoop(PILOT_FREQ_HZ, self.mpx_rate, loop_bandwidth_hz=30.0)
            track = pll.track(pilot_band)
            if track.locked:
                return track.reference_harmonic(3)
        t = np.arange(n) / self.mpx_rate
        return np.cos(2.0 * np.pi * RDS_SUBCARRIER_HZ * t)

    def _demodulate_bits(self, mpx: np.ndarray) -> np.ndarray:
        rds_band = filter_signal(bandpass_fir(54e3, 60e3, self.mpx_rate, 1025), mpx)
        best_bits: Optional[np.ndarray] = None
        best_energy = -np.inf
        # Phase ambiguity: try a small set of carrier phases and keep the
        # one with the most post-detection energy. Differential coding
        # absorbs the residual sign ambiguity.
        carrier = self._carrier(mpx)
        t = np.arange(mpx.size) / self.mpx_rate
        quadrature = np.cos(
            2.0 * np.pi * RDS_SUBCARRIER_HZ * t + np.pi / 2
        )
        for ref in (carrier, quadrature):
            baseband = 2.0 * rds_band * ref
            baseband = filter_signal(
                design_lowpass_fir(2.4e3, self.mpx_rate, 513), baseband
            )
            energy = float(np.mean(baseband**2))
            if energy > best_energy:
                best_energy = energy
                n_bits = int(mpx.size / self.mpx_rate * RDS_BITRATE_BPS)
                best_bits = bits_from_waveform(baseband, n_bits, self.mpx_rate)
        if best_bits is None or best_bits.size < 104:
            raise DemodulationError("not enough RDS bits for one group")
        return best_bits

    def _synchronize(self, data_bits: np.ndarray) -> List[Tuple[int, int, int, int]]:
        """Slide a 26-bit window to find CRC-clean A-B-C-D block runs."""
        groups: List[Tuple[int, int, int, int]] = []
        n = data_bits.size
        i = 0
        while i + 104 <= n:
            blocks = []
            ok = True
            expected = ("A", "B", "C", "D")
            for b in range(4):
                word = 0
                for k in range(26):
                    word = (word << 1) | int(data_bits[i + 26 * b + k])
                name = verify_block(word)
                if name != expected[b] and not (b == 2 and name == "C'"):
                    ok = False
                    break
                blocks.append(block_information(word))
            if ok:
                groups.append(tuple(blocks))
                i += 104
            else:
                i += 1
        return groups

    def decode(self, mpx: np.ndarray) -> RdsMessage:
        """Decode all recoverable RDS groups from an MPX block.

        Raises:
            DemodulationError: when the input is too short to contain even
                one group.
        """
        mpx = ensure_real(mpx, "mpx")
        encoded_bits = self._demodulate_bits(mpx)
        # Both polarities of the differential stream are tried: carrier
        # phase inversion flips every encoded bit, which differential
        # decoding turns into an error only at the first bit.
        candidates = []
        for polarity in (encoded_bits, 1 - encoded_bits):
            data_bits = differential_decode(polarity)
            candidates.append(self._synchronize(data_bits))
        groups = max(candidates, key=len)
        decoded = decode_groups(groups)
        return RdsMessage(
            pi_code=decoded["pi_code"],
            ps_name=decoded["ps_name"],
            radiotext=decoded["radiotext"],
            groups_decoded=len(groups),
        )

"""Composite (MPX) baseband construction and ideal decomposition.

The FM baseband of a stereo broadcast (paper Fig. 3) is

    mpx(t) = a_mono * (L+R)(t)
           + a_pilot * cos(2 pi 19k t)
           + a_stereo * (L-R)(t) * cos(2 pi 38k t)
           + a_rds * rds(t) * cos(2 pi 57k t)

with the 38 kHz and 57 kHz carriers phase-locked to the pilot. The MPX is
normalized to [-1, 1] before FM modulation so the deviation budget is
respected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.constants import (
    AUDIO_RATE_HZ,
    MONO_AUDIO_HIGH_HZ,
    MPX_RATE_HZ,
    PILOT_FREQ_HZ,
    RDS_SUBCARRIER_HZ,
    STEREO_SUBCARRIER_HZ,
)
from repro.dsp.filters import bandpass_fir, design_lowpass_fir, filter_signal
from repro.dsp.resample import resample_by_ratio
from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import ensure_equal_length, ensure_real


@dataclass
class MpxComponents:
    """Inputs to the MPX composer.

    Attributes:
        left: left audio channel at ``audio_rate``.
        right: right audio channel; ``None`` broadcasts mono (and, unless
            ``force_pilot`` is set, omits the pilot).
        rds_bipolar: optional RDS baseband (biphase symbols, +/-1-ish) at
            ``mpx_rate``; ``None`` omits the RDS subcarrier.
        audio_rate: sample rate of the audio channels.
        mpx_rate: output composite sample rate.
        stereo: if True and ``right`` is provided, emit pilot + L-R.
        force_pilot: emit the 19 kHz pilot even for mono content — the
            paper's mono-to-stereo backscatter trick (section 3.3.1).
    """

    left: np.ndarray
    right: Optional[np.ndarray] = None
    rds_bipolar: Optional[np.ndarray] = None
    audio_rate: float = AUDIO_RATE_HZ
    mpx_rate: float = MPX_RATE_HZ
    stereo: bool = True
    force_pilot: bool = False


# Deviation budget fractions (typical US broadcast practice): 90% program,
# 9% pilot, ~4.5% RDS (RDS rides on top; total stays within deviation after
# normalization).
MONO_FRACTION = 0.90
PILOT_FRACTION_MPX = 0.09
RDS_FRACTION = 0.045


def compose_mpx(components: MpxComponents) -> np.ndarray:
    """Build the composite MPX baseband signal, normalized to [-1, 1].

    Returns:
        Real array at ``components.mpx_rate``.

    Raises:
        SignalError: on mismatched channel lengths.
        ConfigurationError: if the MPX rate cannot carry the 57 kHz RDS
            subcarrier.
    """
    left = ensure_real(components.left, "left")
    if components.mpx_rate < 2 * (RDS_SUBCARRIER_HZ + 3e3):
        raise ConfigurationError(
            f"mpx_rate {components.mpx_rate} too low for the 57 kHz subcarrier"
        )

    audio_lp = design_lowpass_fir(MONO_AUDIO_HIGH_HZ, components.audio_rate, 257)
    left = filter_signal(audio_lp, left)

    if components.right is not None:
        right = ensure_real(components.right, "right")
        ensure_equal_length(left, right, "left/right")
        right = filter_signal(audio_lp, right)
    else:
        right = None

    if right is not None and components.stereo:
        mono_audio = 0.5 * (left + right)
        diff_audio = 0.5 * (left - right)
        want_pilot = True
    else:
        mono_audio = left if right is None else 0.5 * (left + right)
        diff_audio = None
        want_pilot = components.force_pilot

    mono_mpx = resample_by_ratio(mono_audio, components.audio_rate, components.mpx_rate)
    n = mono_mpx.size
    t = np.arange(n) / components.mpx_rate

    mpx = MONO_FRACTION * mono_mpx
    if want_pilot:
        mpx = mpx + PILOT_FRACTION_MPX * np.cos(2.0 * np.pi * PILOT_FREQ_HZ * t)
    if diff_audio is not None:
        diff_mpx = resample_by_ratio(diff_audio, components.audio_rate, components.mpx_rate)
        diff_mpx = diff_mpx[:n]
        # 38 kHz carrier phase-locked to the pilot (2x frequency, 0 phase).
        carrier = np.cos(2.0 * np.pi * STEREO_SUBCARRIER_HZ * t)
        mpx = mpx + MONO_FRACTION * diff_mpx * carrier
    if components.rds_bipolar is not None:
        rds = ensure_real(components.rds_bipolar, "rds_bipolar")
        if rds.size < n:
            rds = np.concatenate([rds, np.zeros(n - rds.size)])
        carrier57 = np.cos(2.0 * np.pi * RDS_SUBCARRIER_HZ * t)
        mpx = mpx + RDS_FRACTION * rds[:n] * carrier57

    peak = float(np.max(np.abs(mpx)))
    if peak > 1.0:
        mpx = mpx / peak
    return mpx


def decompose_mpx(mpx: np.ndarray, mpx_rate: float = MPX_RATE_HZ) -> dict:
    """Ideal (filter-bank) decomposition of an MPX signal for analysis.

    Not a receiver — receivers live in :mod:`repro.fm.stereo` and use pilot
    recovery. This helper splits an MPX into its spectral constituents for
    tests and the Fig. 5 stereo-utilization survey.

    Returns:
        dict with keys ``mono`` (0-15 kHz), ``pilot`` (19 kHz band),
        ``stereo_rf`` (23-53 kHz band, still on its carrier) and ``rds_rf``
        (55-59 kHz band), all at ``mpx_rate``.
    """
    mpx = ensure_real(mpx, "mpx")
    mono = filter_signal(design_lowpass_fir(15e3, mpx_rate, 513), mpx)
    pilot = filter_signal(bandpass_fir(18.5e3, 19.5e3, mpx_rate, 1025), mpx)
    stereo_rf = filter_signal(bandpass_fir(23e3, 53e3, mpx_rate, 513), mpx)
    rds_rf = filter_signal(bandpass_fir(55e3, 59e3, mpx_rate, 1025), mpx)
    return {"mono": mono, "pilot": pilot, "stereo_rf": stereo_rf, "rds_rf": rds_rf}

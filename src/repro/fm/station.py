"""A complete simulated FM broadcast station.

Wraps program-material generation, MPX composition, RDS and FM modulation
into one object, standing in for the paper's USRP that replays recorded
station audio (section 5.2) and for the real Seattle stations of
section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.audio.music import PROGRAM_TYPES, program_material
from repro.constants import (
    AUDIO_RATE_HZ,
    FM_MAX_DEVIATION_HZ,
    MPX_RATE_HZ,
)
from repro.errors import ConfigurationError
from repro.fm.modulator import fm_modulate
from repro.fm.mpx import MpxComponents, compose_mpx
from repro.fm.rds.encoder import RdsEncoder
from repro.utils.rand import RngLike, as_generator, child_generator


@dataclass
class StationConfig:
    """Configuration of a simulated FM station.

    Attributes:
        program: one of ``news``, ``mixed``, ``pop``, ``rock`` — selects
            the synthetic program material; or ``silence`` for the
            unmodulated-carrier station used in the Fig. 6 micro-bench.
        stereo: broadcast in stereo (pilot + L-R) or mono.
        carrier_freq_hz: nominal channel center (bookkeeping only; the
            waveform is complex baseband).
        deviation_hz: peak FM deviation.
        audio_rate: program audio sample rate.
        mpx_rate: composite / IQ sample rate.
        rds: optional RDS encoder to include the 57 kHz subcarrier.
    """

    program: str = "news"
    stereo: bool = True
    carrier_freq_hz: float = 91.5e6
    deviation_hz: float = FM_MAX_DEVIATION_HZ
    audio_rate: float = AUDIO_RATE_HZ
    mpx_rate: float = MPX_RATE_HZ
    rds: Optional[RdsEncoder] = None

    def __post_init__(self) -> None:
        if self.program not in PROGRAM_TYPES + ("silence",):
            raise ConfigurationError(
                f"program must be one of {PROGRAM_TYPES + ('silence',)}, got {self.program!r}"
            )


class FMStation:
    """Generates the complex-baseband waveform of a broadcast FM station.

    Args:
        config: station parameters.
        rng: seed or Generator for the program-material synthesis.
    """

    def __init__(self, config: StationConfig = StationConfig(), rng: RngLike = None) -> None:
        self.config = config
        self._rng = as_generator(rng)

    def program_audio(self, duration_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """Synthesize ``(left, right)`` program audio for one transmission."""
        if self.config.program == "silence":
            n = int(round(duration_s * self.config.audio_rate))
            zeros = np.zeros(n)
            return zeros, zeros.copy()
        return program_material(
            self.config.program,
            duration_s,
            self.config.audio_rate,
            child_generator(self._rng, "program", self.config.program),
        )

    def mpx(self, duration_s: float) -> np.ndarray:
        """Composite baseband for ``duration_s`` seconds of program."""
        left, right = self.program_audio(duration_s)
        if self.config.program == "silence":
            # The Fig. 6/7 micro-benchmark station: FMaudio = 0, a truly
            # unmodulated carrier — no program, no pilot.
            n = int(round(duration_s * self.config.mpx_rate))
            return np.zeros(n)
        rds_wave = None
        if self.config.rds is not None:
            rds_wave = self.config.rds.baseband(duration_s, self.config.mpx_rate)
        components = MpxComponents(
            left=left,
            right=right if self.config.stereo else None,
            rds_bipolar=rds_wave,
            audio_rate=self.config.audio_rate,
            mpx_rate=self.config.mpx_rate,
            stereo=self.config.stereo,
        )
        return compose_mpx(components)

    def transmit(self, duration_s: float) -> np.ndarray:
        """Complex envelope of the station's RF output (unit amplitude)."""
        return fm_modulate(
            self.mpx(duration_s),
            sample_rate=self.config.mpx_rate,
            deviation_hz=self.config.deviation_hz,
        )

    def transmit_mpx_pair(self, duration_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(iq, mpx)`` so callers can reuse the composite."""
        mpx = self.mpx(duration_s)
        iq = fm_modulate(
            mpx, sample_rate=self.config.mpx_rate, deviation_hz=self.config.deviation_hz
        )
        return iq, mpx

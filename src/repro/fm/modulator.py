"""FM modulation (paper Eq. 1) at complex baseband.

An FM transmission is ``cos(2 pi fc t + 2 pi df integral(audio))``. We work
at complex baseband, so the carrier term drops and the modulator produces
the complex envelope ``exp(j 2 pi df integral(mpx))``. All downstream
processing (backscatter mixing, channel, discriminator) operates on this
envelope; the absolute carrier frequency only selects the FM channel.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FM_MAX_DEVIATION_HZ, MPX_RATE_HZ
from repro.dsp.phase import frequency_to_phase
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive, ensure_real


def fm_modulate(
    mpx: np.ndarray,
    sample_rate: float = MPX_RATE_HZ,
    deviation_hz: float = FM_MAX_DEVIATION_HZ,
    carrier_offset_hz: float = 0.0,
    amplitude: float = 1.0,
) -> np.ndarray:
    """FM-modulate an MPX baseband into a complex envelope.

    Args:
        mpx: composite baseband, nominally within [-1, 1]; values outside
            simply over-deviate like a real over-driven exciter.
        sample_rate: complex-baseband sample rate. Must exceed twice the
            occupied bandwidth (Carson); checked loosely.
        deviation_hz: peak deviation at |mpx| == 1 (75 kHz broadcast max).
        carrier_offset_hz: offset of the carrier from the simulation
            center; used to place a station off-center in wideband tests.
        amplitude: envelope amplitude (constant for FM).

    Returns:
        Complex array, same length as ``mpx``.
    """
    mpx = ensure_real(mpx, "mpx")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    deviation_hz = ensure_positive(deviation_hz, "deviation_hz")
    if deviation_hz >= sample_rate / 2:
        raise ConfigurationError("deviation must be far below Nyquist")
    if abs(carrier_offset_hz) >= sample_rate / 2:
        raise ConfigurationError("carrier offset beyond Nyquist")
    inst_freq = carrier_offset_hz + deviation_hz * mpx
    phase = frequency_to_phase(inst_freq, sample_rate)
    return amplitude * np.exp(1j * phase)


def fm_modulate_mpx(
    mpx: np.ndarray,
    sample_rate: float = MPX_RATE_HZ,
    deviation_hz: float = FM_MAX_DEVIATION_HZ,
) -> np.ndarray:
    """Convenience alias of :func:`fm_modulate` with zero carrier offset."""
    return fm_modulate(mpx, sample_rate, deviation_hz)

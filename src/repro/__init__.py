"""FM Backscatter (NSDI 2017) reproduction library.

Transforms everyday objects into FM radio stations: backscatter ambient
FM broadcasts so that any unmodified FM receiver (smartphone, car radio)
decodes the overlaid audio or data. See DESIGN.md for the system map and
EXPERIMENTS.md for the paper-figure reproductions.
"""

from repro._version import __version__

__all__ = ["__version__"]

"""Drive-test simulation of FM signal strength across a city (Fig. 2).

The paper drives an SDR through Seattle, grids the city into 0.8 x 0.8 mi
squares (69 measurements) and records the strongest station's median power
per square: -10 to -55 dBm with a median of -35.15 dBm. We reproduce the
*distribution* with a synthetic city: FM towers placed around the area,
log-distance propagation with urban shadowing, strongest-station selection
per grid cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.channel.pathloss import log_distance_path_loss_db
from repro.errors import ConfigurationError
from repro.utils.rand import RngLike, as_generator, child_generator


@dataclass
class SurveyResult:
    """Outcome of a simulated drive test.

    Attributes:
        powers_dbm: strongest-station power per grid cell.
        grid_shape: (rows, cols) of the survey grid.
    """

    powers_dbm: np.ndarray
    grid_shape: Tuple[int, int]

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF ``(power_dbm_sorted, probability)`` — Fig. 2a."""
        x = np.sort(self.powers_dbm)
        p = np.arange(1, x.size + 1) / x.size
        return x, p

    @property
    def median_dbm(self) -> float:
        """Median strongest-station power across the city."""
        return float(np.median(self.powers_dbm))


@dataclass
class CitySurvey:
    """Synthetic city for FM power surveys.

    Defaults are calibrated so the resulting CDF spans the paper's
    -10..-55 dBm with a median near -35 dBm.

    Attributes:
        area_mi: survey square edge length in miles.
        grid_cells: cells per edge (the paper's 69 measurements come from
            roughly an 8x9 grid).
        n_towers: FM towers serving the area; most sit on a common antenna
            farm outside the grid, some in-town.
        tower_erp_dbm: effective radiated power per tower (80 dBm =
            100 kW).
        path_loss_exponent: urban propagation exponent.
        shadowing_sigma_db: log-normal shadowing from buildings/terrain.
    """

    area_mi: float = 6.4
    grid_cells: int = 8
    n_towers: int = 12
    tower_erp_dbm: float = 80.0
    path_loss_exponent: float = 3.2
    shadowing_sigma_db: float = 9.0
    frequency_hz: float = 98e6

    def __post_init__(self) -> None:
        if self.grid_cells < 2:
            raise ConfigurationError("grid_cells must be >= 2")
        if self.n_towers < 1:
            raise ConfigurationError("n_towers must be >= 1")

    translator_erp_dbm: float = 50.0
    """ERP of the low-power in-town translators/boosters (50 dBm = 100 W);
    full-power stations broadcast from an antenna farm outside town."""

    def _towers_m(self, gen: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        """Tower coordinates and per-tower ERP: a high-power cluster on an
        antenna farm outside the grid plus low-power in-town translators."""
        area_m = self.area_mi * 1609.34
        n_farm = max(self.n_towers * 2 // 3, 1)
        farm_center = np.array([1.8 * area_m, 1.3 * area_m])
        farm = farm_center + 400.0 * gen.standard_normal((n_farm, 2))
        n_town = self.n_towers - n_farm
        if n_town > 0:
            town = gen.uniform(-0.5 * area_m, 1.5 * area_m, size=(n_town, 2))
            positions = np.vstack([farm, town])
        else:
            positions = farm
        erps = np.concatenate(
            [
                np.full(n_farm, self.tower_erp_dbm),
                np.full(max(n_town, 0), self.translator_erp_dbm),
            ]
        )
        return positions, erps

    def run(self, rng: RngLike = None) -> SurveyResult:
        """Simulate the drive test: strongest station per grid cell."""
        gen = as_generator(rng)
        area_m = self.area_mi * 1609.34
        towers, erps = self._towers_m(gen)
        axis = (np.arange(self.grid_cells) + 0.5) * (area_m / self.grid_cells)
        powers = np.empty(self.grid_cells * self.grid_cells)
        idx = 0
        for y in axis:
            for x in axis:
                cell = np.array([x, y])
                distances = np.linalg.norm(towers - cell, axis=1)
                cell_gen = child_generator(gen, "cell", idx)
                losses = log_distance_path_loss_db(
                    distances,
                    self.frequency_hz,
                    exponent=self.path_loss_exponent,
                    shadowing_sigma_db=self.shadowing_sigma_db,
                    rng=cell_gen,
                )
                received = erps - np.asarray(losses)
                powers[idx] = float(np.max(received))
                idx += 1
        return SurveyResult(powers_dbm=powers, grid_shape=(self.grid_cells, self.grid_cells))


def diurnal_power_series(
    n_minutes: int = 1440,
    mean_dbm: float = -33.0,
    sigma_db: float = 0.7,
    rng: RngLike = None,
) -> np.ndarray:
    """Per-minute received power at a fixed location over a day (Fig. 2b).

    The paper measures a 0.7 dB standard deviation over 24 hours —
    broadcast ERP is regulated and constant, so only slow environmental
    variation remains. Modelled as an AR(1) process around the mean.
    """
    if n_minutes < 2:
        raise ConfigurationError("n_minutes must be >= 2")
    gen = as_generator(rng)
    rho = 0.95  # slow environmental drift
    innovations = gen.standard_normal(n_minutes) * sigma_db * np.sqrt(1 - rho**2)
    series = np.empty(n_minutes)
    series[0] = gen.standard_normal() * sigma_db
    for i in range(1, n_minutes):
        series[i] = rho * series[i - 1] + innovations[i]
    return mean_dbm + series

"""Stereo-stream utilization by program format (Fig. 5).

The paper records four stations for 24 hours and compares the power in the
stereo (L-R) band against the power in the empty 16-18 kHz guard band.
News/talk stations barely use the stereo stream (speech is identical in L
and R); music stations fill it. We regenerate the statistic by composing
MPX signals from the synthetic program materials and measuring the same
band-power ratio over many snapshots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.audio.music import PROGRAM_TYPES, program_material
from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.dsp.spectrum import band_power
from repro.errors import ConfigurationError
from repro.fm.mpx import MpxComponents, compose_mpx
from repro.utils.rand import RngLike, as_generator, child_generator


def stereo_to_noise_ratio_db(mpx: np.ndarray, mpx_rate: float = MPX_RATE_HZ) -> float:
    """P(23-53 kHz stereo band) over P(16-18 kHz guard band), in dB."""
    stereo = band_power(mpx, mpx_rate, 23e3, 53e3)
    guard = band_power(mpx, mpx_rate, 16e3, 18e3)
    return float(10.0 * np.log10(max(stereo, 1e-30) / max(guard, 1e-30)))


def stereo_to_noise_ratios_db(
    program: str,
    n_snapshots: int = 20,
    snapshot_seconds: float = 2.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Distribution of the Fig. 5 ratio for one program format.

    Args:
        program: ``news`` / ``mixed`` / ``pop`` / ``rock``.
        n_snapshots: independent program snapshots (stand-ins for the
            paper's 24 hours of samples).
        snapshot_seconds: duration of each snapshot.
        rng: seed or Generator.

    Returns:
        Array of ratios in dB, one per snapshot.
    """
    if program not in PROGRAM_TYPES:
        raise ConfigurationError(f"program must be one of {PROGRAM_TYPES}")
    if n_snapshots < 1:
        raise ConfigurationError("n_snapshots must be >= 1")
    gen = as_generator(rng)
    ratios = []
    for i in range(n_snapshots):
        left, right = program_material(
            program, snapshot_seconds, AUDIO_RATE_HZ, child_generator(gen, program, i)
        )
        mpx = compose_mpx(MpxComponents(left=left, right=right))
        ratios.append(stereo_to_noise_ratio_db(mpx))
    return np.asarray(ratios)

"""City station tables and synthetic band plans.

Fig. 4a reports licensed and detectable station counts for five US cities
(sourced from radio-locator and fmfool at publication time); we encode the
counts read off the figure and synthesize band plans consistent with the
FCC adjacency rule the paper cites: geographically close transmitters are
not assigned adjacent 200 kHz channels, which is precisely what leaves
empty channels for backscatter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.constants import FM_NUM_CHANNELS, fm_channel_centers_hz
from repro.errors import ConfigurationError
from repro.utils.rand import RngLike, as_generator


@dataclass(frozen=True)
class CityProfile:
    """Station counts for one city (paper Fig. 4a).

    Attributes:
        name: city name.
        licensed: stations licensed in the city.
        detectable: stations detectable in a sample zip code — can exceed
            ``licensed`` where neighboring cities' signals reach (Seattle)
            or fall short where licensed stations are dark (Chicago).
    """

    name: str
    licensed: int
    detectable: int


CITY_PROFILES: Dict[str, CityProfile] = {
    "SFO": CityProfile("SFO", licensed=35, detectable=59),
    "Seattle": CityProfile("Seattle", licensed=38, detectable=58),
    "Boston": CityProfile("Boston", licensed=45, detectable=42),
    "Chicago": CityProfile("Chicago", licensed=56, detectable=46),
    "LA": CityProfile("LA", licensed=55, detectable=48),
}
"""Counts read from paper Fig. 4a."""


def generate_band_plan(
    n_stations: int,
    rng: RngLike = None,
    min_separation_channels: int = 2,
    max_attempts: int = 10_000,
) -> np.ndarray:
    """Assign ``n_stations`` to the 100 FM channels with spacing rules.

    Args:
        n_stations: stations to place.
        rng: seed or Generator.
        min_separation_channels: minimum index distance between co-sited
            stations (2 reproduces the "no adjacent channels" rule).
        max_attempts: sampling budget before giving up.

    Returns:
        Sorted array of occupied channel indices (0-99).

    Raises:
        ConfigurationError: if the constraint cannot be satisfied.
    """
    if n_stations < 1:
        raise ConfigurationError("n_stations must be >= 1")
    if min_separation_channels < 1:
        raise ConfigurationError("min_separation_channels must be >= 1")
    capacity = (FM_NUM_CHANNELS + min_separation_channels - 1) // min_separation_channels
    if n_stations > capacity:
        raise ConfigurationError(
            f"{n_stations} stations cannot fit with separation {min_separation_channels}"
        )
    gen = as_generator(rng)
    for _ in range(max_attempts):
        channels = np.sort(gen.choice(FM_NUM_CHANNELS, size=n_stations, replace=False))
        if n_stations == 1 or np.min(np.diff(channels)) >= min_separation_channels:
            return channels
    # Fall back to a deterministic evenly-spaced plan with jitter.
    base = np.linspace(0, FM_NUM_CHANNELS - 1, n_stations).astype(int)
    return np.unique(base)


def band_plan_frequencies_hz(channels: np.ndarray) -> np.ndarray:
    """Center frequencies (Hz) of a channel-index band plan."""
    channels = np.asarray(channels, dtype=int)
    if np.any(channels < 0) or np.any(channels >= FM_NUM_CHANNELS):
        raise ConfigurationError("channel index out of range 0-99")
    return fm_channel_centers_hz()[channels]

"""FM-band surveys: signal strength, channel occupancy, stereo usage.

Reproduces the measurement studies of paper sections 3.1-3.3: the Seattle
drive test (Fig. 2), the five-city channel occupancy and minimum-shift
statistics (Fig. 4), and the stereo-stream utilization of different
program formats (Fig. 5).
"""

from repro.survey.stations import CITY_PROFILES, CityProfile, generate_band_plan
from repro.survey.occupancy import (
    min_shift_frequencies_hz,
    occupancy_summary,
    unoccupied_channels,
)
from repro.survey.drivetest import CitySurvey, SurveyResult, diurnal_power_series
from repro.survey.stereo_usage import stereo_to_noise_ratios_db

__all__ = [
    "CITY_PROFILES",
    "CityProfile",
    "CitySurvey",
    "SurveyResult",
    "diurnal_power_series",
    "generate_band_plan",
    "min_shift_frequencies_hz",
    "occupancy_summary",
    "stereo_to_noise_ratios_db",
    "unoccupied_channels",
]

"""Channel-occupancy statistics: unused channels and minimum shifts.

For every occupied channel, the paper computes the frequency separation to
the nearest *unoccupied* channel (Fig. 4b): this is the smallest usable
``fback``. The median across five cities is 200 kHz (one channel) and the
worst case stays under 800 kHz.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.constants import FM_CHANNEL_SPACING_HZ, FM_NUM_CHANNELS
from repro.errors import ConfigurationError


def unoccupied_channels(occupied: np.ndarray) -> np.ndarray:
    """Channel indices (0-99) with no station."""
    occupied = np.asarray(occupied, dtype=int)
    mask = np.ones(FM_NUM_CHANNELS, dtype=bool)
    if occupied.size:
        if np.any(occupied < 0) or np.any(occupied >= FM_NUM_CHANNELS):
            raise ConfigurationError("occupied channel index out of range")
        mask[occupied] = False
    return np.flatnonzero(mask)


def min_shift_frequencies_hz(occupied: np.ndarray) -> np.ndarray:
    """Per-station distance to the nearest free channel, in Hz.

    Args:
        occupied: channel indices with licensed stations.

    Returns:
        One value per occupied channel: ``|channel - nearest free| *
        200 kHz`` — the minimum ``fback`` a backscatter device next to
        that station needs.

    Raises:
        ConfigurationError: when every channel is occupied.
    """
    occupied = np.asarray(occupied, dtype=int)
    if occupied.size == 0:
        raise ConfigurationError("occupied must be non-empty")
    free = unoccupied_channels(occupied)
    if free.size == 0:
        raise ConfigurationError("no free channels: backscatter has nowhere to go")
    shifts = []
    for channel in occupied:
        distance = int(np.min(np.abs(free - channel)))
        shifts.append(distance * FM_CHANNEL_SPACING_HZ)
    return np.asarray(shifts)


def occupancy_summary(occupied: np.ndarray) -> Dict[str, float]:
    """Headline statistics of a band plan.

    Returns:
        dict with ``n_occupied``, ``n_free``, ``median_min_shift_hz`` and
        ``max_min_shift_hz``.
    """
    shifts = min_shift_frequencies_hz(occupied)
    return {
        "n_occupied": int(np.asarray(occupied).size),
        "n_free": int(unoccupied_channels(occupied).size),
        "median_min_shift_hz": float(np.median(shifts)),
        "max_min_shift_hz": float(np.max(shifts)),
    }

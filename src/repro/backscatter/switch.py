"""Physically faithful square-wave backscatter switching.

The RF switch (ADG902 in the prototype, an NMOS transistor in the IC)
toggles the antenna between open and short impedance states, multiplying
the incident field by +/-1 (paper section 3.3 item 3). This module
implements exactly that: render the Eq. 2 drive as a true square wave at a
high sample rate, multiply it with the ambient envelope, and downconvert
the product at ``fback`` — which is how the test suite *proves* the
fundamental-only shortcut in :mod:`repro.backscatter.modulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backscatter.modulator import backscatter_subcarrier_phase
from repro.constants import FM_MAX_DEVIATION_HZ
from repro.dsp.filters import design_lowpass_fir, filter_signal
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_1d, ensure_real


def square_wave_from_phase(phase_rad: np.ndarray) -> np.ndarray:
    """Hard-limit a cosine at the given phase into a +/-1 square wave.

    Zero crossings map to +1, matching a switch that idles in reflect.
    """
    phase_rad = ensure_real(phase_rad, "phase_rad")
    return np.where(np.cos(phase_rad) >= 0.0, 1.0, -1.0)


def switch_waveform(
    back_mpx: np.ndarray,
    fback_hz: float,
    sample_rate: float,
    deviation_hz: float = FM_MAX_DEVIATION_HZ,
) -> np.ndarray:
    """The +/-1 antenna-state sequence for an Eq. 2 transmission."""
    phase = backscatter_subcarrier_phase(back_mpx, fback_hz, sample_rate, deviation_hz)
    return square_wave_from_phase(phase)


@dataclass
class SquareWaveSwitch:
    """End-to-end square-wave backscatter at a wideband sample rate.

    Args:
        fback_hz: subcarrier frequency (600 kHz in the paper).
        sample_rate: wideband simulation rate; must comfortably exceed
            ``2 * (fback + deviation)`` — the default experiments use
            4.8 MHz for a 600 kHz shift.
        deviation_hz: device FM deviation.
    """

    fback_hz: float
    sample_rate: float
    deviation_hz: float = FM_MAX_DEVIATION_HZ

    def __post_init__(self) -> None:
        if self.sample_rate < 4.0 * self.fback_hz:
            raise ConfigurationError(
                "wideband rate should be >= 4x fback to keep the third "
                "harmonic representable without aliasing onto the signal"
            )

    def reflect(self, ambient_iq: np.ndarray, back_mpx: np.ndarray) -> np.ndarray:
        """Multiply the ambient envelope by the switch square wave.

        Both inputs must already be at ``sample_rate``; the output contains
        the up- and down-shifted mixing products plus odd harmonics,
        exactly like the physical reflection.
        """
        ambient_iq = ensure_1d(ambient_iq, "ambient_iq")
        back_mpx = ensure_real(back_mpx, "back_mpx")
        n = min(ambient_iq.size, back_mpx.size)
        wave = switch_waveform(
            back_mpx[:n], self.fback_hz, self.sample_rate, self.deviation_hz
        )
        return ambient_iq[:n] * wave

    def downconvert(
        self,
        reflected_iq: np.ndarray,
        channel_bandwidth_hz: float = 200e3,
        output_rate: float = None,
    ) -> np.ndarray:
        """Select the upper mixing product at ``+fback``.

        Mixes down by ``fback``, low-passes to the FM channel, and
        optionally decimates to ``output_rate`` (must divide the wideband
        rate evenly).
        """
        reflected_iq = ensure_1d(reflected_iq, "reflected_iq")
        n = reflected_iq.size
        t = np.arange(n) / self.sample_rate
        shifted = reflected_iq * np.exp(-2j * np.pi * self.fback_hz * t)
        taps = design_lowpass_fir(channel_bandwidth_hz, self.sample_rate, 513)
        filtered = filter_signal(taps, shifted.real) + 1j * filter_signal(
            taps, shifted.imag
        )
        if output_rate is None:
            return filtered
        ratio = self.sample_rate / output_rate
        step = int(round(ratio))
        if abs(ratio - step) > 1e-9 or step < 1:
            raise ConfigurationError(
                f"output_rate {output_rate} must integer-divide {self.sample_rate}"
            )
        return filtered[::step]

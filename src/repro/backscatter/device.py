"""The backscatter device: modes, baseband assembly, pilot injection.

A :class:`BackscatterDevice` owns a payload (audio waveform or data
waveform) and renders the device-side baseband ``FMback`` for one of the
paper's three placements:

* ``OVERLAY`` — payload goes in the mono band, heard mixed with the
  ambient program on any receiver (section 3.3).
* ``STEREO`` — payload rides the 38 kHz L-R subcarrier of an already-
  stereo station; no pilot is injected because the station provides one
  (section 3.3.1 case 2).
* ``MONO_TO_STEREO`` — payload rides the L-R subcarrier *and* the device
  injects the 19 kHz pilot, tricking receivers into stereo-decoding a
  mono broadcast: ``B(t)`` baseband is ``0.9 FMstereo + 0.1 cos(19 kHz)``
  (section 3.3.1 case 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.constants import (
    AUDIO_RATE_HZ,
    DEFAULT_FBACK_HZ,
    FM_MAX_DEVIATION_HZ,
    MPX_RATE_HZ,
    PILOT_FREQ_HZ,
    STEREO_SUBCARRIER_HZ,
)
from repro.dsp.filters import design_lowpass_fir, filter_signal
from repro.dsp.resample import resample_by_ratio
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_real


class BackscatterMode(enum.Enum):
    """Placement of the backscattered payload in the MPX spectrum."""

    OVERLAY = "overlay"
    STEREO = "stereo"
    MONO_TO_STEREO = "mono_to_stereo"


@dataclass
class BackscatterDevice:
    """Renders the device-side FM baseband for a payload.

    Args:
        mode: payload placement (see :class:`BackscatterMode`).
        fback_hz: subcarrier / channel shift (600 kHz in the evaluation).
        deviation_hz: FM deviation the device's modulator applies; the
            paper sets the maximum allowed value for loudness.
        audio_rate: sample rate of payload waveforms handed to
            :meth:`baseband`.
        mpx_rate: output baseband sample rate.
        payload_fraction: deviation share of the payload in pilot-
            injecting mode (0.9 per the paper's Eq. in section 3.3.1).
    """

    mode: BackscatterMode = BackscatterMode.OVERLAY
    fback_hz: float = DEFAULT_FBACK_HZ
    deviation_hz: float = FM_MAX_DEVIATION_HZ
    audio_rate: float = AUDIO_RATE_HZ
    mpx_rate: float = MPX_RATE_HZ
    payload_fraction: float = 0.9

    def __post_init__(self) -> None:
        if not isinstance(self.mode, BackscatterMode):
            raise ConfigurationError("mode must be a BackscatterMode")
        if not 0.0 < self.payload_fraction <= 1.0:
            raise ConfigurationError("payload_fraction must be in (0, 1]")

    def baseband(self, payload_audio: np.ndarray) -> np.ndarray:
        """Render ``FMback``: the device's baseband at ``mpx_rate``.

        Args:
            payload_audio: the audio (or audio-band data waveform) to
                transmit, at ``audio_rate``, nominally within [-1, 1].

        Returns:
            Real MPX-domain waveform in [-1, 1] at ``mpx_rate``.
        """
        payload_audio = ensure_real(payload_audio, "payload_audio")
        band_limited = filter_signal(
            design_lowpass_fir(15e3, self.audio_rate, 257), payload_audio
        )
        payload_mpx = resample_by_ratio(band_limited, self.audio_rate, self.mpx_rate)

        if self.mode is BackscatterMode.OVERLAY:
            return np.clip(payload_mpx, -1.0, 1.0)

        n = payload_mpx.size
        t = np.arange(n) / self.mpx_rate
        carrier38 = np.cos(2.0 * np.pi * STEREO_SUBCARRIER_HZ * t)
        stereo_payload = payload_mpx * carrier38

        if self.mode is BackscatterMode.STEREO:
            # Station already transmits the pilot; do not duplicate it.
            return np.clip(stereo_payload, -1.0, 1.0)

        pilot = np.cos(2.0 * np.pi * PILOT_FREQ_HZ * t)
        combined = (
            self.payload_fraction * stereo_payload
            + (1.0 - self.payload_fraction) * pilot
        )
        peak = float(np.max(np.abs(combined)))
        return combined / peak if peak > 1.0 else combined

    def injects_pilot(self) -> bool:
        """True when this device adds its own 19 kHz pilot."""
        return self.mode is BackscatterMode.MONO_TO_STEREO

"""Digitally-controlled oscillator (DCO) quantization model.

The paper's IC (section 4) synthesizes the FM-modulated switch drive with
an LC tank whose capacitance is set by a bank of **8 binary-weighted
capacitors** — so the instantaneous frequency of Eq. 2 is not continuous
but quantized to 256 steps across the tuning range. This module models
that quantization so the fidelity cost of the capacitor-bank resolution
can be measured (see ``benchmarks/test_ablation_dco.py``).

With 8 bits across a 2 x 75 kHz deviation range the step is ~586 Hz;
quantization noise lands ~50 dB below the program audio, which is why
the paper's IC gets away with so few bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FM_MAX_DEVIATION_HZ
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_real


@dataclass(frozen=True)
class CapacitorBankDco:
    """Quantizes a device baseband like the IC's capacitor-bank DCO.

    Args:
        n_bits: number of binary-weighted capacitors (8 in the paper).
        deviation_hz: peak FM deviation; the bank spans
            ``[-deviation, +deviation]`` around the subcarrier.
    """

    n_bits: int = 8
    deviation_hz: float = FM_MAX_DEVIATION_HZ

    def __post_init__(self) -> None:
        if not 1 <= self.n_bits <= 24:
            raise ConfigurationError(f"n_bits must be 1-24, got {self.n_bits}")
        if self.deviation_hz <= 0:
            raise ConfigurationError("deviation_hz must be positive")

    @property
    def n_levels(self) -> int:
        """Distinct oscillator frequencies the bank can produce."""
        return 1 << self.n_bits

    @property
    def frequency_step_hz(self) -> float:
        """Tuning granularity across the +/- deviation span."""
        return 2.0 * self.deviation_hz / (self.n_levels - 1)

    def quantize_baseband(self, back_mpx: np.ndarray) -> np.ndarray:
        """Quantize a normalized baseband ([-1, 1]) to the bank's levels.

        Values outside [-1, 1] clip, like a register that saturates.
        """
        back_mpx = ensure_real(back_mpx, "back_mpx")
        clipped = np.clip(back_mpx, -1.0, 1.0)
        codes = np.round((clipped + 1.0) / 2.0 * (self.n_levels - 1))
        return codes / (self.n_levels - 1) * 2.0 - 1.0

    def quantization_snr_db(self, back_mpx: np.ndarray) -> float:
        """Signal-to-quantization-noise of the quantized baseband."""
        back_mpx = ensure_real(back_mpx, "back_mpx")
        quantized = self.quantize_baseband(back_mpx)
        error = np.clip(back_mpx, -1.0, 1.0) - quantized
        signal_power = float(np.mean(back_mpx**2))
        error_power = float(np.mean(error**2))
        if error_power == 0:
            return float("inf")
        return 10.0 * np.log10(max(signal_power, 1e-30) / error_power)

"""Power and battery-life model of the backscatter hardware.

Reproduces section 4's IC budget — 1 uW digital baseband + 9.94 uW LC-tank
FM modulator + 0.13 uW NMOS switch = 11.07 uW — and the section 2 battery
comparisons: a conventional FM transmitter chip (18.8 mA) drains a 225 mAh
coin cell in under 12 hours, while the backscatter tag runs for almost
three years.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    IC_BASEBAND_POWER_W,
    IC_MODULATOR_POWER_W,
    IC_SWITCH_POWER_W,
)
from repro.errors import ConfigurationError

COIN_CELL_CAPACITY_MAH = 225.0
"""CR2032-class coin cell capacity used in the paper's comparison."""

COIN_CELL_VOLTAGE_V = 3.0
"""Nominal coin cell voltage."""

FM_CHIP_CURRENT_MA = 18.8
"""Transmit current of the Si4712/13 FM transmitter chip cited in sec. 2."""

FLEXIBLE_BATTERY_PEAK_MA = 10.0
"""Peak discharge current of the flexible battery cited for smart fabrics."""


@dataclass(frozen=True)
class PowerBudget:
    """Per-component power of the backscatter IC.

    Attributes:
        baseband_w: digital state machine power.
        modulator_w: digitally-controlled LC oscillator power.
        switch_w: NMOS backscatter switch power.
    """

    baseband_w: float = IC_BASEBAND_POWER_W
    modulator_w: float = IC_MODULATOR_POWER_W
    switch_w: float = IC_SWITCH_POWER_W

    def __post_init__(self) -> None:
        for name in ("baseband_w", "modulator_w", "switch_w"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    @property
    def total_w(self) -> float:
        """Total power draw in watts (11.07 uW for the paper's IC)."""
        return self.baseband_w + self.modulator_w + self.switch_w

    @property
    def total_uw(self) -> float:
        """Total power draw in microwatts."""
        return self.total_w * 1e6


def ic_power_budget() -> PowerBudget:
    """The paper's TSMC 65 nm IC budget (section 4)."""
    return PowerBudget()


def battery_life_hours(
    load_w: float,
    capacity_mah: float = COIN_CELL_CAPACITY_MAH,
    voltage_v: float = COIN_CELL_VOLTAGE_V,
) -> float:
    """Battery life of a constant load on an ideal battery.

    Real coin cells derate at high current (the paper notes life would be
    *shorter* than the ideal figure for the 18.8 mA FM chip, since the
    cell is rated at 0.2 mA); the ideal number still reproduces the
    paper's "less than 12 hours vs almost 3 years" contrast.

    Args:
        load_w: average power draw.
        capacity_mah: battery capacity.
        voltage_v: battery voltage.

    Returns:
        Hours of operation.
    """
    if load_w <= 0:
        raise ConfigurationError("load must be positive")
    if capacity_mah <= 0 or voltage_v <= 0:
        raise ConfigurationError("battery parameters must be positive")
    energy_wh = capacity_mah / 1000.0 * voltage_v
    return energy_wh / load_w


def fm_chip_power_w(voltage_v: float = COIN_CELL_VOLTAGE_V) -> float:
    """Power draw of the conventional FM transmitter chip."""
    return FM_CHIP_CURRENT_MA / 1000.0 * voltage_v


def duty_cycled_power_w(
    active_power_w: float,
    duty_cycle: float,
    sleep_power_w: float = 50e-9,
) -> float:
    """Average power with duty cycling (section 8: motion-triggered posters).

    Args:
        active_power_w: power while transmitting.
        duty_cycle: fraction of time active, in [0, 1].
        sleep_power_w: leakage while idle.
    """
    if not 0.0 <= duty_cycle <= 1.0:
        raise ConfigurationError("duty_cycle must be in [0, 1]")
    if active_power_w < 0 or sleep_power_w < 0:
        raise ConfigurationError("powers must be non-negative")
    return duty_cycle * active_power_w + (1.0 - duty_cycle) * sleep_power_w

"""Backscatter subcarrier synthesis and the audio-addition identity.

Paper Eq. 2 drives the switch with

    B(t) = cos(2 pi fback t + 2 pi df integral(FMback))

so the reflected product ``B(t) * FM_RF(t)``, observed at ``fc + fback``,
is an FM signal with baseband ``FMaudio + FMback``. The efficient
simulation path applies that identity directly in the MPX domain
(:func:`composite_mpx`); the physically faithful square-wave mixing that
*proves* the identity lives in :mod:`repro.backscatter.switch` and the two
are cross-validated in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FM_MAX_DEVIATION_HZ
from repro.dsp.phase import frequency_to_phase
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_positive, ensure_real


def backscatter_subcarrier_phase(
    back_mpx: np.ndarray,
    fback_hz: float,
    sample_rate: float,
    deviation_hz: float = FM_MAX_DEVIATION_HZ,
) -> np.ndarray:
    """Instantaneous phase of the Eq. 2 switch drive.

    Args:
        back_mpx: the backscatter device's baseband (audio or data MPX),
            nominally in [-1, 1].
        fback_hz: subcarrier frequency (600 kHz in the paper's setup).
        sample_rate: sample rate of ``back_mpx`` (must be high enough to
            represent ``fback_hz``).
        deviation_hz: FM deviation the device applies.

    Returns:
        Phase in radians, one sample per input sample.
    """
    back_mpx = ensure_real(back_mpx, "back_mpx")
    fback_hz = ensure_positive(fback_hz, "fback_hz")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    if fback_hz + deviation_hz >= sample_rate / 2:
        raise ConfigurationError(
            f"sample rate {sample_rate} cannot represent fback {fback_hz} "
            f"+ deviation {deviation_hz}"
        )
    inst_freq = fback_hz + deviation_hz * back_mpx
    return frequency_to_phase(inst_freq, sample_rate)


def subcarrier_envelope(
    back_mpx: np.ndarray,
    fback_hz: float,
    sample_rate: float,
    deviation_hz: float = FM_MAX_DEVIATION_HZ,
) -> np.ndarray:
    """Fundamental-only complex model of the switch drive.

    The +/-1 square wave's fundamental is ``(4/pi) cos(phase)``; its
    positive-frequency half, ``(2/pi) exp(j phase)``, is what lands in the
    target channel at ``fc + fback``. Mixing an ambient envelope with this
    is the fast equivalent of full square-wave simulation (harmonics land
    in channels >= 3*fback away).
    """
    phase = backscatter_subcarrier_phase(back_mpx, fback_hz, sample_rate, deviation_hz)
    return (2.0 / np.pi) * np.exp(1j * phase)


def composite_mpx(
    ambient_mpx: np.ndarray,
    back_mpx: np.ndarray,
    ambient_deviation_hz: float = FM_MAX_DEVIATION_HZ,
    back_deviation_hz: float = FM_MAX_DEVIATION_HZ,
    reference_deviation_hz: float = FM_MAX_DEVIATION_HZ,
) -> np.ndarray:
    """The audio-addition identity: the MPX seen at ``fc + fback``.

    An FM receiver tuned to the backscattered channel demodulates
    ``FMaudio(t) + FMback(t)`` (paper section 3.3). Deviations are
    book-kept explicitly: each component's instantaneous frequency is its
    MPX scaled by its own deviation, and the output is re-normalized to
    ``reference_deviation_hz`` so downstream demodulation uses a single
    deviation constant.

    Args:
        ambient_mpx: the broadcast station's composite baseband.
        back_mpx: the backscatter device's baseband.
        ambient_deviation_hz: station deviation (75 kHz broadcast max).
        back_deviation_hz: device deviation (the paper sets the maximum).
        reference_deviation_hz: normalization for the returned MPX.

    Returns:
        Composite MPX (may exceed [-1, 1]: the combined signal legitimately
        over-deviates relative to either component alone).
    """
    ambient_mpx = ensure_real(ambient_mpx, "ambient_mpx")
    back_mpx = ensure_real(back_mpx, "back_mpx")
    n = min(ambient_mpx.size, back_mpx.size)
    inst_freq = (
        ambient_deviation_hz * ambient_mpx[:n] + back_deviation_hz * back_mpx[:n]
    )
    return inst_freq / ensure_positive(reference_deviation_hz, "reference_deviation_hz")

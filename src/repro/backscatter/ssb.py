"""Single-sideband backscatter (paper footnote 2, via Interscatter).

Plain square-wave switching produces both ``cos(A+B)`` and ``cos(A-B)``
mixing products; the mirror image at ``fc - fback`` wastes power and can
interfere with another station. Interscatter-style SSB switching
approximates a complex exponential with a multi-level (or multi-phase)
switch drive, suppressing the unwanted sideband. We model the ideal
version — drive the reflection coefficient with ``exp(j phase)``
quantized to ``n_levels`` phases — and quantify the residual mirror power.
"""

from __future__ import annotations

import numpy as np

from repro.backscatter.modulator import backscatter_subcarrier_phase
from repro.constants import FM_MAX_DEVIATION_HZ
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_real


def ssb_switch_envelope(
    back_mpx: np.ndarray,
    fback_hz: float,
    sample_rate: float,
    deviation_hz: float = FM_MAX_DEVIATION_HZ,
    n_levels: int = 8,
) -> np.ndarray:
    """Complex switch drive approximating ``exp(j phase)``.

    Args:
        back_mpx: device baseband.
        fback_hz: subcarrier frequency.
        sample_rate: sample rate of ``back_mpx``.
        deviation_hz: device FM deviation.
        n_levels: number of discrete phase states the switch network can
            synthesize (Interscatter uses a small set of impedances);
            ``n_levels >= 4`` already rejects the mirror strongly.

    Returns:
        Complex reflection-coefficient sequence with ``|G| <= 1``.
    """
    back_mpx = ensure_real(back_mpx, "back_mpx")
    if n_levels < 2:
        raise ConfigurationError("n_levels must be >= 2")
    phase = backscatter_subcarrier_phase(back_mpx, fback_hz, sample_rate, deviation_hz)
    quantized = np.round(phase / (2.0 * np.pi / n_levels)) * (2.0 * np.pi / n_levels)
    return np.exp(1j * quantized)


def sideband_rejection_db(
    envelope: np.ndarray, fback_hz: float, sample_rate: float
) -> float:
    """Upper-to-mirror sideband power ratio of a switch drive, in dB.

    Computed from the spectrum of the drive itself: the power near
    ``+fback`` versus ``-fback``. A real square wave scores ~0 dB (equal
    sidebands); ideal SSB scores very high.
    """
    envelope = np.asarray(envelope)
    n = envelope.size
    spectrum = np.fft.fftshift(np.fft.fft(envelope))
    freqs = np.fft.fftshift(np.fft.fftfreq(n, 1.0 / sample_rate))
    half_width = 0.25 * fback_hz
    upper = (freqs > fback_hz - half_width) & (freqs < fback_hz + half_width)
    mirror = (freqs > -fback_hz - half_width) & (freqs < -fback_hz + half_width)
    p_upper = float(np.sum(np.abs(spectrum[upper]) ** 2))
    p_mirror = float(np.sum(np.abs(spectrum[mirror]) ** 2))
    return 10.0 * np.log10(max(p_upper, 1e-30) / max(p_mirror, 1e-30))

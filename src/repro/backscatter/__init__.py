"""FM backscatter: the paper's core contribution.

A backscatter switch toggles its antenna between reflect and absorb,
multiplying the ambient FM waveform by a +/-1 square wave. Driving the
switch with an FM-modulated square wave (Eq. 2) makes the product, viewed
at ``fc + fback``, another valid FM signal whose baseband audio is the
*sum* of the ambient audio and the backscattered audio.

:mod:`repro.backscatter.switch` implements the physical square-wave mixing
for validation; :mod:`repro.backscatter.modulator` implements the efficient
audio-domain addition identity used by the experiment harness; and
:mod:`repro.backscatter.device` wraps modes (overlay / stereo / mono-to-
stereo) into a single device object.
"""

from repro.backscatter.switch import (
    SquareWaveSwitch,
    square_wave_from_phase,
    switch_waveform,
)
from repro.backscatter.modulator import (
    backscatter_subcarrier_phase,
    composite_mpx,
    subcarrier_envelope,
)
from repro.backscatter.dco import CapacitorBankDco
from repro.backscatter.device import BackscatterDevice, BackscatterMode
from repro.backscatter.power import (
    PowerBudget,
    battery_life_hours,
    duty_cycled_power_w,
    ic_power_budget,
)
from repro.backscatter.ssb import ssb_switch_envelope, sideband_rejection_db

__all__ = [
    "BackscatterDevice",
    "BackscatterMode",
    "CapacitorBankDco",
    "PowerBudget",
    "SquareWaveSwitch",
    "backscatter_subcarrier_phase",
    "battery_life_hours",
    "composite_mpx",
    "duty_cycled_power_w",
    "ic_power_budget",
    "sideband_rejection_db",
    "square_wave_from_phase",
    "ssb_switch_envelope",
    "subcarrier_envelope",
]

"""Fig. 8 — BER of overlay backscatter versus distance, power, bit rate.

Data rides the mono band on top of real program audio (the paper replays
8 s clips of news / mixed / pop / rock stations through a USRP). Three
rates: 100 bps 2-FSK, and FDM-4FSK at 1.6 / 3.2 kbps. Expected shape:
100 bps near-zero BER to >= 6 ft at every power down to -60 dBm (and past
12 ft above -60 dBm); higher rates trade range; content with more
high-frequency energy (rock) interferes more.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.data.ber import bit_error_rate
from repro.data.bits import random_bits
from repro.data.fdm import FdmFskModem
from repro.data.fsk import BinaryFskModem
from repro.errors import ConfigurationError
from repro.engine import AxisRef, PointRun, Scenario, SweepSpec, power_key, run_scenario
from repro.utils.rand import RngLike, child_generator

DEFAULT_POWERS_DBM = (-20.0, -30.0, -40.0, -50.0, -60.0)
DEFAULT_DISTANCES_FT = (1, 2, 4, 6, 8, 12, 16, 20)

RATE_CONFIGS = {
    "100bps": {"kind": "bfsk", "n_bits": 150},
    "1.6kbps": {"kind": "fdm", "symbol_rate": 200, "n_bits": 1600},
    "3.2kbps": {"kind": "fdm", "symbol_rate": 400, "n_bits": 3200},
}


def make_modem(rate: str):
    """Construct the paper's modem for a named bit rate."""
    if rate not in RATE_CONFIGS:
        raise ConfigurationError(f"rate must be one of {sorted(RATE_CONFIGS)}")
    config = RATE_CONFIGS[rate]
    if config["kind"] == "bfsk":
        return BinaryFskModem()
    return FdmFskModem(symbol_rate=config["symbol_rate"])


def score_ber(run: PointRun, modem) -> float:
    """Demodulate the runner-transmitted waveform and score its BER.

    Module-level (and the modem a picklable dataclass) so the scenario
    ships to process-pool workers; the transmission itself is declared
    via ``payload``, which also lets the batched backend vectorize it.
    """
    bits = run.data["bits"]
    audio = run.chain.payload_channel(run.received)
    detected = modem.demodulate(audio, bits.size)
    return bit_error_rate(bits, detected)


def run(
    rate: str = "100bps",
    powers_dbm: Sequence[float] = DEFAULT_POWERS_DBM,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    program: str = "news",
    n_bits: Optional[int] = None,
    rng: RngLike = None,
) -> Dict[str, object]:
    """BER sweep for one bit rate (one panel of Fig. 8).

    Returns:
        dict with ``distances_ft`` and one BER list per power level
        (keys ``"P<power>"``).
    """
    modem = make_modem(rate)
    if n_bits is None:
        n_bits = RATE_CONFIGS[rate]["n_bits"]

    def prepare(gen):
        bits = random_bits(n_bits, child_generator(gen, "payload", rate))
        return {"bits": bits, "waveform": modem.modulate(bits)}

    scenario = Scenario(
        name="fig08",
        sweep=SweepSpec.grid(power_dbm=tuple(powers_dbm), distance_ft=tuple(distances_ft)),
        prepare=prepare,
        base_chain={"program": program, "stereo_decode": False},
        chain_axes=("power_dbm", "distance_ft"),
        rng_keys=(rate, AxisRef("power_dbm"), AxisRef("distance_ft")),
        payload="waveform",
        measure=score_ber,
        measure_params={"modem": modem},
    )
    result = run_scenario(scenario, rng=rng)

    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    for power in powers_dbm:
        results[power_key(power)] = result.series(along="distance_ft", power_dbm=power)
    return results

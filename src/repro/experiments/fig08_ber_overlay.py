"""Fig. 8 — BER of overlay backscatter versus distance, power, bit rate.

Data rides the mono band on top of real program audio (the paper replays
8 s clips of news / mixed / pop / rock stations through a USRP). Three
rates: 100 bps 2-FSK, and FDM-4FSK at 1.6 / 3.2 kbps. Expected shape:
100 bps near-zero BER to >= 6 ft at every power down to -60 dBm (and past
12 ft above -60 dBm); higher rates trade range; content with more
high-frequency energy (rock) interferes more.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.data.bits import random_bits
from repro.data.fdm import FdmFskModem
from repro.data.fsk import BinaryFskModem
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentChain, measure_data_ber
from repro.utils.rand import RngLike, as_generator, child_generator

DEFAULT_POWERS_DBM = (-20.0, -30.0, -40.0, -50.0, -60.0)
DEFAULT_DISTANCES_FT = (1, 2, 4, 6, 8, 12, 16, 20)

RATE_CONFIGS = {
    "100bps": {"kind": "bfsk", "n_bits": 150},
    "1.6kbps": {"kind": "fdm", "symbol_rate": 200, "n_bits": 1600},
    "3.2kbps": {"kind": "fdm", "symbol_rate": 400, "n_bits": 3200},
}


def make_modem(rate: str):
    """Construct the paper's modem for a named bit rate."""
    if rate not in RATE_CONFIGS:
        raise ConfigurationError(f"rate must be one of {sorted(RATE_CONFIGS)}")
    config = RATE_CONFIGS[rate]
    if config["kind"] == "bfsk":
        return BinaryFskModem()
    return FdmFskModem(symbol_rate=config["symbol_rate"])


def run(
    rate: str = "100bps",
    powers_dbm: Sequence[float] = DEFAULT_POWERS_DBM,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    program: str = "news",
    n_bits: int = None,
    rng: RngLike = None,
) -> Dict[str, object]:
    """BER sweep for one bit rate (one panel of Fig. 8).

    Returns:
        dict with ``distances_ft`` and one BER list per power level
        (keys ``"P<power>"``).
    """
    gen = as_generator(rng)
    modem = make_modem(rate)
    if n_bits is None:
        n_bits = RATE_CONFIGS[rate]["n_bits"]
    bits = random_bits(n_bits, child_generator(gen, "payload", rate))

    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    for power in powers_dbm:
        series: List[float] = []
        for distance in distances_ft:
            chain = ExperimentChain(
                program=program,
                power_dbm=power,
                distance_ft=distance,
                stereo_decode=False,
            )
            ber = measure_data_ber(
                chain, modem, bits, child_generator(gen, rate, power, distance)
            )
            series.append(ber)
        results[f"P{int(power)}"] = series
    return results

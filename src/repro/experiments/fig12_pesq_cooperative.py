"""Fig. 12 — PESQ with cooperative (two-phone MIMO) backscatter.

Phone 1 tunes to ``fc + fback`` (ambient + backscatter), phone 2 to ``fc``
(ambient only). The section 3.3 cancellation — 10x resampling +
cross-correlation sync + 13 kHz pilot amplitude calibration — removes the
ambient program, so PESQ reaches ~4 for -20..-50 dBm, failing only when
the backscattered channel itself drops below the FM threshold.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.audio.pesq import pesq_like
from repro.audio.speech import speech_like
from repro.backscatter.device import BackscatterDevice, BackscatterMode
from repro.backscatter.modulator import composite_mpx
from repro.channel.noise import complex_awgn
from repro.constants import AUDIO_RATE_HZ, COOP_PILOT_FREQ_HZ, MPX_RATE_HZ
from repro.engine import AxisRef, CachedAmbient, Scenario, SweepSpec, power_key, run_scenario
from repro.experiments.common import ExperimentChain
from repro.fm.modulator import fm_modulate
from repro.fm.station import FMStation, StationConfig
from repro.receiver.cooperative import CooperativeReceiver
from repro.receiver.smartphone import SmartphoneReceiver
from repro.utils.rand import RngLike, as_generator, child_generator

DEFAULT_POWERS_DBM = (-20.0, -30.0, -40.0, -50.0, -60.0)
DEFAULT_DISTANCES_FT = (1, 4, 8, 12, 16, 20)

PREAMBLE_SECONDS = 0.5
PILOT_AMPLITUDE = 0.1
PREAMBLE_PILOT_BOOST = 1.0
"""The preamble pilot uses the same level as the running pilot: the
preamble segment is then *quieter* than the payload, so the receiver's
gain control reacts with its fast attack (a clean step the pilot-ratio
calibration corrects) instead of its slow release (an uncorrectable
ramp)."""


def build_coop_payload(
    speech: np.ndarray, audio_rate: float = AUDIO_RATE_HZ
) -> np.ndarray:
    """Prepend the 13 kHz pilot preamble and keep a low-power pilot running
    during the payload, per the paper's calibration scheme."""
    n_pre = int(PREAMBLE_SECONDS * audio_rate)
    t_pre = np.arange(n_pre) / audio_rate
    preamble = (
        PREAMBLE_PILOT_BOOST
        * PILOT_AMPLITUDE
        * np.cos(2.0 * np.pi * COOP_PILOT_FREQ_HZ * t_pre)
    )
    t_pay = (n_pre + np.arange(speech.size)) / audio_rate
    pilot = PILOT_AMPLITUDE * np.cos(2.0 * np.pi * COOP_PILOT_FREQ_HZ * t_pay)
    payload = 0.85 * speech + pilot
    return np.concatenate([preamble, payload])


def simulate_two_phones(
    reference_speech: np.ndarray,
    power_dbm: float,
    distance_ft: float,
    program: str = "news",
    phone_offset_seconds: float = 0.08,
    rng: RngLike = None,
    ambient: Optional[CachedAmbient] = None,
):
    """Run the two-phone reception and cooperative cancellation.

    Args:
        ambient: optional cache-backed ambient source (the sweep engine
            passes one); when set, the station MPX and both FM-modulated
            carriers are synthesized once per sweep instead of per point.

    Returns:
        ``(recovered_audio, CooperativeResult)`` — the recovered
        backscatter audio stream (payload portion) and sync metadata.
    """
    gen = as_generator(rng)
    payload = build_coop_payload(reference_speech)
    duration_s = payload.size / AUDIO_RATE_HZ

    # Phone 1 chain bookkeeping (link budget for the backscatter hop).
    chain = ExperimentChain(
        program=program,
        station_stereo=False,
        power_dbm=power_dbm,
        distance_ft=distance_ft,
        stereo_decode=False,
        agc=True,
    )

    # Shared ambient program: both phones hear the same station. The
    # station child is derived even on the cached path so the noise and
    # phone draws below stay aligned with the legacy loop.
    station_rng = child_generator(gen, "st")
    if ambient is not None:
        iq1 = ambient.modulated_composite(chain, payload)
        iq2_clean = ambient.modulated(program, False, duration_s)
    else:
        station = FMStation(
            StationConfig(program=program, stereo=False), rng=station_rng
        )
        ambient_mpx = station.mpx(duration_s)
        device = BackscatterDevice(mode=BackscatterMode.OVERLAY)
        comp = composite_mpx(ambient_mpx, device.baseband(payload))
        iq1 = fm_modulate(comp, MPX_RATE_HZ)
        iq2_clean = fm_modulate(ambient_mpx, MPX_RATE_HZ)

    # Phone 1: the backscattered channel at fc + fback.
    iq1 = complex_awgn(iq1, chain.rf_snr_db(), child_generator(gen, "n1"))
    phone1 = SmartphoneReceiver(agc_enabled=True, rng=child_generator(gen, "p1"))
    phone1.stereo_capable = False
    audio1 = phone1.receive(iq1).mono

    # Phone 2: the ambient station at fc — a strong direct signal.
    ambient_snr_db = power_dbm - (-95.0)
    iq2 = complex_awgn(iq2_clean, ambient_snr_db, child_generator(gen, "n2"))
    phone2 = SmartphoneReceiver(agc_enabled=True, rng=child_generator(gen, "p2"))
    phone2.stereo_capable = False
    audio2 = phone2.receive(iq2).mono

    # The phones are not time synchronized: phone 2 starts late.
    offset = int(phone_offset_seconds * AUDIO_RATE_HZ)
    audio2_delayed = audio2[offset:]

    coop = CooperativeReceiver(
        preamble_seconds=PREAMBLE_SECONDS,
        preamble_pilot_boost=PREAMBLE_PILOT_BOOST,
    )
    result = coop.cancel(audio1, audio2_delayed)
    return result.backscatter_audio, result


def measure_coop_pesq(run) -> float:
    """One cooperative two-phone point: simulate, cancel, score PESQ.

    Module-level so the scenario pickles into process-pool workers (the
    two-phone simulation is exactly the GIL-bound, resampling-heavy kind
    of measure the process backend exists for).
    """
    reference = run.data["reference"]
    recovered, _ = simulate_two_phones(
        reference,
        run.point["power_dbm"],
        run.point["distance_ft"],
        rng=run.rng,
        ambient=run.ambient,
    )
    n = min(reference.size, recovered.size)
    return pesq_like(reference[:n], recovered[:n], AUDIO_RATE_HZ)


def build_scenario(
    powers_dbm: Sequence[float] = DEFAULT_POWERS_DBM,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    duration_s: float = 2.0,
) -> Scenario:
    """The declarative Fig. 12 sweep.

    Module-level so tests (and the CI zero-fallback gate) can execute the
    exact grid ``run()`` uses under any backend. Note this scenario is
    *measure-driven*: the two-phone reception + cancellation happens
    inside :func:`measure_coop_pesq`, so there is no runner-performed
    transmission for the batched backend to vectorize — its points
    execute per point by construction and are not counted as fallbacks
    (``SweepResult.n_fallbacks == 0``).
    """
    return Scenario(
        name="fig12",
        sweep=SweepSpec.grid(power_dbm=tuple(powers_dbm), distance_ft=tuple(distances_ft)),
        prepare=lambda gen: {
            "reference": speech_like(
                duration_s, AUDIO_RATE_HZ, child_generator(gen, "speech"), amplitude=0.9
            )
        },
        rng_keys=("fig12", AxisRef("power_dbm"), AxisRef("distance_ft")),
        measure=measure_coop_pesq,
    )


def run(
    powers_dbm: Sequence[float] = DEFAULT_POWERS_DBM,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    duration_s: float = 2.0,
    rng: RngLike = None,
) -> Dict[str, object]:
    """PESQ sweep over (power, distance) for cooperative backscatter."""

    scenario = build_scenario(
        powers_dbm=powers_dbm, distances_ft=distances_ft, duration_s=duration_s
    )
    result = run_scenario(scenario, rng=rng)

    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    for power in powers_dbm:
        results[power_key(power)] = result.series(along="distance_ft", power_dbm=power)
    return results

"""Fig. 9 — BER with maximal-ratio combining, 1.6 kbps at -40 dBm.

The device repeats the same transmission N times; each repetition faces
*different* ambient program audio (the "noise" is the program, which is
uncorrelated across repetitions), so summing the raw received signals
before demodulation raises the effective SNR. The paper finds 2x MRC
already collapses the BER.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.data.ber import bit_error_rate
from repro.data.bits import random_bits
from repro.data.fdm import FdmFskModem
from repro.data.mrc import mrc_combine
from repro.experiments.common import ExperimentChain
from repro.utils.rand import RngLike, as_generator, child_generator

DEFAULT_DISTANCES_FT = (2, 4, 8, 12, 16, 20)
DEFAULT_MRC_FACTORS = (1, 2, 3, 4)
DEFAULT_BACK_AMPLITUDE = 0.25
"""Payload share of the device deviation. Fig. 9 operates in the
interference-limited regime (errors come from the program audio, which is
what MRC averages out); a reduced payload amplitude reproduces the
paper's operating point where single-shot BER is a few percent."""


def run(
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    mrc_factors: Sequence[int] = DEFAULT_MRC_FACTORS,
    power_dbm: float = -40.0,
    program: str = "rock",
    n_bits: int = 1600,
    back_amplitude: float = DEFAULT_BACK_AMPLITUDE,
    rng: RngLike = None,
) -> Dict[str, object]:
    """BER vs distance for each MRC repetition count.

    Returns:
        dict with ``distances_ft`` and one list per factor (``"mrc1"``,
        ``"mrc2"``, ...). ``mrc1`` is the no-combining baseline.
    """
    gen = as_generator(rng)
    modem = FdmFskModem(symbol_rate=200)
    bits = random_bits(n_bits, child_generator(gen, "payload"))
    waveform = modem.modulate(bits)
    max_factor = max(mrc_factors)

    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    series: Dict[int, List[float]] = {f: [] for f in mrc_factors}
    for distance in distances_ft:
        # Each repetition sees freshly drawn program audio and noise; the
        # payload (and therefore the data waveform) is identical.
        receptions = []
        for rep in range(max_factor):
            chain = ExperimentChain(
                program=program,
                power_dbm=power_dbm,
                distance_ft=distance,
                stereo_decode=False,
                back_amplitude=back_amplitude,
            )
            received = chain.transmit(
                waveform, child_generator(gen, "rep", distance, rep)
            )
            receptions.append(chain.payload_channel(received))
        for factor in mrc_factors:
            combined = mrc_combine(receptions[:factor])
            detected = modem.demodulate(combined, bits.size)
            series[factor].append(bit_error_rate(bits, detected))
    for factor in mrc_factors:
        results[f"mrc{factor}"] = series[factor]
    return results

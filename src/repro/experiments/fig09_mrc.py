"""Fig. 9 — BER with maximal-ratio combining, 1.6 kbps at -40 dBm.

The device repeats the same transmission N times; each repetition faces
*different* ambient program audio (the "noise" is the program, which is
uncorrelated across repetitions), so summing the raw received signals
before demodulation raises the effective SNR. The paper finds 2x MRC
already collapses the BER.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Sequence

from repro.data.ber import bit_error_rate
from repro.data.bits import random_bits
from repro.data.fdm import FdmFskModem
from repro.data.mrc import mrc_combine
from repro.engine import AxisRef, PointRun, Scenario, SweepSpec, run_scenario
from repro.utils.rand import RngLike, child_generator

DEFAULT_DISTANCES_FT = (2, 4, 8, 12, 16, 20)
DEFAULT_MRC_FACTORS = (1, 2, 3, 4)
DEFAULT_BACK_AMPLITUDE = 0.25
"""Payload share of the device deviation. Fig. 9 operates in the
interference-limited regime (errors come from the program audio, which is
what MRC averages out); a reduced payload amplitude reproduces the
paper's operating point where single-shot BER is a few percent."""


def received_payload_channel(run: PointRun):
    """The runner-transmitted reception's payload channel, returned raw
    for post-grid MRC combining (module-level, picklable)."""
    return run.chain.payload_channel(run.received)


def prepare_payload(gen, modem: FdmFskModem, n_bits: int):
    """The shared payload: ``n_bits`` random bits, FDM-FSK modulated.

    Module level (bound via ``functools.partial``) so the whole scenario
    — ``prepare`` included — pickles, which is what lets a journaled
    :class:`~repro.engine.service.SweepService` rebuild and resume the
    job from its journal file alone."""
    bits = random_bits(n_bits, child_generator(gen, "payload"))
    return {"bits": bits, "waveform": modem.modulate(bits)}


def build_scenario(
    modem: FdmFskModem,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    max_factor: int = max(DEFAULT_MRC_FACTORS),
    power_dbm: float = -40.0,
    program: str = "rock",
    n_bits: int = 1600,
    back_amplitude: float = DEFAULT_BACK_AMPLITUDE,
) -> Scenario:
    """The declarative Fig. 9 sweep: (distance x repetition) receptions.

    Module-level so tests (and the CI zero-fallback gate) can execute the
    exact grid ``run()`` uses under any backend and assert the batched
    backend vectorizes every point.
    """

    # Each repetition must hear *different* program audio (that is what
    # MRC averages out), so the ambient cache key carries the repetition
    # index; each of the max_factor ambient variants is synthesized once
    # and shared across all distances.
    return Scenario(
        name="fig09",
        sweep=SweepSpec.grid(
            distance_ft=tuple(distances_ft), rep=tuple(range(max_factor))
        ),
        prepare=functools.partial(prepare_payload, modem=modem, n_bits=n_bits),
        base_chain={
            "program": program,
            "power_dbm": power_dbm,
            "stereo_decode": False,
            "back_amplitude": back_amplitude,
        },
        chain_axes=("distance_ft",),
        rng_keys=("rep", AxisRef("distance_ft"), AxisRef("rep")),
        ambient_variant=AxisRef("rep"),
        payload="waveform",
        measure=received_payload_channel,
    )


def run(
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    mrc_factors: Sequence[int] = DEFAULT_MRC_FACTORS,
    power_dbm: float = -40.0,
    program: str = "rock",
    n_bits: int = 1600,
    back_amplitude: float = DEFAULT_BACK_AMPLITUDE,
    rng: RngLike = None,
) -> Dict[str, object]:
    """BER vs distance for each MRC repetition count.

    Returns:
        dict with ``distances_ft`` and one list per factor (``"mrc1"``,
        ``"mrc2"``, ...). ``mrc1`` is the no-combining baseline.
    """
    modem = FdmFskModem(symbol_rate=200)
    scenario = build_scenario(
        modem,
        distances_ft=distances_ft,
        max_factor=max(mrc_factors),
        power_dbm=power_dbm,
        program=program,
        n_bits=n_bits,
        back_amplitude=back_amplitude,
    )
    result = run_scenario(scenario, rng=rng)
    bits = result.data["bits"]

    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    series: Dict[int, List[float]] = {f: [] for f in mrc_factors}
    for distance in distances_ft:
        receptions = result.series(along="rep", distance_ft=distance)
        for factor in mrc_factors:
            combined = mrc_combine(receptions[:factor])
            detected = modem.demodulate(combined, bits.size)
            series[factor].append(bit_error_rate(bits, detected))
    for factor in mrc_factors:
        results[f"mrc{factor}"] = series[factor]
    return results

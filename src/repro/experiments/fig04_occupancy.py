"""Fig. 4 — FM channel usage in five US cities.

Panel (a): licensed vs detectable station counts. Panel (b): CDF of the
minimum shift frequency — the distance from each licensed station to the
nearest unoccupied channel. The paper reads a 200 kHz median and a worst
case under 800 kHz.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.engine import AxisRef, Scenario, SweepSpec, run_scenario
from repro.survey.occupancy import min_shift_frequencies_hz, occupancy_summary
from repro.survey.stations import CITY_PROFILES, generate_band_plan
from repro.utils.rand import RngLike


def measure_city_occupancy(run):
    """Band plan + shift statistics for one city (module-level, picklable)."""
    name = run.point["city"]
    profile = CITY_PROFILES[name]
    # The no-adjacent-channel rule binds co-sited transmitters; in
    # cities where detectable stations (including neighboring cities'
    # signals) exceed the 50-station capacity of strict 2-channel
    # spacing, distant stations may land adjacent to local ones.
    separation = 2 if 2 * profile.detectable <= 100 else 1
    plan = generate_band_plan(
        profile.detectable,
        run.rng,
        min_separation_channels=separation,
    )
    shifts = min_shift_frequencies_hz(plan)
    summary = occupancy_summary(plan)
    return {
        "licensed": profile.licensed,
        "detectable": profile.detectable,
        "min_shifts_khz": (shifts / 1e3).tolist(),
        "median_shift_khz": summary["median_min_shift_hz"] / 1e3,
        "max_shift_khz": summary["max_min_shift_hz"] / 1e3,
        # Raw Hz for the pooled stats below (popped before the city
        # dict is returned): pooling the kHz lists back through *1e3
        # would round-trip the floats.
        "_min_shifts_hz": shifts.tolist(),
    }


def run(rng: RngLike = None) -> Dict[str, object]:
    """Compute Fig. 4's statistics across the five cities.

    Returns:
        dict keyed by city with ``licensed``, ``detectable``,
        ``min_shifts_khz`` (per-station list), plus pooled
        ``median_shift_khz`` and ``max_shift_khz``.
    """

    scenario = Scenario(
        name="fig04",
        sweep=SweepSpec.grid(city=tuple(CITY_PROFILES)),
        rng_keys=("plan", AxisRef("city")),
        measure=measure_city_occupancy,
        cache_ambient=False,
    )
    result = run_scenario(scenario, rng=rng)

    out: Dict[str, object] = {}
    pooled = []
    for point, value in result:
        pooled.extend(value.pop("_min_shifts_hz"))
        out[point["city"]] = value
    pooled_arr = np.asarray(pooled)
    out["median_shift_khz"] = float(np.median(pooled_arr) / 1e3)
    out["max_shift_khz"] = float(np.max(pooled_arr) / 1e3)
    return out

"""Fig. 6 — receiver SNR versus backscattered audio frequency.

The paper backscatters single tones (500 Hz - 15 kHz) over an unmodulated
carrier (``FMaudio = 0``) and measures the tone SNR at the phone, in both
the mono band and the stereo (L-R) band. The measured chain is flat below
~13 kHz and falls off a cliff above — the app/codec cutoff.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.audio.tones import tone
from repro.backscatter.device import BackscatterMode
from repro.constants import AUDIO_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.experiments.common import ExperimentChain
from repro.utils.rand import RngLike, as_generator, child_generator

DEFAULT_FREQS_HZ = (500, 1000, 2000, 4000, 6000, 8000, 10000, 12000, 13000, 14000, 15000)


def run(
    freqs_hz: Sequence[float] = DEFAULT_FREQS_HZ,
    power_dbm: float = -20.0,
    distance_ft: float = 4.0,
    duration_s: float = 0.5,
    rng: RngLike = None,
) -> Dict[str, List[float]]:
    """Sweep tone frequency through mono and stereo backscatter paths.

    Returns:
        dict with ``freq_hz``, ``mono_snr_db`` and ``stereo_snr_db`` lists
        (the two curves of Fig. 6).
    """
    gen = as_generator(rng)
    results: Dict[str, List[float]] = {"freq_hz": [], "mono_snr_db": [], "stereo_snr_db": []}
    for freq in freqs_hz:
        payload = tone(freq, duration_s, AUDIO_RATE_HZ, amplitude=0.9)

        mono_chain = ExperimentChain(
            program="silence",
            mode=BackscatterMode.OVERLAY,
            power_dbm=power_dbm,
            distance_ft=distance_ft,
            stereo_decode=False,
        )
        received = mono_chain.transmit(payload, child_generator(gen, "mono", freq))
        mono_snr = tone_snr_db(mono_chain.payload_channel(received), AUDIO_RATE_HZ, freq)

        stereo_chain = ExperimentChain(
            program="silence",
            station_stereo=False,
            mode=BackscatterMode.MONO_TO_STEREO,
            power_dbm=power_dbm,
            distance_ft=distance_ft,
            stereo_decode=True,
        )
        received = stereo_chain.transmit(payload, child_generator(gen, "stereo", freq))
        stereo_snr = tone_snr_db(
            stereo_chain.payload_channel(received), AUDIO_RATE_HZ, freq
        )

        results["freq_hz"].append(float(freq))
        results["mono_snr_db"].append(mono_snr)
        results["stereo_snr_db"].append(stereo_snr)
    return results

"""Fig. 6 — receiver SNR versus backscattered audio frequency.

The paper backscatters single tones (500 Hz - 15 kHz) over an unmodulated
carrier (``FMaudio = 0``) and measures the tone SNR at the phone, in both
the mono band and the stereo (L-R) band. The measured chain is flat below
~13 kHz and falls off a cliff above — the app/codec cutoff.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.audio.tones import tone
from repro.backscatter.device import BackscatterMode
from repro.constants import AUDIO_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.engine import (
    AxisRef,
    PayloadSelector,
    PointRun,
    Scenario,
    SweepSpec,
    run_scenario,
)
from repro.utils.rand import RngLike

DEFAULT_FREQS_HZ = (500, 1000, 2000, 4000, 6000, 8000, 10000, 12000, 13000, 14000, 15000)

_BAND_CHAINS = {
    "mono": {
        "mode": BackscatterMode.OVERLAY,
        "stereo_decode": False,
    },
    "stereo": {
        "station_stereo": False,
        "mode": BackscatterMode.MONO_TO_STEREO,
        "stereo_decode": True,
    },
}


def score_tone_snr_at_point(run: PointRun) -> float:
    """Tone SNR at the point's own frequency (module-level, picklable)."""
    freq = run.point["freq_hz"]
    return tone_snr_db(run.chain.payload_channel(run.received), AUDIO_RATE_HZ, freq)


def run(
    freqs_hz: Sequence[float] = DEFAULT_FREQS_HZ,
    power_dbm: float = -20.0,
    distance_ft: float = 4.0,
    duration_s: float = 0.5,
    rng: RngLike = None,
) -> Dict[str, List[float]]:
    """Sweep tone frequency through mono and stereo backscatter paths.

    Returns:
        dict with ``freq_hz``, ``mono_snr_db`` and ``stereo_snr_db`` lists
        (the two curves of Fig. 6).
    """
    freqs = tuple(freqs_hz)

    def prepare(gen):
        return {
            f"tone_{freq}": tone(freq, duration_s, AUDIO_RATE_HZ, amplitude=0.9)
            for freq in freqs
        }

    scenario = Scenario(
        name="fig06",
        sweep=SweepSpec.grid(freq_hz=freqs, band=("mono", "stereo")),
        prepare=prepare,
        base_chain={
            "program": "silence",
            "power_dbm": power_dbm,
            "distance_ft": distance_ft,
        },
        chain_value_params={"band": _BAND_CHAINS},
        rng_keys=(AxisRef("band"), AxisRef("freq_hz")),
        payload=PayloadSelector("freq_hz", {freq: f"tone_{freq}" for freq in freqs}),
        measure=score_tone_snr_at_point,
    )
    result = run_scenario(scenario, rng=rng)

    return {
        "freq_hz": [float(f) for f in freqs],
        "mono_snr_db": result.series(along="freq_hz", band="mono"),
        "stereo_snr_db": result.series(along="freq_hz", band="stereo"),
    }

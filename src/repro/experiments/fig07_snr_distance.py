"""Fig. 7 — received SNR versus distance and ambient power.

A 1 kHz tone is backscattered over an unmodulated carrier while the
device-receiver distance sweeps 1-20 ft at ambient powers of -20 to
-60 dBm. The paper reads 20+ ft of range at -30 dBm and usable SNR at
close range even at -50 dBm.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.engine import AxisRef, PointRun, Scenario, SweepSpec, power_key, run_scenario
from repro.utils.rand import RngLike

DEFAULT_POWERS_DBM = (-20.0, -30.0, -40.0, -50.0, -60.0)
DEFAULT_DISTANCES_FT = (1, 2, 4, 6, 8, 12, 16, 20)
TONE_HZ = 1000.0


def score_tone_snr(run: PointRun, freq_hz: float) -> float:
    """Tone SNR of the runner-transmitted payload channel.

    Module-level (with data via ``measure_params``) so the scenario
    pickles into process-pool workers.
    """
    return tone_snr_db(run.chain.payload_channel(run.received), AUDIO_RATE_HZ, freq_hz)


def run(
    powers_dbm: Sequence[float] = DEFAULT_POWERS_DBM,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    duration_s: float = 0.5,
    receiver_kind: str = "smartphone",
    rng: RngLike = None,
) -> Dict[str, object]:
    """Sweep (power, distance); returns one SNR series per power level.

    Returns:
        dict with ``distances_ft`` plus one ``"P<power>"`` key per power
        level mapping to the SNR-vs-distance list.
    """
    payload = tone(TONE_HZ, duration_s, AUDIO_RATE_HZ, amplitude=0.9)

    scenario = Scenario(
        name="fig07",
        sweep=SweepSpec.grid(power_dbm=tuple(powers_dbm), distance_ft=tuple(distances_ft)),
        prepare=lambda gen: {"payload": payload},
        base_chain={
            "program": "silence",
            "receiver_kind": receiver_kind,
            "stereo_decode": False,
        },
        chain_axes=("power_dbm", "distance_ft"),
        rng_keys=("fig7", AxisRef("power_dbm"), AxisRef("distance_ft")),
        payload="payload",
        measure=score_tone_snr,
        measure_params={"freq_hz": TONE_HZ},
    )
    result = run_scenario(scenario, rng=rng)

    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    for power in powers_dbm:
        results[power_key(power)] = result.series(along="distance_ft", power_dbm=power)
    return results

"""Fig. 17b — smart-fabric BER while standing, walking, running.

The sewn shirt antenna (316L conductive thread, body proximity loss)
transmits at 100 bps and at 1.6 kbps with 2x MRC from an outdoor spot
with -35..-40 dBm ambient power. Motion adds Rician fading at gait rate.
Expected shape: 100 bps stays below ~0.005 BER even running; 1.6 kbps
(with 2x MRC) sits around 0.02 standing and degrades with motion.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.channel.antenna import MEANDER_SHIRT
from repro.channel.fading import BodyMotionFading
from repro.data.ber import bit_error_rate
from repro.data.bits import random_bits
from repro.data.fdm import FdmFskModem
from repro.data.fsk import BinaryFskModem
from repro.data.mrc import mrc_combine
from repro.engine import AxisRef, Scenario, SweepSpec, run_scenario
from repro.experiments.common import ExperimentChain
from repro.utils.rand import RngLike, child_generator

DEFAULT_MOTIONS = ("standing", "walking", "running")
DEFAULT_POWER_DBM = -37.0
DEFAULT_DISTANCE_FT = 8.0
DEFAULT_BACK_AMPLITUDE = 0.3
"""Fig. 17b operates where the 1.6 kbps link shows residual errors — the
lossy fabric antenna plus a modest payload deviation share put the link
in the interference/fading-limited regime the paper reports (BER ~0.02
standing at 1.6 kbps, ~0 at 100 bps)."""

_LEGS = ("low", "hi0", "hi1")
"""Transmission legs per (motion, trial): one 100 bps frame and the two
repetitions of the 1.6 kbps + 2x MRC frame."""


def measure_fabric_leg(
    run, power_dbm: float, distance_ft: float, back_amplitude: float
):
    """Transmit one fabric leg through a fresh fading channel.

    Every leg sees fresh fading and its own ambient program (the MRC
    repetitions in particular must not share interference); both streams
    derive from the point generator. Module-level (configuration via
    ``measure_params``) so the scenario pickles into process workers —
    the fading chain cannot use the batched backend, but it can fan out
    across processes.
    """
    motion = run.point["motion"]
    leg = run.point["leg"]
    fading = BodyMotionFading(motion, child_generator(run.rng, "fade"))
    chain = ExperimentChain(
        program="news",
        power_dbm=power_dbm,
        distance_ft=distance_ft,
        stereo_decode=False,
        fading=fading,
        device_antenna=MEANDER_SHIRT,
        back_amplitude=back_amplitude,
    )
    chain.ambient_source = run.ambient
    wave = run.data["wave_low"] if leg == "low" else run.data["wave_high"]
    received = chain.transmit(wave, child_generator(run.rng, "rx"))
    return chain.payload_channel(received)


def run(
    motions: Sequence[str] = DEFAULT_MOTIONS,
    power_dbm: float = DEFAULT_POWER_DBM,
    distance_ft: float = DEFAULT_DISTANCE_FT,
    n_bits_low: int = 200,
    n_bits_high: int = 1600,
    n_trials: int = 3,
    back_amplitude: float = DEFAULT_BACK_AMPLITUDE,
    rng: RngLike = None,
) -> Dict[str, object]:
    """BER per mobility state for 100 bps and 1.6 kbps + 2x MRC.

    Returns:
        dict with ``motions``, ``ber_100bps`` and ``ber_1.6kbps_mrc2``
        lists (the two bar groups of Fig. 17b), averaged over trials.
    """
    bfsk = BinaryFskModem()
    fdm = FdmFskModem(symbol_rate=200)

    def prepare(gen):
        bits_low = random_bits(n_bits_low, child_generator(gen, "low"))
        bits_high = random_bits(n_bits_high, child_generator(gen, "high"))
        return {
            "bits_low": bits_low,
            "bits_high": bits_high,
            "wave_low": bfsk.modulate(bits_low),
            "wave_high": fdm.modulate(bits_high),
        }

    scenario = Scenario(
        name="fig17",
        sweep=SweepSpec.grid(motion=tuple(motions), trial=tuple(range(n_trials)), leg=_LEGS),
        prepare=prepare,
        rng_keys=("f17", AxisRef("motion"), AxisRef("trial"), AxisRef("leg")),
        # Distinct program audio per (trial, leg) — shared across motions,
        # where only the fading statistics differ.
        ambient_variant=(AxisRef("trial"), AxisRef("leg")),
        measure=measure_fabric_leg,
        measure_params={
            "power_dbm": power_dbm,
            "distance_ft": distance_ft,
            "back_amplitude": back_amplitude,
        },
    )
    result = run_scenario(scenario, rng=rng)
    bits_low = result.data["bits_low"]
    bits_high = result.data["bits_high"]

    results: Dict[str, object] = {"motions": list(motions)}
    ber_low: List[float] = []
    ber_high: List[float] = []
    for motion in motions:
        low_trials = []
        high_trials = []
        for trial in range(n_trials):
            audio_low = result.value_at(motion=motion, trial=trial, leg="low")
            detected = bfsk.demodulate(audio_low, bits_low.size)
            low_trials.append(bit_error_rate(bits_low, detected))

            receptions = [
                result.value_at(motion=motion, trial=trial, leg=leg)
                for leg in ("hi0", "hi1")
            ]
            combined = mrc_combine(receptions)
            detected = fdm.demodulate(combined, bits_high.size)
            high_trials.append(bit_error_rate(bits_high, detected))
        ber_low.append(float(np.mean(low_trials)))
        ber_high.append(float(np.mean(high_trials)))
    results["ber_100bps"] = ber_low
    results["ber_1.6kbps_mrc2"] = ber_high
    return results

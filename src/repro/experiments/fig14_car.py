"""Fig. 14 — overlay backscatter received by a car radio.

Section 5.4: the backscatter antenna sits 12 ft from the transmitter; the
2010 Honda CRV's audio is recorded with a microphone, engine running,
windows closed. The car's better antenna and front end extend the range
to 60+ ft at -20/-30 dBm. Panel (a) sweeps a 1 kHz tone SNR, panel (b)
PESQ of overlaid speech.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.audio.pesq import pesq_like
from repro.audio.speech import speech_like
from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.engine import (
    AxisRef,
    PayloadSelector,
    PointRun,
    Scenario,
    SweepSpec,
    power_key,
    run_scenario,
)
from repro.utils.rand import RngLike, child_generator

DEFAULT_POWERS_DBM = (-20.0, -30.0)
DEFAULT_DISTANCES_FT = (20, 30, 40, 50, 60, 70, 80)
TONE_HZ = 1000.0


def score_panel(run: PointRun, tone_hz: float) -> float:
    """Score one Fig. 14 point: tone SNR on the ``snr`` panel, PESQ of
    the overlaid speech on the ``pesq`` panel (module-level, picklable)."""
    audio = run.chain.payload_channel(run.received)
    if run.point["panel"] == "snr":
        return tone_snr_db(audio, AUDIO_RATE_HZ, tone_hz)
    return pesq_like(run.data["speech"], audio, AUDIO_RATE_HZ)


def run(
    powers_dbm: Sequence[float] = DEFAULT_POWERS_DBM,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    duration_s: float = 1.0,
    program: str = "news",
    rng: RngLike = None,
) -> Dict[str, object]:
    """Car-receiver sweep; returns both SNR and PESQ series per power.

    Returns:
        dict with ``distances_ft``, ``snr_P<power>`` and ``pesq_P<power>``
        lists (panels a and b of Fig. 14).
    """
    tone_payload = tone(TONE_HZ, duration_s, AUDIO_RATE_HZ, amplitude=0.9)

    def prepare(gen):
        return {
            "tone": tone_payload,
            "speech": speech_like(
                duration_s, AUDIO_RATE_HZ, child_generator(gen, "speech"), amplitude=0.9
            ),
        }

    # The panel axis is innermost so the per-point draws interleave
    # snr, pesq, snr, pesq, ... exactly like the legacy loop body.
    scenario = Scenario(
        name="fig14",
        sweep=SweepSpec.grid(
            power_dbm=tuple(powers_dbm),
            distance_ft=tuple(distances_ft),
            panel=("snr", "pesq"),
        ),
        prepare=prepare,
        base_chain={"receiver_kind": "car", "stereo_decode": False},
        chain_axes=("power_dbm", "distance_ft"),
        chain_value_params={
            "panel": {"snr": {"program": "silence"}, "pesq": {"program": program}}
        },
        rng_keys=(AxisRef("panel"), AxisRef("power_dbm"), AxisRef("distance_ft")),
        payload=PayloadSelector("panel", {"snr": "tone", "pesq": "speech"}),
        measure=score_panel,
        measure_params={"tone_hz": TONE_HZ},
    )
    result = run_scenario(scenario, rng=rng)

    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    for power in powers_dbm:
        results[power_key(power, prefix="snr_P")] = result.series(
            along="distance_ft", power_dbm=power, panel="snr"
        )
        results[power_key(power, prefix="pesq_P")] = result.series(
            along="distance_ft", power_dbm=power, panel="pesq"
        )
    return results

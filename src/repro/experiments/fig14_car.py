"""Fig. 14 — overlay backscatter received by a car radio.

Section 5.4: the backscatter antenna sits 12 ft from the transmitter; the
2010 Honda CRV's audio is recorded with a microphone, engine running,
windows closed. The car's better antenna and front end extend the range
to 60+ ft at -20/-30 dBm. Panel (a) sweeps a 1 kHz tone SNR, panel (b)
PESQ of overlaid speech.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.audio.pesq import pesq_like
from repro.audio.speech import speech_like
from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.experiments.common import ExperimentChain
from repro.utils.rand import RngLike, as_generator, child_generator

DEFAULT_POWERS_DBM = (-20.0, -30.0)
DEFAULT_DISTANCES_FT = (20, 30, 40, 50, 60, 70, 80)
TONE_HZ = 1000.0


def run(
    powers_dbm: Sequence[float] = DEFAULT_POWERS_DBM,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    duration_s: float = 1.0,
    program: str = "news",
    rng: RngLike = None,
) -> Dict[str, object]:
    """Car-receiver sweep; returns both SNR and PESQ series per power.

    Returns:
        dict with ``distances_ft``, ``snr_P<power>`` and ``pesq_P<power>``
        lists (panels a and b of Fig. 14).
    """
    gen = as_generator(rng)
    tone_payload = tone(TONE_HZ, duration_s, AUDIO_RATE_HZ, amplitude=0.9)
    speech = speech_like(
        duration_s, AUDIO_RATE_HZ, child_generator(gen, "speech"), amplitude=0.9
    )

    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    for power in powers_dbm:
        snr_series: List[float] = []
        pesq_series: List[float] = []
        for distance in distances_ft:
            snr_chain = ExperimentChain(
                program="silence",
                power_dbm=power,
                distance_ft=distance,
                receiver_kind="car",
                stereo_decode=False,
            )
            received = snr_chain.transmit(
                tone_payload, child_generator(gen, "snr", power, distance)
            )
            snr_series.append(
                tone_snr_db(snr_chain.payload_channel(received), AUDIO_RATE_HZ, TONE_HZ)
            )

            pesq_chain = ExperimentChain(
                program=program,
                power_dbm=power,
                distance_ft=distance,
                receiver_kind="car",
                stereo_decode=False,
            )
            received = pesq_chain.transmit(
                speech, child_generator(gen, "pesq", power, distance)
            )
            pesq_series.append(
                pesq_like(speech, pesq_chain.payload_channel(received), AUDIO_RATE_HZ)
            )
        results[f"snr_P{int(power)}"] = snr_series
        results[f"pesq_P{int(power)}"] = pesq_series
    return results

"""A paper figure as a distributed job: Fig. 9's MRC grid, sharded.

The ``deployment_scale``-style driver for the distributed launcher: the
same (distance x repetition) reception grid :mod:`~repro.experiments.
fig09_mrc` declares is sliced into shards and fanned out across worker
processes via :func:`~repro.engine.launcher.launch_sweep`, then scored
into the exact series shape ``fig09.run`` returns — bit-identical to it
at the same seed, because every point's stream is pre-derived before any
shard runs. On top of the figure series, the result carries the
launcher's telemetry (shards, retries, wall-clock vs aggregate compute
time, cache counters), which is what the README's multi-machine recipe
and the ``distributed_launcher`` benchmark read.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.data.ber import bit_error_rate
from repro.data.fdm import FdmFskModem
from repro.data.mrc import mrc_combine
from repro.engine import launch_sweep
from repro.engine.launcher import RetryPolicy
from repro.experiments import fig09_mrc as fig09
from repro.utils.rand import RngLike

DEFAULT_DISTANCES_FT = (2, 4, 8, 12)
DEFAULT_MRC_FACTORS = (1, 2)
DEFAULT_N_WORKERS = 2


def run(
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    mrc_factors: Sequence[int] = DEFAULT_MRC_FACTORS,
    power_dbm: float = -40.0,
    program: str = "rock",
    n_bits: int = 400,
    back_amplitude: float = fig09.DEFAULT_BACK_AMPLITUDE,
    n_workers: int = DEFAULT_N_WORKERS,
    shard_points: Optional[int] = None,
    shard_deadline_s: Optional[float] = None,
    cache_dir: Optional[str] = None,
    retry_policy: Optional[RetryPolicy] = None,
    rng: RngLike = None,
) -> Dict[str, object]:
    """Fig. 9 BER-vs-distance per MRC factor, executed across workers.

    Returns:
        the ``fig09.run`` dict (``distances_ft`` + one ``mrc<k>`` list
        per factor) plus a ``"launcher"`` entry with the run's fan-out
        telemetry: worker and shard counts, retries/failures/stragglers,
        ``wall_s`` (wall-clock) vs ``points_elapsed_s`` (summed per-shard
        compute time) and the merged cache counters.
    """
    modem = FdmFskModem(symbol_rate=200)
    scenario = fig09.build_scenario(
        modem,
        distances_ft=distances_ft,
        max_factor=max(mrc_factors),
        power_dbm=power_dbm,
        program=program,
        n_bits=n_bits,
        back_amplitude=back_amplitude,
    )
    report = launch_sweep(
        scenario,
        rng=rng,
        n_workers=n_workers,
        shard_points=shard_points,
        shard_deadline_s=shard_deadline_s,
        cache_dir=cache_dir,
        retry_policy=retry_policy,
    )
    result = report.result
    bits = result.data["bits"]

    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    series: Dict[int, List[float]] = {f: [] for f in mrc_factors}
    for distance in distances_ft:
        receptions = result.series(along="rep", distance_ft=distance)
        for factor in mrc_factors:
            combined = mrc_combine(receptions[:factor])
            detected = modem.demodulate(combined, bits.size)
            series[factor].append(bit_error_rate(bits, detected))
    for factor in mrc_factors:
        results[f"mrc{factor}"] = series[factor]
    results["launcher"] = {
        "n_workers": report.n_workers,
        "n_shards": report.n_shards,
        "retries": report.retries,
        "failures": report.failures,
        "stragglers": report.stragglers,
        "duplicates": report.duplicates,
        "degraded": report.degraded,
        "degraded_points": report.degraded_points,
        "exit_codes": list(report.exit_codes),
        "wall_s": report.wall_s,
        "points_elapsed_s": result.elapsed_s,
        "cache": result.cache_stats,
    }
    return results

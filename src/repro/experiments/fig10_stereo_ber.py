"""Fig. 10 — overlay versus stereo backscatter BER at -30 dBm.

Data in the stereo (L-R) stream of a news station sees almost no program
interference (news stations leave the stereo stream nearly empty, Fig. 5),
so stereo backscatter beats overlay at both 1.6 and 3.2 kbps — at the cost
of needing enough power for the receiver to detect the 19 kHz pilot.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.backscatter.device import BackscatterMode
from repro.data.bits import random_bits
from repro.data.fdm import FdmFskModem
from repro.engine import AxisRef, Scenario, SweepSpec, run_scenario
from repro.experiments.fig08_ber_overlay import score_ber
from repro.utils.rand import RngLike, as_generator, child_generator

DEFAULT_DISTANCES_FT = (1, 2, 3, 4)

_MODE_CHAINS = {
    "overlay": {"mode": BackscatterMode.OVERLAY, "stereo_decode": False},
    "stereo": {"mode": BackscatterMode.STEREO, "stereo_decode": True},
}


def build_scenario(
    rate_label: str,
    modem: FdmFskModem,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    power_dbm: float = -30.0,
    program: str = "news",
    n_bits: int = 1600,
) -> Scenario:
    """The declarative sweep for one Fig. 10 rate panel.

    Module-level so tests can execute the exact grid ``run()`` uses under
    any backend (e.g. asserting the batched backend vectorizes the stereo
    points with zero per-point fallbacks).
    """

    def prepare(gen):
        bits = random_bits(n_bits, child_generator(gen, "payload", rate_label))
        return {"bits": bits, "waveform": modem.modulate(bits)}

    return Scenario(
        name="fig10",
        sweep=SweepSpec.grid(mode=("overlay", "stereo"), distance_ft=tuple(distances_ft)),
        prepare=prepare,
        base_chain={
            "program": program,
            "station_stereo": True,
            "power_dbm": power_dbm,
        },
        chain_axes=("distance_ft",),
        chain_value_params={"mode": _MODE_CHAINS},
        rng_keys=(AxisRef("mode"), rate_label, AxisRef("distance_ft")),
        payload="waveform",
        measure=score_ber,
        measure_params={"modem": modem},
    )


def run(
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    power_dbm: float = -30.0,
    program: str = "news",
    n_bits: int = 1600,
    rng: RngLike = None,
) -> Dict[str, object]:
    """BER vs distance for overlay and stereo placements at two rates.

    Returns:
        dict with ``distances_ft`` and keys ``overlay_1.6k``,
        ``stereo_1.6k``, ``overlay_3.2k``, ``stereo_3.2k``.
    """
    gen = as_generator(rng)
    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    # One sub-sweep per rate, sharing the sweep generator: each rate's
    # payload and per-point streams are drawn deterministically in rate
    # order. (The runner's ambient-master draw at the end of the first
    # sub-sweep shifts the 3.2k streams relative to the pre-engine loop
    # — deterministically, but not draw-for-draw.)
    for rate_label, symbol_rate in (("1.6k", 200), ("3.2k", 400)):
        modem = FdmFskModem(symbol_rate=symbol_rate)
        scenario = build_scenario(
            rate_label,
            modem,
            distances_ft=distances_ft,
            power_dbm=power_dbm,
            program=program,
            n_bits=n_bits,
        )
        result = run_scenario(scenario, rng=gen)
        for mode_label in ("overlay", "stereo"):
            results[f"{mode_label}_{rate_label}"] = result.series(
                along="distance_ft", mode=mode_label
            )
    return results

"""Fig. 10 — overlay versus stereo backscatter BER at -30 dBm.

Data in the stereo (L-R) stream of a news station sees almost no program
interference (news stations leave the stereo stream nearly empty, Fig. 5),
so stereo backscatter beats overlay at both 1.6 and 3.2 kbps — at the cost
of needing enough power for the receiver to detect the 19 kHz pilot.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.backscatter.device import BackscatterMode
from repro.data.bits import random_bits
from repro.data.fdm import FdmFskModem
from repro.experiments.common import ExperimentChain, measure_data_ber
from repro.utils.rand import RngLike, as_generator, child_generator

DEFAULT_DISTANCES_FT = (1, 2, 3, 4)


def run(
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    power_dbm: float = -30.0,
    program: str = "news",
    n_bits: int = 1600,
    rng: RngLike = None,
) -> Dict[str, object]:
    """BER vs distance for overlay and stereo placements at two rates.

    Returns:
        dict with ``distances_ft`` and keys ``overlay_1.6k``,
        ``stereo_1.6k``, ``overlay_3.2k``, ``stereo_3.2k``.
    """
    gen = as_generator(rng)
    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    for rate_label, symbol_rate in (("1.6k", 200), ("3.2k", 400)):
        modem = FdmFskModem(symbol_rate=symbol_rate)
        bits = random_bits(n_bits, child_generator(gen, "payload", rate_label))
        for mode_label, mode, stereo_decode in (
            ("overlay", BackscatterMode.OVERLAY, False),
            ("stereo", BackscatterMode.STEREO, True),
        ):
            series: List[float] = []
            for distance in distances_ft:
                chain = ExperimentChain(
                    program=program,
                    station_stereo=True,
                    mode=mode,
                    power_dbm=power_dbm,
                    distance_ft=distance,
                    stereo_decode=stereo_decode,
                )
                ber = measure_data_ber(
                    chain,
                    modem,
                    bits,
                    child_generator(gen, mode_label, rate_label, distance),
                )
                series.append(ber)
            results[f"{mode_label}_{rate_label}"] = series
    return results

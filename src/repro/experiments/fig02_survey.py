"""Fig. 2 — survey of FM radio signal power across a city and over a day.

Panel (a): CDF of the strongest station's power over 69-ish grid cells of
a metropolitan area — the paper measures -10..-55 dBm, median -35.15 dBm.
Panel (b): per-minute power at a fixed spot over 24 h, sigma ~= 0.7 dB.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.engine import AxisRef, Scenario, SweepSpec, run_scenario
from repro.survey.drivetest import CitySurvey, diurnal_power_series
from repro.utils.rand import RngLike


def measure_survey_panel(run):
    """One Fig. 2 panel: the city CDF or the 24 h diurnal trace
    (module-level, picklable)."""
    if run.point["panel"] == "city":
        return CitySurvey().run(run.rng)
    return diurnal_power_series(rng=run.rng)


def run(rng: RngLike = None) -> Dict[str, object]:
    """Run both survey panels.

    Returns:
        dict with ``powers_dbm`` (per-cell), ``median_dbm``, ``min_dbm``,
        ``max_dbm`` for panel (a), and ``diurnal_dbm`` + ``diurnal_std_db``
        for panel (b).
    """

    scenario = Scenario(
        name="fig02",
        sweep=SweepSpec.grid(panel=("city", "day")),
        rng_keys=(AxisRef("panel"),),
        measure=measure_survey_panel,
        cache_ambient=False,
    )
    result = run_scenario(scenario, rng=rng)
    city = result.value_at(panel="city")
    diurnal = result.value_at(panel="day")
    return {
        "powers_dbm": city.powers_dbm.tolist(),
        "median_dbm": city.median_dbm,
        "min_dbm": float(np.min(city.powers_dbm)),
        "max_dbm": float(np.max(city.powers_dbm)),
        "n_cells": int(city.powers_dbm.size),
        "diurnal_dbm": diurnal.tolist(),
        "diurnal_std_db": float(np.std(diurnal)),
    }

"""Fig. 2 — survey of FM radio signal power across a city and over a day.

Panel (a): CDF of the strongest station's power over 69-ish grid cells of
a metropolitan area — the paper measures -10..-55 dBm, median -35.15 dBm.
Panel (b): per-minute power at a fixed spot over 24 h, sigma ~= 0.7 dB.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.survey.drivetest import CitySurvey, diurnal_power_series
from repro.utils.rand import RngLike, as_generator, child_generator


def run(rng: RngLike = None) -> Dict[str, object]:
    """Run both survey panels.

    Returns:
        dict with ``powers_dbm`` (per-cell), ``median_dbm``, ``min_dbm``,
        ``max_dbm`` for panel (a), and ``diurnal_dbm`` + ``diurnal_std_db``
        for panel (b).
    """
    gen = as_generator(rng)
    survey = CitySurvey()
    result = survey.run(child_generator(gen, "city"))
    diurnal = diurnal_power_series(rng=child_generator(gen, "day"))
    return {
        "powers_dbm": result.powers_dbm.tolist(),
        "median_dbm": result.median_dbm,
        "min_dbm": float(np.min(result.powers_dbm)),
        "max_dbm": float(np.max(result.powers_dbm)),
        "n_cells": int(result.powers_dbm.size),
        "diurnal_dbm": diurnal.tolist(),
        "diurnal_std_db": float(np.std(diurnal)),
    }

"""Paper-figure reproduction harness.

One module per evaluation figure; each exposes a ``run(...)`` function
that sweeps the figure's parameters through the full simulation chain and
returns the same series the paper plots. The benchmark suite under
``benchmarks/`` calls these with reduced grids and checks the paper's
qualitative shape (who wins, where cliffs fall); EXPERIMENTS.md records
paper-vs-measured values.
"""

from repro.experiments.common import (
    ExperimentChain,
    measure_data_ber,
    simulate_overlay_audio,
)

__all__ = [
    "ExperimentChain",
    "measure_data_ber",
    "simulate_overlay_audio",
]

"""Deployment scale-out: N devices sharing the FM band.

Beyond the paper's single-link figures, its vision (sections 1 and 8) is
many signs and posters coexisting. This experiment sweeps device count
through the deployment layer: the channel plan hands out dedicated
channels while free ones last (section 3.3's quietest-channel rule),
then overflows onto a shared channel with framed slotted ALOHA
(section 8), and every MAC-clean frame runs the full physical chain.

Expected shape: per-device frame delivery stays ~1 while every device
has its own channel, then degrades as the sharing group grows (ALOHA
collisions dominate once devices far outnumber slots); aggregate goodput
— the sum of concurrent per-channel rates — grows with the first few
devices and saturates near the dedicated-channel supply, the sharing
group contributing only its collision-thinned ALOHA share on top.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.engine import ChannelPlan, DeploymentScenario, make_roster
from repro.utils.rand import RngLike

DEFAULT_DEVICE_COUNTS = (1, 2, 4, 8, 16, 32)
DEFAULT_POWER_DBM = -35.0
DEFAULT_SLOTS_PER_FRAME = 8


def build_deployment(
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    power_dbm: float = DEFAULT_POWER_DBM,
    slots_per_frame: int = DEFAULT_SLOTS_PER_FRAME,
    frames_per_device: int = 1,
    rate: str = "100bps",
) -> DeploymentScenario:
    """The experiment's deployment: a uniform roster, auto channel plan."""
    return DeploymentScenario(
        name="deployment_scale",
        devices=make_roster(max(int(c) for c in device_counts), power_dbm=power_dbm),
        plan=ChannelPlan(policy="auto", slots_per_frame=slots_per_frame),
        frames_per_device=frames_per_device,
        rate=rate,
        axes={"n_devices": tuple(int(c) for c in device_counts)},
    )


def run(
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    power_dbm: float = DEFAULT_POWER_DBM,
    slots_per_frame: int = DEFAULT_SLOTS_PER_FRAME,
    frames_per_device: int = 1,
    rate: str = "100bps",
    rng: RngLike = None,
) -> Dict[str, object]:
    """Sweep device count; report delivery and goodput per count.

    Returns:
        dict with ``device_counts``, ``per_device_delivery`` (mean
        frame-delivery rate across devices), ``aggregate_goodput_bps``,
        ``shared_devices`` (size of the ALOHA sharing group) and
        ``expected_mac_success`` (analytic framed-ALOHA success of a
        sharing device) — one entry per device count.
    """
    deployment = build_deployment(
        device_counts=device_counts,
        power_dbm=power_dbm,
        slots_per_frame=slots_per_frame,
        frames_per_device=frames_per_device,
        rate=rate,
    )
    result = deployment.run(rng=rng)
    return {
        "device_counts": [int(c) for c in device_counts],
        "per_device_delivery": [v["delivery_rate"] for v in result.values],
        "aggregate_goodput_bps": [v["aggregate_goodput_bps"] for v in result.values],
        "shared_devices": [v["n_shared"] for v in result.values],
        "expected_mac_success": [v["expected_mac_success"] for v in result.values],
    }

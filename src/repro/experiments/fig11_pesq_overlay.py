"""Fig. 11 — PESQ of speech sent with overlay backscatter.

The device overlays synthetic speech on top of the ambient program; the
listener hears the composite. The paper measures PESQ ~= 2 consistently
for -20..-40 dBm out to 20 ft (the interference is the constant-level
ambient program, not noise), similar at -50 dBm to 12 ft, and collapse at
-60 dBm where audio decoding needs more RF SNR than data.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.audio.pesq import pesq_like
from repro.audio.speech import speech_like
from repro.constants import AUDIO_RATE_HZ
from repro.engine import AxisRef, PointRun, Scenario, SweepSpec, power_key, run_scenario
from repro.utils.rand import RngLike, child_generator

DEFAULT_POWERS_DBM = (-20.0, -30.0, -40.0, -50.0, -60.0)
DEFAULT_DISTANCES_FT = (1, 4, 8, 12, 16, 20)


def score_pesq(run: PointRun) -> float:
    """PESQ of the runner-transmitted reference against the payload
    channel (module-level, picklable)."""
    reference = run.data["reference"]
    return pesq_like(
        reference, run.chain.payload_channel(run.received), AUDIO_RATE_HZ
    )


def run(
    powers_dbm: Sequence[float] = DEFAULT_POWERS_DBM,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    program: str = "news",
    duration_s: float = 2.0,
    receiver_kind: str = "smartphone",
    rng: RngLike = None,
) -> Dict[str, object]:
    """PESQ sweep over (power, distance) for overlay speech.

    Returns:
        dict with ``distances_ft`` and one PESQ list per power level.
    """
    scenario = Scenario(
        name="fig11",
        sweep=SweepSpec.grid(power_dbm=tuple(powers_dbm), distance_ft=tuple(distances_ft)),
        prepare=lambda gen: {
            "reference": speech_like(
                duration_s, AUDIO_RATE_HZ, child_generator(gen, "speech"), amplitude=0.9
            )
        },
        base_chain={
            "program": program,
            "receiver_kind": receiver_kind,
            "stereo_decode": False,
        },
        chain_axes=("power_dbm", "distance_ft"),
        rng_keys=("fig11", AxisRef("power_dbm"), AxisRef("distance_ft")),
        payload="reference",
        measure=score_pesq,
    )
    result = run_scenario(scenario, rng=rng)

    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    for power in powers_dbm:
        results[power_key(power)] = result.series(along="distance_ft", power_dbm=power)
    return results

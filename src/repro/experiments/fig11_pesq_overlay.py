"""Fig. 11 — PESQ of speech sent with overlay backscatter.

The device overlays synthetic speech on top of the ambient program; the
listener hears the composite. The paper measures PESQ ~= 2 consistently
for -20..-40 dBm out to 20 ft (the interference is the constant-level
ambient program, not noise), similar at -50 dBm to 12 ft, and collapse at
-60 dBm where audio decoding needs more RF SNR than data.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.audio.pesq import pesq_like
from repro.audio.speech import speech_like
from repro.constants import AUDIO_RATE_HZ
from repro.experiments.common import ExperimentChain
from repro.utils.rand import RngLike, as_generator, child_generator

DEFAULT_POWERS_DBM = (-20.0, -30.0, -40.0, -50.0, -60.0)
DEFAULT_DISTANCES_FT = (1, 4, 8, 12, 16, 20)


def run(
    powers_dbm: Sequence[float] = DEFAULT_POWERS_DBM,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    program: str = "news",
    duration_s: float = 2.0,
    receiver_kind: str = "smartphone",
    rng: RngLike = None,
) -> Dict[str, object]:
    """PESQ sweep over (power, distance) for overlay speech.

    Returns:
        dict with ``distances_ft`` and one PESQ list per power level.
    """
    gen = as_generator(rng)
    reference = speech_like(
        duration_s, AUDIO_RATE_HZ, child_generator(gen, "speech"), amplitude=0.9
    )
    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    for power in powers_dbm:
        series: List[float] = []
        for distance in distances_ft:
            chain = ExperimentChain(
                program=program,
                power_dbm=power,
                distance_ft=distance,
                receiver_kind=receiver_kind,
                stereo_decode=False,
            )
            received = chain.transmit(
                reference, child_generator(gen, "fig11", power, distance)
            )
            score = pesq_like(
                reference, chain.payload_channel(received), AUDIO_RATE_HZ
            )
            series.append(score)
        results[f"P{int(power)}"] = series
    return results

"""Fig. 13 — PESQ of speech sent with stereo backscatter.

Two scenarios: (a) the payload rides the under-used stereo stream of a
stereo *news* station; (b) the station is mono and the device injects the
19 kHz pilot to force receivers into stereo mode (mono-to-stereo
backscatter). Expected shape: both beat overlay at high power (the stereo
stream is nearly interference-free; the mono conversion even more so),
but both *fail* at low power where the receiver cannot detect the pilot
and falls back to mono — scenario (a) needs roughly -40 dBm, (b) works a
step lower.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.audio.pesq import pesq_like
from repro.audio.speech import speech_like
from repro.backscatter.device import BackscatterMode
from repro.constants import AUDIO_RATE_HZ
from repro.engine import AxisRef, PointRun, Scenario, SweepSpec, power_key, run_scenario
from repro.utils.rand import RngLike, child_generator

DEFAULT_POWERS_DBM = (-20.0, -30.0, -40.0)
DEFAULT_DISTANCES_FT = (1, 4, 8, 12, 16, 20)


def score_pesq_and_lock(run: PointRun) -> Tuple[float, bool]:
    """(PESQ, stereo-locked) of the runner-transmitted reference
    (module-level, picklable)."""
    reference = run.data["reference"]
    audio = run.chain.payload_channel(run.received)
    return (
        pesq_like(reference, audio, AUDIO_RATE_HZ),
        run.received.stereo_locked,
    )


def build_scenario(
    scenario: str = "stereo_station",
    powers_dbm: Sequence[float] = DEFAULT_POWERS_DBM,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    duration_s: float = 2.0,
) -> Scenario:
    """The declarative sweep for one Fig. 13 panel.

    Module-level so tests can execute the exact grid ``run()`` uses under
    any backend (the stereo decode at every point is what the batched
    backend's multi-waveform pilot PLL exists for).
    """
    if scenario not in ("stereo_station", "mono_station"):
        raise ValueError("scenario must be 'stereo_station' or 'mono_station'")
    station_stereo = scenario == "stereo_station"
    mode = BackscatterMode.STEREO if station_stereo else BackscatterMode.MONO_TO_STEREO

    return Scenario(
        name="fig13",
        sweep=SweepSpec.grid(power_dbm=tuple(powers_dbm), distance_ft=tuple(distances_ft)),
        prepare=lambda gen: {
            "reference": speech_like(
                duration_s, AUDIO_RATE_HZ, child_generator(gen, "speech"), amplitude=0.9
            )
        },
        base_chain={
            "program": "news",
            "station_stereo": station_stereo,
            "mode": mode,
            "stereo_decode": True,
        },
        chain_axes=("power_dbm", "distance_ft"),
        rng_keys=(scenario, AxisRef("power_dbm"), AxisRef("distance_ft")),
        payload="reference",
        measure=score_pesq_and_lock,
    )


def run(
    scenario: str = "stereo_station",
    powers_dbm: Sequence[float] = DEFAULT_POWERS_DBM,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    duration_s: float = 2.0,
    rng: RngLike = None,
) -> Dict[str, object]:
    """PESQ sweep for one Fig. 13 panel.

    Args:
        scenario: ``stereo_station`` (panel a: news station already in
            stereo) or ``mono_station`` (panel b: pilot injection).

    Returns:
        dict with ``distances_ft`` and one PESQ list per power level,
        plus ``stereo_lock`` booleans per power level (fraction of runs
        where the receiver engaged stereo mode).
    """
    sweep_scenario = build_scenario(
        scenario,
        powers_dbm=powers_dbm,
        distances_ft=distances_ft,
        duration_s=duration_s,
    )
    result = run_scenario(sweep_scenario, rng=rng)

    results: Dict[str, object] = {"distances_ft": [float(d) for d in distances_ft]}
    for power in powers_dbm:
        cells = result.series(along="distance_ft", power_dbm=power)
        results[power_key(power)] = [score for score, _ in cells]
        results[power_key(power, prefix="lock_P")] = [locked for _, locked in cells]
    return results

"""Shared end-to-end simulation chain for the experiment modules.

The chain mirrors the paper's testbed:

    FM station (USRP stand-in)  ->  backscatter device  ->  link budget
    ->  FM receiver (phone / car)  ->  audio  ->  metric (SNR/BER/PESQ)

The multiplication-to-addition identity (validated against true square-
wave mixing in the test suite) lets the chain build the composite MPX
directly: the receiver tuned to ``fc + fback`` demodulates
``FMaudio + FMback`` plus RF noise set by the link budget.

The chain is a *staged link pipeline*: :class:`FrontEndStage` (station
MPX + device baseband + FM composite), :class:`LinkStage` (budget,
fading, noise) and :class:`ReceiveStage` (demod + audio) are picklable
dataclass configs, each with a pure ``apply(state, rng)`` that advances
a :class:`ChainState`. :class:`ExperimentChain` is the user-facing bundle
that derives the three stages and the per-stage child generators; the
sweep engine's process backend ships stage configs across process
boundaries, and its batched backend re-groups them (one shared front
end, vectorized link + receive) without re-deriving any of the physics.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field, replace
from typing import Optional, Protocol, Tuple

import numpy as np

from repro.backscatter.dco import CapacitorBankDco
from repro.backscatter.device import BackscatterDevice, BackscatterMode
from repro.backscatter.modulator import composite_mpx
from repro.channel.antenna import Antenna, CAR_WHIP, DIPOLE_POSTER, HEADPHONE_WIRE
from repro.channel.link import BackscatterLink, FadingModel, LinkBudget
from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.data.ber import bit_error_rate
from repro.errors import ConfigurationError
from repro.fm.modulator import fm_modulate
from repro.fm.station import FMStation, StationConfig
from repro.receiver.car import CarReceiver
from repro.receiver.fm_receiver import FMReceiver, ReceivedAudio
from repro.receiver.smartphone import SmartphoneReceiver
from repro.utils.rand import RngLike, as_generator, child_generator


class AmbientSource(Protocol):
    """Provider of pre-synthesized ambient-station material.

    Implemented by :class:`repro.engine.cache.CachedAmbient`. The front
    end hands it either itself (a :class:`FrontEndStage`) or a full
    :class:`ExperimentChain` — both expose the same front-end surface
    (``program`` / ``station_stereo`` / ``front_end_key()`` /
    ``modulate_with_ambient``).
    """

    def modulated_composite(
        self, front_end: "FrontEndStage", payload_audio: np.ndarray
    ) -> np.ndarray:
        """FM-modulated composite carrier for (front end, payload)."""
        ...


@dataclass(frozen=True)
class ChainState:
    """The value threaded through the staged link pipeline.

    Each stage's ``apply`` consumes the fields filled by the previous
    stage and returns a new state with its own output attached, so a
    partially-applied pipeline (e.g. the batched backend replacing the
    link + receive stages with vectorized equivalents) is just a state
    with the remaining fields still ``None``.

    Attributes:
        payload_audio: the device payload at the audio rate (input).
        iq: FM-modulated composite envelope (after the front end).
        rx_iq: faded / noise-corrupted envelope (after the link).
        received: decoded receiver output (after the receive stage).
    """

    payload_audio: np.ndarray
    iq: Optional[np.ndarray] = None
    rx_iq: Optional[np.ndarray] = None
    received: Optional[ReceivedAudio] = None


@dataclass(frozen=True)
class FrontEndStage:
    """Station program + device baseband + composite FM modulation.

    A picklable value object: everything the transmit front end depends
    on — and nothing downstream (power, distance, fading, receiver), so
    a whole link-budget grid shares one front-end synthesis keyed by
    :meth:`front_end_key`.
    """

    program: str = "news"
    station_stereo: bool = True
    mode: BackscatterMode = BackscatterMode.OVERLAY
    back_amplitude: float = 1.0
    dco_bits: Optional[int] = None

    def front_end_key(self) -> Tuple[object, ...]:
        """Cache key of everything this front end's output depends on."""
        return (
            self.program,
            bool(self.station_stereo),
            self.mode.value,
            float(self.back_amplitude),
            self.dco_bits,
        )

    def device_baseband(self, payload_audio: np.ndarray) -> np.ndarray:
        """Render the device-side baseband ``FMback`` for one payload."""
        device = BackscatterDevice(mode=self.mode)
        back_mpx = self.back_amplitude * device.baseband(payload_audio)
        if self.dco_bits is not None:
            back_mpx = CapacitorBankDco(n_bits=self.dco_bits).quantize_baseband(back_mpx)
        return back_mpx

    def modulate_with_ambient(
        self, ambient_mpx: np.ndarray, payload_audio: np.ndarray
    ) -> np.ndarray:
        """FM-modulated composite of an ambient MPX plus the payload."""
        comp = composite_mpx(ambient_mpx, self.device_baseband(payload_audio))
        return fm_modulate(comp, MPX_RATE_HZ)

    def apply(
        self,
        state: ChainState,
        rng: RngLike = None,
        ambient: Optional[AmbientSource] = None,
    ) -> ChainState:
        """Synthesize (or fetch) the composite envelope for the payload.

        Args:
            state: pipeline state carrying ``payload_audio``.
            rng: the station child generator (used only when synthesizing;
                a cached ambient source replaces the synthesis entirely,
                and the caller derives the child either way so downstream
                draws stay aligned).
            ambient: optional :class:`AmbientSource`; when set, the
                composite comes from its cache — synthesized once per
                sweep — instead of being rebuilt per call.
        """
        payload = state.payload_audio
        if ambient is not None:
            iq = ambient.modulated_composite(self, payload)
        else:
            duration_s = payload.size / AUDIO_RATE_HZ
            station = FMStation(
                StationConfig(program=self.program, stereo=self.station_stereo),
                rng=rng,
            )
            iq = self.modulate_with_ambient(station.mpx(duration_s), payload)
        return replace(state, iq=iq)


@dataclass(frozen=True)
class LinkStage:
    """Link budget + optional fading + AWGN at the budget's RF SNR.

    ``fading`` may be a live :class:`FadingModel` or a declarative
    :class:`~repro.channel.fading.MotionFadingSpec`; the link resolves a
    spec per transmission from the stage generator, so spec-carrying
    stages are picklable and order-independent across backends.
    """

    budget: LinkBudget
    fading: Optional[object] = None

    def apply(self, state: ChainState, rng: RngLike = None) -> ChainState:
        """Pass the composite envelope through the physical channel."""
        link = BackscatterLink(self.budget, fading=self.fading)
        rx_iq = link.transmit(state.iq, MPX_RATE_HZ, rng=rng)
        return replace(state, rx_iq=rx_iq)


@dataclass(frozen=True)
class ReceiveStage:
    """Receiver selection + demodulation + audio decoding."""

    receiver_kind: str = "smartphone"
    stereo_decode: bool = True
    agc: bool = False

    def build_receiver(self, rng: RngLike = None) -> FMReceiver:
        """Construct the configured receiver with its child generator.

        Consumes one draw from ``rng`` (the chain generator) to derive
        the receiver's noise stream — the same draw the monolithic chain
        always made, which keeps stage-wise and end-to-end runs
        bit-identical.
        """
        if self.receiver_kind == "car":
            return CarReceiver(rng=child_generator(rng, "car"))
        rx = SmartphoneReceiver(agc_enabled=self.agc, rng=child_generator(rng, "phone"))
        rx.stereo_capable = self.stereo_decode
        return rx

    def apply(self, state: ChainState, rng: RngLike = None) -> ChainState:
        """Demodulate and decode the received envelope into audio."""
        receiver = self.build_receiver(rng)
        return replace(state, received=receiver.receive(state.rx_iq))


@dataclass
class ExperimentChain:
    """One configured station + device + link + receiver pipeline.

    Args:
        program: ambient station program (``silence`` for the Fig. 6/7
            unmodulated-carrier micro-benchmarks).
        station_stereo: station broadcasts stereo (pilot present).
        mode: backscatter payload placement.
        power_dbm: ambient FM power at the backscatter device.
        distance_ft: device-to-receiver distance.
        receiver_kind: ``smartphone`` or ``car``.
        back_amplitude: payload amplitude in the device baseband [0, 1];
            scales the backscattered audio's share of the deviation.
        fading: optional fading for the link — a live
            :class:`~repro.channel.link.FadingModel` (stateful RNG) or a
            declarative :class:`~repro.channel.fading.MotionFadingSpec`,
            which the link resolves per transmission from its own
            generator. Prefer the spec in sweep scenarios: it is
            picklable and order-independent, so fading grids batch on
            the vectorized backend and stay bit-identical on all four.
        stereo_decode: receiver attempts stereo decoding (needed for
            stereo-backscatter modes; skipping it avoids the pilot PLL on
            mono-band experiments).
        agc: enable the smartphone recording-chain AGC.
        dco_bits: when set, quantize the device baseband like the IC's
            binary-weighted capacitor-bank oscillator (section 4; None
            models an ideal continuous oscillator).
        ambient_source: optional provider of pre-synthesized ambient
            material (the sweep engine's
            :class:`~repro.engine.cache.CachedAmbient`). When set,
            :meth:`transmit` takes its FM-modulated composite from the
            source — synthesized once per sweep — instead of rebuilding
            the whole front end per call. The link and receiver stages
            still draw from the per-call ``rng`` exactly as before.
    """

    program: str = "news"
    station_stereo: bool = True
    mode: BackscatterMode = BackscatterMode.OVERLAY
    power_dbm: float = -30.0
    distance_ft: float = 4.0
    receiver_kind: str = "smartphone"
    back_amplitude: float = 1.0
    fading: Optional[object] = None
    stereo_decode: bool = True
    agc: bool = False
    device_antenna: Antenna = field(default_factory=lambda: DIPOLE_POSTER)
    dco_bits: Optional[int] = None
    ambient_source: Optional[AmbientSource] = None

    def __post_init__(self) -> None:
        if self.receiver_kind not in ("smartphone", "car"):
            raise ConfigurationError("receiver_kind must be 'smartphone' or 'car'")
        if not 0.0 < self.back_amplitude <= 1.0:
            raise ConfigurationError("back_amplitude must be in (0, 1]")
        if not isinstance(self.power_dbm, numbers.Real) or not np.isfinite(self.power_dbm):
            raise ConfigurationError(
                f"power_dbm must be a finite number, got {self.power_dbm!r}"
            )
        if (
            not isinstance(self.distance_ft, numbers.Real)
            or not np.isfinite(self.distance_ft)
            or self.distance_ft <= 0
        ):
            raise ConfigurationError(
                f"distance_ft must be positive, got {self.distance_ft!r}"
            )

    # -- stage derivation --------------------------------------------------

    def front_end(self) -> FrontEndStage:
        """The picklable front-end stage this chain configures."""
        return FrontEndStage(
            program=self.program,
            station_stereo=self.station_stereo,
            mode=self.mode,
            back_amplitude=self.back_amplitude,
            dco_bits=self.dco_bits,
        )

    def link_budget(self) -> LinkBudget:
        """The link budget for this chain's power/distance/receiver."""
        if self.receiver_kind == "car":
            # Car front ends are better on every axis (section 5.4):
            # matched whip antenna, lower noise floor, sharper IF filters.
            return LinkBudget(
                ambient_power_at_device_dbm=self.power_dbm,
                distance_ft=self.distance_ft,
                device_antenna=self.device_antenna,
                receiver_antenna=CAR_WHIP,
                receiver_noise_floor_dbm=-100.0,
                adjacent_suppression_db=85.0,
            )
        return LinkBudget(
            ambient_power_at_device_dbm=self.power_dbm,
            distance_ft=self.distance_ft,
            device_antenna=self.device_antenna,
            receiver_antenna=HEADPHONE_WIRE,
        )

    def link_stage(self) -> LinkStage:
        """The picklable link stage this chain configures."""
        return LinkStage(budget=self.link_budget(), fading=self.fading)

    def receive_stage(self) -> ReceiveStage:
        """The picklable receive stage this chain configures."""
        return ReceiveStage(
            receiver_kind=self.receiver_kind,
            stereo_decode=self.stereo_decode,
            agc=self.agc,
        )

    # -- front-end conveniences (delegate to the stage) --------------------

    def rf_snr_db(self) -> float:
        """RF SNR of the backscattered channel (link-budget output)."""
        return self.link_budget().rf_snr_db()

    def front_end_key(self) -> Tuple[object, ...]:
        """Cache key of everything the transmit front end depends on.

        The ambient program, device baseband, composite MPX and FM
        modulation are functions of these fields plus the payload — not
        of power, distance, fading or receiver — so a whole link-budget
        grid can share one front-end synthesis.
        """
        return self.front_end().front_end_key()

    def device_baseband(self, payload_audio: np.ndarray) -> np.ndarray:
        """Render the device-side baseband ``FMback`` for one payload."""
        return self.front_end().device_baseband(payload_audio)

    def modulate_with_ambient(
        self, ambient_mpx: np.ndarray, payload_audio: np.ndarray
    ) -> np.ndarray:
        """FM-modulated composite of an ambient MPX plus the payload."""
        return self.front_end().modulate_with_ambient(ambient_mpx, payload_audio)

    # -- end-to-end execution ----------------------------------------------

    def transmit(
        self, payload_audio: np.ndarray, rng: RngLike = None
    ) -> ReceivedAudio:
        """Run one end-to-end transmission and return the received audio.

        Applies the three stages in order, deriving each stage's child
        generator from ``rng`` exactly as the monolithic chain always did
        (station, link, then receiver), so results are bit-identical to
        the pre-pipeline implementation and invariant to whether an
        ambient source served the front end.

        Args:
            payload_audio: the device payload (audio or data waveform) at
                the audio rate; its duration sets the simulation length.
            rng: seed or Generator for the stochastic stages.
        """
        gen = as_generator(rng)
        state = ChainState(payload_audio=payload_audio)
        # The station child is derived even on the cached path, keeping
        # the link/receiver draws below identical with and without an
        # ambient source.
        state = self.front_end().apply(
            state, child_generator(gen, "station"), ambient=self.ambient_source
        )
        state = self.link_stage().apply(state, child_generator(gen, "link"))
        state = self.receive_stage().apply(state, gen)
        return state.received

    def payload_channel(self, received: ReceivedAudio) -> np.ndarray:
        """The audio stream carrying the payload for this chain's mode.

        Overlay payloads live in the mono mix; stereo payloads are
        recovered by differencing the receiver's L and R outputs (the
        paper's trick, section 3.3.1).
        """
        if self.mode is BackscatterMode.OVERLAY:
            return received.mono
        return received.difference


def simulate_overlay_audio(
    payload_audio: np.ndarray,
    power_dbm: float,
    distance_ft: float,
    program: str = "news",
    receiver_kind: str = "smartphone",
    rng: RngLike = None,
) -> Tuple[np.ndarray, ReceivedAudio]:
    """Convenience wrapper: overlay one audio payload, return (payload
    channel, full reception)."""
    chain = ExperimentChain(
        program=program,
        power_dbm=power_dbm,
        distance_ft=distance_ft,
        receiver_kind=receiver_kind,
        stereo_decode=False,
    )
    received = chain.transmit(payload_audio, rng)
    return chain.payload_channel(received), received


def measure_data_ber(
    chain: ExperimentChain,
    modem,
    bits: np.ndarray,
    rng: RngLike = None,
) -> float:
    """Transmit ``bits`` through ``chain`` with ``modem`` and return BER."""
    waveform = modem.modulate(bits)
    received = chain.transmit(waveform, rng)
    audio = chain.payload_channel(received)
    detected = modem.demodulate(audio, bits.size)
    return bit_error_rate(bits, detected)

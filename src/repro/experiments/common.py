"""Shared end-to-end simulation chain for the experiment modules.

The chain mirrors the paper's testbed:

    FM station (USRP stand-in)  ->  backscatter device  ->  link budget
    ->  FM receiver (phone / car)  ->  audio  ->  metric (SNR/BER/PESQ)

The multiplication-to-addition identity (validated against true square-
wave mixing in the test suite) lets the chain build the composite MPX
directly: the receiver tuned to ``fc + fback`` demodulates
``FMaudio + FMback`` plus RF noise set by the link budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.backscatter.dco import CapacitorBankDco
from repro.backscatter.device import BackscatterDevice, BackscatterMode
from repro.backscatter.modulator import composite_mpx
from repro.channel.antenna import Antenna, CAR_WHIP, DIPOLE_POSTER, HEADPHONE_WIRE
from repro.channel.link import BackscatterLink, LinkBudget
from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.data.ber import bit_error_rate
from repro.errors import ConfigurationError
from repro.fm.modulator import fm_modulate
from repro.fm.station import FMStation, StationConfig
from repro.receiver.car import CarReceiver
from repro.receiver.fm_receiver import FMReceiver, ReceivedAudio
from repro.receiver.smartphone import SmartphoneReceiver
from repro.utils.rand import RngLike, as_generator, child_generator


@dataclass
class ExperimentChain:
    """One configured station + device + link + receiver pipeline.

    Args:
        program: ambient station program (``silence`` for the Fig. 6/7
            unmodulated-carrier micro-benchmarks).
        station_stereo: station broadcasts stereo (pilot present).
        mode: backscatter payload placement.
        power_dbm: ambient FM power at the backscatter device.
        distance_ft: device-to-receiver distance.
        receiver_kind: ``smartphone`` or ``car``.
        back_amplitude: payload amplitude in the device baseband [0, 1];
            scales the backscattered audio's share of the deviation.
        fading: optional fading generator for the link.
        stereo_decode: receiver attempts stereo decoding (needed for
            stereo-backscatter modes; skipping it avoids the pilot PLL on
            mono-band experiments).
        agc: enable the smartphone recording-chain AGC.
        dco_bits: when set, quantize the device baseband like the IC's
            binary-weighted capacitor-bank oscillator (section 4; None
            models an ideal continuous oscillator).
        ambient_source: optional provider of pre-synthesized ambient
            material (the sweep engine's
            :class:`~repro.engine.cache.CachedAmbient`). When set,
            :meth:`transmit` takes its FM-modulated composite from the
            source — synthesized once per sweep — instead of rebuilding
            the whole front end per call. The link and receiver stages
            still draw from the per-call ``rng`` exactly as before.
    """

    program: str = "news"
    station_stereo: bool = True
    mode: BackscatterMode = BackscatterMode.OVERLAY
    power_dbm: float = -30.0
    distance_ft: float = 4.0
    receiver_kind: str = "smartphone"
    back_amplitude: float = 1.0
    fading: object = None
    stereo_decode: bool = True
    agc: bool = False
    device_antenna: Antenna = field(default_factory=lambda: DIPOLE_POSTER)
    dco_bits: Optional[int] = None
    ambient_source: object = None

    def __post_init__(self) -> None:
        if self.receiver_kind not in ("smartphone", "car"):
            raise ConfigurationError("receiver_kind must be 'smartphone' or 'car'")
        if not 0.0 < self.back_amplitude <= 1.0:
            raise ConfigurationError("back_amplitude must be in (0, 1]")

    def _receiver(self, rng) -> FMReceiver:
        if self.receiver_kind == "car":
            return CarReceiver(rng=child_generator(rng, "car"))
        rx = SmartphoneReceiver(agc_enabled=self.agc, rng=child_generator(rng, "phone"))
        rx.stereo_capable = self.stereo_decode
        return rx

    def _budget(self) -> LinkBudget:
        if self.receiver_kind == "car":
            # Car front ends are better on every axis (section 5.4):
            # matched whip antenna, lower noise floor, sharper IF filters.
            return LinkBudget(
                ambient_power_at_device_dbm=self.power_dbm,
                distance_ft=self.distance_ft,
                device_antenna=self.device_antenna,
                receiver_antenna=CAR_WHIP,
                receiver_noise_floor_dbm=-100.0,
                adjacent_suppression_db=85.0,
            )
        return LinkBudget(
            ambient_power_at_device_dbm=self.power_dbm,
            distance_ft=self.distance_ft,
            device_antenna=self.device_antenna,
            receiver_antenna=HEADPHONE_WIRE,
        )

    def rf_snr_db(self) -> float:
        """RF SNR of the backscattered channel (link-budget output)."""
        return self._budget().rf_snr_db()

    def front_end_key(self) -> Tuple[object, ...]:
        """Cache key of everything the transmit front end depends on.

        The ambient program, device baseband, composite MPX and FM
        modulation are functions of these fields plus the payload — not
        of power, distance, fading or receiver — so a whole link-budget
        grid can share one front-end synthesis.
        """
        return (
            self.program,
            bool(self.station_stereo),
            self.mode.value,
            float(self.back_amplitude),
            self.dco_bits,
        )

    def device_baseband(self, payload_audio: np.ndarray) -> np.ndarray:
        """Render the device-side baseband ``FMback`` for one payload."""
        device = BackscatterDevice(mode=self.mode)
        back_mpx = self.back_amplitude * device.baseband(payload_audio)
        if self.dco_bits is not None:
            back_mpx = CapacitorBankDco(n_bits=self.dco_bits).quantize_baseband(back_mpx)
        return back_mpx

    def modulate_with_ambient(
        self, ambient_mpx: np.ndarray, payload_audio: np.ndarray
    ) -> np.ndarray:
        """FM-modulated composite of an ambient MPX plus the payload."""
        comp = composite_mpx(ambient_mpx, self.device_baseband(payload_audio))
        return fm_modulate(comp, MPX_RATE_HZ)

    def transmit(
        self, payload_audio: np.ndarray, rng: RngLike = None
    ) -> ReceivedAudio:
        """Run one end-to-end transmission and return the received audio.

        Args:
            payload_audio: the device payload (audio or data waveform) at
                the audio rate; its duration sets the simulation length.
            rng: seed or Generator for the stochastic stages.
        """
        gen = as_generator(rng)
        duration_s = payload_audio.size / AUDIO_RATE_HZ

        # The station child is derived even on the cached path, keeping
        # the link/receiver draws below identical with and without an
        # ambient source.
        station_rng = child_generator(gen, "station")
        if self.ambient_source is not None:
            iq = self.ambient_source.modulated_composite(self, payload_audio)
        else:
            station = FMStation(
                StationConfig(program=self.program, stereo=self.station_stereo),
                rng=station_rng,
            )
            iq = self.modulate_with_ambient(station.mpx(duration_s), payload_audio)

        link = BackscatterLink(self._budget(), fading=self.fading)
        rx_iq = link.transmit(iq, MPX_RATE_HZ, rng=child_generator(gen, "link"))

        receiver = self._receiver(gen)
        return receiver.receive(rx_iq)

    def payload_channel(self, received: ReceivedAudio) -> np.ndarray:
        """The audio stream carrying the payload for this chain's mode.

        Overlay payloads live in the mono mix; stereo payloads are
        recovered by differencing the receiver's L and R outputs (the
        paper's trick, section 3.3.1).
        """
        if self.mode is BackscatterMode.OVERLAY:
            return received.mono
        return received.difference


def simulate_overlay_audio(
    payload_audio: np.ndarray,
    power_dbm: float,
    distance_ft: float,
    program: str = "news",
    receiver_kind: str = "smartphone",
    rng: RngLike = None,
) -> Tuple[np.ndarray, ReceivedAudio]:
    """Convenience wrapper: overlay one audio payload, return (payload
    channel, full reception)."""
    chain = ExperimentChain(
        program=program,
        power_dbm=power_dbm,
        distance_ft=distance_ft,
        receiver_kind=receiver_kind,
        stereo_decode=False,
    )
    received = chain.transmit(payload_audio, rng)
    return chain.payload_channel(received), received


def measure_data_ber(
    chain: ExperimentChain,
    modem,
    bits: np.ndarray,
    rng: RngLike = None,
) -> float:
    """Transmit ``bits`` through ``chain`` with ``modem`` and return BER."""
    waveform = modem.modulate(bits)
    received = chain.transmit(waveform, rng)
    audio = chain.payload_channel(received)
    detected = modem.demodulate(audio, bits.size)
    return bit_error_rate(bits, detected)

"""One-shot reproduction report: run every experiment, emit markdown.

``python -m repro.experiments.report [output.md]`` regenerates a compact
version of EXPERIMENTS.md from live runs — the artifact a downstream user
checks first when validating their installation. The ``fast`` grids keep
the full sweep under a few minutes; pass ``fast=False`` for the
paper-sized grids.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.experiments import (
    deployment_scale,
    fig02_survey,
    fig04_occupancy,
    fig05_stereo_usage,
    fig06_freq_response,
    fig07_snr_distance,
    fig08_ber_overlay,
    fig09_mrc,
    fig11_pesq_overlay,
    fig14_car,
    fig17_fabric,
)
from repro.backscatter.power import battery_life_hours, fm_chip_power_w, ic_power_budget

REPORT_SEED = 2017


def _series(values: List[float]) -> str:
    return ", ".join(f"{v:.3g}" for v in values)


def collect_aggregates(fast: bool = True, rng: int = REPORT_SEED) -> Dict[str, Dict]:
    """Run the experiment suite and return the report's numeric aggregates.

    One sub-dict per report section, holding exactly the numbers the
    markdown prints. This structured form is what the golden-regression
    tier pins (``tests/experiments/test_golden_outputs.py``), so drift in
    any headline number fails loudly even if the markdown prose changes.
    """
    survey = fig02_survey.run(rng=rng)
    occupancy = fig04_occupancy.run(rng=rng)
    usage = fig05_stereo_usage.run(
        n_snapshots=4 if fast else 20, snapshot_seconds=1.0, rng=rng
    )
    freqs = (1000, 8000, 12000, 14500) if fast else fig06_freq_response.DEFAULT_FREQS_HZ
    response = fig06_freq_response.run(freqs_hz=freqs, duration_s=0.4, rng=rng)
    snr = fig07_snr_distance.run(
        powers_dbm=(-30.0, -50.0),
        distances_ft=(4, 12, 20) if fast else fig07_snr_distance.DEFAULT_DISTANCES_FT,
        duration_s=0.4,
        rng=rng,
    )
    ber = fig08_ber_overlay.run(
        rate="100bps",
        powers_dbm=(-60.0,),
        distances_ft=(6, 12, 20) if fast else fig08_ber_overlay.DEFAULT_DISTANCES_FT,
        n_bits=120 if fast else 800,
        rng=rng,
    )
    mrc = fig09_mrc.run(
        distances_ft=(8,) if fast else fig09_mrc.DEFAULT_DISTANCES_FT,
        mrc_factors=(1, 2, 4),
        n_bits=800 if fast else 1600,
        rng=rng,
    )
    pesq = fig11_pesq_overlay.run(
        powers_dbm=(-20.0, -60.0),
        distances_ft=(4, 20) if fast else fig11_pesq_overlay.DEFAULT_DISTANCES_FT,
        duration_s=1.5,
        rng=rng,
    )
    car = fig14_car.run(
        powers_dbm=(-20.0,),
        distances_ft=(20, 60) if fast else fig14_car.DEFAULT_DISTANCES_FT,
        duration_s=1.0,
        rng=rng,
    )
    fabric = fig17_fabric.run(
        motions=("standing", "running"),
        n_bits_low=150 if fast else 400,
        n_bits_high=800 if fast else 1600,
        n_trials=2 if fast else 5,
        rng=rng,
    )
    deployment = deployment_scale.run(
        device_counts=(1, 2, 4) if fast else deployment_scale.DEFAULT_DEVICE_COUNTS,
        rng=rng,
    )
    budget = ic_power_budget()
    return {
        "survey": {
            "median_dbm": survey["median_dbm"],
            "min_dbm": survey["min_dbm"],
            "max_dbm": survey["max_dbm"],
            "diurnal_std_db": survey["diurnal_std_db"],
        },
        "occupancy": {
            "median_shift_khz": occupancy["median_shift_khz"],
            "max_shift_khz": occupancy["max_shift_khz"],
        },
        "stereo_usage": {
            program: usage[program]["median_db"]
            for program in ("news", "mixed", "pop", "rock")
        },
        "freq_response": {
            "freq_hz": list(response["freq_hz"]),
            "mono_snr_db": list(response["mono_snr_db"]),
        },
        "snr_distance": {
            "distances_ft": list(snr["distances_ft"]),
            "P-30": list(snr["P-30"]),
            "P-50": list(snr["P-50"]),
        },
        "ber_100bps": {
            "distances_ft": list(ber["distances_ft"]),
            "P-60": list(ber["P-60"]),
        },
        "mrc": {
            "mrc1": list(mrc["mrc1"]),
            "mrc2": list(mrc["mrc2"]),
            "mrc4": list(mrc["mrc4"]),
        },
        "pesq_overlay": {
            "P-20": list(pesq["P-20"]),
            "P-60": list(pesq["P-60"]),
        },
        "car": {
            "distances_ft": list(car["distances_ft"]),
            "snr_db": list(car["snr_P-20"]),
            "pesq": list(car["pesq_P-20"]),
        },
        "fabric": {
            "motions": list(fabric["motions"]),
            "ber_100bps": list(fabric["ber_100bps"]),
            "ber_1.6kbps_mrc2": list(fabric["ber_1.6kbps_mrc2"]),
        },
        "deployment": {
            "device_counts": list(deployment["device_counts"]),
            "per_device_delivery": list(deployment["per_device_delivery"]),
            "aggregate_goodput_bps": list(deployment["aggregate_goodput_bps"]),
            "shared_devices": list(deployment["shared_devices"]),
        },
        "power": {
            "ic_total_uw": budget.total_uw,
            "coin_cell_years": battery_life_hours(budget.total_w) / (24 * 365),
            "fm_chip_hours": battery_life_hours(fm_chip_power_w()),
        },
    }


def generate_report(fast: bool = True) -> str:
    """Run the experiment suite and return a markdown report."""
    agg = collect_aggregates(fast=fast)
    lines: List[str] = [
        "# FM Backscatter reproduction report",
        "",
        "Generated by `repro.experiments.report`; deterministic seed "
        f"{REPORT_SEED}; {'fast' if fast else 'full'} grids.",
        "",
    ]

    survey = agg["survey"]
    lines += [
        "## Fig. 2 — signal survey",
        f"- median power {survey['median_dbm']:.1f} dBm "
        f"(span {survey['min_dbm']:.1f} .. {survey['max_dbm']:.1f}); "
        f"diurnal sigma {survey['diurnal_std_db']:.2f} dB",
        "",
    ]

    occupancy = agg["occupancy"]
    lines += [
        "## Fig. 4 — channel occupancy",
        f"- pooled median min-shift {occupancy['median_shift_khz']:.0f} kHz, "
        f"max {occupancy['max_shift_khz']:.0f} kHz",
        "",
    ]

    usage = agg["stereo_usage"]
    lines += [
        "## Fig. 5 — stereo utilization (median dB)",
        "- "
        + ", ".join(
            f"{program} {usage[program]:.1f}"
            for program in ("news", "mixed", "pop", "rock")
        ),
        "",
    ]

    response = agg["freq_response"]
    lines += [
        "## Fig. 6 — frequency response (mono SNR dB)",
        f"- at {list(response['freq_hz'])}: {_series(response['mono_snr_db'])}",
        "",
    ]

    snr = agg["snr_distance"]
    lines += [
        "## Fig. 7 — SNR vs distance",
        f"- -30 dBm: {_series(snr['P-30'])} at {list(snr['distances_ft'])} ft",
        f"- -50 dBm: {_series(snr['P-50'])}",
        "",
    ]

    ber = agg["ber_100bps"]
    lines += [
        "## Fig. 8a — 100 bps BER at -60 dBm",
        f"- {_series(ber['P-60'])} at {list(ber['distances_ft'])} ft",
        "",
    ]

    mrc = agg["mrc"]
    lines += [
        "## Fig. 9 — MRC (1.6 kbps, -40 dBm, 8 ft)",
        f"- BER 1x {_series(mrc['mrc1'])}, 2x {_series(mrc['mrc2'])}, "
        f"4x {_series(mrc['mrc4'])}",
        "",
    ]

    pesq = agg["pesq_overlay"]
    lines += [
        "## Fig. 11 — overlay PESQ",
        f"- -20 dBm: {_series(pesq['P-20'])}; -60 dBm: {_series(pesq['P-60'])}",
        "",
    ]

    car = agg["car"]
    lines += [
        "## Fig. 14 — car receiver",
        f"- SNR {_series(car['snr_db'])} dB, PESQ {_series(car['pesq'])} "
        f"at {list(car['distances_ft'])} ft",
        "",
    ]

    fabric = agg["fabric"]
    lines += [
        "## Fig. 17b — smart fabric",
        f"- 100 bps: {_series(fabric['ber_100bps'])}; 1.6 kbps + 2x MRC: "
        f"{_series(fabric['ber_1.6kbps_mrc2'])} ({fabric['motions']})",
        "",
    ]

    deployment = agg["deployment"]
    lines += [
        "## Deployment scale-out (sections 1, 8)",
        f"- devices {deployment['device_counts']}: per-device delivery "
        f"{_series(deployment['per_device_delivery'])}; aggregate goodput "
        f"{_series(deployment['aggregate_goodput_bps'])} bps "
        f"(ALOHA sharers per count: {deployment['shared_devices']})",
        "",
    ]

    power = agg["power"]
    lines += [
        "## Power (section 4)",
        f"- IC total {power['ic_total_uw']:.2f} uW; coin cell life "
        f"{power['coin_cell_years']:.1f} years vs {power['fm_chip_hours']:.1f} "
        "hours for an FM chip",
        "",
    ]
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    """CLI entry point: write the report to the given path or stdout."""
    argv = sys.argv[1:] if argv is None else argv
    report = generate_report(fast=True)
    if argv:
        with open(argv[0], "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"wrote {argv[0]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

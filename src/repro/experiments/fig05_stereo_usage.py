"""Fig. 5 — stereo-stream power by program format.

CDF of P(stereo band) / P(16-18 kHz guard band) for four station formats.
The paper's shape: news/talk sits lowest (speech is identical in L and R,
leaving the stereo stream nearly empty), music sits highest, mixed in
between — the observation that motivates stereo backscatter.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.audio.music import PROGRAM_TYPES
from repro.engine import AxisRef, Scenario, SweepSpec, run_scenario
from repro.survey.stereo_usage import stereo_to_noise_ratios_db
from repro.utils.rand import RngLike


def measure_stereo_ratios(run, n_snapshots: int, snapshot_seconds: float):
    """Stereo-to-guard-band ratio distribution for one program format
    (module-level, picklable)."""
    ratios = stereo_to_noise_ratios_db(
        run.point["program"],
        n_snapshots=n_snapshots,
        snapshot_seconds=snapshot_seconds,
        rng=run.rng,
    )
    return {
        "ratios_db": ratios.tolist(),
        "median_db": float(np.median(ratios)),
    }


def run(
    n_snapshots: int = 10,
    snapshot_seconds: float = 1.0,
    rng: RngLike = None,
) -> Dict[str, object]:
    """Compute the Fig. 5 ratio distribution for each program format.

    Returns:
        dict keyed by program with the ratio list (dB) and its median.
    """

    scenario = Scenario(
        name="fig05",
        sweep=SweepSpec.grid(program=tuple(PROGRAM_TYPES)),
        rng_keys=(AxisRef("program"),),
        measure=measure_stereo_ratios,
        measure_params={
            "n_snapshots": n_snapshots,
            "snapshot_seconds": snapshot_seconds,
        },
        cache_ambient=False,
    )
    result = run_scenario(scenario, rng=rng)
    return {point["program"]: value for point, value in result}

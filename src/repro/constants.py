"""Physical constants and FM broadcast band plan parameters.

Numbers here come from the paper (NSDI 2017) and the US FM broadcast rules
it cites (47 CFR Part 73):

* FM band: 100 channels, 88.1--108.1 MHz, 200 kHz spacing.
* Maximum frequency deviation: 75 kHz.
* Stereo pilot: 19 kHz; stereo (L-R) DSB-SC subcarrier at 38 kHz;
  RDS subcarrier at 57 kHz.
* Mono audio occupies 30 Hz--15 kHz.
"""

from __future__ import annotations

import numpy as np

SPEED_OF_LIGHT_M_S = 299_792_458.0
"""Speed of light in vacuum (m/s)."""

# ---------------------------------------------------------------------------
# FM band plan (47 CFR 73; paper section 3.2)
# ---------------------------------------------------------------------------

FM_BAND_LOW_HZ = 88.1e6
"""Center frequency of the lowest US FM channel (channel 201)."""

FM_BAND_HIGH_HZ = 108.1e6
"""Center frequency just above the highest US FM channel."""

FM_CHANNEL_SPACING_HZ = 200e3
"""Spacing between adjacent FM channel centers."""

FM_NUM_CHANNELS = 100
"""Number of FM channels in the US band plan."""

FM_MAX_DEVIATION_HZ = 75e3
"""Maximum FM frequency deviation (100% modulation)."""

FM_MAX_ERP_W = 100e3
"""Maximum effective radiated power of a US FM station (100 kW)."""

# ---------------------------------------------------------------------------
# MPX (composite baseband) layout (paper Fig. 3)
# ---------------------------------------------------------------------------

PILOT_FREQ_HZ = 19e3
"""Stereo pilot tone frequency."""

STEREO_SUBCARRIER_HZ = 38e3
"""Center of the DSB-SC stereo (L-R) subcarrier (2x pilot)."""

RDS_SUBCARRIER_HZ = 57e3
"""Center of the RDS subcarrier (3x pilot)."""

MONO_AUDIO_LOW_HZ = 30.0
"""Lower edge of the mono (L+R) audio band."""

MONO_AUDIO_HIGH_HZ = 15e3
"""Upper edge of the mono (L+R) audio band."""

STEREO_BAND_LOW_HZ = 23e3
"""Lower edge of the stereo (L-R) band in the MPX spectrum."""

STEREO_BAND_HIGH_HZ = 53e3
"""Upper edge of the stereo (L-R) band in the MPX spectrum."""

RDS_BAND_LOW_HZ = 56e3
"""Lower edge of the RDS band in the MPX spectrum."""

RDS_BAND_HIGH_HZ = 58e3
"""Upper edge of the RDS band in the MPX spectrum."""

RDS_BITRATE_BPS = 1187.5
"""RDS data rate: 57 kHz / 48."""

# Standard mixing fractions used by broadcast exciters: ~90% program,
# 10% pilot (the paper backscatters 0.9 * audio + 0.1 * pilot).
PILOT_FRACTION = 0.1
"""Fraction of total deviation allocated to the 19 kHz pilot."""

DEEMPHASIS_US_SECONDS = 75e-6
"""North American FM de-emphasis time constant (75 microseconds)."""

DEEMPHASIS_EU_SECONDS = 50e-6
"""European FM de-emphasis time constant (50 microseconds)."""

# ---------------------------------------------------------------------------
# Default simulation sample rates (DESIGN.md section 5)
# ---------------------------------------------------------------------------

AUDIO_RATE_HZ = 48_000
"""Default audio-domain sample rate."""

MPX_RATE_HZ = 480_000
"""Default MPX / complex-baseband sample rate (10x audio rate)."""

# ---------------------------------------------------------------------------
# Paper-specific parameters
# ---------------------------------------------------------------------------

DEFAULT_FBACK_HZ = 600e3
"""Backscatter frequency shift used throughout the paper's evaluation."""

FM_RECEIVER_SENSITIVITY_DBM = -100.0
"""Typical FM receiver sensitivity (paper section 3.1, refs [14, 1])."""

COOP_PILOT_FREQ_HZ = 13e3
"""Cooperative backscatter amplitude-calibration pilot (section 3.3)."""

FSK_LOW_RATE_FREQS_HZ = (8_000.0, 12_000.0)
"""2-FSK tone frequencies for the 100 bps mode (zero bit, one bit)."""

FSK_LOW_RATE_SYMBOL_RATE = 100
"""Symbol rate of the 100 bps 2-FSK mode."""

FDM_TONE_LOW_HZ = 800.0
"""Lowest of the 16 FDM-4FSK tones."""

FDM_TONE_HIGH_HZ = 12_800.0
"""Highest of the 16 FDM-4FSK tones."""

FDM_NUM_TONES = 16
"""Number of tones in the FDM-4FSK scheme (four groups of four)."""

FDM_NUM_GROUPS = 4
"""Number of 4-FSK groups, each carrying 2 bits per symbol."""

FDM_SYMBOL_RATES = (200, 400)
"""Supported FDM-4FSK symbol rates (1.6 kbps and 3.2 kbps)."""

# IC power budget (paper section 4).
IC_BASEBAND_POWER_W = 1.0e-6
"""Power of the digital baseband state machine (1 uW)."""

IC_MODULATOR_POWER_W = 9.94e-6
"""Power of the 600 kHz LC-tank FM modulator (9.94 uW)."""

IC_SWITCH_POWER_W = 0.13e-6
"""Power of the NMOS backscatter switch at 600 kHz (0.13 uW)."""

IC_TOTAL_POWER_W = IC_BASEBAND_POWER_W + IC_MODULATOR_POWER_W + IC_SWITCH_POWER_W
"""Total IC power: 11.07 uW."""

FEET_PER_METER = 1.0 / 0.3048
"""Feet in one meter."""


def fm_channel_centers_hz() -> np.ndarray:
    """Return the center frequencies of all 100 US FM channels in Hz."""
    return FM_BAND_LOW_HZ + FM_CHANNEL_SPACING_HZ * np.arange(FM_NUM_CHANNELS)

"""Proof-of-concept applications: talking posters and smart fabrics."""

from repro.apps.poster import PosterBroadcast, TalkingPoster
from repro.apps.fabric import SmartFabricSensor, VitalSigns

__all__ = [
    "PosterBroadcast",
    "SmartFabricSensor",
    "TalkingPoster",
    "VitalSigns",
]

"""Talking posters (paper section 6.1).

A poster with a copper-tape antenna backscatters the local news station
(-35..-40 dBm ambient) to phones and cars nearby: an audio snippet (the
band's music) overlaid on the broadcast, plus a 100 bps data notification
(the discount-ticket link of Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.backscatter.device import BackscatterMode
from repro.channel.antenna import Antenna, BOWTIE_POSTER, DIPOLE_POSTER
from repro.constants import AUDIO_RATE_HZ
from repro.data.framing import FrameCodec
from repro.data.fsk import BinaryFskModem
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentChain
from repro.receiver.fm_receiver import ReceivedAudio
from repro.utils.rand import RngLike, as_generator, child_generator


@dataclass
class PosterBroadcast:
    """What a poster reception yielded.

    Attributes:
        notification: decoded notification text (None if undecodable).
        audio: the received composite audio (ambient program + snippet).
        preamble_errors: bit errors in the frame preamble.
    """

    notification: Optional[str]
    audio: np.ndarray
    preamble_errors: int


@dataclass
class TalkingPoster:
    """A backscattering poster at a bus stop.

    Args:
        notification_text: short message broadcast as 100 bps data
            (e.g. "SIMPLY THREE 50% OFF TONIGHT").
        antenna: poster antenna; the 40"x60" dipole or 24"x36" bowtie.
        ambient_power_dbm: FM power at the poster (-35..-40 dBm measured
            at the paper's bus stop).
        program: ambient station format (the paper uses a news station).
    """

    notification_text: str = "SIMPLY THREE 50% OFF"
    antenna: Antenna = field(default_factory=lambda: DIPOLE_POSTER)
    ambient_power_dbm: float = -37.0
    program: str = "news"

    def __post_init__(self) -> None:
        if not self.notification_text:
            raise ConfigurationError("notification_text must be non-empty")
        if not self.notification_text.isascii():
            raise ConfigurationError("notification_text must be ASCII")

    def _chain(self, distance_ft: float, receiver_kind: str) -> ExperimentChain:
        return ExperimentChain(
            program=self.program,
            mode=BackscatterMode.OVERLAY,
            power_dbm=self.ambient_power_dbm,
            distance_ft=distance_ft,
            receiver_kind=receiver_kind,
            stereo_decode=False,
            device_antenna=self.antenna,
        )

    def broadcast_notification(
        self,
        distance_ft: float = 10.0,
        receiver_kind: str = "smartphone",
        rng: RngLike = None,
    ) -> PosterBroadcast:
        """Send the notification as a framed 100 bps transmission.

        The receiver searches for the frame preamble in the decoded audio
        (no sample alignment is assumed) and extracts the text payload.
        """
        gen = as_generator(rng)
        modem = BinaryFskModem()
        codec = FrameCodec(modem)
        waveform = codec.encode(self.notification_text.encode("ascii"))

        chain = self._chain(distance_ft, receiver_kind)
        received = chain.transmit(waveform, child_generator(gen, "frame"))
        audio = chain.payload_channel(received)
        try:
            sync = codec.decode(audio)
            text = sync.payload.decode("ascii", errors="replace")
            return PosterBroadcast(
                notification=text, audio=audio, preamble_errors=sync.preamble_errors
            )
        except Exception:
            return PosterBroadcast(notification=None, audio=audio, preamble_errors=-1)

    def broadcast_audio(
        self,
        snippet: np.ndarray,
        distance_ft: float = 4.0,
        receiver_kind: str = "smartphone",
        rng: RngLike = None,
    ) -> Tuple[np.ndarray, ReceivedAudio]:
        """Overlay an audio snippet (the band's music) on the broadcast.

        Returns:
            ``(payload channel audio, full reception)``.
        """
        chain = self._chain(distance_ft, receiver_kind)
        received = chain.transmit(snippet, rng)
        return chain.payload_channel(received), received

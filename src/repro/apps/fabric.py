"""Smart fabric (paper section 6.2): a shirt that streams vital signs.

The sewn meander-dipole antenna backscatters sensor readings — heart rate
and breathing rate — to the wearer's phone at 100 bps (robust even while
running) or 1.6 kbps with MRC. Sensor values are packed into a compact
telemetry frame; the phone decodes and unpacks them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.backscatter.device import BackscatterMode
from repro.channel.antenna import MEANDER_SHIRT, Antenna
from repro.channel.fading import BodyMotionFading
from repro.data.framing import FrameCodec
from repro.data.fsk import BinaryFskModem
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentChain
from repro.utils.rand import RngLike, as_generator, child_generator


@dataclass(frozen=True)
class VitalSigns:
    """One telemetry sample.

    Attributes:
        heart_rate_bpm: heart rate, 30-250 bpm.
        breathing_rate_bpm: breaths per minute, 4-60.
        step_count: steps since the session started.
    """

    heart_rate_bpm: int
    breathing_rate_bpm: int
    step_count: int

    def __post_init__(self) -> None:
        if not 30 <= self.heart_rate_bpm <= 250:
            raise ConfigurationError("heart_rate_bpm must be 30-250")
        if not 4 <= self.breathing_rate_bpm <= 60:
            raise ConfigurationError("breathing_rate_bpm must be 4-60")
        if not 0 <= self.step_count < (1 << 32):
            raise ConfigurationError("step_count must fit in 32 bits")

    def pack(self) -> bytes:
        """Serialize into the 6-byte telemetry format."""
        return struct.pack(">BBI", self.heart_rate_bpm, self.breathing_rate_bpm, self.step_count)

    @classmethod
    def unpack(cls, payload: bytes) -> "VitalSigns":
        """Deserialize the 6-byte telemetry format."""
        if len(payload) != 6:
            raise ConfigurationError(f"telemetry payload must be 6 bytes, got {len(payload)}")
        hr, br, steps = struct.unpack(">BBI", payload)
        return cls(heart_rate_bpm=hr, breathing_rate_bpm=br, step_count=steps)


@dataclass
class SmartFabricSensor:
    """The shirt: sensor + sewn antenna + backscatter switch.

    Args:
        antenna: the fabric antenna (sewn meander dipole by default).
        ambient_power_dbm: FM power at the wearer's location.
        motion: mobility state (``standing`` / ``walking`` / ``running``)
            driving the fading model.
    """

    antenna: Antenna = field(default_factory=lambda: MEANDER_SHIRT)
    ambient_power_dbm: float = -37.0
    motion: str = "standing"

    def device_spec(
        self,
        vitals: VitalSigns,
        distance_ft: float = 3.0,
        name: Optional[str] = None,
    ):
        """This shirt as a deployment-layer device.

        The returned :class:`~repro.engine.deployment.DeviceSpec`
        carries the sensor's telemetry frame, its sewn antenna and its
        mobility state, so a fleet of shirts can be swept through
        :class:`~repro.engine.deployment.DeploymentScenario` (device
        count / power / density as axes) instead of hand-rolled loops.
        """
        from repro.engine.deployment import DeviceSpec

        return DeviceSpec(
            name=name or f"shirt-{self.motion}",
            payload=vitals.pack(),
            power_dbm=self.ambient_power_dbm,
            distance_ft=distance_ft,
            motion=self.motion,
            antenna=self.antenna,
        )

    def transmit_vitals(
        self,
        vitals: VitalSigns,
        distance_ft: float = 3.0,
        rng: RngLike = None,
    ) -> Optional[VitalSigns]:
        """Send one telemetry frame to the phone; return the decoded copy.

        Returns ``None`` when the frame could not be recovered (deep fade
        or out of range) — callers retry, like the real system would.
        """
        gen = as_generator(rng)
        modem = BinaryFskModem()
        codec = FrameCodec(modem)
        waveform = codec.encode(vitals.pack())

        fading = BodyMotionFading(self.motion, child_generator(gen, "fade"))
        chain = ExperimentChain(
            program="news",
            mode=BackscatterMode.OVERLAY,
            power_dbm=self.ambient_power_dbm,
            distance_ft=distance_ft,
            stereo_decode=False,
            fading=fading,
            device_antenna=self.antenna,
        )
        received = chain.transmit(waveform, child_generator(gen, "rx"))
        try:
            sync = codec.decode(chain.payload_channel(received))
            return VitalSigns.unpack(sync.payload)
        except Exception:
            return None

"""Unit conversions used throughout the link-budget and survey code.

All functions accept scalars or numpy arrays and return the matching type.
Power quantities follow RF conventions: dBm is decibels relative to one
milliwatt, and the paper reports distances in feet, so both feet/meter
conversions are provided.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.constants import SPEED_OF_LIGHT_M_S

ArrayLike = Union[float, np.ndarray]

_FOOT_IN_METERS = 0.3048


def dbm_to_watts(dbm: ArrayLike) -> ArrayLike:
    """Convert power in dBm to watts."""
    return 1e-3 * 10.0 ** (np.asarray(dbm, dtype=float) / 10.0)


def watts_to_dbm(watts: ArrayLike) -> ArrayLike:
    """Convert power in watts to dBm.

    Raises:
        ValueError: if any power is not strictly positive.
    """
    watts = np.asarray(watts, dtype=float)
    if np.any(watts <= 0):
        raise ValueError("power must be positive to express in dBm")
    return 10.0 * np.log10(watts / 1e-3)


def db_to_linear(db: ArrayLike) -> ArrayLike:
    """Convert a power ratio in dB to a linear ratio."""
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0)


def linear_to_db(ratio: ArrayLike) -> ArrayLike:
    """Convert a linear power ratio to dB.

    Raises:
        ValueError: if any ratio is not strictly positive.
    """
    ratio = np.asarray(ratio, dtype=float)
    if np.any(ratio <= 0):
        raise ValueError("ratio must be positive to express in dB")
    return 10.0 * np.log10(ratio)


def power_ratio_db(p_num: ArrayLike, p_den: ArrayLike) -> ArrayLike:
    """dB ratio of two powers (``10 log10(p_num / p_den)``)."""
    return linear_to_db(np.asarray(p_num, dtype=float) / np.asarray(p_den, dtype=float))


def voltage_ratio_db(v_num: ArrayLike, v_den: ArrayLike) -> ArrayLike:
    """dB ratio of two amplitudes (``20 log10(v_num / v_den)``)."""
    num = np.abs(np.asarray(v_num, dtype=float))
    den = np.abs(np.asarray(v_den, dtype=float))
    if np.any(num <= 0) or np.any(den <= 0):
        raise ValueError("amplitudes must be non-zero")
    return 20.0 * np.log10(num / den)


def feet_to_meters(feet: ArrayLike) -> ArrayLike:
    """Convert feet to meters."""
    return np.asarray(feet, dtype=float) * _FOOT_IN_METERS


def meters_to_feet(meters: ArrayLike) -> ArrayLike:
    """Convert meters to feet."""
    return np.asarray(meters, dtype=float) / _FOOT_IN_METERS


def wavelength_m(frequency_hz: ArrayLike) -> ArrayLike:
    """Free-space wavelength in meters for a frequency in Hz.

    Raises:
        ValueError: if any frequency is not strictly positive.
    """
    frequency_hz = np.asarray(frequency_hz, dtype=float)
    if np.any(frequency_hz <= 0):
        raise ValueError("frequency must be positive")
    return SPEED_OF_LIGHT_M_S / frequency_hz

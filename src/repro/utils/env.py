"""Strict parsing of the library's environment knobs.

Every ``REPRO_*`` tuning variable funnels through these helpers so a
malformed value fails *at the knob* — a :class:`~repro.errors.
ConfigurationError` naming the variable and the offending string —
instead of crashing deep inside numpy arithmetic or, worse, being
silently clamped to a default the operator never asked for.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

NUMERICS_ENV_VAR = "REPRO_NUMERICS"
"""Environment knob selecting the numerics mode (``exact`` / ``fast``)."""

NUMERICS_CHOICES = ("exact", "fast")
"""Accepted :data:`NUMERICS_ENV_VAR` values."""


def env_choice(
    name: str,
    default: Optional[str],
    choices: Sequence[str],
) -> Optional[str]:
    """Read a string knob constrained to a fixed set of choices.

    The value is stripped and lower-cased before matching, so
    ``REPRO_SWEEP_BACKEND=Batched`` works; anything outside ``choices``
    raises a :class:`~repro.errors.ConfigurationError` naming the
    variable, the offending string and the valid choices — a typo'd
    backend name must never silently fall back to a default.

    Args:
        name: environment variable name.
        default: value used when the variable is unset or blank (may be
            ``None`` for "no preference").
        choices: the accepted values.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    value = raw.lower()
    if value not in choices:
        raise ConfigurationError(
            f"{name} must be one of {tuple(choices)}, got {raw!r}"
        )
    return value


def numerics_mode() -> str:
    """The active numerics mode: ``"exact"`` (default) or ``"fast"``.

    ``exact`` keeps every kernel bit-identical to the seed figures (the
    per-row loops in fading interpolation, the FM discriminator and the
    receiver output-effect draws exist purely for that contract).
    ``fast`` fuses those loops into single 2-D kernels and batches the
    noise draws — faster, statistically equivalent, but *not*
    bit-identical; it is gated by the tolerance-tier golden suite
    instead of the exact-tier fixtures. Read from the environment at
    call time so tests can monkeypatch :data:`NUMERICS_ENV_VAR`.
    """
    value = env_choice(NUMERICS_ENV_VAR, "exact", NUMERICS_CHOICES)
    assert value is not None  # default is a member of NUMERICS_CHOICES
    return value


def fast_numerics() -> bool:
    """True when :func:`numerics_mode` is ``"fast"``."""
    return numerics_mode() == "fast"


def env_list(name: str) -> tuple:
    """Read a comma-separated list knob: stripped items, empties dropped.

    Purely lexical — item-level validation (fault grammars, choice sets)
    belongs to the caller, which knows what an item means and can raise a
    :class:`~repro.errors.ConfigurationError` naming both the variable
    and the offending item.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return ()
    return tuple(item.strip() for item in raw.split(",") if item.strip())


def env_int(
    name: str,
    default: int,
    minimum: Optional[int] = None,
) -> int:
    """Read an integer knob, strictly.

    Args:
        name: environment variable name.
        default: value used when the variable is unset or blank.
        minimum: inclusive lower bound; a parseable value below it is a
            configuration error, not something to clamp silently.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ConfigurationError(
            f"{name} must be >= {minimum}, got {raw!r}"
        )
    return value


def env_float(
    name: str,
    default: float,
    minimum: Optional[float] = None,
    minimum_exclusive: bool = False,
) -> float:
    """Read a float knob, strictly (finite; optional lower bound)."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number, got {raw!r}"
        ) from None
    if not np.isfinite(value):
        raise ConfigurationError(
            f"{name} must be finite, got {raw!r}"
        )
    if minimum is not None:
        if minimum_exclusive and value <= minimum:
            raise ConfigurationError(
                f"{name} must be > {minimum}, got {raw!r}"
            )
        if not minimum_exclusive and value < minimum:
            raise ConfigurationError(
                f"{name} must be >= {minimum}, got {raw!r}"
            )
    return value

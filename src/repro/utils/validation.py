"""Input-validation helpers.

These raise :class:`repro.errors.SignalError` or
:class:`repro.errors.ConfigurationError` with messages that name the
offending argument, so failures surface at API boundaries rather than deep
inside numpy broadcasting.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.errors import ConfigurationError, SignalError


def ensure_1d(signal: np.ndarray, name: str = "signal") -> np.ndarray:
    """Return ``signal`` as a 1-D float or complex numpy array.

    Raises:
        SignalError: if the input is empty or not one-dimensional.
    """
    arr = np.asarray(signal)
    if arr.ndim != 1:
        raise SignalError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise SignalError(f"{name} must be non-empty")
    if not np.iscomplexobj(arr):
        arr = arr.astype(float, copy=False)
    return arr


def ensure_signal(signal: np.ndarray, name: str = "signal") -> np.ndarray:
    """Return ``signal`` as a 1-D waveform or 2-D ``(batch, samples)`` stack.

    Samples run along the last axis. The sweep engine's batched backend
    stacks many grid points' waveforms into one array so filtering,
    resampling and demodulation run as single NumPy ops; every DSP
    function that accepts this shape validates through here.

    Raises:
        SignalError: if the input is empty or has more than two dimensions.
    """
    arr = np.asarray(signal)
    if arr.ndim not in (1, 2):
        raise SignalError(f"{name} must be 1-D or 2-D, got shape {arr.shape}")
    if arr.size == 0 or arr.shape[-1] == 0:
        raise SignalError(f"{name} must be non-empty")
    if not np.iscomplexobj(arr):
        arr = arr.astype(float, copy=False)
    return arr


def ensure_real(signal: np.ndarray, name: str = "signal") -> np.ndarray:
    """Return ``signal`` as a real 1-D array, rejecting complex input."""
    arr = ensure_1d(signal, name)
    if np.iscomplexobj(arr):
        raise SignalError(f"{name} must be real-valued")
    return arr


def ensure_real_signal(signal: np.ndarray, name: str = "signal") -> np.ndarray:
    """Return ``signal`` as a real 1-D waveform or 2-D ``(batch, samples)`` stack.

    The batch-capable counterpart of :func:`ensure_real`, for DSP entry
    points that process stacks along the last axis.
    """
    arr = ensure_signal(signal, name)
    if np.iscomplexobj(arr):
        raise SignalError(f"{name} must be real-valued")
    return arr


def ensure_equal_length(a: np.ndarray, b: np.ndarray, names: str = "signals") -> None:
    """Raise :class:`SignalError` unless the two arrays have equal length."""
    if len(a) != len(b):
        raise SignalError(f"{names} must have equal length ({len(a)} != {len(b)})")


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` as float, requiring it to be strictly positive.

    Raises:
        ConfigurationError: if the value is not a positive real number.
    """
    if not isinstance(value, numbers.Real) or not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def ensure_in_range(value: float, name: str, low: float, high: float) -> float:
    """Return ``value`` as float, requiring ``low <= value <= high``.

    Raises:
        ConfigurationError: if the value lies outside the closed interval.
    """
    if not isinstance(value, numbers.Real) or not np.isfinite(value):
        raise ConfigurationError(f"{name} must be a finite number, got {value!r}")
    if value < low or value > high:
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    return float(value)

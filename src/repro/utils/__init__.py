"""Shared utilities: unit conversions, validation, RNG helpers."""

from repro.utils.units import (
    db_to_linear,
    dbm_to_watts,
    feet_to_meters,
    linear_to_db,
    meters_to_feet,
    power_ratio_db,
    voltage_ratio_db,
    watts_to_dbm,
    wavelength_m,
)
from repro.utils.validation import (
    ensure_1d,
    ensure_equal_length,
    ensure_in_range,
    ensure_positive,
    ensure_real,
)
from repro.utils.rand import as_generator

__all__ = [
    "as_generator",
    "db_to_linear",
    "dbm_to_watts",
    "ensure_1d",
    "ensure_equal_length",
    "ensure_in_range",
    "ensure_positive",
    "ensure_real",
    "feet_to_meters",
    "linear_to_db",
    "meters_to_feet",
    "power_ratio_db",
    "voltage_ratio_db",
    "watts_to_dbm",
    "wavelength_m",
]

"""Random-number-generator plumbing.

Every stochastic component in the library takes an optional ``rng``
argument and normalizes it through :func:`as_generator`, so experiments are
reproducible by passing either a seed or a shared Generator.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Normalize a seed / Generator / None into a ``numpy.random.Generator``.

    Args:
        rng: ``None`` for nondeterministic entropy, an integer seed, or an
            existing Generator (returned unchanged so state is shared).

    Returns:
        A ``numpy.random.Generator``.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"rng must be None, an int seed, or a Generator, got {type(rng)!r}")


def derive_seed(master: Union[int, np.integer], *keys: Union[int, float, str]) -> int:
    """Mix a master seed with a key tuple into a new deterministic seed.

    Pure function of its arguments — unlike :func:`child_generator` it does
    not consume generator state, so concurrent sweep workers can derive the
    same seed regardless of execution order.
    """
    # zlib.crc32 is stable across processes (unlike hash(), which Python
    # salts per interpreter run), so sweeps reproduce bit-for-bit.
    mixed = zlib.crc32(repr(tuple(keys)).encode("utf-8"))
    return (int(master) ^ mixed) % (2**63)


def child_generator(rng: RngLike, *keys: Union[int, str]) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a key tuple.

    Used by parameter sweeps so each (distance, power, trial) cell gets an
    independent but deterministic stream.
    """
    base = as_generator(rng)
    return np.random.default_rng(derive_seed(int(base.integers(0, 2**31)), *keys))

"""Thermal noise and AWGN injection."""

from __future__ import annotations

import numpy as np

from repro.utils.rand import RngLike, as_generator
from repro.utils.validation import ensure_1d, ensure_positive

BOLTZMANN_J_PER_K = 1.380649e-23
ROOM_TEMPERATURE_K = 290.0


def noise_power_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power kTB (+ receiver noise figure) in dBm.

    Args:
        bandwidth_hz: noise bandwidth (an FM channel is ~200 kHz).
        noise_figure_db: receiver noise figure added on top of kTB.
    """
    bandwidth_hz = ensure_positive(bandwidth_hz, "bandwidth_hz")
    ktb_w = BOLTZMANN_J_PER_K * ROOM_TEMPERATURE_K * bandwidth_hz
    return 10.0 * np.log10(ktb_w / 1e-3) + float(noise_figure_db)


def awgn(signal: np.ndarray, snr_db: float, rng: RngLike = None) -> np.ndarray:
    """Add real white Gaussian noise for a target SNR relative to the
    signal's own measured power."""
    signal = ensure_1d(signal, "signal")
    gen = as_generator(rng)
    power = float(np.mean(np.abs(signal) ** 2))
    noise_power = power / (10.0 ** (snr_db / 10.0))
    noise = np.sqrt(noise_power) * gen.standard_normal(signal.size)
    return signal + noise


def complex_awgn(iq: np.ndarray, snr_db: float, rng: RngLike = None) -> np.ndarray:
    """Add circularly-symmetric complex Gaussian noise at a target SNR.

    The SNR is defined against the measured power of ``iq``; noise power is
    split equally between I and Q.
    """
    iq = ensure_1d(iq, "iq")
    gen = as_generator(rng)
    power = float(np.mean(np.abs(iq) ** 2))
    noise_power = power / (10.0 ** (snr_db / 10.0))
    scale = np.sqrt(noise_power / 2.0)
    noise = scale * (gen.standard_normal(iq.size) + 1j * gen.standard_normal(iq.size))
    return iq.astype(complex) + noise

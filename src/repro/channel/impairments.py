"""Oscillator impairments: frequency offset and drift.

The device's LC-tank oscillator (section 4) is free-running: its 600 kHz
output has tolerance and temperature drift, so the backscattered channel
lands slightly off the receiver's tuned center. FM reception is famously
tolerant of static offsets (they demodulate to a DC term the audio chain
blocks) but large offsets push the signal against the IF filter and
drift becomes audible rumble. These helpers inject both effects.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import ensure_1d, ensure_positive


def apply_frequency_offset(
    iq: np.ndarray, offset_hz: float, sample_rate: float
) -> np.ndarray:
    """Shift a complex envelope by a static frequency offset."""
    iq = ensure_1d(iq, "iq")
    if not np.iscomplexobj(iq):
        raise ConfigurationError("iq must be a complex envelope")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    if abs(offset_hz) >= sample_rate / 2:
        raise ConfigurationError("offset beyond Nyquist")
    t = np.arange(iq.size) / sample_rate
    return iq * np.exp(2j * np.pi * offset_hz * t)


def apply_frequency_drift(
    iq: np.ndarray,
    drift_hz_per_s: float,
    sample_rate: float,
) -> np.ndarray:
    """Apply a linear frequency ramp (temperature drift of the LC tank)."""
    iq = ensure_1d(iq, "iq")
    if not np.iscomplexobj(iq):
        raise ConfigurationError("iq must be a complex envelope")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    t = np.arange(iq.size) / sample_rate
    inst_offset = drift_hz_per_s * t
    phase = 2.0 * np.pi * np.cumsum(inst_offset) / sample_rate
    return iq * np.exp(1j * phase)


def lc_tank_tolerance_hz(
    nominal_hz: float = 600e3, tolerance_ppm: float = 2000.0
) -> float:
    """Worst-case static offset of a free-running LC oscillator.

    LC tanks without trimming hold roughly 0.1-1% absolute accuracy;
    2000 ppm of 600 kHz is 1.2 kHz — far inside the FM channel, which is
    why the paper's open-loop oscillator works without calibration.
    """
    if nominal_hz <= 0 or tolerance_ppm < 0:
        raise ConfigurationError("nominal and tolerance must be non-negative")
    return nominal_hz * tolerance_ppm * 1e-6

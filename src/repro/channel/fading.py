"""Body-motion fading for the smart-fabric application.

Section 6.2 evaluates the sewn-antenna shirt while the wearer stands,
walks (1 m/s), or runs (2.2 m/s). Motion changes the antenna's detuning,
its distance to the phone, and body shadowing, producing a slowly varying
amplitude on the backscatter link. We model this as Rician fading whose
Doppler bandwidth scales with gait cadence and whose K-factor (line-of-
sight dominance) drops with speed.

Two usage shapes:

- :class:`BodyMotionFading` — a stateful generator holding its own RNG;
  successive :meth:`~BodyMotionFading.envelope` calls advance that
  stream. :meth:`~BodyMotionFading.envelope_batch` produces the next
  ``n_rows`` envelopes as one vectorized stack, bit-identical per row to
  the successive scalar calls.
- :class:`MotionFadingSpec` — a frozen, picklable *declaration* of the
  same fading, resolved per transmission from the link's own generator
  (``build``). Scenarios that put a spec (rather than a live model) in
  their chain kwargs stay order-independent across sweep backends, which
  is what lets the batched backend vectorize fading grids with zero
  per-point fallbacks.

:func:`stack_envelopes` is the engine-facing batch entry point: it draws
every model's Gaussian innovations in caller order (preserving each
model's stream exactly) and then runs the Doppler shaping, Rician
combination and normalization for all rows as stacked array ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dsp.filters import design_lowpass_fir, filter_signal
from repro.errors import ConfigurationError
from repro.utils.env import fast_numerics
from repro.utils.rand import RngLike, as_generator
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class MotionProfile:
    """Fading parameters for one mobility state.

    Attributes:
        speed_m_s: wearer speed.
        doppler_hz: fading (envelope) bandwidth; set by gait cadence and
            limb motion, not the RF Doppler formula — at 91.5 MHz even
            running gives sub-Hz classical Doppler, but antenna flexing
            modulates the load at the step rate (~2-3 Hz).
        k_factor_db: Rician K (higher = steadier line-of-sight path).
    """

    speed_m_s: float
    doppler_hz: float
    k_factor_db: float


MOTION_PROFILES: Dict[str, MotionProfile] = {
    "standing": MotionProfile(speed_m_s=0.0, doppler_hz=0.3, k_factor_db=18.0),
    "walking": MotionProfile(speed_m_s=1.0, doppler_hz=2.0, k_factor_db=9.0),
    "running": MotionProfile(speed_m_s=2.2, doppler_hz=3.5, k_factor_db=5.0),
}
"""The three mobility states of paper Fig. 17b."""


def _resolve_profile(profile: Union[str, MotionProfile]) -> MotionProfile:
    """Normalize a profile name / instance, with the standard errors."""
    if isinstance(profile, str):
        if profile not in MOTION_PROFILES:
            raise ConfigurationError(
                f"unknown motion profile {profile!r}; choose from {sorted(MOTION_PROFILES)}"
            )
        return MOTION_PROFILES[profile]
    if not isinstance(profile, MotionProfile):
        raise ConfigurationError("profile must be a name or MotionProfile")
    return profile


def _internal_grid(profile: MotionProfile, n_samples: int, sample_rate: float) -> Tuple[float, int]:
    """The low internal rate and length the scattered process is built at."""
    internal_rate = max(20.0 * profile.doppler_hz, 50.0)
    n_internal = max(int(np.ceil(n_samples * internal_rate / sample_rate)) + 8, 64)
    return internal_rate, n_internal


def _shape_envelopes(
    profile: MotionProfile,
    raws: np.ndarray,
    internal_rate: float,
    n_samples: int,
) -> np.ndarray:
    """Doppler-shape raw innovations into normalized Rician envelopes.

    Args:
        profile: the mobility state shared by every row.
        raws: complex innovations, shape ``(rows, n_internal)`` — each
            row exactly the two ``standard_normal`` draws the scalar
            :meth:`BodyMotionFading.envelope` makes.
        internal_rate: the rows' internal sample rate.
        n_samples: output envelope length per row.

    Returns:
        Envelopes of shape ``(rows, n_samples)``. Every operation is the
        2-D form of the scalar path's expression (same association
        order, reductions along the last axis), so each row is
        bit-identical to the scalar computation on the same draws.
    """
    k_linear = 10.0 ** (profile.k_factor_db / 10.0)
    specular = np.sqrt(k_linear / (k_linear + 1.0))
    scattered_power = 1.0 / (k_linear + 1.0)

    cutoff = min(profile.doppler_hz, internal_rate / 2 * 0.8)
    taps = design_lowpass_fir(cutoff, internal_rate, 65)
    scattered = filter_signal(taps, raws.real) + 1j * filter_signal(taps, raws.imag)
    rms = np.sqrt(np.mean(np.abs(scattered) ** 2, axis=-1, keepdims=True)) + 1e-12
    scattered = scattered / rms * np.sqrt(scattered_power)

    fading = np.abs(specular + scattered)
    n_internal = raws.shape[-1]
    if fast_numerics():
        # Single-precision envelopes: the downstream fast transmit path
        # multiplies them onto complex64 rows, and the interpolation's
        # gathers and blend move half the bytes. The shaping above stays
        # float64 — it runs at the tiny internal rate.
        env = _interp_rows_fused(fading.astype(np.float32), n_samples)
    else:
        x_internal = np.linspace(0.0, 1.0, n_internal)
        x_out = np.linspace(0.0, 1.0, n_samples)
        env = np.empty((raws.shape[0], n_samples))
        for row in range(raws.shape[0]):
            # np.interp is 1-D only; the per-row loop keeps each row's
            # interpolation the exact C routine the scalar path uses —
            # the bit-identity contract of exact mode.
            env[row] = np.interp(x_out, x_internal, fading[row])
    return env / np.sqrt(np.mean(env**2, axis=-1, keepdims=True) + 1e-12)


def _interp_rows_fused(fading: np.ndarray, n_samples: int) -> np.ndarray:
    """All-rows linear interpolation onto ``n_samples`` uniform points.

    The ``REPRO_NUMERICS=fast`` replacement for the per-row ``np.interp``
    loop: because the internal grid is uniform, the sample positions
    reduce to one shared index/weight pair and the whole ``(rows,
    n_samples)`` stack is two gathers and a fused multiply-add. Working
    in index space instead of ``np.interp``'s x-space changes the
    floating-point association, so rows agree with the exact path only
    to ULP-level — which is why exact mode keeps the loop.
    """
    n_internal = fading.shape[-1]
    # _internal_grid guarantees n_internal >= 64, so a segment always
    # exists to the right of every clipped index.
    t = np.linspace(0.0, float(n_internal - 1), n_samples)
    idx = np.minimum(t.astype(np.intp), n_internal - 2)
    w = t - idx
    lo = np.take(fading, idx, axis=-1)
    hi = np.take(fading, idx + 1, axis=-1)
    # In-place blend: lo + (hi - lo) * w with no further temporaries.
    hi -= lo
    hi *= w
    lo += hi
    return lo


class BodyMotionFading:
    """Generate a Rician fading envelope for a mobility state.

    Args:
        profile: one of the :data:`MOTION_PROFILES` keys or a
            :class:`MotionProfile`.
        rng: seed or Generator.
    """

    def __init__(self, profile, rng: RngLike = None) -> None:
        self.profile = _resolve_profile(profile)
        self._rng = as_generator(rng)

    def _draw_raw(self, n_internal: int) -> np.ndarray:
        """The scalar path's two Gaussian draws, in its exact order."""
        return self._rng.standard_normal(n_internal) + 1j * self._rng.standard_normal(
            n_internal
        )

    def envelope(self, n_samples: int, sample_rate: float) -> np.ndarray:
        """Amplitude envelope (mean-square normalized to 1).

        The scattered component is complex Gaussian noise low-passed to the
        profile's Doppler bandwidth; the specular component is a constant
        set by the K-factor.
        """
        return self.envelope_batch(n_samples, sample_rate, 1)[0]

    def envelope_batch(
        self, n_samples: int, sample_rate: float, n_rows: int
    ) -> np.ndarray:
        """The next ``n_rows`` envelopes as one ``(n_rows, n_samples)`` stack.

        Row ``i`` is bit-identical to the ``i``-th of ``n_rows``
        successive :meth:`envelope` calls — the Gaussian innovations are
        drawn row by row from this model's own stream in the scalar call
        order, and only the (deterministic) Doppler shaping and
        normalization run stacked. This is the hook the sweep engine's
        batched backend uses to vectorize fading links instead of
        falling back point by point.
        """
        if n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        sample_rate = ensure_positive(sample_rate, "sample_rate")
        if n_rows < 0:
            raise ConfigurationError(f"n_rows must be >= 0, got {n_rows}")
        internal_rate, n_internal = _internal_grid(self.profile, n_samples, sample_rate)
        if n_rows == 0:
            return np.empty((0, n_samples))
        raws = np.empty((n_rows, n_internal), dtype=complex)
        for row in range(n_rows):
            raws[row] = self._draw_raw(n_internal)
        return _shape_envelopes(self.profile, raws, internal_rate, n_samples)


@dataclass(frozen=True)
class MotionFadingSpec:
    """Declarative, picklable body-motion fading for sweep scenarios.

    Where :class:`BodyMotionFading` carries a live RNG (so sharing one
    instance across grid points makes results depend on execution
    order), a spec is pure data: the link resolves it *per transmission*
    with a child of its own generator
    (:func:`repro.channel.link.resolve_fading`), so every grid point's
    fading stream is pre-determined and identical on all sweep backends.

    Attributes:
        profile: a :data:`MOTION_PROFILES` key or a
            :class:`MotionProfile`.
    """

    profile: Union[str, MotionProfile] = "walking"

    def __post_init__(self) -> None:
        _resolve_profile(self.profile)

    def build(self, rng: RngLike = None) -> BodyMotionFading:
        """Instantiate the live fading model on a resolved generator."""
        return BodyMotionFading(self.profile, rng)


def stack_envelopes(
    models: Sequence[object], n_samples: int, sample_rate: float
) -> np.ndarray:
    """Envelopes for many fading models as one ``(rows, n_samples)`` stack.

    The models' random draws happen strictly in list order — so a model
    appearing at several positions (one shared stateful instance across
    grid points) consumes its stream exactly as a serial loop over the
    list would — and the deterministic shaping then runs vectorized per
    parameter group. Models that are not :class:`BodyMotionFading`
    (custom :class:`~repro.channel.link.FadingModel` implementations)
    are evaluated through their own ``envelope`` at their list position,
    preserving the same draw order.

    Args:
        models: one fading model per output row.
        n_samples: envelope length, shared by every row.
        sample_rate: sample rate, shared by every row.
    """
    if n_samples < 1:
        raise ConfigurationError("n_samples must be >= 1")
    sample_rate = ensure_positive(sample_rate, "sample_rate")
    rows = len(models)
    # Fast mode carries single-precision envelopes end to end (matching
    # _shape_envelopes' fast output); exact mode stays float64.
    out = np.empty(
        (rows, n_samples), dtype=np.float32 if fast_numerics() else np.float64
    )
    # Pass 1, strictly in list order: every model's stochastic draws.
    # groups: profile -> (internal_rate, raw rows, positions); MotionProfile
    # is a frozen dataclass, so equal parameter sets share one stack.
    groups: Dict[MotionProfile, Tuple[float, List[np.ndarray], List[int]]] = {}
    for pos, model in enumerate(models):
        if isinstance(model, BodyMotionFading):
            internal_rate, n_internal = _internal_grid(
                model.profile, n_samples, sample_rate
            )
            entry = groups.setdefault(model.profile, (internal_rate, [], []))
            entry[1].append(model._draw_raw(n_internal))
            entry[2].append(pos)
        else:
            out[pos] = model.envelope(n_samples, sample_rate)
    # Pass 2: deterministic shaping, stacked per shared profile.
    for profile, (internal_rate, raws, positions) in groups.items():
        shaped = _shape_envelopes(profile, np.stack(raws), internal_rate, n_samples)
        for k, pos in enumerate(positions):
            out[pos] = shaped[k]
    return out

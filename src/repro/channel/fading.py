"""Body-motion fading for the smart-fabric application.

Section 6.2 evaluates the sewn-antenna shirt while the wearer stands,
walks (1 m/s), or runs (2.2 m/s). Motion changes the antenna's detuning,
its distance to the phone, and body shadowing, producing a slowly varying
amplitude on the backscatter link. We model this as Rician fading whose
Doppler bandwidth scales with gait cadence and whose K-factor (line-of-
sight dominance) drops with speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.dsp.filters import design_lowpass_fir, filter_signal
from repro.errors import ConfigurationError
from repro.utils.rand import RngLike, as_generator
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class MotionProfile:
    """Fading parameters for one mobility state.

    Attributes:
        speed_m_s: wearer speed.
        doppler_hz: fading (envelope) bandwidth; set by gait cadence and
            limb motion, not the RF Doppler formula — at 91.5 MHz even
            running gives sub-Hz classical Doppler, but antenna flexing
            modulates the load at the step rate (~2-3 Hz).
        k_factor_db: Rician K (higher = steadier line-of-sight path).
    """

    speed_m_s: float
    doppler_hz: float
    k_factor_db: float


MOTION_PROFILES: Dict[str, MotionProfile] = {
    "standing": MotionProfile(speed_m_s=0.0, doppler_hz=0.3, k_factor_db=18.0),
    "walking": MotionProfile(speed_m_s=1.0, doppler_hz=2.0, k_factor_db=9.0),
    "running": MotionProfile(speed_m_s=2.2, doppler_hz=3.5, k_factor_db=5.0),
}
"""The three mobility states of paper Fig. 17b."""


class BodyMotionFading:
    """Generate a Rician fading envelope for a mobility state.

    Args:
        profile: one of the :data:`MOTION_PROFILES` keys or a
            :class:`MotionProfile`.
        rng: seed or Generator.
    """

    def __init__(self, profile, rng: RngLike = None) -> None:
        if isinstance(profile, str):
            if profile not in MOTION_PROFILES:
                raise ConfigurationError(
                    f"unknown motion profile {profile!r}; choose from {sorted(MOTION_PROFILES)}"
                )
            profile = MOTION_PROFILES[profile]
        if not isinstance(profile, MotionProfile):
            raise ConfigurationError("profile must be a name or MotionProfile")
        self.profile = profile
        self._rng = as_generator(rng)

    def envelope(self, n_samples: int, sample_rate: float) -> np.ndarray:
        """Amplitude envelope (mean-square normalized to 1).

        The scattered component is complex Gaussian noise low-passed to the
        profile's Doppler bandwidth; the specular component is a constant
        set by the K-factor.
        """
        if n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        sample_rate = ensure_positive(sample_rate, "sample_rate")
        k_linear = 10.0 ** (self.profile.k_factor_db / 10.0)
        specular = np.sqrt(k_linear / (k_linear + 1.0))
        scattered_power = 1.0 / (k_linear + 1.0)

        # Generate the scattered process at a low internal rate and
        # interpolate: Doppler is a few Hz, audio rates are tens of kHz.
        internal_rate = max(20.0 * self.profile.doppler_hz, 50.0)
        n_internal = max(int(np.ceil(n_samples * internal_rate / sample_rate)) + 8, 64)
        raw = self._rng.standard_normal(n_internal) + 1j * self._rng.standard_normal(n_internal)
        cutoff = min(self.profile.doppler_hz, internal_rate / 2 * 0.8)
        taps = design_lowpass_fir(cutoff, internal_rate, 65)
        scattered = filter_signal(taps, raw.real) + 1j * filter_signal(taps, raw.imag)
        rms = np.sqrt(np.mean(np.abs(scattered) ** 2)) + 1e-12
        scattered = scattered / rms * np.sqrt(scattered_power)

        fading = np.abs(specular + scattered)
        x_internal = np.linspace(0.0, 1.0, n_internal)
        x_out = np.linspace(0.0, 1.0, n_samples)
        env = np.interp(x_out, x_internal, fading)
        return env / np.sqrt(np.mean(env**2) + 1e-12)

"""Multipath: tapped-delay-line channels and the two-ray ground model.

Urban FM reception is dominated by multipath from buildings (paper
section 3.1 mentions "complex multipath from structures and terrains").
For the narrowband FM channel the delay spread is far below a symbol, so
multipath mostly manifests as flat fading; the tapped-delay line is still
implemented for wideband validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rand import RngLike, as_generator
from repro.utils.validation import ensure_1d


def two_ray_gain_db(
    distance_m: float,
    frequency_hz: float,
    h_tx_m: float = 30.0,
    h_rx_m: float = 1.5,
) -> float:
    """Extra gain/loss (dB, relative to free space) of the two-ray model.

    Captures the ground-bounce interference pattern that makes received
    power oscillate with distance before settling into the d^-4 regime.
    """
    if distance_m <= 0:
        raise ConfigurationError("distance must be positive")
    lam = 299_792_458.0 / frequency_hz
    direct = np.sqrt(distance_m**2 + (h_tx_m - h_rx_m) ** 2)
    bounced = np.sqrt(distance_m**2 + (h_tx_m + h_rx_m) ** 2)
    phase = 2.0 * np.pi * (bounced - direct) / lam
    # Ground reflection coefficient approximated as -1 (grazing).
    combined = np.abs(1.0 - np.exp(1j * phase) * direct / bounced)
    return float(20.0 * np.log10(max(combined, 1e-6)))


@dataclass
class MultipathChannel:
    """Static tapped-delay-line channel.

    Attributes:
        delays_samples: integer tap delays.
        gains: complex tap gains (first tap is the direct path).
    """

    delays_samples: Tuple[int, ...]
    gains: Tuple[complex, ...]

    def __post_init__(self) -> None:
        if len(self.delays_samples) != len(self.gains):
            raise ConfigurationError("delays and gains must have equal length")
        if len(self.delays_samples) == 0:
            raise ConfigurationError("channel needs at least one tap")
        if any(d < 0 for d in self.delays_samples):
            raise ConfigurationError("tap delays must be non-negative")

    @classmethod
    def random_urban(
        cls,
        sample_rate: float,
        n_taps: int = 4,
        max_delay_us: float = 5.0,
        rng: RngLike = None,
    ) -> "MultipathChannel":
        """Draw a random urban profile: exponentially decaying Rayleigh taps."""
        gen = as_generator(rng)
        max_delay = max(int(max_delay_us * 1e-6 * sample_rate), 1)
        delays = [0] + sorted(
            int(d) for d in gen.integers(1, max_delay + 1, size=max(n_taps - 1, 0))
        )
        gains = []
        for i, delay in enumerate(delays):
            power = np.exp(-3.0 * delay / max(max_delay, 1))
            mag = np.sqrt(power / 2.0)
            gains.append(complex(mag * gen.standard_normal(), mag * gen.standard_normal()) if i else 1.0 + 0.0j)
        return cls(tuple(delays), tuple(gains))

    def apply(self, iq: np.ndarray) -> np.ndarray:
        """Convolve a complex envelope with the tap profile."""
        iq = ensure_1d(iq, "iq")
        out = np.zeros(iq.size, dtype=complex)
        for delay, gain in zip(self.delays_samples, self.gains):
            if delay >= iq.size:
                continue
            out[delay:] += gain * iq[: iq.size - delay]
        return out

    def flat_gain(self) -> complex:
        """Narrowband (flat-fading) equivalent gain: the tap-sum."""
        return complex(sum(self.gains))

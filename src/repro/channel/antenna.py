"""Antenna models for the paper's prototypes.

Section 6 fabricates three antennas: a half-wave copper-tape dipole on a
40"x60" bus-stop poster, a bowtie on a 24"x36" Super A1 poster, and a
meander dipole machine-sewn in stainless conductive thread on a cotton
t-shirt. We model each as a gain + efficiency pair; the fabric antenna
additionally suffers body-proximity loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Antenna:
    """Lumped antenna model.

    Attributes:
        name: human-readable label.
        gain_dbi: peak gain relative to isotropic.
        efficiency: radiation efficiency in (0, 1]; conductive-thread
            antennas are lossy (stainless steel resistance).
        body_loss_db: extra loss from body proximity (fabric antennas).
        bandwidth_mhz: usable impedance bandwidth; narrow antennas detune
            more under flexing.
    """

    name: str
    gain_dbi: float
    efficiency: float
    body_loss_db: float = 0.0
    bandwidth_mhz: float = 20.0

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        if self.body_loss_db < 0:
            raise ConfigurationError("body_loss_db must be >= 0")

    @property
    def effective_gain_db(self) -> float:
        """Gain including efficiency and body loss."""
        return self.gain_dbi + 10.0 * np.log10(self.efficiency) - self.body_loss_db


DIPOLE_POSTER = Antenna(
    name="half-wave dipole, 40x60 inch poster (copper tape)",
    gain_dbi=2.15,
    efficiency=0.9,
    bandwidth_mhz=6.0,
)
"""Bus-stop-sized poster dipole (section 6.1)."""

BOWTIE_POSTER = Antenna(
    name="bowtie, 24x36 inch Super A1 poster (copper tape)",
    gain_dbi=1.8,
    efficiency=0.85,
    bandwidth_mhz=15.0,
)
"""Super A1 poster bowtie — wider bandwidth, slightly less gain."""

MEANDER_SHIRT = Antenna(
    name="meander dipole, cotton t-shirt (316L steel thread)",
    gain_dbi=0.5,
    efficiency=0.35,
    body_loss_db=3.0,
    bandwidth_mhz=4.0,
)
"""Sewn fabric antenna (section 6.2): lossy thread + body proximity."""

HEADPHONE_WIRE = Antenna(
    name="headphone-cable antenna (smartphone)",
    gain_dbi=-3.0,
    efficiency=0.5,
    bandwidth_mhz=30.0,
)
"""Sennheiser headphone cable used as the phone's FM antenna."""

CAR_WHIP = Antenna(
    name="car roof whip over ground plane",
    gain_dbi=2.0,
    efficiency=0.95,
    bandwidth_mhz=25.0,
)
"""Car antenna: better matched, big ground plane (section 5.4)."""

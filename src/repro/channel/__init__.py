"""RF channel models: noise, path loss, multipath, fading, link budgets.

These substitute for the paper's physical testbed (USRP transmitter,
posters, bus stops, moving users) per DESIGN.md section 2. Distances and
powers reproduce the evaluation's knobs: ambient power at the backscatter
device (-20 to -60 dBm) and device-to-receiver distance in feet.
"""

from repro.channel.noise import awgn, complex_awgn, noise_power_dbm
from repro.channel.pathloss import (
    free_space_path_loss_db,
    friis_received_power_dbm,
    log_distance_path_loss_db,
)
from repro.channel.multipath import MultipathChannel, two_ray_gain_db
from repro.channel.fading import BodyMotionFading, MOTION_PROFILES
from repro.channel.antenna import Antenna, BOWTIE_POSTER, DIPOLE_POSTER, MEANDER_SHIRT
from repro.channel.link import BackscatterLink, LinkBudget
from repro.channel.impairments import (
    apply_frequency_drift,
    apply_frequency_offset,
    lc_tank_tolerance_hz,
)

__all__ = [
    "Antenna",
    "BOWTIE_POSTER",
    "BackscatterLink",
    "BodyMotionFading",
    "DIPOLE_POSTER",
    "LinkBudget",
    "MEANDER_SHIRT",
    "MOTION_PROFILES",
    "MultipathChannel",
    "apply_frequency_drift",
    "apply_frequency_offset",
    "awgn",
    "lc_tank_tolerance_hz",
    "complex_awgn",
    "free_space_path_loss_db",
    "friis_received_power_dbm",
    "log_distance_path_loss_db",
    "noise_power_dbm",
    "two_ray_gain_db",
]

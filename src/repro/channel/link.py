"""Backscatter link budget: the two-hop radar-equation model.

The paper's evaluation sweeps two knobs: the ambient FM power arriving at
the backscatter device (-20 to -60 dBm, set by the tower-to-device hop)
and the device-to-receiver distance in feet. This module turns those knobs
into an RF SNR at the receiver:

    P_rx = P_device + G_device - L_conv + G_receiver - FSPL(d)
    N    = max(noise floor, ambient leakage through the 600 kHz offset)
    SNR  = P_rx - N

``L_conv`` is the backscatter conversion loss: the square-wave switch puts
(2/pi)^2 of the incident power into each first-order sideband (-3.9 dB),
and scattering/mismatch losses make up the rest.

The FM *threshold effect* — the cliff in Figs. 7/8 below about 10 dB of
RF SNR — is not modelled analytically: experiments add complex AWGN at
this SNR and run the real discriminator, which produces click noise and
collapse exactly like hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

import numpy as np

from repro.channel.antenna import Antenna, DIPOLE_POSTER, HEADPHONE_WIRE
from repro.channel.noise import complex_awgn
from repro.channel.pathloss import free_space_path_loss_db
from repro.errors import LinkBudgetError
from repro.utils.env import fast_numerics
from repro.utils.rand import RngLike, as_generator, child_generator
from repro.utils.units import feet_to_meters
from repro.utils.validation import ensure_1d


class FadingModel(Protocol):
    """Anything that can produce a channel amplitude envelope.

    Implemented by :class:`repro.channel.fading.BodyMotionFading`; the
    link multiplies the envelope onto the complex baseband sample-wise.
    """

    def envelope(self, n_samples: int, sample_rate: float) -> np.ndarray:
        """Amplitude envelope of ``n_samples`` at ``sample_rate``."""
        ...

    def envelope_batch(
        self, n_samples: int, sample_rate: float, n_rows: int
    ) -> np.ndarray:
        """The next ``n_rows`` envelopes stacked as ``(n_rows, n_samples)``.

        Row ``i`` must be bit-identical to the ``i``-th of ``n_rows``
        successive :meth:`envelope` calls — the contract the batched
        sweep backend's vectorized fading path rests on. (Call sites
        fall back to per-row ``envelope`` when an implementation
        predates this method.)
        """
        ...


class FadingSpec(Protocol):
    """A declarative (picklable, RNG-free) description of a fading model.

    Implemented by :class:`repro.channel.fading.MotionFadingSpec`. Specs
    are resolved per transmission via :func:`resolve_fading`, so sweep
    grid points carrying a spec have order-independent fading streams.
    """

    def build(self, rng: RngLike = None) -> FadingModel:
        """Instantiate the live fading model on a resolved generator."""
        ...


def resolve_fading(
    fading: Optional[object], rng: np.random.Generator
) -> Optional[FadingModel]:
    """Turn a fading declaration into a live model for one transmission.

    A live :class:`FadingModel` (anything with ``envelope``) passes
    through untouched. A :class:`FadingSpec` is built on the dedicated
    ``"fade"`` child of ``rng`` — consuming one draw from ``rng``, which
    every caller (serial link and batched backend alike) must mirror so
    the subsequent noise draws stay aligned.
    """
    if fading is None or hasattr(fading, "envelope"):
        return fading
    if hasattr(fading, "build"):
        return fading.build(child_generator(rng, "fade"))
    raise LinkBudgetError(
        f"fading must provide envelope() or build(), got {type(fading)!r}"
    )

SQUARE_WAVE_SIDEBAND_LOSS_DB = 3.92
"""Power loss of one first-order square-wave sideband: (2/pi)^2."""

DEFAULT_SCATTERING_LOSS_DB = 14.0
"""Antenna mode / mismatch / polarization loss of the reflect-absorb
switch. Calibrated (together with the -95 dBm effective noise floor)
against the paper's anchor points: 100 bps dies beyond ~6-8 ft at
-60 dBm (Fig. 8a), 1.6 kbps holds to ~6 ft at -50 dBm (Fig. 8b), and the
car receiver still works at 60 ft at -30 dBm (Fig. 14)."""

FM_THRESHOLD_SNR_DB = 10.0
"""Approximate discriminator threshold; informational (the simulation
produces the threshold behaviour physically)."""


@dataclass
class LinkBudget:
    """Static link-budget calculator for one backscatter configuration.

    Attributes:
        ambient_power_at_device_dbm: FM power arriving at the tag — the
            paper's -20..-60 dBm experimental knob.
        distance_ft: device-to-receiver distance in feet.
        frequency_hz: FM carrier frequency.
        device_antenna: antenna on the backscattering object.
        receiver_antenna: antenna on the phone or car.
        scattering_loss_db: mismatch/mode loss on top of the square-wave
            sideband loss.
        receiver_noise_floor_dbm: effective in-channel noise floor; -95 dBm
            default for the phone chain (a few dB above the -100 dBm
            sensitivity class the paper cites, covering headphone-cable
            antenna losses and urban noise).
        adjacent_suppression_db: how much of the ambient station (600 kHz
            away) the receiver rejects — IF selectivity at an alternate-
            alternate channel offset plus FM capture of the stronger
            in-channel signal. Its leakage can dominate the noise floor at
            high ambient power, as section 3.3 notes.
    """

    ambient_power_at_device_dbm: float
    distance_ft: float
    frequency_hz: float = 91.5e6
    device_antenna: Antenna = field(default_factory=lambda: DIPOLE_POSTER)
    receiver_antenna: Antenna = field(default_factory=lambda: HEADPHONE_WIRE)
    scattering_loss_db: float = DEFAULT_SCATTERING_LOSS_DB
    receiver_noise_floor_dbm: float = -95.0
    adjacent_suppression_db: float = 75.0

    def __post_init__(self) -> None:
        if self.distance_ft <= 0:
            raise LinkBudgetError("distance must be positive")
        if self.frequency_hz <= 0:
            raise LinkBudgetError("frequency must be positive")

    @property
    def conversion_loss_db(self) -> float:
        """Total backscatter conversion loss into one sideband."""
        return SQUARE_WAVE_SIDEBAND_LOSS_DB + self.scattering_loss_db

    def path_loss_db(self) -> float:
        """Free-space loss of the device-to-receiver hop."""
        d_m = float(feet_to_meters(self.distance_ft))
        return float(free_space_path_loss_db(d_m, self.frequency_hz))

    def backscatter_rx_power_dbm(self) -> float:
        """Backscattered signal power arriving at the receiver."""
        return (
            self.ambient_power_at_device_dbm
            + self.device_antenna.effective_gain_db
            - self.conversion_loss_db
            + self.receiver_antenna.effective_gain_db
            - self.path_loss_db()
        )

    def ambient_leakage_dbm(self) -> float:
        """Ambient-station power leaking past the receiver's selectivity.

        The receiver and the device are roughly equidistant from the tower
        in the paper's setup, so the ambient power at the receiver is
        approximated by the ambient power at the device.
        """
        return self.ambient_power_at_device_dbm - self.adjacent_suppression_db

    def noise_floor_dbm(self) -> float:
        """Effective noise floor: thermal-class floor or adjacent leakage."""
        return max(self.receiver_noise_floor_dbm, self.ambient_leakage_dbm())

    def rf_snr_db(self) -> float:
        """RF-domain SNR of the backscattered FM signal at the receiver."""
        return self.backscatter_rx_power_dbm() - self.noise_floor_dbm()


def batched_rf_snr_db(budgets: Sequence[LinkBudget]) -> np.ndarray:
    """RF SNR of many link budgets as one vectorized computation.

    The budget formula is elementwise (Friis loss, antenna gains, a
    noise-floor max), so a whole sweep grid's SNRs reduce to a handful of
    array ops. Every operation mirrors :meth:`LinkBudget.rf_snr_db`
    term for term, in the same association order, so each element is
    bit-identical to the scalar computation — the invariant the batched
    sweep backend's bit-identity contract rests on.
    """
    if not budgets:
        return np.empty(0)
    power = np.array([b.ambient_power_at_device_dbm for b in budgets], dtype=float)
    distance_m = feet_to_meters(np.array([b.distance_ft for b in budgets], dtype=float))
    frequency = np.array([b.frequency_hz for b in budgets], dtype=float)
    device_gain = np.array([b.device_antenna.effective_gain_db for b in budgets])
    receiver_gain = np.array([b.receiver_antenna.effective_gain_db for b in budgets])
    conversion = np.array([b.conversion_loss_db for b in budgets])
    floor = np.array([b.receiver_noise_floor_dbm for b in budgets])
    suppression = np.array([b.adjacent_suppression_db for b in budgets])

    path_loss = free_space_path_loss_db(distance_m, frequency)
    rx_power = power + device_gain - conversion + receiver_gain - path_loss
    noise = np.maximum(floor, power - suppression)
    return rx_power - noise


def transmit_batch(
    iq: np.ndarray,
    budgets: Sequence[LinkBudget],
    rngs: Sequence[RngLike],
    envelopes: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> np.ndarray:
    """Pass one shared envelope through many link budgets at once.

    The batched counterpart of :meth:`BackscatterLink.transmit`: every
    grid point reuses the same cached front-end envelope, so only the
    per-point fading and noise differ. SNRs, fading multiplication,
    per-row signal powers and the noise scale-and-add all run as single
    array ops over the ``(rows, samples)`` stack. The Gaussian draws
    themselves still come from each point's own pre-derived generator —
    two ``standard_normal`` calls per point, in the exact order of
    :func:`repro.channel.noise.complex_awgn`, filled into one
    preallocated ``(rows, 2, samples)`` scratch (no per-row Python
    arithmetic or temporaries) — so each output row is bit-identical to
    the serial link. Under ``REPRO_NUMERICS=fast`` the per-row draws are
    replaced by one batched ``standard_normal`` from the first row's
    generator (statistically identical, not bit-identical — gated by the
    tolerance-tier goldens instead).

    Args:
        iq: shared unit-amplitude complex envelope, 1-D.
        budgets: one link budget per output row.
        rngs: one seed/Generator per output row.
        envelopes: optional per-row fading envelopes (``None`` entries —
            or ``None`` for the whole argument — mean an unfaded row).
            Pre-draw these with
            :func:`repro.channel.fading.stack_envelopes` in serial grid
            order so stateful fading models consume their streams
            exactly as a serial sweep would.

    Returns:
        Faded, noise-corrupted envelopes, shape ``(len(budgets), iq.size)``.
    """
    iq = ensure_1d(iq, "iq")
    if not np.iscomplexobj(iq):
        raise LinkBudgetError("iq must be a complex envelope")
    n_rows = len(budgets)
    if n_rows != len(rngs):
        raise LinkBudgetError(f"got {n_rows} budgets but {len(rngs)} generators")
    if envelopes is not None and len(envelopes) != n_rows:
        raise LinkBudgetError(
            f"got {n_rows} budgets but {len(envelopes)} fading envelopes"
        )
    snr_db = batched_rf_snr_db(budgets)
    # Fast mode runs the whole stack in single precision (complex64
    # rows, float32 fading envelopes and noise): the channel's own noise
    # dwarfs the ~1e-7 relative rounding, every downstream pass moves
    # half the bytes, and the FFT filters in the receive chain run their
    # cheaper float32 transforms. Exact mode keeps complex128 end to
    # end.
    fast = fast_numerics()
    clean = iq.astype(np.complex64 if fast else complex)
    out = np.empty((n_rows, iq.size), dtype=np.complex64 if fast else complex)
    if envelopes is None or all(env is None for env in envelopes):
        # One shared clean row: the power term is the scalar the serial
        # link computes, reused for every row.
        out[:] = clean
        power: np.ndarray = np.float64(np.mean(np.abs(iq) ** 2))
    else:
        for row in range(n_rows):
            env = envelopes[row]
            if env is None:
                out[row] = clean
            else:
                env = np.asarray(env)
                if env.shape != (iq.size,):
                    raise LinkBudgetError(
                        f"fading envelope for row {row} has shape {env.shape}, "
                        f"expected ({iq.size},)"
                    )
                np.multiply(clean, env, out=out[row])
        if fast:
            # mean(|z|^2) without the hypot-then-square detour: the real
            # view interleaves re/im, so twice the mean of its squares is
            # the mean squared magnitude (float64 accumulation keeps the
            # power estimate accurate).
            power = 2.0 * np.mean(
                out.view(np.float32) ** 2, axis=-1, dtype=np.float64
            )
        else:
            power = np.mean(np.abs(out) ** 2, axis=-1)

    noise_power = power / (10.0 ** (snr_db / 10.0))
    scales = np.sqrt(noise_power / 2.0)

    if fast and n_rows:
        # REPRO_NUMERICS=fast: one batched float32 standard_normal for
        # the whole stack instead of two float64 fills per row. The fill
        # runs on an SFC64 generator seeded from the first row's stream
        # (the fastest bit generator numpy ships; the per-row generators
        # other than the first stay untouched), lands interleaved and is
        # viewed as complex — so the combine pass of the exact path
        # disappears and the noise is scaled and added in place. The
        # draws are iid standard normal either way; only the stream
        # consumption (and hence the realization) differs, which is
        # exactly what fast mode trades away and the tolerance-tier
        # goldens bound.
        scratch = np.empty((n_rows, 2 * iq.size), dtype=np.float32)
        fill = np.random.Generator(
            np.random.SFC64(int(as_generator(rngs[0]).integers(0, 2 ** 63)))
        )
        fill.standard_normal(out=scratch, dtype=np.float32)
        noise = scratch.view(np.complex64)
        noise *= np.asarray(scales, dtype=np.float32).reshape(n_rows, 1)
        out += noise
        return out

    # Per-row draws into one preallocated scratch — each generator's two
    # standard_normal fills, exactly like complex_awgn — then a single
    # vectorized scale-and-add over the whole stack.
    draws = np.empty((n_rows, 2, iq.size))
    for row, rng in enumerate(rngs):
        gen = as_generator(rng)
        gen.standard_normal(out=draws[row, 0])
        gen.standard_normal(out=draws[row, 1])
    noise = draws[:, 0] + 1j * draws[:, 1]
    noise *= np.asarray(scales).reshape(n_rows, 1)
    out += noise
    return out


class BackscatterLink:
    """Applies a link budget to a complex envelope.

    Args:
        budget: the static link budget.
        fading: optional amplitude envelope source — a live
            :class:`FadingModel` (e.g.
            :class:`repro.channel.fading.BodyMotionFading`) or a
            declarative :class:`FadingSpec` resolved per transmission
            from the link generator. When present the instantaneous SNR
            varies accordingly.
    """

    def __init__(self, budget: LinkBudget, fading: Optional[object] = None) -> None:
        self.budget = budget
        self.fading = fading

    def transmit(
        self, iq: np.ndarray, sample_rate: float, rng: RngLike = None
    ) -> np.ndarray:
        """Pass a unit-amplitude complex envelope through the link.

        Returns the faded, noise-corrupted envelope whose average SNR is
        the budget's :meth:`LinkBudget.rf_snr_db`.
        """
        iq = ensure_1d(iq, "iq")
        if not np.iscomplexobj(iq):
            raise LinkBudgetError("iq must be a complex envelope")
        gen = as_generator(rng)
        fading = resolve_fading(self.fading, gen)
        if fading is not None:
            envelope = fading.envelope(iq.size, sample_rate)
            iq = iq * envelope
        return complex_awgn(iq, self.budget.rf_snr_db(), gen)

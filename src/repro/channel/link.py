"""Backscatter link budget: the two-hop radar-equation model.

The paper's evaluation sweeps two knobs: the ambient FM power arriving at
the backscatter device (-20 to -60 dBm, set by the tower-to-device hop)
and the device-to-receiver distance in feet. This module turns those knobs
into an RF SNR at the receiver:

    P_rx = P_device + G_device - L_conv + G_receiver - FSPL(d)
    N    = max(noise floor, ambient leakage through the 600 kHz offset)
    SNR  = P_rx - N

``L_conv`` is the backscatter conversion loss: the square-wave switch puts
(2/pi)^2 of the incident power into each first-order sideband (-3.9 dB),
and scattering/mismatch losses make up the rest.

The FM *threshold effect* — the cliff in Figs. 7/8 below about 10 dB of
RF SNR — is not modelled analytically: experiments add complex AWGN at
this SNR and run the real discriminator, which produces click noise and
collapse exactly like hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.channel.antenna import Antenna, DIPOLE_POSTER, HEADPHONE_WIRE
from repro.channel.noise import complex_awgn
from repro.channel.pathloss import free_space_path_loss_db
from repro.errors import LinkBudgetError
from repro.utils.rand import RngLike
from repro.utils.units import feet_to_meters
from repro.utils.validation import ensure_1d

SQUARE_WAVE_SIDEBAND_LOSS_DB = 3.92
"""Power loss of one first-order square-wave sideband: (2/pi)^2."""

DEFAULT_SCATTERING_LOSS_DB = 14.0
"""Antenna mode / mismatch / polarization loss of the reflect-absorb
switch. Calibrated (together with the -95 dBm effective noise floor)
against the paper's anchor points: 100 bps dies beyond ~6-8 ft at
-60 dBm (Fig. 8a), 1.6 kbps holds to ~6 ft at -50 dBm (Fig. 8b), and the
car receiver still works at 60 ft at -30 dBm (Fig. 14)."""

FM_THRESHOLD_SNR_DB = 10.0
"""Approximate discriminator threshold; informational (the simulation
produces the threshold behaviour physically)."""


@dataclass
class LinkBudget:
    """Static link-budget calculator for one backscatter configuration.

    Attributes:
        ambient_power_at_device_dbm: FM power arriving at the tag — the
            paper's -20..-60 dBm experimental knob.
        distance_ft: device-to-receiver distance in feet.
        frequency_hz: FM carrier frequency.
        device_antenna: antenna on the backscattering object.
        receiver_antenna: antenna on the phone or car.
        scattering_loss_db: mismatch/mode loss on top of the square-wave
            sideband loss.
        receiver_noise_floor_dbm: effective in-channel noise floor; -95 dBm
            default for the phone chain (a few dB above the -100 dBm
            sensitivity class the paper cites, covering headphone-cable
            antenna losses and urban noise).
        adjacent_suppression_db: how much of the ambient station (600 kHz
            away) the receiver rejects — IF selectivity at an alternate-
            alternate channel offset plus FM capture of the stronger
            in-channel signal. Its leakage can dominate the noise floor at
            high ambient power, as section 3.3 notes.
    """

    ambient_power_at_device_dbm: float
    distance_ft: float
    frequency_hz: float = 91.5e6
    device_antenna: Antenna = field(default_factory=lambda: DIPOLE_POSTER)
    receiver_antenna: Antenna = field(default_factory=lambda: HEADPHONE_WIRE)
    scattering_loss_db: float = DEFAULT_SCATTERING_LOSS_DB
    receiver_noise_floor_dbm: float = -95.0
    adjacent_suppression_db: float = 75.0

    def __post_init__(self) -> None:
        if self.distance_ft <= 0:
            raise LinkBudgetError("distance must be positive")
        if self.frequency_hz <= 0:
            raise LinkBudgetError("frequency must be positive")

    @property
    def conversion_loss_db(self) -> float:
        """Total backscatter conversion loss into one sideband."""
        return SQUARE_WAVE_SIDEBAND_LOSS_DB + self.scattering_loss_db

    def path_loss_db(self) -> float:
        """Free-space loss of the device-to-receiver hop."""
        d_m = float(feet_to_meters(self.distance_ft))
        return float(free_space_path_loss_db(d_m, self.frequency_hz))

    def backscatter_rx_power_dbm(self) -> float:
        """Backscattered signal power arriving at the receiver."""
        return (
            self.ambient_power_at_device_dbm
            + self.device_antenna.effective_gain_db
            - self.conversion_loss_db
            + self.receiver_antenna.effective_gain_db
            - self.path_loss_db()
        )

    def ambient_leakage_dbm(self) -> float:
        """Ambient-station power leaking past the receiver's selectivity.

        The receiver and the device are roughly equidistant from the tower
        in the paper's setup, so the ambient power at the receiver is
        approximated by the ambient power at the device.
        """
        return self.ambient_power_at_device_dbm - self.adjacent_suppression_db

    def noise_floor_dbm(self) -> float:
        """Effective noise floor: thermal-class floor or adjacent leakage."""
        return max(self.receiver_noise_floor_dbm, self.ambient_leakage_dbm())

    def rf_snr_db(self) -> float:
        """RF-domain SNR of the backscattered FM signal at the receiver."""
        return self.backscatter_rx_power_dbm() - self.noise_floor_dbm()


class BackscatterLink:
    """Applies a link budget to a complex envelope.

    Args:
        budget: the static link budget.
        fading: optional amplitude envelope source (e.g.
            :class:`repro.channel.fading.BodyMotionFading`); when present
            the instantaneous SNR varies accordingly.
    """

    def __init__(self, budget: LinkBudget, fading=None) -> None:
        self.budget = budget
        self.fading = fading

    def transmit(
        self, iq: np.ndarray, sample_rate: float, rng: RngLike = None
    ) -> np.ndarray:
        """Pass a unit-amplitude complex envelope through the link.

        Returns the faded, noise-corrupted envelope whose average SNR is
        the budget's :meth:`LinkBudget.rf_snr_db`.
        """
        iq = ensure_1d(iq, "iq")
        if not np.iscomplexobj(iq):
            raise LinkBudgetError("iq must be a complex envelope")
        if self.fading is not None:
            envelope = self.fading.envelope(iq.size, sample_rate)
            iq = iq * envelope
        return complex_awgn(iq, self.budget.rf_snr_db(), rng)

"""Backscatter link budget: the two-hop radar-equation model.

The paper's evaluation sweeps two knobs: the ambient FM power arriving at
the backscatter device (-20 to -60 dBm, set by the tower-to-device hop)
and the device-to-receiver distance in feet. This module turns those knobs
into an RF SNR at the receiver:

    P_rx = P_device + G_device - L_conv + G_receiver - FSPL(d)
    N    = max(noise floor, ambient leakage through the 600 kHz offset)
    SNR  = P_rx - N

``L_conv`` is the backscatter conversion loss: the square-wave switch puts
(2/pi)^2 of the incident power into each first-order sideband (-3.9 dB),
and scattering/mismatch losses make up the rest.

The FM *threshold effect* — the cliff in Figs. 7/8 below about 10 dB of
RF SNR — is not modelled analytically: experiments add complex AWGN at
this SNR and run the real discriminator, which produces click noise and
collapse exactly like hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

import numpy as np

from repro.channel.antenna import Antenna, DIPOLE_POSTER, HEADPHONE_WIRE
from repro.channel.noise import complex_awgn
from repro.channel.pathloss import free_space_path_loss_db
from repro.errors import LinkBudgetError
from repro.utils.rand import RngLike, as_generator
from repro.utils.units import feet_to_meters
from repro.utils.validation import ensure_1d


class FadingModel(Protocol):
    """Anything that can produce a channel amplitude envelope.

    Implemented by :class:`repro.channel.fading.BodyMotionFading`; the
    link multiplies the envelope onto the complex baseband sample-wise.
    """

    def envelope(self, n_samples: int, sample_rate: float) -> np.ndarray:
        """Amplitude envelope of ``n_samples`` at ``sample_rate``."""
        ...

SQUARE_WAVE_SIDEBAND_LOSS_DB = 3.92
"""Power loss of one first-order square-wave sideband: (2/pi)^2."""

DEFAULT_SCATTERING_LOSS_DB = 14.0
"""Antenna mode / mismatch / polarization loss of the reflect-absorb
switch. Calibrated (together with the -95 dBm effective noise floor)
against the paper's anchor points: 100 bps dies beyond ~6-8 ft at
-60 dBm (Fig. 8a), 1.6 kbps holds to ~6 ft at -50 dBm (Fig. 8b), and the
car receiver still works at 60 ft at -30 dBm (Fig. 14)."""

FM_THRESHOLD_SNR_DB = 10.0
"""Approximate discriminator threshold; informational (the simulation
produces the threshold behaviour physically)."""


@dataclass
class LinkBudget:
    """Static link-budget calculator for one backscatter configuration.

    Attributes:
        ambient_power_at_device_dbm: FM power arriving at the tag — the
            paper's -20..-60 dBm experimental knob.
        distance_ft: device-to-receiver distance in feet.
        frequency_hz: FM carrier frequency.
        device_antenna: antenna on the backscattering object.
        receiver_antenna: antenna on the phone or car.
        scattering_loss_db: mismatch/mode loss on top of the square-wave
            sideband loss.
        receiver_noise_floor_dbm: effective in-channel noise floor; -95 dBm
            default for the phone chain (a few dB above the -100 dBm
            sensitivity class the paper cites, covering headphone-cable
            antenna losses and urban noise).
        adjacent_suppression_db: how much of the ambient station (600 kHz
            away) the receiver rejects — IF selectivity at an alternate-
            alternate channel offset plus FM capture of the stronger
            in-channel signal. Its leakage can dominate the noise floor at
            high ambient power, as section 3.3 notes.
    """

    ambient_power_at_device_dbm: float
    distance_ft: float
    frequency_hz: float = 91.5e6
    device_antenna: Antenna = field(default_factory=lambda: DIPOLE_POSTER)
    receiver_antenna: Antenna = field(default_factory=lambda: HEADPHONE_WIRE)
    scattering_loss_db: float = DEFAULT_SCATTERING_LOSS_DB
    receiver_noise_floor_dbm: float = -95.0
    adjacent_suppression_db: float = 75.0

    def __post_init__(self) -> None:
        if self.distance_ft <= 0:
            raise LinkBudgetError("distance must be positive")
        if self.frequency_hz <= 0:
            raise LinkBudgetError("frequency must be positive")

    @property
    def conversion_loss_db(self) -> float:
        """Total backscatter conversion loss into one sideband."""
        return SQUARE_WAVE_SIDEBAND_LOSS_DB + self.scattering_loss_db

    def path_loss_db(self) -> float:
        """Free-space loss of the device-to-receiver hop."""
        d_m = float(feet_to_meters(self.distance_ft))
        return float(free_space_path_loss_db(d_m, self.frequency_hz))

    def backscatter_rx_power_dbm(self) -> float:
        """Backscattered signal power arriving at the receiver."""
        return (
            self.ambient_power_at_device_dbm
            + self.device_antenna.effective_gain_db
            - self.conversion_loss_db
            + self.receiver_antenna.effective_gain_db
            - self.path_loss_db()
        )

    def ambient_leakage_dbm(self) -> float:
        """Ambient-station power leaking past the receiver's selectivity.

        The receiver and the device are roughly equidistant from the tower
        in the paper's setup, so the ambient power at the receiver is
        approximated by the ambient power at the device.
        """
        return self.ambient_power_at_device_dbm - self.adjacent_suppression_db

    def noise_floor_dbm(self) -> float:
        """Effective noise floor: thermal-class floor or adjacent leakage."""
        return max(self.receiver_noise_floor_dbm, self.ambient_leakage_dbm())

    def rf_snr_db(self) -> float:
        """RF-domain SNR of the backscattered FM signal at the receiver."""
        return self.backscatter_rx_power_dbm() - self.noise_floor_dbm()


def batched_rf_snr_db(budgets: Sequence[LinkBudget]) -> np.ndarray:
    """RF SNR of many link budgets as one vectorized computation.

    The budget formula is elementwise (Friis loss, antenna gains, a
    noise-floor max), so a whole sweep grid's SNRs reduce to a handful of
    array ops. Every operation mirrors :meth:`LinkBudget.rf_snr_db`
    term for term, in the same association order, so each element is
    bit-identical to the scalar computation — the invariant the batched
    sweep backend's bit-identity contract rests on.
    """
    if not budgets:
        return np.empty(0)
    power = np.array([b.ambient_power_at_device_dbm for b in budgets], dtype=float)
    distance_m = feet_to_meters(np.array([b.distance_ft for b in budgets], dtype=float))
    frequency = np.array([b.frequency_hz for b in budgets], dtype=float)
    device_gain = np.array([b.device_antenna.effective_gain_db for b in budgets])
    receiver_gain = np.array([b.receiver_antenna.effective_gain_db for b in budgets])
    conversion = np.array([b.conversion_loss_db for b in budgets])
    floor = np.array([b.receiver_noise_floor_dbm for b in budgets])
    suppression = np.array([b.adjacent_suppression_db for b in budgets])

    path_loss = free_space_path_loss_db(distance_m, frequency)
    rx_power = power + device_gain - conversion + receiver_gain - path_loss
    noise = np.maximum(floor, power - suppression)
    return rx_power - noise


def transmit_batch(
    iq: np.ndarray,
    budgets: Sequence[LinkBudget],
    rngs: Sequence[RngLike],
) -> np.ndarray:
    """Pass one shared envelope through many link budgets at once.

    The batched counterpart of :meth:`BackscatterLink.transmit` for the
    no-fading case: every grid point reuses the same cached front-end
    envelope, so only the per-point noise differs. SNRs and noise scales
    are computed as single array ops; the Gaussian draws themselves come
    from each point's own pre-derived generator (two ``standard_normal``
    calls per point, exactly like :func:`repro.channel.noise.complex_awgn`)
    so each output row is bit-identical to the serial link.

    Args:
        iq: shared unit-amplitude complex envelope, 1-D.
        budgets: one link budget per output row.
        rngs: one seed/Generator per output row.

    Returns:
        Noise-corrupted envelopes, shape ``(len(budgets), iq.size)``.
    """
    iq = ensure_1d(iq, "iq")
    if not np.iscomplexobj(iq):
        raise LinkBudgetError("iq must be a complex envelope")
    if len(budgets) != len(rngs):
        raise LinkBudgetError(
            f"got {len(budgets)} budgets but {len(rngs)} generators"
        )
    snr_db = batched_rf_snr_db(budgets)
    power = float(np.mean(np.abs(iq) ** 2))
    noise_power = power / (10.0 ** (snr_db / 10.0))
    scales = np.sqrt(noise_power / 2.0)

    out = np.empty((len(budgets), iq.size), dtype=complex)
    clean = iq.astype(complex)
    for row, (scale, rng) in enumerate(zip(scales, rngs)):
        gen = as_generator(rng)
        noise = scale * (
            gen.standard_normal(iq.size) + 1j * gen.standard_normal(iq.size)
        )
        out[row] = clean + noise
    return out


class BackscatterLink:
    """Applies a link budget to a complex envelope.

    Args:
        budget: the static link budget.
        fading: optional amplitude envelope source (e.g.
            :class:`repro.channel.fading.BodyMotionFading`); when present
            the instantaneous SNR varies accordingly.
    """

    def __init__(self, budget: LinkBudget, fading: Optional[FadingModel] = None) -> None:
        self.budget = budget
        self.fading = fading

    def transmit(
        self, iq: np.ndarray, sample_rate: float, rng: RngLike = None
    ) -> np.ndarray:
        """Pass a unit-amplitude complex envelope through the link.

        Returns the faded, noise-corrupted envelope whose average SNR is
        the budget's :meth:`LinkBudget.rf_snr_db`.
        """
        iq = ensure_1d(iq, "iq")
        if not np.iscomplexobj(iq):
            raise LinkBudgetError("iq must be a complex envelope")
        if self.fading is not None:
            envelope = self.fading.envelope(iq.size, sample_rate)
            iq = iq * envelope
        return complex_awgn(iq, self.budget.rf_snr_db(), rng)

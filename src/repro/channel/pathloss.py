"""Propagation path-loss models.

Free-space (Friis) loss covers the short device-to-receiver hop of the
backscatter link; the log-distance model with shadowing drives the city
survey simulation (Fig. 2), where FM towers are kilometers away behind
buildings and terrain.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LinkBudgetError
from repro.utils.rand import RngLike, as_generator
from repro.utils.units import wavelength_m

ArrayLike = "float | np.ndarray"


def free_space_path_loss_db(distance_m, frequency_hz: float):
    """Friis free-space path loss ``20 log10(4 pi d / lambda)`` in dB.

    Distances below ``lambda / (2 pi)`` (the near-field boundary) are
    clamped there: the far-field formula would otherwise predict path
    *gain* at the paper's shortest ranges (~1 ft at 91.5 MHz).
    """
    distance_m = np.asarray(distance_m, dtype=float)
    if np.any(distance_m <= 0):
        raise LinkBudgetError("distance must be positive")
    lam = wavelength_m(frequency_hz)
    d = np.maximum(distance_m, lam / (2.0 * np.pi))
    return 20.0 * np.log10(4.0 * np.pi * d / lam)


def friis_received_power_dbm(
    tx_power_dbm: float,
    distance_m,
    frequency_hz: float,
    tx_gain_dbi: float = 0.0,
    rx_gain_dbi: float = 0.0,
):
    """Received power over a free-space link."""
    loss = free_space_path_loss_db(distance_m, frequency_hz)
    return tx_power_dbm + tx_gain_dbi + rx_gain_dbi - loss


def log_distance_path_loss_db(
    distance_m,
    frequency_hz: float,
    exponent: float = 3.0,
    reference_m: float = 100.0,
    shadowing_sigma_db: float = 0.0,
    rng: RngLike = None,
):
    """Log-distance path loss with optional log-normal shadowing.

    Args:
        distance_m: link distance(s).
        frequency_hz: carrier frequency.
        exponent: path-loss exponent (urban FM ~2.7-3.5).
        reference_m: close-in reference distance (free space below it).
        shadowing_sigma_db: standard deviation of log-normal shadowing;
            0 disables the random term.
        rng: seed or Generator for the shadowing draw.
    """
    distance_m = np.asarray(distance_m, dtype=float)
    if np.any(distance_m <= 0):
        raise LinkBudgetError("distance must be positive")
    if exponent <= 0:
        raise LinkBudgetError("path-loss exponent must be positive")
    reference_loss = free_space_path_loss_db(reference_m, frequency_hz)
    d = np.maximum(distance_m, reference_m)
    loss = reference_loss + 10.0 * exponent * np.log10(d / reference_m)
    if shadowing_sigma_db > 0:
        gen = as_generator(rng)
        loss = loss + shadowing_sigma_db * gen.standard_normal(np.shape(loss) or None)
    return loss

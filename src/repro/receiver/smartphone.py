"""Smartphone FM receiver (Moto G1-class).

The paper decodes on a Moto G1 with headphone-cable antenna through
Motorola's FM app, which stores AAC audio. Fig. 6 shows the resulting
chain is flat to ~13 kHz then falls off a cliff; the app/codec also
applies gain control. Both effects matter: the 13 kHz cutoff bounds the
usable FSK tone range, and the AGC is why cooperative backscatter needs
its amplitude-calibration pilot.
"""

from __future__ import annotations

import numpy as np

from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.dsp.agc import AutomaticGainControl
from repro.receiver.fm_receiver import FMReceiver, ReceivedAudio
from repro.utils.rand import RngLike, as_generator

SMARTPHONE_AUDIO_CUTOFF_HZ = 13_000.0
"""The Fig. 6 measured cutoff of the phone + app + codec chain."""


class SmartphoneReceiver(FMReceiver):
    """Moto G1-style receiver: 13 kHz audio cutoff, AGC, codec noise.

    Args:
        mpx_rate: IQ sample rate.
        audio_rate: output audio rate.
        agc_enabled: model the recording chain's gain control.
        agc_dynamic: when True, run the block-adaptive AGC (gain follows
            the program envelope); when False (default), apply a single
            recording-level gain like apps that set input gain once — the
            behaviour the paper's one-shot pilot calibration assumes.
        codec_noise_db: noise floor added by the AAC-class codec, in dB
            below full scale (negative number).
        rng: seed or Generator for the codec noise.
    """

    def __init__(
        self,
        mpx_rate: float = MPX_RATE_HZ,
        audio_rate: float = AUDIO_RATE_HZ,
        agc_enabled: bool = True,
        agc_dynamic: bool = False,
        codec_noise_db: float = -60.0,
        rng: RngLike = None,
    ) -> None:
        super().__init__(
            mpx_rate=mpx_rate,
            audio_rate=audio_rate,
            audio_cutoff_hz=SMARTPHONE_AUDIO_CUTOFF_HZ,
        )
        self.agc_enabled = agc_enabled
        self.agc_dynamic = agc_dynamic
        self.codec_noise_db = codec_noise_db
        self._agc = AutomaticGainControl(sample_rate=audio_rate)
        self._rng = as_generator(rng)

    def _finalize(self, audio: np.ndarray) -> np.ndarray:
        if self.agc_enabled:
            if self.agc_dynamic:
                audio = self._agc.apply(audio)
            else:
                audio = self._agc.static_gain(audio) * audio
        if self.codec_noise_db is not None:
            noise_rms = 10.0 ** (self.codec_noise_db / 20.0)
            audio = audio + noise_rms * self._rng.standard_normal(audio.size)
        return audio

    def apply_output_effects(self, received: ReceivedAudio) -> ReceivedAudio:
        """Apply the phone's recording-chain effects (AGC, codec noise).

        Left is finalized before right, preserving the draw order of the
        codec-noise generator across the serial and batched receive paths.
        """
        return ReceivedAudio(
            left=self._finalize(received.left),
            right=self._finalize(received.right),
            stereo_locked=received.stereo_locked,
            mpx=received.mpx,
            audio_rate=received.audio_rate,
        )

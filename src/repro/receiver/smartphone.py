"""Smartphone FM receiver (Moto G1-class).

The paper decodes on a Moto G1 with headphone-cable antenna through
Motorola's FM app, which stores AAC audio. Fig. 6 shows the resulting
chain is flat to ~13 kHz then falls off a cliff; the app/codec also
applies gain control. Both effects matter: the 13 kHz cutoff bounds the
usable FSK tone range, and the AGC is why cooperative backscatter needs
its amplitude-calibration pilot.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.dsp.agc import AutomaticGainControl
from repro.receiver.fm_receiver import FMReceiver, ReceivedAudio
from repro.utils.env import fast_numerics
from repro.utils.rand import RngLike, as_generator

SMARTPHONE_AUDIO_CUTOFF_HZ = 13_000.0
"""The Fig. 6 measured cutoff of the phone + app + codec chain."""


class SmartphoneReceiver(FMReceiver):
    """Moto G1-style receiver: 13 kHz audio cutoff, AGC, codec noise.

    Args:
        mpx_rate: IQ sample rate.
        audio_rate: output audio rate.
        agc_enabled: model the recording chain's gain control.
        agc_dynamic: when True, run the block-adaptive AGC (gain follows
            the program envelope); when False (default), apply a single
            recording-level gain like apps that set input gain once — the
            behaviour the paper's one-shot pilot calibration assumes.
        codec_noise_db: noise floor added by the AAC-class codec, in dB
            below full scale (negative number).
        rng: seed or Generator for the codec noise.
    """

    def __init__(
        self,
        mpx_rate: float = MPX_RATE_HZ,
        audio_rate: float = AUDIO_RATE_HZ,
        agc_enabled: bool = True,
        agc_dynamic: bool = False,
        codec_noise_db: float = -60.0,
        rng: RngLike = None,
    ) -> None:
        super().__init__(
            mpx_rate=mpx_rate,
            audio_rate=audio_rate,
            audio_cutoff_hz=SMARTPHONE_AUDIO_CUTOFF_HZ,
        )
        self.agc_enabled = agc_enabled
        self.agc_dynamic = agc_dynamic
        self.codec_noise_db = codec_noise_db
        self._agc = AutomaticGainControl(sample_rate=audio_rate)
        self._rng = as_generator(rng)

    def _finalize(self, audio: np.ndarray) -> np.ndarray:
        if self.agc_enabled:
            if self.agc_dynamic:
                audio = self._agc.apply(audio)
            else:
                audio = self._agc.static_gain(audio) * audio
        if self.codec_noise_db is not None:
            noise_rms = 10.0 ** (self.codec_noise_db / 20.0)
            audio = audio + noise_rms * self._rng.standard_normal(audio.size)
        return audio

    def apply_output_effects(self, received: ReceivedAudio) -> ReceivedAudio:
        """Apply the phone's recording-chain effects (AGC, codec noise).

        Left is finalized before right, preserving the draw order of the
        codec-noise generator across the serial and batched receive paths.
        """
        return ReceivedAudio(
            left=self._finalize(received.left),
            right=self._finalize(received.right),
            stereo_locked=received.stereo_locked,
            mpx=received.mpx,
            audio_rate=received.audio_rate,
        )

    @classmethod
    def apply_output_effects_batch(
        cls, receivers: Sequence["SmartphoneReceiver"], received: Sequence[ReceivedAudio]
    ) -> List[ReceivedAudio]:
        """Recording-chain effects for a whole batch, vectorized.

        The codec-noise draws stay per row — left then right from each
        receiver's own generator, the exact serial order — but the gain
        application and the noise scale-and-add run as stacked array
        ops, so the batched sweep backend pays the Python cost once per
        partition instead of once per point. Rows whose configuration
        the vector path cannot express (block-adaptive AGC) fall back to
        the per-row :meth:`apply_output_effects`, which is bit-identical
        by construction.
        """
        receivers = list(receivers)
        received = list(received)
        if not receivers:
            return []
        vectorizable = all(
            isinstance(rx, SmartphoneReceiver)
            and not (rx.agc_enabled and rx.agc_dynamic)
            for rx in receivers
        ) and len({row.left.shape for row in received}) == 1
        if not vectorizable:
            return [
                rx.apply_output_effects(row) for rx, row in zip(receivers, received)
            ]

        n_rows = len(receivers)
        stacks = {
            "left": np.stack([row.left for row in received]),
            "right": np.stack([row.right for row in received]),
        }
        out = {}
        # Per-row static gains through the same AGC call the serial
        # _finalize makes (1.0 when the AGC is off).
        for channel in ("left", "right"):  # serial order: left before right
            audio = stacks[channel]
            gained = np.empty_like(audio)
            for i, rx in enumerate(receivers):
                if rx.agc_enabled:
                    np.multiply(audio[i], rx._agc.static_gain(audio[i]), out=gained[i])
                else:
                    gained[i] = audio[i]
            out[channel] = gained
        # Codec noise: per-row draws (left first, then right — each
        # receiver's own stream), one vectorized scale-and-add.
        n_samples = stacks["left"].shape[-1]
        noisy_rows = [i for i, rx in enumerate(receivers) if rx.codec_noise_db is not None]
        if noisy_rows:
            draws = np.empty((len(noisy_rows), 2, n_samples))
            noise_rms = np.empty((len(noisy_rows), 1))
            if fast_numerics():
                # REPRO_NUMERICS=fast: one stacked draw for the whole
                # partition from the first noisy receiver's generator
                # (iid either way; the per-row streams — and hence
                # bit-identity with the serial path — are given up).
                receivers[noisy_rows[0]]._rng.standard_normal(out=draws)
                for k, i in enumerate(noisy_rows):
                    noise_rms[k, 0] = 10.0 ** (receivers[i].codec_noise_db / 20.0)
            else:
                for k, i in enumerate(noisy_rows):
                    rx = receivers[i]
                    rx._rng.standard_normal(out=draws[k, 0])
                    rx._rng.standard_normal(out=draws[k, 1])
                    noise_rms[k, 0] = 10.0 ** (rx.codec_noise_db / 20.0)
            out["left"][noisy_rows] += noise_rms * draws[:, 0]
            out["right"][noisy_rows] += noise_rms * draws[:, 1]

        return [
            ReceivedAudio(
                left=out["left"][i],
                right=out["right"][i],
                stereo_locked=row.stereo_locked,
                mpx=row.mpx,
                audio_rate=row.audio_rate,
            )
            for i, row in enumerate(received)
        ]

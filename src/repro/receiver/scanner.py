"""Band scanning: find occupied channels and the backscatter channel.

Section 3.3 notes the optimal ``fback`` should target the unoccupied
channel with the lowest ambient power. A receiver-side analogue is
needed too: a phone app that doesn't know ``fback`` a priori can scan the
unoccupied channels near the strong station and lock onto the one
carrying FM energy. This module provides both primitives on simulated
band activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import FM_CHANNEL_SPACING_HZ, FM_NUM_CHANNELS
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChannelObservation:
    """Power measured in one FM channel.

    Attributes:
        channel: channel index (0-99).
        power_dbm: measured in-channel power.
    """

    channel: int
    power_dbm: float


class BandScanner:
    """Chooses backscatter channels from per-channel power measurements.

    Args:
        occupancy_threshold_dbm: channels above this are considered
            occupied by a broadcast station.
    """

    def __init__(self, occupancy_threshold_dbm: float = -70.0) -> None:
        self.occupancy_threshold_dbm = float(occupancy_threshold_dbm)

    @staticmethod
    def _validate(observations: Sequence[ChannelObservation]) -> List[ChannelObservation]:
        obs = list(observations)
        if not obs:
            raise ConfigurationError("observations must be non-empty")
        seen = set()
        for o in obs:
            if not 0 <= o.channel < FM_NUM_CHANNELS:
                raise ConfigurationError(f"channel {o.channel} out of range")
            if o.channel in seen:
                raise ConfigurationError(f"duplicate channel {o.channel}")
            seen.add(o.channel)
        return obs

    def occupied_channels(
        self, observations: Sequence[ChannelObservation]
    ) -> List[int]:
        """Channels whose power exceeds the occupancy threshold."""
        obs = self._validate(observations)
        return sorted(
            o.channel for o in obs if o.power_dbm > self.occupancy_threshold_dbm
        )

    def best_backscatter_channel(
        self,
        observations: Sequence[ChannelObservation],
        source_channel: int,
        max_shift_channels: int = 4,
    ) -> Optional[int]:
        """Pick the quietest free channel within reach of the source.

        Implements the section 3.3 guidance: among unoccupied channels
        within ``max_shift_channels`` of the ambient station, choose the
        one with the *lowest* ambient power (the noise floor may be set by
        adjacent-channel leakage, so quieter is strictly better).

        Returns:
            The chosen channel index, or ``None`` when every channel in
            reach is occupied.
        """
        obs = self._validate(observations)
        if not 0 <= source_channel < FM_NUM_CHANNELS:
            raise ConfigurationError("source_channel out of range")
        if max_shift_channels < 1:
            raise ConfigurationError("max_shift_channels must be >= 1")
        by_channel = {o.channel: o.power_dbm for o in obs}
        candidates: List[Tuple[float, int]] = []
        for delta in range(1, max_shift_channels + 1):
            for channel in (source_channel - delta, source_channel + delta):
                if 0 <= channel < FM_NUM_CHANNELS and channel in by_channel:
                    power = by_channel[channel]
                    if power <= self.occupancy_threshold_dbm:
                        candidates.append((power, channel))
        if not candidates:
            return None
        return min(candidates)[1]

    def allocate_channels(
        self,
        observations: Sequence[ChannelObservation],
        source_channel: int,
        n_channels: int,
        max_shift_channels: int = 4,
    ) -> List[int]:
        """Allocate up to ``n_channels`` distinct free channels, quietest
        first.

        The multi-device generalization of
        :meth:`best_backscatter_channel`: each pick removes its channel
        from the pool, so a deployment's channel plan can hand every
        device its own ``fback`` until the free channels in reach run
        out. Returns fewer than ``n_channels`` entries when they do.
        """
        if n_channels < 1:
            raise ConfigurationError("n_channels must be >= 1")
        remaining = list(observations)
        allocated: List[int] = []
        while len(allocated) < n_channels and remaining:
            channel = self.best_backscatter_channel(
                remaining, source_channel, max_shift_channels
            )
            if channel is None:
                break
            allocated.append(channel)
            remaining = [o for o in remaining if o.channel != channel]
        return allocated

    @staticmethod
    def fback_for_channels(source_channel: int, target_channel: int) -> float:
        """The subcarrier frequency that maps source -> target channel."""
        if source_channel == target_channel:
            raise ConfigurationError("target must differ from source")
        return abs(target_channel - source_channel) * FM_CHANNEL_SPACING_HZ

"""Cooperative backscatter: two-phone MIMO cancellation (section 3.3).

Phone 1 tunes to the backscattered channel ``fc + fback`` and hears
``FMaudio + FMback``; phone 2 tunes to the original station ``fc`` and
hears ``FMaudio`` alone. Subtracting cancels the ambient program — but the
phones are not time synchronized and phone 1's hardware gain control
rescales ``FMaudio`` once ``FMback`` appears. The paper's fixes, both
implemented here:

1. Resample both streams by 10x in software and cross-correlate to find
   the time offset.
2. The device transmits a low-power 13 kHz pilot as a preamble and keeps
   it running during the payload; the ratio of pilot amplitudes between
   the two segments calibrates the gain change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import AUDIO_RATE_HZ, COOP_PILOT_FREQ_HZ
from scipy import signal as sp_signal

from repro.dsp.filters import bandpass_fir, filter_signal
from repro.dsp.goertzel import goertzel_power
from repro.dsp.resample import resample_poly_exact
from repro.errors import SynchronizationError
from repro.utils.validation import ensure_positive, ensure_real

RESAMPLE_FACTOR = 10
"""Software resampling factor used before cross-correlation (per paper)."""


@dataclass
class CooperativeResult:
    """Output of the cooperative cancellation.

    Attributes:
        backscatter_audio: the recovered ``FMback`` estimate.
        lag_samples: phone2-relative-to-phone1 offset found by
            cross-correlation, in (original-rate) samples.
        ambient_scale: the least-squares amplitude match applied to
            phone 2's stream before subtraction.
        pilot_gain_ratio: preamble-vs-payload pilot amplitude ratio used
            to undo phone 1's AGC step.
    """

    backscatter_audio: np.ndarray
    lag_samples: int
    ambient_scale: float
    pilot_gain_ratio: float


class CooperativeReceiver:
    """Combines two phones' audio into an interference-free stream.

    Args:
        audio_rate: sample rate of both input streams.
        pilot_freq_hz: the calibration pilot (13 kHz per the paper).
        preamble_seconds: duration of the pilot-only preamble at the start
            of the device's transmission.
        max_lag_seconds: largest time offset searched between phones.
    """

    def __init__(
        self,
        audio_rate: float = AUDIO_RATE_HZ,
        pilot_freq_hz: float = COOP_PILOT_FREQ_HZ,
        preamble_seconds: float = 0.5,
        max_lag_seconds: float = 0.5,
        preamble_pilot_boost: float = 1.0,
    ) -> None:
        self.audio_rate = ensure_positive(audio_rate, "audio_rate")
        self.pilot_freq_hz = ensure_positive(pilot_freq_hz, "pilot_freq_hz")
        self.preamble_seconds = ensure_positive(preamble_seconds, "preamble_seconds")
        self.max_lag_seconds = ensure_positive(max_lag_seconds, "max_lag_seconds")
        self.preamble_pilot_boost = ensure_positive(
            preamble_pilot_boost, "preamble_pilot_boost"
        )

    def _find_lag_upsampled(self, up1: np.ndarray, up2: np.ndarray) -> int:
        """Cross-correlate the 10x-resampled streams; return the lag in
        *upsampled* samples (positive: stream 1's content is delayed
        relative to stream 2's, i.e. ``up1[lag:]`` aligns with
        ``up2[0:]``). Sub-original-sample resolution is the point of the
        paper's 10x resampling: it is what makes the subtraction cancel
        deeply."""
        max_lag_up = int(self.max_lag_seconds * self.audio_rate) * RESAMPLE_FACTOR
        n = min(up1.size, up2.size)
        a = up1[:n] - np.mean(up1[:n])
        b = up2[:n] - np.mean(up2[:n])
        # FFT-based correlation: corr[k] = sum_n a[n + lag_k] * b[n] with
        # lags from -(n-1) to (n-1). np.correlate's direct algorithm is
        # quadratic and unusable at these lengths.
        corr = sp_signal.fftconvolve(a, b[::-1], mode="full")
        lags = np.arange(-n + 1, n)
        window = np.abs(lags) <= max_lag_up
        if not np.any(window):
            raise SynchronizationError("max_lag window is empty")
        return int(lags[window][int(np.argmax(corr[window]))])

    def _pilot_amplitude(self, audio: np.ndarray, sample_rate: float = None) -> float:
        """Amplitude of the calibration pilot in a block.

        ``goertzel_power`` returns |DFT|^2 / n; for a tone of amplitude A,
        |DFT| = A n / 2, so A = 2 sqrt(power / n). The extra 1/sqrt(n)
        makes the estimate independent of block length — essential here
        because the preamble and payload segments differ in duration.
        """
        rate = self.audio_rate if sample_rate is None else sample_rate
        # Trim to an integer number of pilot cycles: a fractional final
        # cycle scallops the single-bin estimate by up to ~10%, which
        # directly becomes a cancellation error.
        cycles = np.floor(audio.size * self.pilot_freq_hz / rate)
        n = int(cycles * rate / self.pilot_freq_hz)
        if n < 2:
            return 0.0
        block = audio[:n]
        power = goertzel_power(block, self.pilot_freq_hz, rate)
        return float(2.0 * np.sqrt(max(power, 0.0) / block.size))

    def cancel(self, phone1_audio: np.ndarray, phone2_audio: np.ndarray) -> CooperativeResult:
        """Recover ``FMback`` from the two phones' audio.

        Args:
            phone1_audio: audio from the phone tuned to ``fc + fback``
                (ambient + backscatter + pilot preamble).
            phone2_audio: audio from the phone tuned to ``fc`` (ambient
                only).

        Raises:
            SynchronizationError: when the streams cannot be aligned.
        """
        phone1_in = ensure_real(phone1_audio, "phone1_audio")
        phone2_in = ensure_real(phone2_audio, "phone2_audio")

        # All processing happens in the 10x-resampled domain so the
        # alignment (and therefore the subtraction) is good to a tenth of
        # an audio sample.
        up_rate = self.audio_rate * RESAMPLE_FACTOR
        phone1 = resample_poly_exact(phone1_in, RESAMPLE_FACTOR, 1)
        phone2 = resample_poly_exact(phone2_in, RESAMPLE_FACTOR, 1)

        lag_up = self._find_lag_upsampled(phone1, phone2)
        if lag_up > 0:
            phone1 = phone1[lag_up:]
        elif lag_up < 0:
            phone2 = phone2[-lag_up:]
        n = min(phone1.size, phone2.size)
        phone1 = phone1[:n]
        phone2 = phone2[:n]

        # Alignment may have trimmed the start of phone 1's recording,
        # eating into the preamble. The payload begins at the original
        # preamble boundary minus the trim; the calibration fit uses what
        # provably remains of the preamble, with a small guard band.
        payload_start = int(self.preamble_seconds * up_rate) - max(lag_up, 0)
        preamble_n = payload_start - int(0.02 * up_rate)
        if preamble_n < int(0.1 * up_rate):
            raise SynchronizationError(
                "aligned overlap leaves too little preamble for calibration"
            )

        # AGC calibration: pilot amplitude during preamble vs payload on
        # phone 1. If the AGC compressed the payload segment, the pilot
        # there shrinks by the same factor; rescale to undo it.
        pilot_pre = self._pilot_amplitude(phone1[:preamble_n], up_rate)
        pilot_pay = self._pilot_amplitude(phone1[payload_start:], up_rate)
        if pilot_pre <= 0 or pilot_pay <= 0:
            gain_ratio = 1.0
        else:
            # The preamble pilot is transmitted ``preamble_pilot_boost``
            # times louder than the running pilot, so an unchanged receiver
            # gain shows up as exactly that ratio.
            gain_ratio = pilot_pre / (self.preamble_pilot_boost * pilot_pay)
        phone1_cal = np.concatenate(
            [phone1[:payload_start], gain_ratio * phone1[payload_start:]]
        )

        # Ambient amplitude match: least-squares fit of phone2 onto phone1
        # over the preamble, where phone1 contains only ambient + pilot.
        # The pilot band is excluded from the fit. Filtering happens at the
        # *original* audio rate — at the 10x rate a practical FIR cannot
        # realize an 800 Hz-wide notch — so the preamble segments are
        # decimated for the fit (scale is a scalar; resolution is not
        # needed here).
        notch = bandpass_fir(
            self.pilot_freq_hz - 400.0,
            self.pilot_freq_hz + 400.0,
            self.audio_rate,
            513,
        )
        p1_pre = resample_poly_exact(phone1_cal[:preamble_n], 1, RESAMPLE_FACTOR)
        p2_pre = resample_poly_exact(phone2[:preamble_n], 1, RESAMPLE_FACTOR)
        p1_fit = p1_pre - filter_signal(notch, p1_pre)
        p2_fit = p2_pre - filter_signal(notch, p2_pre)
        denom = float(np.dot(p2_fit, p2_fit))
        if denom <= 0:
            raise SynchronizationError("phone 2 preamble is silent")
        scale = float(np.dot(p1_fit, p2_fit)) / denom

        recovered_up = phone1_cal - scale * phone2
        recovered = resample_poly_exact(recovered_up[payload_start:], 1, RESAMPLE_FACTOR)
        # Remove the running calibration pilot: it served its purpose and
        # would otherwise sit in the recovered audio as a steady tone.
        recovered = recovered - filter_signal(notch, recovered)
        return CooperativeResult(
            backscatter_audio=recovered,
            lag_samples=int(np.round(lag_up / RESAMPLE_FACTOR)),
            ambient_scale=scale,
            pilot_gain_ratio=gain_ratio,
        )

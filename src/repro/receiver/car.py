"""Car FM receiver (2010 Honda CRV-class) with the cabin acoustic path.

Section 5.4: the car radio has a better antenna and front end than a
phone, but is *not programmable*, so the only output is sound from the
speakers — the paper records it with a microphone, engine running and
windows closed. We model the receiver with a lower noise floor plus an
acoustic path: speaker/cabin band-limiting and engine noise.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.dsp.filters import bandpass_fir, design_lowpass_fir, filter_signal
from repro.receiver.fm_receiver import FMReceiver, ReceivedAudio
from repro.utils.env import fast_numerics
from repro.utils.rand import RngLike, as_generator

CAR_AUDIO_CUTOFF_HZ = 15_000.0
"""Car stereos pass the full broadcast audio band."""

CABIN_NOISE_SNR_DB = 40.0
"""Engine + cabin noise relative to the program level at the microphone."""


class CarReceiver(FMReceiver):
    """Car radio + speaker + cabin-microphone chain.

    Args:
        mpx_rate: IQ sample rate.
        audio_rate: output audio rate.
        cabin_noise_snr_db: acoustic SNR of the microphone recording.
        rng: seed or Generator for the cabin noise.
    """

    def __init__(
        self,
        mpx_rate: float = MPX_RATE_HZ,
        audio_rate: float = AUDIO_RATE_HZ,
        cabin_noise_snr_db: float = CABIN_NOISE_SNR_DB,
        rng: RngLike = None,
    ) -> None:
        super().__init__(
            mpx_rate=mpx_rate,
            audio_rate=audio_rate,
            audio_cutoff_hz=CAR_AUDIO_CUTOFF_HZ,
        )
        self.cabin_noise_snr_db = cabin_noise_snr_db
        self._rng = as_generator(rng)

    def _acoustic_path(self, audio: np.ndarray) -> np.ndarray:
        """Speaker -> cabin -> microphone: band-limit plus engine noise."""
        # Speakers and mic pass ~60 Hz - 12 kHz.
        shaped = filter_signal(
            bandpass_fir(60.0, min(12e3, self.audio_rate / 2 * 0.9), self.audio_rate, 257),
            audio,
        )
        signal_power = float(np.mean(shaped**2))
        if signal_power <= 0:
            return shaped
        # Engine noise is low-frequency dominated: shape white noise down.
        noise = self._rng.standard_normal(shaped.size)
        noise = filter_signal(design_lowpass_fir(400.0, self.audio_rate, 129), noise)
        noise += 0.1 * self._rng.standard_normal(shaped.size)
        noise_power = float(np.mean(noise**2))
        target_noise_power = signal_power / (10.0 ** (self.cabin_noise_snr_db / 10.0))
        noise *= np.sqrt(target_noise_power / max(noise_power, 1e-30))
        return shaped + noise

    def apply_output_effects(self, received: ReceivedAudio) -> ReceivedAudio:
        """Pass the decoded audio through the cabin microphone path.

        Left precedes right so the cabin-noise generator draws in the
        same order on the serial and batched receive paths.
        """
        return ReceivedAudio(
            left=self._acoustic_path(received.left),
            right=self._acoustic_path(received.right),
            stereo_locked=received.stereo_locked,
            mpx=received.mpx,
            audio_rate=received.audio_rate,
        )

    @classmethod
    def apply_output_effects_batch(
        cls, receivers: Sequence["CarReceiver"], received: Sequence[ReceivedAudio]
    ) -> List[ReceivedAudio]:
        """The cabin microphone path for a whole batch, vectorized.

        Speaker/cabin band-limiting and the engine-noise shaping filter
        are the expensive part of :meth:`_acoustic_path`; here they run
        as 2-D passes over every (row, channel) at once. The noise draws
        stay per row — left's two draws, then right's, from each
        receiver's own generator, exactly the serial order, and a
        channel whose shaped signal has no power skips its draws just
        like the serial early-return — so every row stays bit-identical
        to :meth:`apply_output_effects`.
        """
        receivers = list(receivers)
        received = list(received)
        if not receivers:
            return []
        vectorizable = (
            all(isinstance(rx, CarReceiver) for rx in receivers)
            and len({rx.audio_rate for rx in receivers}) == 1
            and len({row.left.shape for row in received}) == 1
        )
        if not vectorizable:
            return [
                rx.apply_output_effects(row) for rx, row in zip(receivers, received)
            ]
        ref = receivers[0]
        n_rows = len(receivers)

        # Channel-major stack: rows [0..n) are lefts, [n..2n) are rights.
        audio = np.concatenate(
            [
                np.stack([row.left for row in received]),
                np.stack([row.right for row in received]),
            ]
        )
        shaped = filter_signal(
            bandpass_fir(
                60.0, min(12e3, ref.audio_rate / 2 * 0.9), ref.audio_rate, 257
            ),
            audio,
        )
        signal_power = np.mean(shaped**2, axis=-1)

        # Draws in serial order — per row: left d1, d2 then right d1, d2
        # from that row's generator; silent channels draw nothing. Under
        # REPRO_NUMERICS=fast the enumeration of active channels is the
        # same but every pair comes from one stacked draw on the first
        # active row's generator (iid either way; bit-identity with the
        # serial path is given up).
        active: List[Tuple[int, int]] = []  # (row, channel-major index)
        n_samples = shaped.shape[-1]
        fast = fast_numerics()
        draw_list: List[np.ndarray] = []
        for i, rx in enumerate(receivers):
            for stacked in (i, n_rows + i):  # left before right
                if signal_power[stacked] <= 0:
                    continue
                active.append((i, stacked))
                if not fast:
                    pair = np.empty((2, n_samples))
                    rx._rng.standard_normal(out=pair[0])
                    rx._rng.standard_normal(out=pair[1])
                    draw_list.append(pair)

        if active:
            if fast:
                draws = np.empty((len(active), 2, n_samples))
                receivers[active[0][0]]._rng.standard_normal(out=draws)
            else:
                draws = np.stack(draw_list)
            noise = filter_signal(
                design_lowpass_fir(400.0, ref.audio_rate, 129), draws[:, 0]
            )
            noise += 0.1 * draws[:, 1]
            noise_power = np.mean(noise**2, axis=-1)
            rows_idx = np.array([i for i, _ in active])
            stacked_idx = np.array([s for _, s in active])
            snr_db = np.array([receivers[i].cabin_noise_snr_db for i in rows_idx])
            target = signal_power[stacked_idx] / (10.0 ** (snr_db / 10.0))
            noise *= np.sqrt(target / np.maximum(noise_power, 1e-30))[:, np.newaxis]
            shaped[stacked_idx] += noise

        return [
            ReceivedAudio(
                left=shaped[i],
                right=shaped[n_rows + i],
                stereo_locked=row.stereo_locked,
                mpx=row.mpx,
                audio_rate=row.audio_rate,
            )
            for i, row in enumerate(received)
        ]

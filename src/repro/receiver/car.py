"""Car FM receiver (2010 Honda CRV-class) with the cabin acoustic path.

Section 5.4: the car radio has a better antenna and front end than a
phone, but is *not programmable*, so the only output is sound from the
speakers — the paper records it with a microphone, engine running and
windows closed. We model the receiver with a lower noise floor plus an
acoustic path: speaker/cabin band-limiting and engine noise.
"""

from __future__ import annotations

import numpy as np

from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.dsp.filters import bandpass_fir, design_lowpass_fir, filter_signal
from repro.receiver.fm_receiver import FMReceiver, ReceivedAudio
from repro.utils.rand import RngLike, as_generator

CAR_AUDIO_CUTOFF_HZ = 15_000.0
"""Car stereos pass the full broadcast audio band."""

CABIN_NOISE_SNR_DB = 40.0
"""Engine + cabin noise relative to the program level at the microphone."""


class CarReceiver(FMReceiver):
    """Car radio + speaker + cabin-microphone chain.

    Args:
        mpx_rate: IQ sample rate.
        audio_rate: output audio rate.
        cabin_noise_snr_db: acoustic SNR of the microphone recording.
        rng: seed or Generator for the cabin noise.
    """

    def __init__(
        self,
        mpx_rate: float = MPX_RATE_HZ,
        audio_rate: float = AUDIO_RATE_HZ,
        cabin_noise_snr_db: float = CABIN_NOISE_SNR_DB,
        rng: RngLike = None,
    ) -> None:
        super().__init__(
            mpx_rate=mpx_rate,
            audio_rate=audio_rate,
            audio_cutoff_hz=CAR_AUDIO_CUTOFF_HZ,
        )
        self.cabin_noise_snr_db = cabin_noise_snr_db
        self._rng = as_generator(rng)

    def _acoustic_path(self, audio: np.ndarray) -> np.ndarray:
        """Speaker -> cabin -> microphone: band-limit plus engine noise."""
        # Speakers and mic pass ~60 Hz - 12 kHz.
        shaped = filter_signal(
            bandpass_fir(60.0, min(12e3, self.audio_rate / 2 * 0.9), self.audio_rate, 257),
            audio,
        )
        signal_power = float(np.mean(shaped**2))
        if signal_power <= 0:
            return shaped
        # Engine noise is low-frequency dominated: shape white noise down.
        noise = self._rng.standard_normal(shaped.size)
        noise = filter_signal(design_lowpass_fir(400.0, self.audio_rate, 129), noise)
        noise += 0.1 * self._rng.standard_normal(shaped.size)
        noise_power = float(np.mean(noise**2))
        target_noise_power = signal_power / (10.0 ** (self.cabin_noise_snr_db / 10.0))
        noise *= np.sqrt(target_noise_power / max(noise_power, 1e-30))
        return shaped + noise

    def apply_output_effects(self, received: ReceivedAudio) -> ReceivedAudio:
        """Pass the decoded audio through the cabin microphone path.

        Left precedes right so the cabin-noise generator draws in the
        same order on the serial and batched receive paths.
        """
        return ReceivedAudio(
            left=self._acoustic_path(received.left),
            right=self._acoustic_path(received.right),
            stereo_locked=received.stereo_locked,
            mpx=received.mpx,
            audio_rate=received.audio_rate,
        )

"""FM receiver models: smartphone, car, and cooperative two-phone MIMO.

Receivers consume a complex envelope (the backscattered channel after the
link) and produce what the paper's devices produce: *audio only*. The
smartphone chain includes the ~13 kHz audio cutoff measured in Fig. 6; the
car chain adds the speaker-to-microphone acoustic path of section 5.4; the
cooperative receiver implements the section 3.3 cancellation algorithm
(10x resampling, cross-correlation sync, 13 kHz pilot amplitude
calibration).
"""

from repro.receiver.fm_receiver import FMReceiver, ReceivedAudio
from repro.receiver.smartphone import SmartphoneReceiver
from repro.receiver.car import CarReceiver
from repro.receiver.cooperative import CooperativeReceiver, CooperativeResult
from repro.receiver.scanner import BandScanner, ChannelObservation
from repro.receiver.channelizer import Channelizer

__all__ = [
    "BandScanner",
    "CarReceiver",
    "Channelizer",
    "ChannelObservation",
    "CooperativeReceiver",
    "CooperativeResult",
    "FMReceiver",
    "ReceivedAudio",
    "SmartphoneReceiver",
]

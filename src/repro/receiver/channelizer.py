"""Channelizer: extract one FM channel from a wideband band slice.

The front half of a scanning receiver: mix the chosen channel to zero,
low-pass to the channel bandwidth, and decimate to the library's standard
480 kHz complex-baseband rate where :class:`repro.receiver.FMReceiver`
takes over.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FM_CHANNEL_SPACING_HZ, MPX_RATE_HZ
from repro.dsp.filters import design_lowpass_fir, filter_signal
from repro.dsp.resample import resample_by_ratio
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_1d, ensure_positive


class Channelizer:
    """Select and downconvert one channel from wideband IQ.

    Args:
        input_rate: sample rate of the wideband input.
        output_rate: complex-baseband rate handed to the FM receiver.
        channel_bandwidth_hz: low-pass bandwidth around the selected
            channel (slightly wider than the 200 kHz grid to pass the
            full Carson bandwidth).
    """

    def __init__(
        self,
        input_rate: float,
        output_rate: float = MPX_RATE_HZ,
        channel_bandwidth_hz: float = 150e3,
    ) -> None:
        self.input_rate = ensure_positive(input_rate, "input_rate")
        self.output_rate = ensure_positive(output_rate, "output_rate")
        self.channel_bandwidth_hz = ensure_positive(
            channel_bandwidth_hz, "channel_bandwidth_hz"
        )
        if output_rate > input_rate:
            raise ConfigurationError("output_rate must not exceed input_rate")
        if 2 * channel_bandwidth_hz > output_rate:
            raise ConfigurationError("output_rate cannot carry the channel bandwidth")

    def extract(self, band_iq: np.ndarray, channel_offset: int) -> np.ndarray:
        """Downconvert the channel at ``channel_offset`` to baseband.

        Args:
            band_iq: wideband complex input.
            channel_offset: channel index relative to the slice center.

        Returns:
            Complex envelope at ``output_rate``, normalized to unit RMS
            (receivers are amplitude-agnostic; the limiter normalizes).
        """
        band_iq = ensure_1d(band_iq, "band_iq")
        if not np.iscomplexobj(band_iq):
            raise ConfigurationError("band_iq must be complex")
        center = channel_offset * FM_CHANNEL_SPACING_HZ
        if abs(center) + self.channel_bandwidth_hz > self.input_rate / 2:
            raise ConfigurationError("channel does not fit in the input bandwidth")
        t = np.arange(band_iq.size) / self.input_rate
        mixed = band_iq * np.exp(-2j * np.pi * center * t)
        taps = design_lowpass_fir(self.channel_bandwidth_hz, self.input_rate, 513)
        filtered = filter_signal(taps, mixed.real) + 1j * filter_signal(
            taps, mixed.imag
        )
        baseband = resample_by_ratio(filtered, self.input_rate, self.output_rate)
        rms = float(np.sqrt(np.mean(np.abs(baseband) ** 2)))
        if rms <= 0:
            raise ConfigurationError("selected channel contains no signal")
        return baseband / rms

"""The generic FM receiver chain: IQ -> MPX -> mono/stereo audio."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.constants import AUDIO_RATE_HZ, FM_MAX_DEVIATION_HZ, MPX_RATE_HZ
from repro.dsp.biquad import deemphasis_filter
from repro.dsp.filters import design_lowpass_fir, filter_signal
from repro.errors import ConfigurationError
from repro.fm.demodulator import fm_demodulate
from repro.fm.stereo import (
    StereoAudio,
    decode_mono,
    decode_stereo,
    decode_stereo_batch,
    row_chunks,
)
from repro.utils.validation import ensure_positive


@dataclass
class ReceivedAudio:
    """Output of a receiver.

    Attributes:
        left: left channel audio.
        right: right channel audio (== left when mono).
        stereo_locked: whether the stereo decoder engaged.
        mpx: the demodulated composite baseband (for RDS or diagnostics).
        audio_rate: sample rate of the audio channels.
    """

    left: np.ndarray
    right: np.ndarray
    stereo_locked: bool
    mpx: np.ndarray
    audio_rate: float

    @property
    def mono(self) -> np.ndarray:
        """(L+R)/2 mix — what a mono radio outputs."""
        return 0.5 * (self.left + self.right)

    @property
    def difference(self) -> np.ndarray:
        """(L-R)/2 — the paper's stereo-backscatter recovery output."""
        return 0.5 * (self.left - self.right)


class FMReceiver:
    """Discriminator-based FM broadcast receiver.

    Args:
        mpx_rate: IQ / MPX sample rate.
        audio_rate: output audio rate.
        deviation_hz: deviation assumed for MPX scaling.
        audio_cutoff_hz: end-to-end audio low-pass; Fig. 6 measures the
            smartphone chain rolling off sharply above ~13 kHz.
        apply_deemphasis: enable the 75 us de-emphasis network (pair with
            a pre-emphasizing transmitter; the library's default chain is
            flat, matching the paper's tone measurements).
        stereo_capable: stereo decoding gated on the 19 kHz pilot.
    """

    def __init__(
        self,
        mpx_rate: float = MPX_RATE_HZ,
        audio_rate: float = AUDIO_RATE_HZ,
        deviation_hz: float = FM_MAX_DEVIATION_HZ,
        audio_cutoff_hz: float = 15_000.0,
        apply_deemphasis: bool = False,
        stereo_capable: bool = True,
    ) -> None:
        self.mpx_rate = ensure_positive(mpx_rate, "mpx_rate")
        self.audio_rate = ensure_positive(audio_rate, "audio_rate")
        self.deviation_hz = ensure_positive(deviation_hz, "deviation_hz")
        self.audio_cutoff_hz = ensure_positive(audio_cutoff_hz, "audio_cutoff_hz")
        self.apply_deemphasis = apply_deemphasis
        self.stereo_capable = stereo_capable

    def _post_process(self, audio: np.ndarray) -> np.ndarray:
        # The chain cutoff (Fig. 6) is a cliff, not a gentle roll-off:
        # 1025 taps at 48 kHz give a ~150 Hz transition band.
        cutoff = min(self.audio_cutoff_hz, self.audio_rate / 2 * 0.98)
        audio = filter_signal(design_lowpass_fir(cutoff, self.audio_rate, 1025), audio)
        if self.apply_deemphasis:
            audio = deemphasis_filter(self.audio_rate).apply(audio)
        return audio

    def apply_output_effects(self, received: ReceivedAudio) -> ReceivedAudio:
        """Receiver-specific effects on the decoded audio.

        Subclasses model their recording chain here (smartphone AGC and
        codec noise, car cabin acoustics). The hook runs after the shared
        demodulate/decode/post-process DSP, on both the serial path
        (:meth:`receive`) and the batched one
        (:func:`receive_mono_batch`), so a receiver's stochastic effects
        are applied per point with that point's own generator either way.
        """
        return received

    @classmethod
    def apply_output_effects_batch(
        cls, receivers: Sequence["FMReceiver"], received: Sequence[ReceivedAudio]
    ) -> List[ReceivedAudio]:
        """Receiver-specific effects over a whole decoded batch at once.

        The batch counterpart of :meth:`apply_output_effects`: row ``i``
        of the result must be bit-identical to
        ``receivers[i].apply_output_effects(received[i])``. This default
        simply loops — correct for any receiver subclass, which is what
        lets the batched sweep backend keep *every* receiver on the
        vectorized path. Subclasses with per-row stochastic effects
        (smartphone codec noise, the car cabin) override it to keep the
        random draws per row (each receiver's own generator, left before
        right) while running the deterministic shaping as stacked array
        ops over the batch. Under ``REPRO_NUMERICS=fast`` those
        overrides collapse the per-row draws into one batched
        ``standard_normal`` per partition — statistically identical, not
        bit-identical, and gated by the tolerance-tier goldens.
        """
        return [rx.apply_output_effects(row) for rx, row in zip(receivers, received)]

    def receive_mpx(self, iq: np.ndarray) -> np.ndarray:
        """Demodulate the complex envelope into the MPX baseband."""
        return fm_demodulate(iq, self.mpx_rate, self.deviation_hz)

    def receive(self, iq: np.ndarray) -> ReceivedAudio:
        """Full receive chain: demodulate, stereo-decode, post-process."""
        mpx = self.receive_mpx(iq)
        if self.stereo_capable:
            decoded: StereoAudio = decode_stereo(mpx, self.mpx_rate, self.audio_rate)
            left = self._post_process(decoded.left)
            right = self._post_process(decoded.right)
            stereo_locked = decoded.stereo_locked
        else:
            # Mono fast path: pilot recovery and the stereo matrix are
            # pure, deterministic DSP whose output a mono receiver
            # discards, so skipping them changes nothing downstream —
            # L and R are the identically post-processed mono mix.
            left = self._post_process(decode_mono(mpx, self.mpx_rate, self.audio_rate))
            right = left.copy()
            stereo_locked = False
        return self.apply_output_effects(
            ReceivedAudio(
                left=left,
                right=right,
                stereo_locked=stereo_locked,
                mpx=mpx,
                audio_rate=self.audio_rate,
            )
        )


def supports_mono_batch(receiver: FMReceiver) -> bool:
    """Whether :func:`receive_mono_batch` can stand in for ``receive``.

    Every mono receiver qualifies — de-emphasis runs as a 2-D IIR pass
    and receiver-specific output effects batch through
    :meth:`FMReceiver.apply_output_effects_batch` — so the batched sweep
    backend never falls back on a receiver's account.
    """
    return not receiver.stereo_capable


def supports_stereo_batch(receiver: FMReceiver) -> bool:
    """Whether :func:`receive_stereo_batch` can stand in for ``receive``."""
    return receiver.stereo_capable


def _require_uniform_batch(
    receivers: Sequence[FMReceiver],
    batch: np.ndarray,
    supports,
    requirement: str,
    batch_name: str = "iq_batch",
) -> None:
    """Shared shape / configuration validation for the batch receive paths."""
    if batch.ndim != 2 or batch.shape[0] != len(receivers):
        raise ConfigurationError(
            f"{batch_name} must have shape (n_receivers, samples); got "
            f"{batch.shape} for {len(receivers)} receivers"
        )
    if not receivers:
        return
    ref = receivers[0]
    for rx in receivers:
        if not supports(rx):
            raise ConfigurationError(requirement)
        if (
            rx.mpx_rate != ref.mpx_rate
            or rx.audio_rate != ref.audio_rate
            or rx.deviation_hz != ref.deviation_hz
            or rx.audio_cutoff_hz != ref.audio_cutoff_hz
            or rx.apply_deemphasis != ref.apply_deemphasis
        ):
            raise ConfigurationError(
                "all receivers in one batch must share mpx/audio rates, "
                "deviation, audio cutoff and de-emphasis"
            )


def decode_mono_rows(
    receivers: Sequence[FMReceiver],
    mpx_batch: np.ndarray,
    max_fft_rows: Optional[int] = None,
) -> List[ReceivedAudio]:
    """Shared mono decode of a demodulated MPX stack, *without* output effects.

    The mono decoder and audio low-pass (and, when configured, the
    de-emphasis IIR) are deterministic and sample-wise independent
    across waveforms, so they run as NumPy ops over the stack —
    bit-identical per row to the serial decode because the 2-D code path
    in the DSP layer is the same code path the 1-D calls take.
    Receiver-specific (stochastic) output effects are *not* applied;
    callers batch them separately through
    :meth:`FMReceiver.apply_output_effects_batch`, which lets the sweep
    backend decode in memory-capped chunks and still vectorize the
    effects across the whole partition.

    Args:
        receivers: one configured mono receiver per row; all must share
            the DSP-relevant configuration.
        mpx_batch: demodulated MPX rows, ``(len(receivers), samples)``.
        max_fft_rows: cap on how many rows each FFT-heavy filtering pass
            spans (``None`` = all rows at once). Purely a working-set
            knob — results are bit-identical at any value.
    """
    receivers = list(receivers)
    mpx_batch = np.asarray(mpx_batch)
    _require_uniform_batch(
        receivers,
        mpx_batch,
        supports_mono_batch,
        "decode_mono_rows needs mono receivers "
        "(stereo-capable receivers batch through the stereo decode)",
        batch_name="mpx_batch",
    )
    if not receivers:
        return []
    ref = receivers[0]

    results: List[ReceivedAudio] = []
    for rows in row_chunks(len(receivers), max_fft_rows):
        audio_batch = decode_mono(mpx_batch[rows], ref.mpx_rate, ref.audio_rate)
        audio_batch = ref._post_process(audio_batch)
        for rx, audio_row, mpx_row in zip(
            receivers[rows], audio_batch, mpx_batch[rows]
        ):
            left = np.ascontiguousarray(audio_row)
            results.append(
                ReceivedAudio(
                    left=left,
                    right=left.copy(),
                    stereo_locked=False,
                    mpx=np.ascontiguousarray(mpx_row),
                    audio_rate=rx.audio_rate,
                )
            )
    return results


def decode_stereo_rows(
    receivers: Sequence[FMReceiver],
    mpx_batch: np.ndarray,
    max_fft_rows: Optional[int] = None,
) -> List[ReceivedAudio]:
    """Shared stereo decode of a demodulated MPX stack, *without* output effects.

    The stereo counterpart of :func:`decode_mono_rows`: the pilot-gated
    stereo decode (:func:`~repro.fm.stereo.decode_stereo_batch`) and the
    audio post-filter run over the stack, with per-row pilot detection
    and lock decisions preserved — a row whose pilot is missing falls
    back to mono *inside* the batch, exactly as the serial receive
    would. ``max_fft_rows`` caps only the FFT-heavy filtering passes;
    the pilot PLL always advances the *full* stack of pilot-bearing
    rows per time step, so its vectorization width is independent of the
    memory-capped chunking (see
    :meth:`repro.dsp.pll.PhaseLockedLoop.track_batch`).
    """
    receivers = list(receivers)
    mpx_batch = np.asarray(mpx_batch)
    _require_uniform_batch(
        receivers,
        mpx_batch,
        supports_stereo_batch,
        "decode_stereo_rows needs stereo-capable receivers "
        "(mono receivers batch through the mono decode)",
        batch_name="mpx_batch",
    )
    if not receivers:
        return []
    ref = receivers[0]

    decoded = decode_stereo_batch(
        mpx_batch, ref.mpx_rate, ref.audio_rate, max_fft_rows=max_fft_rows
    )
    # All rows share one MPX length, so the decoder's outputs stack; the
    # serial receive post-processes left then right, and both are
    # deterministic filters, so batching each channel separately keeps
    # every row bit-identical. These run at the audio rate (a tenth of
    # the MPX working set), so they span the full stack.
    left_batch = ref._post_process(np.stack([audio.left for audio in decoded]))
    right_batch = ref._post_process(np.stack([audio.right for audio in decoded]))

    results: List[ReceivedAudio] = []
    for rx, audio, left_row, right_row, mpx_row in zip(
        receivers, decoded, left_batch, right_batch, mpx_batch
    ):
        results.append(
            ReceivedAudio(
                left=np.ascontiguousarray(left_row),
                right=np.ascontiguousarray(right_row),
                stereo_locked=audio.stereo_locked,
                mpx=np.ascontiguousarray(mpx_row),
                audio_rate=rx.audio_rate,
            )
        )
    return results


def receive_mono_batch(
    receivers: Sequence[FMReceiver],
    iq_batch: np.ndarray,
    max_fft_rows: Optional[int] = None,
) -> List[ReceivedAudio]:
    """Receive many envelopes through the shared mono DSP in one pass.

    Demodulation and the mono decode run as stacked NumPy ops
    (:func:`decode_mono_rows`), then receiver-specific stochastic
    effects (codec noise, cabin noise) batch through
    :meth:`FMReceiver.apply_output_effects_batch` — random draws per row
    with each receiver's own generator, deterministic shaping
    vectorized. Every row is bit-identical to
    ``receivers[i].receive(iq_batch[i])``.

    Args:
        receivers: one configured mono receiver per row; all must share
            the DSP-relevant configuration (rates, cutoff, deviation,
            de-emphasis).
        iq_batch: complex envelopes, shape ``(len(receivers), samples)``.
        max_fft_rows: optional cap on the rows per FFT filtering pass.

    Returns:
        One :class:`ReceivedAudio` per row, in order.
    """
    receivers = list(receivers)
    iq_batch = np.asarray(iq_batch)
    _require_uniform_batch(
        receivers,
        iq_batch,
        supports_mono_batch,
        "receive_mono_batch needs mono receivers "
        "(stereo-capable receivers batch through receive_stereo_batch)",
    )
    if not receivers:
        return []
    ref = receivers[0]
    mpx_batch = fm_demodulate(iq_batch, ref.mpx_rate, ref.deviation_hz)
    rows = decode_mono_rows(receivers, mpx_batch, max_fft_rows)
    return type(ref).apply_output_effects_batch(receivers, rows)


def receive_stereo_batch(
    receivers: Sequence[FMReceiver],
    iq_batch: np.ndarray,
    max_fft_rows: Optional[int] = None,
) -> List[ReceivedAudio]:
    """Receive many envelopes through the shared stereo DSP in one pass.

    The stereo counterpart of :func:`receive_mono_batch`: demodulation,
    the pilot-gated stereo decode (whose pilot PLL advances every
    waveform's state vector per time step) and the audio post-filter run
    over the full ``(points, samples)`` stack
    (:func:`decode_stereo_rows`), then receiver-specific stochastic
    effects batch through
    :meth:`FMReceiver.apply_output_effects_batch` — left before right,
    each receiver's own generator — so every row is bit-identical to the
    serial receive.

    Args:
        receivers: one configured stereo-capable receiver per row; all
            must share the DSP-relevant configuration (rates, cutoff,
            deviation, de-emphasis).
        iq_batch: complex envelopes, shape ``(len(receivers), samples)``.
        max_fft_rows: optional cap on the rows per FFT filtering pass
            (the pilot PLL always spans the full stack).

    Returns:
        One :class:`ReceivedAudio` per row, in order.
    """
    receivers = list(receivers)
    iq_batch = np.asarray(iq_batch)
    _require_uniform_batch(
        receivers,
        iq_batch,
        supports_stereo_batch,
        "receive_stereo_batch needs stereo-capable receivers "
        "(mono receivers batch through receive_mono_batch)",
    )
    if not receivers:
        return []
    ref = receivers[0]
    mpx_batch = fm_demodulate(iq_batch, ref.mpx_rate, ref.deviation_hz)
    rows = decode_stereo_rows(receivers, mpx_batch, max_fft_rows)
    return type(ref).apply_output_effects_batch(receivers, rows)

"""The generic FM receiver chain: IQ -> MPX -> mono/stereo audio."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.constants import AUDIO_RATE_HZ, FM_MAX_DEVIATION_HZ, MPX_RATE_HZ
from repro.dsp.biquad import deemphasis_filter
from repro.dsp.filters import design_lowpass_fir, filter_signal
from repro.errors import ConfigurationError
from repro.fm.demodulator import fm_demodulate
from repro.fm.stereo import StereoAudio, decode_mono, decode_stereo, decode_stereo_batch
from repro.utils.validation import ensure_positive


@dataclass
class ReceivedAudio:
    """Output of a receiver.

    Attributes:
        left: left channel audio.
        right: right channel audio (== left when mono).
        stereo_locked: whether the stereo decoder engaged.
        mpx: the demodulated composite baseband (for RDS or diagnostics).
        audio_rate: sample rate of the audio channels.
    """

    left: np.ndarray
    right: np.ndarray
    stereo_locked: bool
    mpx: np.ndarray
    audio_rate: float

    @property
    def mono(self) -> np.ndarray:
        """(L+R)/2 mix — what a mono radio outputs."""
        return 0.5 * (self.left + self.right)

    @property
    def difference(self) -> np.ndarray:
        """(L-R)/2 — the paper's stereo-backscatter recovery output."""
        return 0.5 * (self.left - self.right)


class FMReceiver:
    """Discriminator-based FM broadcast receiver.

    Args:
        mpx_rate: IQ / MPX sample rate.
        audio_rate: output audio rate.
        deviation_hz: deviation assumed for MPX scaling.
        audio_cutoff_hz: end-to-end audio low-pass; Fig. 6 measures the
            smartphone chain rolling off sharply above ~13 kHz.
        apply_deemphasis: enable the 75 us de-emphasis network (pair with
            a pre-emphasizing transmitter; the library's default chain is
            flat, matching the paper's tone measurements).
        stereo_capable: stereo decoding gated on the 19 kHz pilot.
    """

    def __init__(
        self,
        mpx_rate: float = MPX_RATE_HZ,
        audio_rate: float = AUDIO_RATE_HZ,
        deviation_hz: float = FM_MAX_DEVIATION_HZ,
        audio_cutoff_hz: float = 15_000.0,
        apply_deemphasis: bool = False,
        stereo_capable: bool = True,
    ) -> None:
        self.mpx_rate = ensure_positive(mpx_rate, "mpx_rate")
        self.audio_rate = ensure_positive(audio_rate, "audio_rate")
        self.deviation_hz = ensure_positive(deviation_hz, "deviation_hz")
        self.audio_cutoff_hz = ensure_positive(audio_cutoff_hz, "audio_cutoff_hz")
        self.apply_deemphasis = apply_deemphasis
        self.stereo_capable = stereo_capable

    def _post_process(self, audio: np.ndarray) -> np.ndarray:
        # The chain cutoff (Fig. 6) is a cliff, not a gentle roll-off:
        # 1025 taps at 48 kHz give a ~150 Hz transition band.
        cutoff = min(self.audio_cutoff_hz, self.audio_rate / 2 * 0.98)
        audio = filter_signal(design_lowpass_fir(cutoff, self.audio_rate, 1025), audio)
        if self.apply_deemphasis:
            audio = deemphasis_filter(self.audio_rate).apply(audio)
        return audio

    def apply_output_effects(self, received: ReceivedAudio) -> ReceivedAudio:
        """Receiver-specific effects on the decoded audio.

        Subclasses model their recording chain here (smartphone AGC and
        codec noise, car cabin acoustics). The hook runs after the shared
        demodulate/decode/post-process DSP, on both the serial path
        (:meth:`receive`) and the batched one
        (:func:`receive_mono_batch`), so a receiver's stochastic effects
        are applied per point with that point's own generator either way.
        """
        return received

    def receive_mpx(self, iq: np.ndarray) -> np.ndarray:
        """Demodulate the complex envelope into the MPX baseband."""
        return fm_demodulate(iq, self.mpx_rate, self.deviation_hz)

    def receive(self, iq: np.ndarray) -> ReceivedAudio:
        """Full receive chain: demodulate, stereo-decode, post-process."""
        mpx = self.receive_mpx(iq)
        if self.stereo_capable:
            decoded: StereoAudio = decode_stereo(mpx, self.mpx_rate, self.audio_rate)
            left = self._post_process(decoded.left)
            right = self._post_process(decoded.right)
            stereo_locked = decoded.stereo_locked
        else:
            # Mono fast path: pilot recovery and the stereo matrix are
            # pure, deterministic DSP whose output a mono receiver
            # discards, so skipping them changes nothing downstream —
            # L and R are the identically post-processed mono mix.
            left = self._post_process(decode_mono(mpx, self.mpx_rate, self.audio_rate))
            right = left.copy()
            stereo_locked = False
        return self.apply_output_effects(
            ReceivedAudio(
                left=left,
                right=right,
                stereo_locked=stereo_locked,
                mpx=mpx,
                audio_rate=self.audio_rate,
            )
        )


def supports_mono_batch(receiver: FMReceiver) -> bool:
    """Whether :func:`receive_mono_batch` can stand in for ``receive``."""
    return not receiver.stereo_capable and not receiver.apply_deemphasis


def supports_stereo_batch(receiver: FMReceiver) -> bool:
    """Whether :func:`receive_stereo_batch` can stand in for ``receive``."""
    return receiver.stereo_capable and not receiver.apply_deemphasis


def _require_uniform_batch(
    receivers: Sequence[FMReceiver],
    iq_batch: np.ndarray,
    supports,
    requirement: str,
) -> None:
    """Shared shape / configuration validation for the batch receive paths."""
    if iq_batch.ndim != 2 or iq_batch.shape[0] != len(receivers):
        raise ConfigurationError(
            f"iq_batch must have shape (n_receivers, samples); got {iq_batch.shape} "
            f"for {len(receivers)} receivers"
        )
    if not receivers:
        return
    ref = receivers[0]
    for rx in receivers:
        if not supports(rx):
            raise ConfigurationError(requirement)
        if (
            rx.mpx_rate != ref.mpx_rate
            or rx.audio_rate != ref.audio_rate
            or rx.deviation_hz != ref.deviation_hz
            or rx.audio_cutoff_hz != ref.audio_cutoff_hz
        ):
            raise ConfigurationError(
                "all receivers in one batch must share mpx/audio rates, "
                "deviation and audio cutoff"
            )


def receive_mono_batch(
    receivers: Sequence[FMReceiver], iq_batch: np.ndarray
) -> List[ReceivedAudio]:
    """Receive many envelopes through the shared mono DSP in one pass.

    The demodulator, mono decoder and audio low-pass are deterministic
    and sample-wise independent across waveforms, so the batched sweep
    backend stacks every grid point's noisy envelope into one
    ``(points, samples)`` array and runs those stages as single NumPy
    ops — bit-identical per row to ``receivers[i].receive(iq_batch[i])``
    because the 2-D code path in the DSP layer is the same code path the
    1-D calls take. Per-receiver stochastic effects (codec noise, cabin
    noise) then run row by row through :meth:`FMReceiver.apply_output_effects`
    with each receiver's own generator.

    Args:
        receivers: one configured mono receiver per row; all must share
            the DSP-relevant configuration (rates, cutoff, deviation).
        iq_batch: complex envelopes, shape ``(len(receivers), samples)``.

    Returns:
        One :class:`ReceivedAudio` per row, in order.
    """
    receivers = list(receivers)
    iq_batch = np.asarray(iq_batch)
    _require_uniform_batch(
        receivers,
        iq_batch,
        supports_mono_batch,
        "receive_mono_batch needs mono receivers without de-emphasis "
        "(stereo-capable receivers batch through receive_stereo_batch)",
    )
    if not receivers:
        return []
    ref = receivers[0]

    mpx_batch = fm_demodulate(iq_batch, ref.mpx_rate, ref.deviation_hz)
    audio_batch = decode_mono(mpx_batch, ref.mpx_rate, ref.audio_rate)
    audio_batch = ref._post_process(audio_batch)

    results: List[ReceivedAudio] = []
    for rx, audio_row, mpx_row in zip(receivers, audio_batch, mpx_batch):
        left = np.ascontiguousarray(audio_row)
        received = ReceivedAudio(
            left=left,
            right=left.copy(),
            stereo_locked=False,
            mpx=np.ascontiguousarray(mpx_row),
            audio_rate=rx.audio_rate,
        )
        results.append(rx.apply_output_effects(received))
    return results


def receive_stereo_batch(
    receivers: Sequence[FMReceiver], iq_batch: np.ndarray
) -> List[ReceivedAudio]:
    """Receive many envelopes through the shared stereo DSP in one pass.

    The stereo counterpart of :func:`receive_mono_batch`: demodulation,
    the pilot-gated stereo decode
    (:func:`~repro.fm.stereo.decode_stereo_batch`, whose pilot PLL
    advances every waveform's state vector per time step) and the audio
    post-filter all run over the full ``(points, samples)`` stack.
    Per-row pilot detection and lock decisions are preserved — a row
    whose pilot is missing falls back to mono *inside* the batch, exactly
    as ``receivers[i].receive(iq_batch[i])`` would. Receiver-specific
    stochastic effects then run row by row through
    :meth:`FMReceiver.apply_output_effects`, left before right, with each
    receiver's own generator, so every row is bit-identical to the serial
    receive.

    Args:
        receivers: one configured stereo-capable receiver per row
            (without de-emphasis); all must share the DSP-relevant
            configuration (rates, cutoff, deviation).
        iq_batch: complex envelopes, shape ``(len(receivers), samples)``.

    Returns:
        One :class:`ReceivedAudio` per row, in order.
    """
    receivers = list(receivers)
    iq_batch = np.asarray(iq_batch)
    _require_uniform_batch(
        receivers,
        iq_batch,
        supports_stereo_batch,
        "receive_stereo_batch needs stereo-capable receivers without "
        "de-emphasis (mono receivers batch through receive_mono_batch)",
    )
    if not receivers:
        return []
    ref = receivers[0]

    mpx_batch = fm_demodulate(iq_batch, ref.mpx_rate, ref.deviation_hz)
    decoded = decode_stereo_batch(mpx_batch, ref.mpx_rate, ref.audio_rate)
    # All rows share one MPX length, so the decoder's outputs stack; the
    # serial receive post-processes left then right, and both are
    # deterministic filters, so batching each channel separately keeps
    # every row bit-identical.
    left_batch = ref._post_process(np.stack([audio.left for audio in decoded]))
    right_batch = ref._post_process(np.stack([audio.right for audio in decoded]))

    results: List[ReceivedAudio] = []
    for rx, audio, left_row, right_row, mpx_row in zip(
        receivers, decoded, left_batch, right_batch, mpx_batch
    ):
        received = ReceivedAudio(
            left=np.ascontiguousarray(left_row),
            right=np.ascontiguousarray(right_row),
            stereo_locked=audio.stereo_locked,
            mpx=np.ascontiguousarray(mpx_row),
            audio_rate=rx.audio_rate,
        )
        results.append(rx.apply_output_effects(received))
    return results

"""Unified, deterministic fault injection for the distributed sweep stack.

One registry behind one knob, ``REPRO_FAULTS``: a comma-separated list of
fault directives, each naming a fault class and an integer target —

``REPRO_FAULTS=kill-shard:2,delay-shard:0:1.5,corrupt-cache:1,drop-result:3``

Every directive is strict-parsed like the rest of the ``REPRO_*``
surface (a malformed item raises :class:`~repro.errors.ConfigurationError`
naming the variable and the offending item), and every fault fires
*deterministically* — keyed to a shard id, a global point index, a
worker id or a save ordinal, never to a clock or a random draw — so a
chaos run reproduces exactly: the same faults hit the same work on every
execution at a given seed.

Fault classes:

``kill-shard:<shard>``
    The worker that picks up initial shard ``shard`` hard-exits
    (``os._exit``) on the shard's *first attempt* — a crash/OOM kill.
    Retries proceed normally, so the launch recovers.
``kill-point:<index>``
    Any worker holding a shard that contains global point ``index``
    hard-exits, on *every* attempt. Re-slicing cannot dodge it — the
    half carrying the point keeps dying until the retry budget runs out
    and the launcher's in-process degradation salvages the range.
``delay-shard:<shard>:<seconds>``
    The worker sleeps ``seconds`` before executing initial shard
    ``shard`` (first attempt only) — a forced straggler, recovered by
    deadline speculation.
``drop-result:<shard>``
    The worker computes initial shard ``shard`` (first attempt) but
    never reports it — a result lost in transit. The worker looks busy
    forever, so recovery needs ``shard_deadline_s`` speculation or a
    :class:`~repro.engine.launcher.RetryPolicy` job deadline.
``corrupt-cache:<ordinal>``
    The ``ordinal``-th successful :meth:`~repro.engine.store.CacheStore.
    save` on a store instance is truncated after its atomic rename — a
    torn write that survived the rename (power loss before the data
    blocks hit disk). Readers treat the entry as a miss, reap it
    (counted in ``corrupt_evictions``) and resynthesize, so results stay
    bit-identical.
``init-fail:<worker>``
    The worker spawned with id ``worker`` exits during initialization,
    before pulling any task. The launcher reaps it and spawns a
    replacement (fresh id, so the replacement survives).

The pre-PR knob ``REPRO_LAUNCHER_FAULT=kill-shard:<n>`` remains as a
**deprecated alias** (it accepts only its original ``kill-shard`` form
and warns); when both variables are set their directives combine.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.utils.env import env_list

FAULTS_ENV_VAR = "REPRO_FAULTS"
"""The unified chaos knob: comma-separated fault directives."""

LEGACY_FAULT_ENV_VAR = "REPRO_LAUNCHER_FAULT"
"""Deprecated single-fault alias (``kill-shard:<n>`` only)."""

FAULT_KINDS = (
    "kill-shard",
    "kill-point",
    "delay-shard",
    "drop-result",
    "corrupt-cache",
    "init-fail",
)
"""Every registered fault class, in documentation order."""


@dataclass(frozen=True)
class Fault:
    """One parsed fault directive.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        target: the integer the fault keys on — an initial shard id
            (``kill-shard`` / ``delay-shard`` / ``drop-result``), a
            global point index (``kill-point``), a save ordinal
            (``corrupt-cache``) or a worker id (``init-fail``).
        delay_s: sleep duration for ``delay-shard``; ``0.0`` otherwise.
    """

    kind: str
    target: int
    delay_s: float = 0.0


class FaultPlan:
    """The active set of faults, queried by launcher, workers and store.

    An empty plan (no directives) is falsy and answers "no" to every
    query, so fault checks cost one attribute lookup on the happy path.
    """

    def __init__(self, faults: Tuple[Fault, ...] = ()) -> None:
        self.faults = tuple(faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"FaultPlan({self.faults!r})"

    def _targets(self, kind: str):
        return (f for f in self.faults if f.kind == kind)

    def kill(self, shard) -> bool:
        """Whether the worker holding ``shard`` must hard-exit.

        ``kill-shard`` fires on the named initial shard's first attempt
        only; ``kill-point`` fires whenever the shard's range contains
        the named global point, on every attempt.
        """
        for fault in self._targets("kill-shard"):
            if shard.shard_id == fault.target and shard.attempt == 0:
                return True
        for fault in self._targets("kill-point"):
            if shard.start <= fault.target < shard.stop:
                return True
        return False

    def delay_s(self, shard) -> float:
        """Forced-straggler sleep before executing ``shard`` (0.0 = none)."""
        for fault in self._targets("delay-shard"):
            if shard.shard_id == fault.target and shard.attempt == 0:
                return fault.delay_s
        return 0.0

    def drop_result(self, shard) -> bool:
        """Whether ``shard``'s completed result is lost in transit."""
        return any(
            shard.shard_id == fault.target and shard.attempt == 0
            for fault in self._targets("drop-result")
        )

    def init_fail(self, worker_id: int) -> bool:
        """Whether the worker spawned with ``worker_id`` dies during init."""
        return any(fault.target == worker_id for fault in self._targets("init-fail"))

    def corrupt_save(self, save_ordinal: int) -> bool:
        """Whether a store's ``save_ordinal``-th save is torn after rename."""
        return any(
            fault.target == save_ordinal for fault in self._targets("corrupt-cache")
        )


def _parse_item(item: str, source: str) -> Fault:
    parts = item.split(":")
    kind = parts[0]
    if kind not in FAULT_KINDS:
        raise ConfigurationError(
            f"{source} names unknown fault class {kind!r} in {item!r} "
            f"(registered classes: {FAULT_KINDS})"
        )
    if kind == "delay-shard":
        if len(parts) != 3:
            raise ConfigurationError(
                f"{source}: {item!r} must look like 'delay-shard:<shard>:<seconds>'"
            )
        shard_str, delay_str = parts[1], parts[2]
        if not shard_str.isdigit():
            raise ConfigurationError(
                f"{source}: shard id in {item!r} must be a non-negative integer"
            )
        try:
            delay = float(delay_str)
        except ValueError:
            raise ConfigurationError(
                f"{source}: delay in {item!r} must be a number of seconds"
            ) from None
        if not delay > 0:
            raise ConfigurationError(
                f"{source}: delay in {item!r} must be positive"
            )
        return Fault(kind=kind, target=int(shard_str), delay_s=delay)
    if len(parts) != 2 or not parts[1].isdigit():
        raise ConfigurationError(
            f"{source}: {item!r} must look like '{kind}:<non-negative integer>'"
        )
    return Fault(kind=kind, target=int(parts[1]))


def parse_faults(spec: str, source: str = FAULTS_ENV_VAR) -> FaultPlan:
    """Parse a comma-separated fault directive list, strictly.

    Args:
        spec: the raw directive string (may be empty — an empty plan).
        source: name used in error messages (the env var, normally).
    """
    items = tuple(item.strip() for item in spec.split(",") if item.strip())
    return FaultPlan(tuple(_parse_item(item, source) for item in items))


def _legacy_plan() -> FaultPlan:
    """The deprecated ``REPRO_LAUNCHER_FAULT`` knob, original grammar only."""
    raw = os.environ.get(LEGACY_FAULT_ENV_VAR, "").strip()
    if not raw:
        return FaultPlan()
    warnings.warn(
        f"{LEGACY_FAULT_ENV_VAR} is deprecated; use "
        f"{FAULTS_ENV_VAR}={raw} (the unified fault registry) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    kind, sep, arg = raw.partition(":")
    if kind == "kill-shard" and sep and arg.isdigit():
        return FaultPlan((Fault(kind="kill-shard", target=int(arg)),))
    raise ConfigurationError(
        f"{LEGACY_FAULT_ENV_VAR} must look like 'kill-shard:<shard index>', "
        f"got {raw!r}"
    )


def active_plan() -> FaultPlan:
    """The process's fault plan, parsed fresh from the environment.

    Reads :data:`FAULTS_ENV_VAR` (the registry) and the deprecated
    :data:`LEGACY_FAULT_ENV_VAR` alias; when both are set their
    directives combine. Parsed at call time so tests can monkeypatch,
    and so forked workers (which inherit the environment) agree with the
    parent byte for byte.
    """
    faults = tuple(
        _parse_item(item, FAULTS_ENV_VAR) for item in env_list(FAULTS_ENV_VAR)
    )
    legacy = _legacy_plan()
    return FaultPlan(faults + legacy.faults)


def legacy_fault_spec() -> Optional[Tuple[str, int]]:
    """Back-compat shim for the old ``launcher.fault_spec`` surface.

    Returns the parsed ``(kind, target)`` of the deprecated
    ``REPRO_LAUNCHER_FAULT`` knob, or ``None`` when unset — exactly the
    pre-registry behavior, including the strict-parse error.
    """
    plan = _legacy_plan()
    if not plan:
        return None
    fault = plan.faults[0]
    return (fault.kind, fault.target)

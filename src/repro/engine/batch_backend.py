"""Batched-vectorized sweep execution.

The paper's link-budget grids share one front end: a P×D sweep reuses the
same cached composite envelope at every point, and only the link (SNR,
fading, noise) and the receiver's stochastic effects differ per point.
This backend exploits that structurally: points are grouped by front-end
key (program/mode/amplitude + payload + ambient variant), each group's
envelope is stacked into a ``(points, samples)`` array, and the link
fading + noise scaling, FM discriminator, audio decode and low-pass run
as NumPy ops over the stack (:func:`repro.channel.link.transmit_batch` +
:func:`repro.receiver.fm_receiver.receive_mono_batch` /
:func:`~repro.receiver.fm_receiver.receive_stereo_batch` internals).

Coverage is total over the runner-transmitted scenario space — no chain
feature forces a per-point fallback:

- **Fading links** batch: per-point envelopes are pre-drawn *in serial
  grid order* through :func:`repro.channel.fading.stack_envelopes`
  (stateful models consume their streams exactly as the serial loop
  would; declarative :class:`~repro.channel.fading.MotionFadingSpec`
  links resolve from each point's own pre-derived stream) and applied
  row-wise inside ``transmit_batch``.
- **Stereo-capable receivers** (phone stereo *and* the car radio) batch
  through the multi-waveform pilot PLL
  (:meth:`repro.dsp.pll.PhaseLockedLoop.track_batch`). The PLL runs on
  the decimated pilot band of the *whole* partition, so its stack width
  is independent of the FFT chunking below.
- **Receiver output effects** (smartphone AGC + codec noise, the car
  cabin microphone path) and **de-emphasis** batch through
  :meth:`repro.receiver.fm_receiver.FMReceiver.apply_output_effects_batch`
  and the 2-D de-emphasis IIR — applied once per partition, random
  draws still per row from each point's own generator.

Bit-identity with the serial backend holds because (a) every stochastic
draw still comes from the point's own pre-derived generators, in the
same order the chain consumes them (station, link incl. fading, then
receiver), and (b) the vectorized DSP is the *same code path* the 1-D
calls take — the engine's DSP layer processes 2-D inputs along the last
axis with row-independent operations.

Scenarios whose ``measure`` performs its own transmissions (Fig. 12's
two-phone cancellation, the deployment layer's MAC-gated per-device
frames, the survey figures) declare no ``payload``, so there is no
runner-performed transmission to vectorize; their points execute through
the serial :func:`~repro.engine.execution.execute_point` by
construction. Those are *measure-driven* points, not fallbacks:
:attr:`repro.engine.results.SweepResult.n_fallbacks` counts only points
the backend was asked to vectorize (a declared chain + payload) but had
to run serially — which, with the paths above, is zero across the
entire scenario space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.fading import stack_envelopes
from repro.channel.link import resolve_fading, transmit_batch
from repro.constants import MPX_RATE_HZ
from repro.engine.cache import AmbientCache
from repro.engine.execution import execute_point, make_ambient
from repro.engine.scenario import GridPoint, PointRun, Scenario
from repro.fm.demodulator import fm_demodulate
from repro.receiver.fm_receiver import (
    decode_mono_rows,
    decode_stereo_rows,
    supports_mono_batch,
    supports_stereo_batch,
)
from repro.utils.env import env_float
from repro.utils.rand import child_generator

BATCH_MEMORY_ENV_VAR = "REPRO_BATCH_MAX_MB"
"""Cap (in MB) on one stacked FFT working set; grids larger than the cap
vectorize in row slices, which changes nothing numerically. Malformed
or non-positive values raise :class:`~repro.errors.ConfigurationError`."""

_DEFAULT_BATCH_MB = 64.0
"""Default chunk budget. Deliberately cache-sized rather than RAM-sized:
the vectorized ops are elementwise and memory-bound, so a working set
near the LLC beats one giant pass through DRAM (measured ~2.5x on the
Fig. 8 grid)."""

_TRANSMIT_BYTES_PER_SAMPLE = 48
"""Per-point bytes one transmit + demodulate chunk holds: the complex rx
row (16 B/sample), its two noise-draw scratch rows (16) and the
demodulated MPX row (8), plus slack for audio tails."""


def batch_memory_budget_mb() -> float:
    """The configured chunk budget in MB, strictly parsed."""
    return env_float(
        BATCH_MEMORY_ENV_VAR, _DEFAULT_BATCH_MB, minimum=0.0, minimum_exclusive=True
    )


def chunk_limit(n_samples: int, budget_mb: Optional[float] = None) -> int:
    """How many grid points fit one vectorized chunk under the memory cap.

    The cap bounds the *working set* of each FFT/transmit pass — the
    decode stages receive it as their ``max_fft_rows`` — not the small
    per-row state that persists across passes (decimated pilot bands,
    audio-rate rows), which is what lets the stereo PLL span a whole
    partition regardless of this limit. The planner calls this with the
    same row length it predicts costs for, so a recorded
    :class:`~repro.engine.planner.PlanDecision` names the exact chunk
    rows the batched executor will use.
    """
    if budget_mb is None:
        budget_mb = batch_memory_budget_mb()
    bytes_per_point = n_samples * _TRANSMIT_BYTES_PER_SAMPLE
    return max(1, int(budget_mb * 1e6 / max(bytes_per_point, 1)))


def receiver_partition_signature(receiver) -> tuple:
    """The homogeneity key one vectorized partition shares.

    Points whose receivers agree on this tuple decode through one stacked
    pass (mono or stereo); the planner groups by the same key so its
    per-partition cost estimates line up one-to-one with the partitions
    the executor will actually run.
    """
    stereo = supports_stereo_batch(receiver)
    assert stereo or supports_mono_batch(receiver)
    return (
        type(receiver), stereo, receiver.mpx_rate, receiver.audio_rate,
        receiver.deviation_hz, receiver.audio_cutoff_hz,
        receiver.apply_deemphasis,
    )


def run_batched_backend(
    scenario: Scenario,
    data: Dict[str, object],
    points: Sequence[GridPoint],
    seeds: Sequence[int],
    cache: Optional[AmbientCache],
    ambient_master: int,
    max_chunk_rows: Optional[int] = None,
) -> Tuple[List[object], int, int]:
    """Execute the grid with per-front-end vectorization.

    Args:
        max_chunk_rows: optional cap on the rows of one vectorized chunk,
            applied on top of the memory-budget limit. The planner passes
            its calibrated per-partition chunk budget through here; the
            cap changes nothing numerically (chunking never does).

    Returns:
        ``(values, n_batched, n_fallbacks)`` — values in grid order, how
        many points took the vectorized path, and how many batch-eligible
        points (scenario declares a chain + payload) had to run serially
        instead. Points of measure-driven scenarios (no declared payload)
        execute serially by construction and are not fallbacks.
    """
    from repro.experiments.common import ExperimentChain

    values: List[object] = [None] * len(points)
    fallback: List[int] = []
    # group key -> list of point indices; insertion order keeps execution
    # deterministic (not that order matters — streams are pre-derived).
    groups: "Dict[tuple, List[int]]" = {}
    chains: Dict[int, ExperimentChain] = {}
    payloads: Dict[int, np.ndarray] = {}

    eligible = not scenario.measure_driven
    batchable_scenario = (
        eligible and cache is not None and scenario.cache_ambient
    )
    for i, point in enumerate(points):
        if not batchable_scenario:
            fallback.append(i)
            continue
        chains[i] = ExperimentChain(**scenario.chain_kwargs(point))
        payloads[i] = scenario.payload_for(point, data)
        key = (
            chains[i].front_end_key(),
            scenario.variant_for(point),
            payloads[i].shape[-1],
            id(payloads[i]),
        )
        groups.setdefault(key, []).append(i)

    # Group envelopes first (one cached synthesis per group), because the
    # fading pre-pass below needs every point's sample count.
    ambients: Dict[tuple, object] = {}
    group_iq: Dict[tuple, np.ndarray] = {}
    for key, indices in groups.items():
        first = indices[0]
        ambients[key] = make_ambient(scenario, points[first], cache, ambient_master)
        group_iq[key] = ambients[key].modulated_composite(
            chains[first].front_end(), payloads[first]
        )
    iq_size: Dict[int, int] = {
        i: group_iq[key].size for key, indices in groups.items() for i in indices
    }

    # Per-point stream derivation, in grid order, exactly as the chain
    # consumes its children: station child (spent on the cached path),
    # link child (whose own "fade" child resolves a declarative fading
    # spec), then the receiver's child from the main generator.
    batchable = sorted(chains)
    gens: Dict[int, np.random.Generator] = {}
    link_rngs: Dict[int, np.random.Generator] = {}
    fadings: Dict[int, object] = {}
    receivers: Dict[int, object] = {}
    budgets: Dict[int, object] = {}
    for i in batchable:
        gen = np.random.default_rng(seeds[i])
        child_generator(gen, "station")  # parity with the serial front end
        link_rngs[i] = child_generator(gen, "link")
        fading = resolve_fading(chains[i].fading, link_rngs[i])
        if fading is not None:
            fadings[i] = fading
        receivers[i] = chains[i].receive_stage().build_receiver(gen)
        budgets[i] = chains[i].link_budget()
        gens[i] = gen

    # Fading pre-pass, strictly in grid order: a stateful model shared
    # across points consumes its stream exactly as the serial loop
    # would. Runs of consecutive fading points with one sample count
    # stack into a single vectorized envelope synthesis.
    envelopes: Dict[int, np.ndarray] = {}
    run_indices: List[int] = []
    for i in batchable:
        if i not in fadings:
            continue
        if run_indices and iq_size[run_indices[-1]] != iq_size[i]:
            _flush_envelope_run(run_indices, fadings, iq_size, envelopes)
            run_indices = []
        run_indices.append(i)
    _flush_envelope_run(run_indices, fadings, iq_size, envelopes)

    for key, indices in groups.items():
        _run_group(
            scenario, data, points, group_iq[key], ambients[key],
            indices, chains, gens, link_rngs, receivers, budgets,
            envelopes, values, max_chunk_rows,
        )

    for i in fallback:
        values[i] = execute_point(
            scenario, points[i], seeds[i], data, cache, ambient_master
        )
    n_batched = len(points) - len(fallback)
    n_fallbacks = len(fallback) if eligible else 0
    return values, n_batched, n_fallbacks


def _flush_envelope_run(
    run_indices: List[int],
    fadings: Dict[int, object],
    iq_size: Dict[int, int],
    envelopes: Dict[int, np.ndarray],
) -> None:
    """Draw one grid-order run of fading envelopes as a stacked synthesis."""
    if not run_indices:
        return
    stack = stack_envelopes(
        [fadings[i] for i in run_indices], iq_size[run_indices[0]], MPX_RATE_HZ
    )
    for k, i in enumerate(run_indices):
        envelopes[i] = stack[k]


def _run_group(
    scenario: Scenario,
    data: Dict[str, object],
    points: Sequence[GridPoint],
    iq: np.ndarray,
    ambient: object,
    indices: List[int],
    chains: Dict[int, object],
    gens: Dict[int, np.random.Generator],
    link_rngs: Dict[int, np.random.Generator],
    receivers: Dict[int, object],
    budgets: Dict[int, object],
    envelopes: Dict[int, np.ndarray],
    values: List[object],
    max_chunk_rows: Optional[int] = None,
) -> None:
    """Vectorize one shared-front-end group of grid points."""
    # One group can still mix receiver configurations (e.g. a
    # receiver-kind axis downstream of a shared front end); each
    # homogeneous slice batches separately — mono receivers through the
    # mono decode, stereo-capable ones (phone stereo decode, the car
    # radio) through the multi-waveform-PLL stereo decode. Every
    # receiver batches one way or the other.
    partitions: "Dict[tuple, List[int]]" = {}
    for i in indices:
        partitions.setdefault(receiver_partition_signature(receivers[i]), []).append(i)

    limit = chunk_limit(iq.size)
    if max_chunk_rows is not None:
        limit = max(1, min(limit, int(max_chunk_rows)))
    for sig, members in partitions.items():
        rx_type, stereo = sig[0], sig[1]
        ref = receivers[members[0]]
        part_receivers = [receivers[i] for i in members]

        # Transmit + demodulate in memory-capped chunks. Only the real
        # MPX rows persist (half the complex envelope's footprint); the
        # decode below re-chunks its own FFT passes, so holding the
        # partition's MPX stack is what frees the stereo PLL width from
        # the chunk size.
        mpx = np.empty((len(members), iq.size))
        for start in range(0, len(members), limit):
            chunk = members[start : start + limit]
            rx_iq = transmit_batch(
                iq,
                [budgets[i] for i in chunk],
                [link_rngs[i] for i in chunk],
                envelopes=[envelopes.get(i) for i in chunk],
            )
            mpx[start : start + len(chunk)] = fm_demodulate(
                rx_iq, ref.mpx_rate, ref.deviation_hz
            )

        decode = decode_stereo_rows if stereo else decode_mono_rows
        raw_rows = decode(part_receivers, mpx, max_fft_rows=limit)
        received_rows = rx_type.apply_output_effects_batch(part_receivers, raw_rows)

        for i, received in zip(members, received_rows):
            # The group key pins the variant, so the group-level
            # ambient is every member point's ambient.
            chains[i].ambient_source = ambient
            run = PointRun(
                point=points[i],
                rng=gens[i],
                data=data,
                ambient=ambient,
                chain=chains[i],
                received=received,
            )
            values[i] = scenario.measure(run, **scenario.measure_params)

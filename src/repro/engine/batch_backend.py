"""Batched-vectorized sweep execution.

The paper's link-budget grids share one front end: a P×D sweep reuses the
same cached composite envelope at every point, and only the link (SNR,
noise) and the receiver's stochastic effects differ per point. This
backend exploits that structurally: points are grouped by front-end key
(program/mode/amplitude + payload + ambient variant), each group's
envelope is stacked into a ``(points, samples)`` array, and the link
noise scaling, FM discriminator, audio decode and low-pass run as single
NumPy ops over the stack (:func:`repro.channel.link.transmit_batch` +
:func:`repro.receiver.fm_receiver.receive_mono_batch` /
:func:`~repro.receiver.fm_receiver.receive_stereo_batch`). Stereo-capable
receivers vectorize too: the 19 kHz pilot PLL advances an
``(n_waveforms,)`` state vector per time step
(:meth:`repro.dsp.pll.PhaseLockedLoop.track_batch`), so the Fig. 10/13
stereo grids batch instead of falling back point by point.

Bit-identity with the serial backend holds because (a) every stochastic
draw still comes from the point's own pre-derived generators, in the
same order the chain consumes them (station, link, receiver), and (b)
the vectorized DSP is the *same code path* the 1-D calls take — the
engine's DSP layer processes 2-D inputs along the last axis with
row-independent operations.

Points the vectorized path cannot express — fading links, receivers
with de-emphasis, scenarios without a declared payload or with caching
disabled — fall back to the serial
:func:`~repro.engine.execution.execute_point`, so ``REPRO_SWEEP_BACKEND=
batched`` is always safe to set globally. The number of such fallbacks
is surfaced as :attr:`repro.engine.results.SweepResult.n_fallbacks`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.link import transmit_batch
from repro.engine.cache import AmbientCache
from repro.engine.execution import execute_point, make_ambient
from repro.engine.scenario import GridPoint, PointRun, Scenario
from repro.errors import ConfigurationError
from repro.receiver.fm_receiver import (
    receive_mono_batch,
    receive_stereo_batch,
    supports_mono_batch,
    supports_stereo_batch,
)
from repro.utils.rand import child_generator

BATCH_MEMORY_ENV_VAR = "REPRO_BATCH_MAX_MB"
"""Cap (in MB) on one stacked envelope chunk; grids larger than the cap
vectorize in slices, which changes nothing numerically."""

_DEFAULT_BATCH_MB = 64.0
"""Default chunk budget. Deliberately cache-sized rather than RAM-sized:
the vectorized ops are elementwise and memory-bound, so a working set
near the LLC beats one giant pass through DRAM (measured ~2.5x on the
Fig. 8 grid)."""


def _chunk_limit(n_samples: int, stereo: bool = False) -> int:
    """How many grid points fit one vectorized chunk under the memory cap."""
    raw = os.environ.get(BATCH_MEMORY_ENV_VAR, "").strip()
    try:
        budget_mb = float(raw) if raw else _DEFAULT_BATCH_MB
    except ValueError:
        raise ConfigurationError(
            f"{BATCH_MEMORY_ENV_VAR} must be a number, got {raw!r}"
        ) from None
    # Per point the pass holds roughly: complex rx row (16 B/sample), its
    # noise scratch (16), the demodulated MPX row (8) and audio tails.
    # The stereo decode additionally carries the pilot band, stereo band,
    # regenerated subcarrier and L-R difference at the MPX rate.
    bytes_per_point = n_samples * (96 if stereo else 48)
    return max(1, int(budget_mb * 1e6 / max(bytes_per_point, 1)))


def run_batched_backend(
    scenario: Scenario,
    data: Dict[str, object],
    points: Sequence[GridPoint],
    seeds: Sequence[int],
    cache: Optional[AmbientCache],
    ambient_master: int,
) -> Tuple[List[object], int]:
    """Execute the grid with per-front-end vectorization.

    Returns:
        ``(values, n_batched)`` — values in grid order plus how many
        points actually took the vectorized path (the rest fell back to
        serial execution).
    """
    from repro.experiments.common import ExperimentChain

    values: List[object] = [None] * len(points)
    fallback: List[int] = []
    # group key -> list of point indices; insertion order keeps execution
    # deterministic (not that order matters — streams are pre-derived).
    groups: "Dict[tuple, List[int]]" = {}
    chains: Dict[int, ExperimentChain] = {}
    payloads: Dict[int, np.ndarray] = {}

    batchable_scenario = (
        cache is not None
        and scenario.cache_ambient
        and scenario.payload is not None
        and scenario.uses_chain
    )
    for i, point in enumerate(points):
        if not batchable_scenario:
            fallback.append(i)
            continue
        chain = ExperimentChain(**scenario.chain_kwargs(point))
        payload = scenario.payload_for(point, data)
        if chain.fading is not None:
            fallback.append(i)
            continue
        chains[i] = chain
        payloads[i] = payload
        key = (
            chain.front_end_key(),
            scenario.variant_for(point),
            payload.shape[-1],
            id(payload),
        )
        groups.setdefault(key, []).append(i)

    for indices in groups.values():
        _run_group(
            scenario, data, points, seeds, cache, ambient_master,
            indices, chains, payloads, values, fallback,
        )

    for i in fallback:
        values[i] = execute_point(
            scenario, points[i], seeds[i], data, cache, ambient_master
        )
    n_batched = len(points) - len(fallback)
    return values, n_batched


def _run_group(
    scenario: Scenario,
    data: Dict[str, object],
    points: Sequence[GridPoint],
    seeds: Sequence[int],
    cache: AmbientCache,
    ambient_master: int,
    indices: List[int],
    chains: Dict[int, object],
    payloads: Dict[int, np.ndarray],
    values: List[object],
    fallback: List[int],
) -> None:
    """Vectorize one shared-front-end group of grid points."""
    first = indices[0]
    ambient = make_ambient(scenario, points[first], cache, ambient_master)
    iq = ambient.modulated_composite(chains[first].front_end(), payloads[first])

    # Derive each point's generators in exactly the order the chain
    # consumes them: station child (spent on the cached path), link
    # child, then the receiver's child from the main generator.
    gens, link_rngs, receivers, budgets = [], [], [], []
    for i in indices:
        gen = np.random.default_rng(seeds[i])
        child_generator(gen, "station")  # parity with the serial front end
        link_rngs.append(child_generator(gen, "link"))
        receivers.append(chains[i].receive_stage().build_receiver(gen))
        budgets.append(chains[i].link_budget())
        gens.append(gen)

    # One group can still mix receiver configurations (e.g. a
    # receiver-kind axis downstream of a shared front end); each
    # homogeneous slice batches separately — mono receivers through
    # receive_mono_batch, stereo-capable ones (phone stereo decode, the
    # car radio) through receive_stereo_batch's multi-waveform pilot PLL.
    # Only receivers neither path expresses (de-emphasis) fall back.
    partitions: "Dict[tuple, List[int]]" = {}
    for pos, rx in enumerate(receivers):
        if supports_mono_batch(rx):
            stereo = False
        elif supports_stereo_batch(rx):
            stereo = True
        else:
            fallback.append(indices[pos])
            continue
        sig = (
            type(rx), stereo, rx.mpx_rate, rx.audio_rate, rx.deviation_hz,
            rx.audio_cutoff_hz,
        )
        partitions.setdefault(sig, []).append(pos)

    for sig, positions in partitions.items():
        stereo = sig[1]
        receive_batch = receive_stereo_batch if stereo else receive_mono_batch
        limit = _chunk_limit(iq.size, stereo=stereo)
        for start in range(0, len(positions), limit):
            chunk = positions[start : start + limit]
            rx_iq = transmit_batch(
                iq, [budgets[p] for p in chunk], [link_rngs[p] for p in chunk]
            )
            received_rows = receive_batch([receivers[p] for p in chunk], rx_iq)
            for pos, received in zip(chunk, received_rows):
                i = indices[pos]
                # The group key pins the variant, so the group-level
                # ambient is every member point's ambient.
                chains[i].ambient_source = ambient
                run = PointRun(
                    point=points[i],
                    rng=gens[pos],
                    data=data,
                    ambient=ambient,
                    chain=chains[i],
                    received=received,
                )
                values[i] = scenario.measure(run, **scenario.measure_params)

"""Durable job journal: append-only, crash-safe JSONL per submitted job.

The distributed service kept job state only in memory, so a restart lost
every submitted job. :class:`JobJournal` makes job state *disseminated
and resumable*: every state transition — submission, shard dispatch,
shard completion (with the covered point ranges **and values**),
retries, degradation, terminal state — is one JSON line appended to
``<journal_dir>/<job_id>.jsonl`` with an ``os.fsync`` before the call
returns, so a crash at any instant loses at most the line being written.

Write discipline:

- **append-only** — records are never rewritten; replay folds them in
  order, so the file is also an audit log of the job.
- **atomic lines** — each record is serialized to one ``bytes`` payload
  ending in ``\\n`` and handed to the OS in a single ``write`` on a file
  opened with ``O_APPEND``, so concurrent writers cannot interleave
  within a line and a crash tears at most the final line. Replay
  tolerates exactly that signature: an undecodable *final* line is
  ignored; an undecodable line anywhere else is real corruption and
  raises :class:`~repro.errors.JournalError`.
- **versioned records** — every line carries ``"v"``; replay refuses
  versions from the future instead of misreading them.

Values ride in the journal as base64-encoded pickles (the measure's
return type is arbitrary — floats, tuples, numpy arrays), which is what
lets recovery skip recomputation entirely: a journaled-complete shard's
points are *reloaded*, not re-executed, and only uncovered ranges are
re-launched against the still-warm :class:`~repro.engine.store.CacheStore`.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, JournalError

JOURNAL_VERSION = 1
"""Record schema version stamped on (and required of) every line."""

TERMINAL_STATES = ("done", "failed", "cancelled")
"""Job states after which a journal replays as finished."""

_ID_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def _encode(obj: object) -> str:
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _decode(blob: str) -> object:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


def indices_to_ranges(indices: Sequence[int]) -> List[Tuple[int, int]]:
    """Compress sorted point indices into half-open ``(start, stop)`` runs.

    Shard completions usually cover contiguous ranges, but speculation
    can punch holes (another copy landed part of the range first), so
    the journal stores runs rather than assuming one.
    """
    runs: List[Tuple[int, int]] = []
    for index in indices:
        if runs and runs[-1][1] == index:
            runs[-1] = (runs[-1][0], index + 1)
        else:
            runs.append((index, index + 1))
    return runs


def ranges_to_indices(ranges: Iterable[Sequence[int]]) -> List[int]:
    """The inverse of :func:`indices_to_ranges`."""
    out: List[int] = []
    for start, stop in ranges:
        out.extend(range(start, stop))
    return out


@dataclass
class JournaledJob:
    """One job's state as folded from its journal file.

    Attributes:
        job_id: the journal's job id (file stem).
        scenario_name: name of the submitted scenario.
        scenario_blob: the pickled full scenario (prepare included),
            ready to reload.
        rng_blob: the pickled sweep seed / Generator the job was
            submitted with — replaying it reproduces the exact streams,
            which is what makes resumed work bit-identical.
        n_points: grid size.
        values: ``{global point index: value}`` for every journaled-
            complete point; recovery seeds the relaunch with these so
            completed shards are never recomputed.
        retries: journaled re-queues.
        state: ``"submitted"`` or one of :data:`TERMINAL_STATES`.
        error: the failure description when ``state == "failed"``.
        degraded: whether any range was salvaged in-process.
    """

    job_id: str
    scenario_name: str = ""
    scenario_blob: Optional[bytes] = None
    rng_blob: Optional[bytes] = None
    n_points: int = 0
    values: Dict[int, object] = field(default_factory=dict)
    retries: int = 0
    state: str = "submitted"
    error: Optional[str] = None
    degraded: bool = False

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def scenario(self):
        """Unpickle the journaled scenario (the full form, prepare included,
        so recovery can re-derive the shared data and per-point seeds)."""
        if self.scenario_blob is None:
            raise JournalError(
                f"job {self.job_id!r} has no journaled submit record — "
                "cannot reconstruct its scenario"
            )
        return pickle.loads(self.scenario_blob)

    def rng(self):
        """Unpickle the journaled sweep seed / Generator."""
        if self.rng_blob is None:
            raise JournalError(
                f"job {self.job_id!r} has no journaled submit record — "
                "cannot reconstruct its rng"
            )
        return pickle.loads(self.rng_blob)


class JobJournal:
    """A directory of per-job append-only JSONL journals.

    Args:
        directory: journal directory; created on first use. Point it at
            a persistent path (not a scratch dir) — surviving restarts
            is the whole point.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._tail_repaired: set = set()

    def path_for(self, job_id: str) -> Path:
        """The journal file that does (or would) hold ``job_id``."""
        if not _ID_SAFE.sub("", job_id):
            raise ConfigurationError(f"job id {job_id!r} has no journal-safe characters")
        return self.directory / f"{_ID_SAFE.sub('_', job_id)}.jsonl"

    def _repair_torn_tail(self, job_id: str) -> None:
        """Truncate a crash-torn final line before the first new append.

        Every record is one ``write`` of ``line + b"\\n"``, so a torn
        write is a *prefix* of a line: any bytes after the file's last
        newline are exactly the garbage a crash left. Appending after
        them would glue the next record onto the fragment — interior
        corruption replay rightly refuses — so the fragment is dropped
        first. Checked once per job per journal instance.
        """
        path = self.path_for(job_id)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return
        keep = raw.rfind(b"\n") + 1  # 0 when the file never saw a newline
        if keep != len(raw):
            with open(path, "r+b") as handle:
                handle.truncate(keep)

    def append(self, job_id: str, record: dict) -> None:
        """Durably append one record: single write, flushed and fsync'd."""
        if job_id not in self._tail_repaired:
            self._repair_torn_tail(job_id)
            self._tail_repaired.add(job_id)
        payload = json.dumps(
            dict(record, v=JOURNAL_VERSION), separators=(",", ":"), sort_keys=True
        ).encode("utf-8") + b"\n"
        fd = os.open(
            self.path_for(job_id), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- typed record helpers -------------------------------------------------

    def job_submitted(
        self,
        job_id: str,
        scenario_blob: bytes,
        rng: object,
        scenario_name: str,
        n_points: int,
    ) -> None:
        """The job exists: scenario + rng pickled in, so a restarted
        service can rebuild and resume it from this file alone."""
        self.append(
            job_id,
            {
                "kind": "submit",
                "scenario_name": scenario_name,
                "n_points": int(n_points),
                "scenario": base64.b64encode(scenario_blob).decode("ascii"),
                "rng": _encode(rng),
            },
        )

    def shard_dispatched(
        self, job_id: str, start: int, stop: int, attempt: int, worker: int
    ) -> None:
        self.append(
            job_id,
            {
                "kind": "dispatch",
                "range": [int(start), int(stop)],
                "attempt": int(attempt),
                "worker": int(worker),
            },
        )

    def shard_completed(
        self,
        job_id: str,
        indices: Sequence[int],
        values: Sequence[object],
        elapsed_s: float,
        degraded: bool = False,
    ) -> None:
        """A shard's fresh points are durable: ranges + pickled values."""
        self.append(
            job_id,
            {
                "kind": "shard-done",
                "ranges": indices_to_ranges(indices),
                "values": _encode(list(values)),
                "elapsed_s": float(elapsed_s),
                "degraded": bool(degraded),
            },
        )

    def shard_retried(
        self, job_id: str, start: int, stop: int, attempt: int, reason: str
    ) -> None:
        self.append(
            job_id,
            {
                "kind": "retry",
                "range": [int(start), int(stop)],
                "attempt": int(attempt),
                # First line only: tracebacks belong to logs, not journals.
                "reason": str(reason).splitlines()[0][:200],
            },
        )

    def job_done(self, job_id: str) -> None:
        self.append(job_id, {"kind": "done"})

    def job_failed(self, job_id: str, error: str) -> None:
        self.append(job_id, {"kind": "failed", "error": str(error)[:2000]})

    def job_cancelled(self, job_id: str) -> None:
        self.append(job_id, {"kind": "cancelled"})

    # -- replay ---------------------------------------------------------------

    def job_ids(self) -> List[str]:
        """Every job with a journal file, sorted (submission-order ids sort)."""
        return sorted(path.stem for path in self.directory.glob("*.jsonl"))

    def replay(self) -> Dict[str, JournaledJob]:
        """Fold every journal file into per-job state."""
        return {job_id: self.replay_job(job_id) for job_id in self.job_ids()}

    def replay_job(self, job_id: str) -> JournaledJob:
        """Fold one job's records, tolerating only a torn final line."""
        path = self.path_for(job_id)
        job = JournaledJob(job_id=job_id)
        try:
            raw_lines = path.read_bytes().split(b"\n")
        except FileNotFoundError:
            raise JournalError(f"no journal for job {job_id!r} in {self.directory}")
        # A trailing newline yields one empty tail entry; drop empties at
        # the end but keep interior blank lines visible as corruption.
        while raw_lines and not raw_lines[-1].strip():
            raw_lines.pop()
        for lineno, raw in enumerate(raw_lines):
            try:
                record = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                if lineno == len(raw_lines) - 1:
                    break  # torn final line: the expected crash signature
                raise JournalError(
                    f"journal {path} line {lineno + 1} is corrupt before the "
                    "final line — this is damage, not a torn append"
                ) from None
            self._fold(job, record, path, lineno)
        return job

    @staticmethod
    def _fold(job: JournaledJob, record: dict, path: Path, lineno: int) -> None:
        version = record.get("v")
        if version != JOURNAL_VERSION:
            raise JournalError(
                f"journal {path} line {lineno + 1} has record version "
                f"{version!r}; this reader understands {JOURNAL_VERSION}"
            )
        kind = record.get("kind")
        if kind == "submit":
            job.scenario_name = record["scenario_name"]
            job.n_points = int(record["n_points"])
            job.scenario_blob = base64.b64decode(record["scenario"])
            job.rng_blob = base64.b64decode(record["rng"])
        elif kind == "shard-done":
            indices = ranges_to_indices(record["ranges"])
            values = _decode(record["values"])
            if len(indices) != len(values):
                raise JournalError(
                    f"journal {path} line {lineno + 1}: {len(indices)} indices "
                    f"but {len(values)} values"
                )
            # Later records win — harmless, since determinism makes any
            # duplicate coverage byte-identical.
            job.values.update(zip(indices, values))
            if record.get("degraded"):
                job.degraded = True
        elif kind == "retry":
            job.retries += 1
        elif kind == "done":
            job.state = "done"
        elif kind == "failed":
            job.state = "failed"
            job.error = record.get("error")
        elif kind == "cancelled":
            job.state = "cancelled"
        elif kind == "dispatch":
            pass  # bookkeeping for audit; dispatch alone proves nothing
        else:
            raise JournalError(
                f"journal {path} line {lineno + 1} has unknown record kind "
                f"{kind!r} at version {JOURNAL_VERSION}"
            )

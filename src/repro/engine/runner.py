"""Sweep execution: serial, thread, process or batched — always seed-stable.

:class:`SweepRunner` turns a declarative
:class:`~repro.engine.scenario.Scenario` into results:

1. ``prepare`` runs once with the sweep generator (drawing payload bits,
   reference speech, ... exactly like the preamble of the legacy loops).
2. One master integer per grid point is drawn from the sweep generator
   *serially in grid order* — the same draws the legacy loops consumed
   via :func:`~repro.utils.rand.child_generator` — and mixed with the
   scenario's per-point keys through the pure
   :func:`~repro.utils.rand.derive_seed`. Every point's stream is
   therefore fixed before execution starts, so all backends are
   bit-identical to the serial loop and to the hand-rolled loops they
   replaced.
3. The selected backend executes the points:

   - ``serial`` — a plain loop (the reference semantics).
   - ``thread`` — a thread pool; right when the heavy lifting is
     NumPy/SciPy FFT work that releases the GIL.
   - ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`
     over the picklable point specs, for GIL-bound measures; requires
     the scenario's declarative (spec) form. The parent warms a shared
     disk store so workers skip ambient synthesis.
   - ``batched`` — groups points sharing one front end and runs the
     link + receive math (fading, mono and stereo decode alike — via
     per-row envelope stacks and the multi-waveform pilot PLL — plus
     de-emphasis and receiver output effects) vectorized over a
     ``(points, samples)`` stack. Every runner-transmitted point
     batches; ``SweepResult.n_fallbacks`` counts batch-eligible points
     that had to run serially (now structurally zero) while
     measure-driven scenarios execute per point by construction.
   - ``auto`` — the planner (:mod:`repro.engine.planner`) partitions the
     grid exactly as the batched executor would, prices each partition
     under every executor with a calibrated cost model, and dispatches
     each to its cheapest backend — short-row partitions ride the
     vectorized stack while long-row ones run serially — recording every
     decision on :attr:`~repro.engine.results.SweepResult.plan`.

Select with the ``backend`` argument or the ``REPRO_SWEEP_BACKEND``
environment variable (strictly parsed — a typo raises
:class:`~repro.errors.ConfigurationError` naming the variable and its
choices); worker counts come from ``max_workers`` /
``REPRO_SWEEP_WORKERS``. With neither set, single-worker runners default
to ``auto``.

Ambient caching: when the scenario opts in (the default), every point
receives a :class:`~repro.engine.cache.CachedAmbient` view keyed by a
run-level master seed, so a whole grid synthesizes each ambient program
(and its FM-modulated composite) exactly once — the paper's own
methodology of replaying one recorded station clip at every grid point.
With ``REPRO_CACHE_DIR`` set, syntheses additionally spill to disk and
survive the process.
"""

from __future__ import annotations

import operator
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.engine.cache import AmbientCache, default_cache, stats_delta
from repro.engine.execution import execute_point
from repro.engine.results import SweepResult
from repro.engine.scenario import Scenario
from repro.errors import ConfigurationError
from repro.utils.env import env_choice, env_int
from repro.utils.rand import RngLike, as_generator, derive_seed

WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"
"""Environment override for the default worker count (1 == serial)."""

BACKEND_ENV_VAR = "REPRO_SWEEP_BACKEND"
"""Environment override for the execution backend."""

BACKENDS = ("serial", "thread", "process", "batched")
"""The explicit executors."""

AUTO_BACKEND = "auto"
"""Cost-model planned execution (see :mod:`repro.engine.planner`)."""

BACKEND_CHOICES = BACKENDS + (AUTO_BACKEND,)
"""Everything ``backend=`` / ``REPRO_SWEEP_BACKEND`` accepts."""


def default_max_workers() -> int:
    """Worker count used when a runner is built without ``max_workers``.

    Strictly parsed: a malformed or non-positive ``REPRO_SWEEP_WORKERS``
    raises :class:`~repro.errors.ConfigurationError` naming the
    offending string instead of being silently clamped.
    """
    return env_int(WORKERS_ENV_VAR, 1, minimum=1)


def default_backend() -> Optional[str]:
    """Backend named by ``REPRO_SWEEP_BACKEND`` (``None`` when unset).

    Strictly parsed through :func:`~repro.utils.env.env_choice`: a typo
    raises :class:`~repro.errors.ConfigurationError` naming the variable
    and the accepted spellings instead of silently running serial.
    """
    return env_choice(BACKEND_ENV_VAR, None, BACKEND_CHOICES)


def derive_streams(scenario: Scenario, gen) -> Tuple[Dict[str, object], List, List[int], int]:
    """Run ``prepare`` and pre-derive every point's stream, in grid order.

    The one place that performs the sweep generator's draws, so every
    consumer agrees on them bit for bit: ``prepare`` consumes first
    (exactly like the preamble of the legacy loops), then one master
    integer per grid point is drawn serially in grid order and mixed with
    the scenario's per-point keys through the pure
    :func:`~repro.utils.rand.derive_seed`, and finally — drawn last, so
    enabling the cache never shifts the per-point streams — the run-level
    ambient master (``0`` when ambient caching is off). Shared by
    :meth:`SweepRunner.run` and the distributed launcher
    (:mod:`repro.engine.launcher`), which is what makes a shard executed
    on any worker, attempt or machine bit-identical to the same points of
    a whole-grid run.

    Returns:
        ``(data, points, seeds, ambient_master)`` for the whole grid.
    """
    data: Dict[str, object] = {}
    if scenario.prepare is not None:
        data = scenario.prepare(gen)
    points = scenario.sweep.points()
    masters = [int(gen.integers(0, 2 ** 31)) for _ in points]
    seeds = [
        derive_seed(masters[i], *scenario.point_rng_keys(point))
        for i, point in enumerate(points)
    ]
    ambient_master = 0
    if scenario.cache_ambient:
        ambient_master = int(gen.integers(0, 2 ** 63))
    return data, points, seeds, ambient_master


class SweepRunner:
    """Executes one :class:`Scenario` over its grid.

    Args:
        scenario: the declarative sweep.
        rng: sweep-level seed or Generator (the ``rng`` argument of the
            figure ``run()`` functions, passed straight through).
        cache: ambient cache to share; defaults to the process-wide one,
            so repeated runs with the same seed hit instead of refill.
        max_workers: grid-point concurrency for the thread/process
            backends; ``None`` reads ``REPRO_SWEEP_WORKERS``, and when
            that is unset too, pool backends size themselves to the
            machine. Results are identical at any worker count.
        backend: one of :data:`BACKEND_CHOICES`; ``None`` reads
            ``REPRO_SWEEP_BACKEND`` and finally falls back to ``thread``
            when ``max_workers > 1`` (honoring an explicit
            ``REPRO_SWEEP_WORKERS``) else ``auto`` — the planner picks
            per partition, and its decisions land on ``result.plan``.
    """

    def __init__(
        self,
        scenario: Scenario,
        rng: RngLike = None,
        cache: Optional[AmbientCache] = None,
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.scenario = scenario
        self.rng = rng
        self.cache = cache
        self._explicit_workers = max_workers is not None
        self.max_workers = default_max_workers() if max_workers is None else max(1, int(max_workers))
        if backend is not None and backend not in BACKEND_CHOICES:
            raise ConfigurationError(
                f"backend must be one of {BACKEND_CHOICES}, got {backend!r}"
            )
        if backend is None:
            backend = default_backend()
        if backend is None:
            backend = "thread" if self.max_workers > 1 else AUTO_BACKEND
        self.backend = backend

    def _pool_workers(self) -> int:
        """Worker count for the thread/process pools.

        An explicit ``max_workers`` or ``REPRO_SWEEP_WORKERS`` wins; a
        pool backend chosen without either sizes itself to the machine
        (results never depend on the count).
        """
        if self.max_workers > 1 or self._explicit_workers:
            return self.max_workers
        if os.environ.get(WORKERS_ENV_VAR, "").strip():
            return self.max_workers
        return min(8, os.cpu_count() or 1)

    def run(self, point_slice: Optional[Tuple[int, int]] = None) -> SweepResult:
        """Execute the grid (or one contiguous shard of it).

        Args:
            point_slice: optional ``(start, stop)`` half-open range over
                ``spec.points()`` row-major order. Seeds (and the ambient
                master) are always derived for the *whole* grid first, so
                a shard's per-point streams are bit-identical to the same
                points of a whole-grid run — shards executed anywhere can
                be stitched back with :meth:`SweepResult.merge`.
                ``start == stop`` is a valid *empty* shard (the natural
                remainder of the launcher's work re-slicing): it executes
                nothing and merges as a no-op.
        """
        scenario = self.scenario
        gen = as_generator(self.rng)

        # The whole grid's draws happen here, in grid order — the exact
        # sequence the legacy nested loops consumed through
        # child_generator — before any slicing, so a shard's streams are
        # bit-identical to the same points of a whole-grid run.
        data, points, seeds, ambient_master = derive_streams(scenario, gen)
        if point_slice is not None:
            try:
                start, stop = point_slice
                # operator.index, like builtin slicing: numpy integers
                # qualify, floats don't.
                start, stop = operator.index(start), operator.index(stop)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"point_slice must be a (start, stop) pair of ints, "
                    f"got {point_slice!r}"
                ) from None
            if not 0 <= start <= stop <= len(points):
                raise ConfigurationError(
                    f"point_slice {point_slice!r} outside the grid's "
                    f"{len(points)} points (need 0 <= start <= stop <= n)"
                )
            points = points[start:stop]
            seeds = seeds[start:stop]

        cache: Optional[AmbientCache] = None
        if scenario.cache_ambient:
            cache = self.cache if self.cache is not None else default_cache()
        stats_before = cache.stats if cache is not None else None

        backend_label = self.backend
        n_workers = 1
        n_fallbacks: Optional[int] = None
        plan = None
        start = time.perf_counter()
        if self.backend == "serial" or len(points) <= 1:
            # Pools and stacking buy nothing on a <=1-point grid; the
            # label records what actually executed.
            backend_label = "serial"
            values: List[object] = [
                execute_point(scenario, point, seeds[i], data, cache, ambient_master)
                for i, point in enumerate(points)
            ]
        elif self.backend == "thread":
            n_workers = self._pool_workers()
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                values = list(
                    pool.map(
                        lambda args: execute_point(
                            scenario, args[1], seeds[args[0]], data, cache, ambient_master
                        ),
                        enumerate(points),
                    )
                )
        elif self.backend == "process":
            from repro.engine.process_backend import run_process_backend

            n_workers = self._pool_workers()
            values = run_process_backend(
                scenario, data, points, seeds, cache, ambient_master, n_workers
            )
        elif self.backend == AUTO_BACKEND:
            from repro.engine.planner import plan_and_run

            values, n_fallbacks, n_workers, plan, backend_label = plan_and_run(
                scenario,
                data,
                points,
                seeds,
                cache,
                ambient_master,
                self._pool_workers(),
            )
        else:  # batched
            from repro.engine.batch_backend import run_batched_backend

            values, n_batched, n_fallbacks = run_batched_backend(
                scenario, data, points, seeds, cache, ambient_master
            )
            backend_label = f"batched[{n_batched}/{len(points)}]"
        elapsed = time.perf_counter() - start

        cache_stats = None
        if cache is not None and stats_before is not None:
            cache_stats = stats_delta(cache.stats, stats_before)
        return SweepResult(
            spec=scenario.sweep,
            points=points,
            values=values,
            elapsed_s=elapsed,
            n_workers=n_workers if self.backend != "serial" else 1,
            cache_stats=cache_stats,
            data=data,
            backend=backend_label,
            scenario_name=scenario.name,
            n_fallbacks=n_fallbacks,
            plan=plan,
        )


def run_scenario(
    scenario: Scenario,
    rng: RngLike = None,
    cache: Optional[AmbientCache] = None,
    max_workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        scenario, rng=rng, cache=cache, max_workers=max_workers, backend=backend
    ).run()

"""Sweep execution: serial or thread-parallel, always seed-stable.

:class:`SweepRunner` turns a declarative
:class:`~repro.engine.scenario.Scenario` into results:

1. ``prepare`` runs once with the sweep generator (drawing payload bits,
   reference speech, ... exactly like the preamble of the legacy loops).
2. One master integer per grid point is drawn from the sweep generator
   *serially in grid order* — the same draws the legacy loops consumed
   via :func:`~repro.utils.rand.child_generator` — and mixed with the
   scenario's per-point keys through the pure
   :func:`~repro.utils.rand.derive_seed`. Every point's stream is
   therefore fixed before execution starts, so serial and parallel runs
   are bit-identical, and identical to the hand-rolled loops they
   replaced.
3. Points execute through a thread pool (``max_workers > 1``) or a plain
   loop. Threads, not processes: the heavy lifting is NumPy/SciPy FFT
   work that releases the GIL, and scenarios close over unpicklable
   callables.

Ambient caching: when the scenario opts in (the default), every point
receives a :class:`~repro.engine.cache.CachedAmbient` view keyed by a
run-level master seed, so a whole grid synthesizes each ambient program
(and its FM-modulated composite) exactly once — the paper's own
methodology of replaying one recorded station clip at every grid point.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

import numpy as np

from repro.engine.cache import AmbientCache, CachedAmbient, default_cache
from repro.engine.results import SweepResult
from repro.engine.scenario import GridPoint, PointRun, Scenario
from repro.errors import ConfigurationError
from repro.utils.rand import RngLike, as_generator, derive_seed

WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"
"""Environment override for the default worker count (1 == serial)."""


def default_max_workers() -> int:
    """Worker count used when a runner is built without ``max_workers``."""
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    return 1


class SweepRunner:
    """Executes one :class:`Scenario` over its grid.

    Args:
        scenario: the declarative sweep.
        rng: sweep-level seed or Generator (the ``rng`` argument of the
            figure ``run()`` functions, passed straight through).
        cache: ambient cache to share; defaults to the process-wide one,
            so repeated runs with the same seed hit instead of refill.
        max_workers: grid-point concurrency; ``None`` reads
            ``REPRO_SWEEP_WORKERS`` (default 1, the deterministic serial
            fallback — results are identical at any worker count).
    """

    def __init__(
        self,
        scenario: Scenario,
        rng: RngLike = None,
        cache: Optional[AmbientCache] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.scenario = scenario
        self.rng = rng
        self.cache = cache
        self.max_workers = default_max_workers() if max_workers is None else max(1, int(max_workers))

    def run(self) -> SweepResult:
        scenario = self.scenario
        gen = as_generator(self.rng)

        data: Dict[str, object] = {}
        if scenario.prepare is not None:
            data = scenario.prepare(gen)

        points = scenario.sweep.points()
        # One base draw per point, serially in grid order — the exact
        # sequence the legacy nested loops consumed through
        # child_generator, so refactored figures reproduce their old
        # per-point noise streams bit for bit.
        masters = [int(gen.integers(0, 2 ** 31)) for _ in points]

        cache: Optional[AmbientCache] = None
        ambient_master = 0
        if scenario.cache_ambient:
            cache = self.cache if self.cache is not None else default_cache()
            # Drawn after the per-point masters so enabling the cache
            # never shifts this sweep's per-point streams (a later sweep
            # sharing the generator does see one extra draw).
            ambient_master = int(gen.integers(0, 2 ** 63))
        stats_before = cache.stats if cache is not None else None

        def run_point(index: int, point: GridPoint) -> object:
            point_rng = np.random.default_rng(
                derive_seed(masters[index], *scenario.point_rng_keys(point))
            )
            ambient = None
            if cache is not None:
                ambient = CachedAmbient(cache, ambient_master)
                if scenario.ambient_variant is not None:
                    ambient = ambient.with_variant(scenario.ambient_variant(point))
            chain = None
            if scenario.uses_chain:
                # Imported here: repro.experiments.common is a consumer of
                # the engine package in every other respect.
                from repro.experiments.common import ExperimentChain

                chain = ExperimentChain(**scenario.chain_kwargs(point))
                chain.ambient_source = ambient
            run = PointRun(point=point, rng=point_rng, data=data, ambient=ambient, chain=chain)
            return scenario.measure(run)

        start = time.perf_counter()
        if self.max_workers == 1 or len(points) <= 1:
            values: List[object] = [run_point(i, p) for i, p in enumerate(points)]
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                values = list(pool.map(run_point, range(len(points)), points))
        elapsed = time.perf_counter() - start

        cache_stats = None
        if cache is not None and stats_before is not None:
            after = cache.stats
            cache_stats = {
                "hits": after["hits"] - stats_before["hits"],
                "misses": after["misses"] - stats_before["misses"],
                "items": after["items"],
            }
        return SweepResult(
            spec=scenario.sweep,
            points=points,
            values=values,
            elapsed_s=elapsed,
            n_workers=self.max_workers,
            cache_stats=cache_stats,
            data=data,
        )


def run_scenario(
    scenario: Scenario,
    rng: RngLike = None,
    cache: Optional[AmbientCache] = None,
    max_workers: Optional[int] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(scenario, rng=rng, cache=cache, max_workers=max_workers).run()

"""Distributed sweep launcher: shard fan-out with retries, stragglers, merge.

The sharded-sweep kernel made a grid slice a first-class unit of work:
seeds are pre-derived for the *whole* grid (:func:`~repro.engine.runner.
derive_streams`), so any contiguous range of points executes
bit-identically anywhere, and :meth:`~repro.engine.results.SweepResult.
merge` stitches ranges back. This module adds the missing fan-out — a
job-queue orchestrator that:

- slices a compiled :class:`~repro.engine.scenario.Scenario` grid into
  shards and dispatches them to a pool of worker processes, one shard
  per worker at a time;
- detects dead workers (a crash, an OOM kill, the chaos knob below) and
  stragglers (a shard past its per-shard deadline) and *re-slices* the
  affected range into halves before re-queueing it, so retried work
  spreads across the pool;
- discards duplicated completions — determinism makes speculative
  retries free of coordination: two copies of a point compute the same
  bytes, so whichever arrives first wins and the loser is dropped
  unread;
- merges accepted shard results into one whole-grid
  :class:`~repro.engine.results.SweepResult` (merge-aware cache
  counters; ``elapsed_s`` sums per-shard compute time while
  :attr:`LaunchReport.wall_s` reports wall-clock).

Cross-machine runs fall out of the shared on-disk
:class:`~repro.engine.store.CacheStore`: point ``REPRO_CACHE_DIR`` (or
``cache_dir=``) at a shared filesystem, and the parent pre-warms it with
every front-end composite the grid needs (one synthesis per distinct
front end, via :func:`~repro.engine.process_backend.warm_store`);
workers anywhere then load bytes instead of synthesizing, and a warm
re-run performs zero syntheses.

Chaos knob: ``REPRO_LAUNCHER_FAULT=kill-shard:<n>`` makes the worker
that picks up shard ``n`` exit hard on the shard's first attempt. The CI
``distributed`` leg uses it to prove a killed worker cannot change a
single bit of the merged result.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import shutil
import tempfile
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import AmbientCache
from repro.engine.execution import execute_point
from repro.engine.results import SweepResult
from repro.engine.runner import derive_streams
from repro.engine.scenario import Scenario
from repro.engine.store import CACHE_DIR_ENV_VAR, CacheStore
from repro.errors import ConfigurationError, LauncherError
from repro.utils.env import env_int
from repro.utils.rand import RngLike, as_generator

FAULT_ENV_VAR = "REPRO_LAUNCHER_FAULT"
"""Chaos-injection knob: ``kill-shard:<n>`` hard-kills the worker that
picks up initial shard ``n``, first attempt only."""

SHARD_POINTS_ENV_VAR = "REPRO_LAUNCHER_SHARD_POINTS"
"""Environment override for the points-per-shard slice size."""

_FAULT_EXIT_CODE = 87
"""Exit code of a chaos-killed worker (distinguishable in reports)."""

_POLL_S = 0.02
"""Parent orchestration tick: result drain timeout per loop iteration."""

_SHUTDOWN_JOIN_S = 5.0
"""Grace period for workers (possibly mid-duplicate-shard) to exit."""


def fault_spec() -> Optional[Tuple[str, int]]:
    """The parsed ``REPRO_LAUNCHER_FAULT`` directive (``None`` when unset).

    Strict like every ``REPRO_*`` knob: anything but the documented
    ``kill-shard:<shard>`` form raises
    :class:`~repro.errors.ConfigurationError` naming the variable.
    """
    raw = os.environ.get(FAULT_ENV_VAR, "").strip()
    if not raw:
        return None
    kind, sep, arg = raw.partition(":")
    if kind == "kill-shard" and sep and arg.isdigit():
        return (kind, int(arg))
    raise ConfigurationError(
        f"{FAULT_ENV_VAR} must look like 'kill-shard:<shard index>', got {raw!r}"
    )


@dataclass(frozen=True)
class Shard:
    """One contiguous half-open range of grid points queued for a worker.

    Attributes:
        shard_id: stable identity for dispatch bookkeeping; initial
            shards number ``0..n-1`` in grid order (what the chaos knob
            targets), re-sliced retries get fresh ids.
        start: first global point index (inclusive).
        stop: last global point index (exclusive).
        attempt: how many times this range has been (re)queued; retried
            ranges inherit ``attempt + 1``.
    """

    shard_id: int
    start: int
    stop: int
    attempt: int = 0

    @property
    def n_points(self) -> int:
        return self.stop - self.start


@dataclass
class LaunchReport:
    """What :func:`launch_sweep` returns: the merged result plus telemetry.

    Attributes:
        result: the whole-grid merged :class:`SweepResult`, bit-identical
            to a ``backend="serial"`` run at the same seed. Its
            ``elapsed_s`` sums per-shard compute time (including any
            duplicated speculative work); ``wall_s`` here is the
            launcher's actual wall-clock.
        wall_s: wall-clock duration of the whole launch (derive + warm +
            fan-out + merge).
        n_workers: size of the worker pool.
        n_points: grid size.
        n_shards: initial shard count (before any re-slicing).
        retries: total re-queues (worker deaths + measure errors +
            straggler speculation).
        failures: worker deaths observed while holding a shard.
        stragglers: shards that blew their deadline and were speculated.
        duplicates: completed shard copies discarded because every point
            they carried was already covered.
        warm_syntheses: syntheses the *parent's* store warm-up performed
            before fan-out (the workers' own counters live on
            ``result.cache_stats``). Zero on a warm shared store — the
            whole-run "zero syntheses" claim is
            ``warm_syntheses + result.cache_stats["syntheses"] == 0``.
        store_dir: the shared spill directory workers attached to, or
            ``None`` when it was a run-scoped scratch (already removed)
            or ambient caching was off.
    """

    result: SweepResult
    wall_s: float
    n_workers: int
    n_points: int
    n_shards: int
    retries: int = 0
    failures: int = 0
    stragglers: int = 0
    duplicates: int = 0
    warm_syntheses: int = 0
    store_dir: Optional[str] = None


def default_shard_points(n_points: int, n_workers: int) -> int:
    """Points per shard when the caller expresses no preference.

    Strictly parsed ``REPRO_LAUNCHER_SHARD_POINTS`` wins; otherwise aim
    for ~4 shards per worker, so stragglers and retries cost a fraction
    of the grid rather than half of it, without drowning small grids in
    per-shard dispatch overhead.
    """
    configured = env_int(SHARD_POINTS_ENV_VAR, 0, minimum=1)
    if configured:
        return configured
    return max(1, -(-n_points // (4 * n_workers)))


def _initial_shards(n_points: int, shard_points: int) -> List[Shard]:
    return [
        Shard(shard_id=i, start=start, stop=min(start + shard_points, n_points))
        for i, start in enumerate(range(0, n_points, shard_points))
    ]


def _worker_main(
    worker_id: int,
    scenario_blob: bytes,
    data: Dict[str, object],
    seeds: Sequence[int],
    ambient_master: int,
    store_dir: Optional[str],
    task_q,
    result_q,
) -> None:
    """Worker loop: pull shards, execute their points, push values back.

    Each worker owns a private :class:`AmbientCache` attached to the
    shared store directory, so the first worker to need a composite loads
    (or synthesizes and spills) it and everyone else reads bytes.
    Messages out: ``("done", worker_id, shard, values, elapsed, stats)``
    or ``("error", worker_id, shard, traceback_text)``.
    """
    scenario: Scenario = pickle.loads(scenario_blob)
    cache = None
    if scenario.cache_ambient:
        cache = AmbientCache(store=CacheStore(store_dir) if store_dir else None)
    points = scenario.sweep.points()
    fault = fault_spec()
    while True:
        task = task_q.get()
        if task is None:
            return
        if fault is not None and fault[1] == task.shard_id and task.attempt == 0:
            # Chaos injection: die the way a crashed/OOM-killed worker
            # does — no goodbye message, no cleanup.
            os._exit(_FAULT_EXIT_CODE)
        started = time.perf_counter()
        stats_before = cache.stats if cache is not None else None
        try:
            values = [
                execute_point(
                    scenario, points[i], seeds[i], data, cache, ambient_master
                )
                for i in range(task.start, task.stop)
            ]
        except Exception:
            result_q.put(("error", worker_id, task, traceback.format_exc()))
            continue
        elapsed = time.perf_counter() - started
        stats = None
        if cache is not None and stats_before is not None:
            after = cache.stats
            stats = {
                key: after[key] - stats_before.get(key, 0)
                for key in after
                if key != "items"
            }
            stats["items"] = after["items"]
        result_q.put(("done", worker_id, task, values, elapsed, stats))


class _Worker:
    """Parent-side handle: process, private task queue, current assignment."""

    def __init__(self, worker_id: int, ctx, init_args: tuple, result_q) -> None:
        self.worker_id = worker_id
        self.task_q = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, *init_args, self.task_q, result_q),
            daemon=True,
        )
        self.process.start()
        self.assignment: Optional[Shard] = None
        self.assigned_at = 0.0
        self.speculated = False

    def assign(self, shard: Shard) -> None:
        self.assignment = shard
        self.assigned_at = time.perf_counter()
        self.speculated = False
        self.task_q.put(shard)


def _mp_context():
    """Fork where available (cheap, inherits loaded modules), spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def launch_sweep(
    scenario: Scenario,
    rng: RngLike = None,
    n_workers: int = 2,
    shard_points: Optional[int] = None,
    shard_deadline_s: Optional[float] = None,
    max_retries: int = 2,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable[[dict], None]] = None,
) -> LaunchReport:
    """Execute one scenario's grid across worker processes, shard by shard.

    Args:
        scenario: the declarative sweep; must be in the picklable spec
            form (validated up front via ``require_picklable``).
        rng: sweep-level seed or Generator — the same argument a
            :class:`~repro.engine.runner.SweepRunner` takes, producing
            the same streams: the merged result is bit-identical to a
            serial whole-grid run at this seed.
        n_workers: worker-process pool size.
        shard_points: points per initial shard; defaults to
            :func:`default_shard_points` (``REPRO_LAUNCHER_SHARD_POINTS``
            or ~4 shards per worker).
        shard_deadline_s: per-shard straggler deadline. A shard still
            running past it is *speculated*: its uncovered range is
            re-sliced and re-queued while the original keeps running —
            first completion per point wins, the loser is discarded.
            ``None`` disables speculation.
        max_retries: how many re-queues a failing range survives before
            the launch aborts with :class:`~repro.errors.LauncherError`
            (determinism makes further retries pointless — the same
            seed-derived work failed identically repeatedly).
        cache_dir: shared spill directory workers attach to; defaults to
            ``REPRO_CACHE_DIR``, then a run-scoped scratch. Point it (or
            the env var) at a shared filesystem to span machines.
        progress: optional callback receiving event dicts
            (``kind`` in ``dispatch`` / ``shard-done`` / ``requeue`` /
            ``worker-died``) from the orchestration thread; the async
            service uses it for live job status.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if max_retries < 0:
        raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
    if shard_deadline_s is not None and shard_deadline_s <= 0:
        raise ConfigurationError(
            f"shard_deadline_s must be positive, got {shard_deadline_s}"
        )
    fault_spec()  # fail fast on a malformed chaos knob, before any fork
    blob = scenario.require_picklable()

    wall_start = time.perf_counter()
    gen = as_generator(rng)
    data, points, seeds, ambient_master = derive_streams(scenario, gen)
    n_points = len(points)

    if shard_points is None:
        shard_points = default_shard_points(n_points, n_workers)
    elif shard_points < 1:
        raise ConfigurationError(f"shard_points must be >= 1, got {shard_points}")
    shards = _initial_shards(n_points, shard_points)

    # The shared spill directory is what lets workers (local processes
    # today, other machines via a shared filesystem) skip synthesis: the
    # parent warms it with every composite the grid will request.
    scratch: Optional[str] = None
    store_dir: Optional[str] = None
    warm_syntheses = 0
    if scenario.cache_ambient:
        store_dir = cache_dir or os.environ.get(CACHE_DIR_ENV_VAR, "").strip() or None
        if store_dir is None:
            scratch = tempfile.mkdtemp(prefix="repro-launcher-spill-")
            store_dir = scratch
        from repro.engine.process_backend import warm_store

        store = CacheStore(store_dir)
        warm_cache = AmbientCache(store=store)
        warm_store(store, warm_cache, scenario, data, points, ambient_master)
        warm_syntheses = int(warm_cache.stats.get("syntheses", 0))

    def emit(event: dict) -> None:
        if progress is not None:
            progress(dict(event, points_total=n_points))

    ctx = _mp_context()
    result_q = ctx.Queue()
    init_args = (blob, data, list(seeds), ambient_master, store_dir)
    next_worker_id = 0
    next_shard_id = len(shards)
    workers: Dict[int, _Worker] = {}

    taken = [False] * n_points
    n_covered = 0
    shard_results: List[SweepResult] = []
    pending: Deque[Shard] = deque(shards)
    retries = failures = stragglers = duplicates = 0

    def accept(task: Shard, values: List[object], elapsed: float, stats) -> int:
        """Record a completed shard, keeping only not-yet-covered points."""
        nonlocal n_covered
        fresh_points: List[object] = []
        fresh_values: List[object] = []
        for offset, index in enumerate(range(task.start, task.stop)):
            if taken[index]:
                continue
            taken[index] = True
            n_covered += 1
            fresh_points.append(points[index])
            fresh_values.append(values[offset])
        if not fresh_points:
            return 0
        shard_results.append(
            SweepResult(
                spec=scenario.sweep,
                points=fresh_points,
                values=fresh_values,
                elapsed_s=elapsed,
                n_workers=1,
                cache_stats=stats,
                data=data,
                backend=f"shard[{task.start}:{task.stop}]",
                scenario_name=scenario.name,
            )
        )
        return len(fresh_points)

    def reslice(task: Shard) -> List[Shard]:
        """The uncovered remainder of ``task``, split for re-queueing.

        Contiguous uncovered runs are found (speculative halves may have
        punched holes in the range) and runs longer than one point split
        in half, so a retried range spreads across the pool instead of
        landing back on a single worker.
        """
        nonlocal next_shard_id
        runs: List[Tuple[int, int]] = []
        cursor = None
        for index in range(task.start, task.stop):
            if taken[index]:
                if cursor is not None:
                    runs.append((cursor, index))
                    cursor = None
            elif cursor is None:
                cursor = index
        if cursor is not None:
            runs.append((cursor, task.stop))
        halves: List[Tuple[int, int]] = []
        for start, stop in runs:
            mid = (start + stop) // 2
            if mid > start:
                halves.extend([(start, mid), (mid, stop)])
            else:
                halves.append((start, stop))
        sliced = []
        for start, stop in halves:
            sliced.append(
                Shard(
                    shard_id=next_shard_id,
                    start=start,
                    stop=stop,
                    attempt=task.attempt + 1,
                )
            )
            next_shard_id += 1
        return sliced

    def spawn_worker() -> None:
        nonlocal next_worker_id
        worker = _Worker(next_worker_id, ctx, init_args, result_q)
        workers[worker.worker_id] = worker
        next_worker_id += 1

    def requeue(task: Shard, reason: str) -> None:
        nonlocal retries
        if task.attempt >= max_retries:
            raise LauncherError(
                f"shard [{task.start}:{task.stop}) of scenario "
                f"{scenario.name!r} gave up after {task.attempt + 1} attempts "
                f"({reason}); the engine's determinism means the retried work "
                "was bit-identical each time — this is a reproducible bug, "
                "not transient bad luck"
            )
        retries += 1
        pending.extend(reslice(task))
        emit(
            {
                "kind": "requeue",
                "shard": (task.start, task.stop),
                "attempt": task.attempt,
                "reason": reason,
            }
        )

    try:
        for _ in range(min(n_workers, max(1, len(shards)))):
            spawn_worker()

        while n_covered < n_points:
            # 1) Drain one result (bounded wait: this is also the tick).
            try:
                message = result_q.get(timeout=_POLL_S)
            except queue.Empty:
                message = None
            if message is not None:
                kind, worker_id, task = message[0], message[1], message[2]
                worker = workers.get(worker_id)
                if worker is not None and worker.assignment is not None and (
                    worker.assignment.shard_id == task.shard_id
                ):
                    worker.assignment = None
                if kind == "done":
                    _, _, _, values, elapsed, stats = message
                    fresh = accept(task, values, elapsed, stats)
                    if fresh == 0:
                        duplicates += 1
                    emit(
                        {
                            "kind": "shard-done",
                            "shard": (task.start, task.stop),
                            "attempt": task.attempt,
                            "fresh": fresh,
                            "points_done": n_covered,
                        }
                    )
                else:  # "error": the measure raised inside the worker
                    tb = message[3]
                    requeue(task, f"measure raised:\n{tb}")

            # 2) Reap dead workers; their in-flight shard gets re-queued.
            for worker in [w for w in workers.values() if not w.process.is_alive()]:
                del workers[worker.worker_id]
                lost = worker.assignment
                exit_code = worker.process.exitcode
                emit({"kind": "worker-died", "worker": worker.worker_id})
                spawn_worker()
                if lost is not None:
                    failures += 1
                    requeue(lost, f"worker died (exit code {exit_code})")

            # 3) Straggler speculation: past-deadline shards are re-queued
            #    while the original keeps running; first finish wins.
            if shard_deadline_s is not None:
                now = time.perf_counter()
                for worker in workers.values():
                    task = worker.assignment
                    if (
                        task is not None
                        and not worker.speculated
                        and now - worker.assigned_at > shard_deadline_s
                        and task.attempt < max_retries
                    ):
                        worker.speculated = True
                        stragglers += 1
                        requeue(task, "straggler past deadline")

            # 4) Dispatch pending work to idle workers, skipping shards
            #    whose points were meanwhile covered by another copy.
            for worker in workers.values():
                if worker.assignment is not None:
                    continue
                task = None
                while pending:
                    candidate = pending.popleft()
                    if any(
                        not taken[i] for i in range(candidate.start, candidate.stop)
                    ):
                        task = candidate
                        break
                if task is None:
                    break
                worker.assign(task)
                emit(
                    {
                        "kind": "dispatch",
                        "shard": (task.start, task.stop),
                        "attempt": task.attempt,
                        "worker": worker.worker_id,
                    }
                )

            # 5) Self-heal any lost-task race: nothing queued, nothing
            #    in flight, yet points uncovered -> requeue the gaps.
            if (
                n_covered < n_points
                and not pending
                and all(w.assignment is None for w in workers.values())
            ):
                probe = Shard(
                    shard_id=next_shard_id, start=0, stop=n_points, attempt=0
                )
                next_shard_id += 1
                pending.extend(reslice(probe))
    finally:
        _shutdown(workers, result_q)
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)

    merged = SweepResult.merge(*shard_results)
    merged.backend = f"launcher[shards={len(shards)},workers={n_workers}]"
    merged.n_workers = n_workers
    return LaunchReport(
        result=merged,
        wall_s=time.perf_counter() - wall_start,
        n_workers=n_workers,
        n_points=n_points,
        n_shards=len(shards),
        retries=retries,
        failures=failures,
        stragglers=stragglers,
        duplicates=duplicates,
        warm_syntheses=warm_syntheses,
        store_dir=None if scratch is not None else store_dir,
    )


def _shutdown(workers: Dict[int, _Worker], result_q) -> None:
    """Stop the pool: sentinel, bounded join, then terminate holdouts.

    A worker may still be running a duplicate of an already-covered shard
    (speculation's loser); it gets a grace period to finish, then is
    terminated — safe, because its result would be discarded anyway and a
    mid-write kill at worst leaves a temp file the store janitor reaps.
    """
    for worker in workers.values():
        try:
            worker.task_q.put_nowait(None)
        except Exception:
            pass
    deadline = time.monotonic() + _SHUTDOWN_JOIN_S
    for worker in workers.values():
        worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
    for worker in workers.values():
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
    # Drain straggler messages so the queue's feeder thread can exit.
    while True:
        try:
            result_q.get_nowait()
        except queue.Empty:
            break
    for worker in workers.values():
        worker.task_q.close()
        worker.task_q.cancel_join_thread()
    result_q.close()

"""Distributed sweep launcher: shard fan-out with retries, stragglers, merge.

The sharded-sweep kernel made a grid slice a first-class unit of work:
seeds are pre-derived for the *whole* grid (:func:`~repro.engine.runner.
derive_streams`), so any contiguous range of points executes
bit-identically anywhere, and :meth:`~repro.engine.results.SweepResult.
merge` stitches ranges back. This module adds the missing fan-out — a
job-queue orchestrator that:

- slices a compiled :class:`~repro.engine.scenario.Scenario` grid into
  shards and dispatches them to a pool of worker processes, one shard
  per worker at a time;
- detects dead workers (a crash, an OOM kill, an injected fault) and
  stragglers (a shard past its per-shard deadline) and *re-slices* the
  affected range into halves before re-queueing it — after the
  :class:`RetryPolicy`'s exponential backoff with deterministic jitter —
  so retried work spreads across the pool without thundering back;
- discards duplicated completions — determinism makes speculative
  retries free of coordination: two copies of a point compute the same
  bytes, so whichever arrives first wins and the loser is dropped
  unread;
- **degrades gracefully** instead of discarding work: when a range
  exhausts its retry budget (or the job blows its
  :attr:`RetryPolicy.job_deadline_s`), the launcher salvages every
  completed shard and finishes the lost range *in-process, serially* —
  the merged grid is still complete and bit-identical, and
  :attr:`LaunchReport.degraded` says the fan-out lost redundancy.
  :class:`~repro.errors.LauncherError` (now carrying shard id, point
  range, attempt count, worker exit codes and the partial merged result)
  is reserved for the case where even the in-process salvage fails —
  a deterministic bug in the measure, not an infrastructure fault;
- optionally journals every shard completion (point ranges + values) to
  a :class:`~repro.engine.journal.JobJournal`, and *resumes* from one:
  ``resume_values`` pre-covers journaled-complete points so they are
  reloaded, never recomputed — only missing ranges are re-launched;
- merges accepted shard results into one whole-grid
  :class:`~repro.engine.results.SweepResult` (merge-aware cache
  counters; ``elapsed_s`` sums per-shard compute time while
  :attr:`LaunchReport.wall_s` reports wall-clock).

Cross-machine runs fall out of the shared on-disk
:class:`~repro.engine.store.CacheStore`: point ``REPRO_CACHE_DIR`` (or
``cache_dir=``) at a shared filesystem, and the parent pre-warms it with
every front-end composite the grid needs (one synthesis per distinct
front end, via :func:`~repro.engine.process_backend.warm_store`);
workers anywhere then load bytes instead of synthesizing, and a warm
re-run performs zero syntheses.

Chaos: ``REPRO_FAULTS`` (:mod:`repro.engine.faults`) injects worker
kills, forced stragglers, dropped results, torn cache writes and
worker-init failures, each deterministically targeted so a chaos run
reproduces exactly. The CI ``chaos`` leg runs the full fault matrix to
prove no fault class can change a single bit of the merged result.
``REPRO_LAUNCHER_FAULT=kill-shard:<n>`` survives as a deprecated alias.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import shutil
import tempfile
import time
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import AmbientCache, stats_delta
from repro.engine.execution import execute_point
from repro.engine.faults import LEGACY_FAULT_ENV_VAR, active_plan, legacy_fault_spec
from repro.engine.journal import JobJournal
from repro.engine.results import SweepResult
from repro.engine.runner import derive_streams
from repro.engine.scenario import Scenario
from repro.engine.store import CACHE_DIR_ENV_VAR, CacheStore
from repro.errors import ConfigurationError, LauncherError
from repro.utils.env import env_int
from repro.utils.rand import RngLike, as_generator, derive_seed

FAULT_ENV_VAR = LEGACY_FAULT_ENV_VAR
"""Deprecated chaos knob (``kill-shard:<n>`` only) — see ``REPRO_FAULTS``."""

SHARD_POINTS_ENV_VAR = "REPRO_LAUNCHER_SHARD_POINTS"
"""Environment override for the points-per-shard slice size."""

_FAULT_EXIT_CODE = 87
"""Exit code of a chaos-killed worker (distinguishable in reports)."""

_POLL_S = 0.02
"""Parent orchestration tick: result drain timeout per loop iteration."""

_SHUTDOWN_JOIN_S = 5.0
"""Grace period for workers (possibly mid-duplicate-shard) to exit."""


def fault_spec() -> Optional[Tuple[str, int]]:
    """Deprecated: the parsed ``REPRO_LAUNCHER_FAULT`` directive.

    Kept for the pre-registry API surface; new code reads the unified
    plan via :func:`repro.engine.faults.active_plan`. Strict like every
    ``REPRO_*`` knob: anything but the documented ``kill-shard:<shard>``
    form raises :class:`~repro.errors.ConfigurationError` naming the
    variable.
    """
    return legacy_fault_spec()


@dataclass(frozen=True)
class RetryPolicy:
    """How hard (and how politely) the launcher retries failing ranges.

    Attributes:
        max_retries: re-queues a failing range survives before the
            launcher stops fanning it out and salvages it in-process
            (graceful degradation). ``0`` degrades on the first failure.
        backoff_base_s: base of the exponential re-queue backoff; a
            retried range is not re-dispatched before
            ``backoff_base_s * backoff_factor ** attempt`` seconds.
            ``0.0`` (the default) re-dispatches immediately — right for
            deterministic in-process failures, while crash-looping
            infrastructure wants breathing room.
        backoff_factor: exponential growth per attempt.
        backoff_max_s: hard cap on any single backoff delay.
        jitter_frac: ± fraction of the delay applied as *deterministic*
            jitter — derived from the range and attempt via
            :func:`~repro.utils.rand.derive_seed`, not a clock or a
            random draw, so two ranges failing together de-synchronize
            their retries yet every chaos run reproduces exactly.
        job_deadline_s: wall-clock budget for the whole launch; when
            exceeded, the launcher stops waiting on workers, salvages
            completed shards and finishes every uncovered point
            in-process (``LaunchReport.degraded``). ``None`` disables.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter_frac: float = 0.1
    job_deadline_s: Optional[float] = None

    def validate(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ConfigurationError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ConfigurationError(
                f"jitter_frac must be in [0, 1), got {self.jitter_frac}"
            )
        if self.job_deadline_s is not None and self.job_deadline_s <= 0:
            raise ConfigurationError(
                f"job_deadline_s must be positive, got {self.job_deadline_s}"
            )

    def backoff_s(self, start: int, stop: int, attempt: int) -> float:
        """Re-dispatch delay for a range entering ``attempt`` re-queues.

        Pure function of the range and attempt: the jitter comes from
        :func:`~repro.utils.rand.derive_seed`, so the schedule is
        reproducible run to run.
        """
        if self.backoff_base_s <= 0:
            return 0.0
        delay = min(
            self.backoff_max_s, self.backoff_base_s * self.backoff_factor ** attempt
        )
        unit = (derive_seed(attempt, "backoff", start, stop) % 10_000) / 10_000
        return delay * (1.0 + self.jitter_frac * (2.0 * unit - 1.0))


@dataclass(frozen=True)
class Shard:
    """One contiguous half-open range of grid points queued for a worker.

    Attributes:
        shard_id: stable identity for dispatch bookkeeping; initial
            shards number ``0..n-1`` in grid order (what the fault
            registry's shard-targeted directives hit), re-sliced retries
            get fresh ids.
        start: first global point index (inclusive).
        stop: last global point index (exclusive).
        attempt: how many times this range has been (re)queued; retried
            ranges inherit ``attempt + 1``.
    """

    shard_id: int
    start: int
    stop: int
    attempt: int = 0

    @property
    def n_points(self) -> int:
        return self.stop - self.start


@dataclass
class LaunchReport:
    """What :func:`launch_sweep` returns: the merged result plus telemetry.

    Attributes:
        result: the whole-grid merged :class:`SweepResult`, bit-identical
            to a ``backend="serial"`` run at the same seed. Its
            ``elapsed_s`` sums per-shard compute time (including any
            duplicated speculative work); ``wall_s`` here is the
            launcher's actual wall-clock.
        wall_s: wall-clock duration of the whole launch (derive + warm +
            fan-out + merge).
        n_workers: size of the worker pool.
        n_points: grid size.
        n_shards: initial shard count (before any re-slicing).
        retries: total re-queues (worker deaths + measure errors +
            straggler speculation).
        failures: worker deaths observed (while holding a shard or not).
        stragglers: shards that blew their deadline and were speculated.
        duplicates: completed shard copies discarded because every point
            they carried was already covered.
        warm_syntheses: syntheses the *parent's* store warm-up performed
            before fan-out (the workers' own counters live on
            ``result.cache_stats``). Zero on a warm shared store — the
            whole-run "zero syntheses" claim is
            ``warm_syntheses + result.cache_stats["syntheses"] == 0``.
        store_dir: the shared spill directory workers attached to, or
            ``None`` when it was a run-scoped scratch (already removed)
            or ambient caching was off.
        degraded: whether any range exhausted its retry budget (or the
            job deadline passed) and was salvaged in-process instead of
            fanned out. The grid is still complete and bit-identical —
            degradation trades parallelism, never correctness.
        degraded_points: points the in-process salvage executed.
        resumed_points: points reloaded from ``resume_values`` (a job
            journal) instead of being recomputed.
        exit_codes: exit code of every worker death, in observation
            order — provenance for post-mortems and for the
            :class:`~repro.errors.LauncherError` raised when salvage
            fails too.
    """

    result: SweepResult
    wall_s: float
    n_workers: int
    n_points: int
    n_shards: int
    retries: int = 0
    failures: int = 0
    stragglers: int = 0
    duplicates: int = 0
    warm_syntheses: int = 0
    store_dir: Optional[str] = None
    degraded: bool = False
    degraded_points: int = 0
    resumed_points: int = 0
    exit_codes: Tuple[int, ...] = ()


def default_shard_points(n_points: int, n_workers: int) -> int:
    """Points per shard when the caller expresses no preference.

    Strictly parsed ``REPRO_LAUNCHER_SHARD_POINTS`` wins; otherwise aim
    for ~4 shards per worker, so stragglers and retries cost a fraction
    of the grid rather than half of it, without drowning small grids in
    per-shard dispatch overhead.
    """
    configured = env_int(SHARD_POINTS_ENV_VAR, 0, minimum=1)
    if configured:
        return configured
    return max(1, -(-n_points // (4 * n_workers)))


def _initial_shards(n_points: int, shard_points: int) -> List[Shard]:
    return [
        Shard(shard_id=i, start=start, stop=min(start + shard_points, n_points))
        for i, start in enumerate(range(0, n_points, shard_points))
    ]


def _worker_main(
    worker_id: int,
    scenario_blob: bytes,
    data: Dict[str, object],
    seeds: Sequence[int],
    ambient_master: int,
    store_dir: Optional[str],
    task_q,
    result_conn,
) -> None:
    """Worker loop: pull shards, execute their points, push values back.

    Each worker owns a private :class:`AmbientCache` attached to the
    shared store directory, so the first worker to need a composite loads
    (or synthesizes and spills) it and everyone else reads bytes.
    Messages out: ``("done", worker_id, shard, values, elapsed, stats)``
    or ``("error", worker_id, shard, traceback_text)``, sent over this
    worker's *private* result pipe — never a shared queue. A shared
    ``multiprocessing.Queue`` serializes writers through one cross-process
    lock held by a background feeder thread, so a worker hard-killed just
    after reporting (exactly what ``kill-shard`` injects, and what a real
    OOM kill does) can die holding it and wedge every surviving worker's
    reports forever. A private pipe has one writer; a kill can only ever
    tear this worker's own channel, which the parent reaps. Sends happen
    synchronously in this thread, so by the time the next task (and any
    injected kill) is picked up, the previous report is already in the
    pipe — the parent can still read it after the kill. The active
    :class:`~repro.engine.faults.FaultPlan` is consulted at every step a
    real fault could strike: init, task pickup (kill), execution start
    (delay) and reporting (drop).
    """
    plan = active_plan()
    if plan.init_fail(worker_id):
        # Chaos injection: die before becoming useful — a worker whose
        # environment (imports, mounts, GPU) was broken at spawn.
        os._exit(_FAULT_EXIT_CODE)
    scenario: Scenario = pickle.loads(scenario_blob)
    cache = None
    if scenario.cache_ambient:
        cache = AmbientCache(store=CacheStore(store_dir) if store_dir else None)
    points = scenario.sweep.points()
    while True:
        task = task_q.get()
        if task is None:
            return
        if plan.kill(task):
            # Chaos injection: die the way a crashed/OOM-killed worker
            # does — no goodbye message, no cleanup.
            os._exit(_FAULT_EXIT_CODE)
        delay = plan.delay_s(task)
        if delay > 0:
            time.sleep(delay)  # chaos injection: a forced straggler
        started = time.perf_counter()
        stats_before = cache.stats if cache is not None else None
        try:
            values = [
                execute_point(
                    scenario, points[i], seeds[i], data, cache, ambient_master
                )
                for i in range(task.start, task.stop)
            ]
        except Exception:
            try:
                result_conn.send(("error", worker_id, task, traceback.format_exc()))
            except (BrokenPipeError, OSError):
                return  # parent is gone; nothing left to report to
            continue
        elapsed = time.perf_counter() - started
        stats = None
        if cache is not None and stats_before is not None:
            stats = stats_delta(cache.stats, stats_before)
        if plan.drop_result(task):
            # Chaos injection: the work happened, the report vanished —
            # a lost message. Only deadline speculation (or the job
            # deadline) can recover the range.
            continue
        try:
            result_conn.send(("done", worker_id, task, values, elapsed, stats))
        except (BrokenPipeError, OSError):
            return  # parent is gone; nothing left to report to


class _Worker:
    """Parent-side handle: process, task queue, result pipe, assignment."""

    def __init__(self, worker_id: int, ctx, init_args: tuple) -> None:
        self.worker_id = worker_id
        self.task_q = ctx.Queue()
        # One result pipe per worker (see _worker_main: a shared queue's
        # write lock is a single point of failure under hard kills).
        self.conn, child_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, *init_args, self.task_q, child_conn),
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # the child's end lives in the child now
        self.assignment: Optional[Shard] = None
        self.assigned_at = 0.0
        self.speculated = False

    def assign(self, shard: Shard) -> None:
        self.assignment = shard
        self.assigned_at = time.perf_counter()
        self.speculated = False
        self.task_q.put(shard)


def _mp_context():
    """Fork where available (cheap, inherits loaded modules), spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def launch_sweep(
    scenario: Scenario,
    rng: RngLike = None,
    n_workers: int = 2,
    shard_points: Optional[int] = None,
    shard_deadline_s: Optional[float] = None,
    max_retries: int = 2,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable[[dict], None]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    resume_values: Optional[Dict[int, object]] = None,
    journal: Optional[JobJournal] = None,
    job_id: Optional[str] = None,
) -> LaunchReport:
    """Execute one scenario's grid across worker processes, shard by shard.

    Args:
        scenario: the declarative sweep; must be in the picklable spec
            form (validated up front via ``require_picklable``).
        rng: sweep-level seed or Generator — the same argument a
            :class:`~repro.engine.runner.SweepRunner` takes, producing
            the same streams: the merged result is bit-identical to a
            serial whole-grid run at this seed.
        n_workers: worker-process pool size.
        shard_points: points per initial shard; defaults to
            :func:`default_shard_points` (``REPRO_LAUNCHER_SHARD_POINTS``
            or ~4 shards per worker).
        shard_deadline_s: per-shard straggler deadline. A shard still
            running past it is *speculated*: its uncovered range is
            re-sliced and re-queued while the original keeps running —
            first completion per point wins, the loser is discarded.
            ``None`` disables speculation.
        max_retries: shorthand for ``RetryPolicy(max_retries=...)``;
            ignored when ``retry_policy`` is given.
        cache_dir: shared spill directory workers attach to; defaults to
            ``REPRO_CACHE_DIR``, then a run-scoped scratch. Point it (or
            the env var) at a shared filesystem to span machines.
        progress: optional callback receiving event dicts
            (``kind`` in ``dispatch`` / ``shard-done`` / ``requeue`` /
            ``worker-died`` / ``degraded``) from the orchestration
            thread; the async service uses it for live job status.
        retry_policy: the full :class:`RetryPolicy` (retry budget,
            exponential backoff with deterministic jitter, per-job
            deadline); threaded through
            :class:`~repro.engine.service.SweepService` too.
        resume_values: ``{global point index: value}`` already computed
            by a previous (journaled) run of the *same scenario at the
            same seed*. Those points are reloaded, never re-executed —
            only uncovered ranges are dispatched. The caller owns the
            same-seed contract, exactly as for ``SweepResult.merge``.
        journal: optional :class:`~repro.engine.journal.JobJournal`;
            shard dispatches, completions (ranges + values), retries and
            degradations are journaled durably, making the launch
            resumable after a crash. Terminal job state is the caller's
            record to write (the service does).
        job_id: journal key for this launch; required with ``journal``.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if shard_deadline_s is not None and shard_deadline_s <= 0:
        raise ConfigurationError(
            f"shard_deadline_s must be positive, got {shard_deadline_s}"
        )
    policy = retry_policy if retry_policy is not None else RetryPolicy(max_retries=max_retries)
    policy.validate()
    if journal is not None and job_id is None:
        raise ConfigurationError("journal= requires job_id= to key the records")
    active_plan()  # fail fast on a malformed chaos knob, before any fork
    blob = scenario.require_picklable()

    wall_start = time.perf_counter()
    gen = as_generator(rng)
    data, points, seeds, ambient_master = derive_streams(scenario, gen)
    n_points = len(points)

    if shard_points is None:
        shard_points = default_shard_points(n_points, n_workers)
    elif shard_points < 1:
        raise ConfigurationError(f"shard_points must be >= 1, got {shard_points}")
    shards = _initial_shards(n_points, shard_points)

    # The shared spill directory is what lets workers (local processes
    # today, other machines via a shared filesystem) skip synthesis: the
    # parent warms it with every composite the grid will request.
    scratch: Optional[str] = None
    store_dir: Optional[str] = None
    warm_syntheses = 0
    parent_cache: Optional[AmbientCache] = None
    if scenario.cache_ambient:
        store_dir = cache_dir or os.environ.get(CACHE_DIR_ENV_VAR, "").strip() or None
        if store_dir is None:
            scratch = tempfile.mkdtemp(prefix="repro-launcher-spill-")
            store_dir = scratch
        from repro.engine.process_backend import warm_store

        store = CacheStore(store_dir)
        parent_cache = AmbientCache(store=store)
        warm_store(store, parent_cache, scenario, data, points, ambient_master)
        warm_syntheses = int(parent_cache.stats.get("syntheses", 0))

    def emit(event: dict) -> None:
        if progress is not None:
            progress(dict(event, points_total=n_points))

    ctx = _mp_context()
    init_args = (blob, data, list(seeds), ambient_master, store_dir)
    next_worker_id = 0
    next_shard_id = len(shards)
    workers: Dict[int, _Worker] = {}

    taken = [False] * n_points
    n_covered = 0
    shard_results: List[SweepResult] = []
    # Pending work is (ready_at, shard): retries sit out their backoff.
    pending: Deque[Tuple[float, Shard]] = deque((0.0, s) for s in shards)
    retries = failures = stragglers = duplicates = 0
    degraded = False
    degraded_points = 0
    resumed_points = 0
    exit_codes: List[int] = []

    def _zero_stats() -> Optional[Dict[str, int]]:
        """Counter stub for shards that executed nothing (resume reload)."""
        if not scenario.cache_ambient:
            return None
        return {
            "hits": 0,
            "misses": 0,
            "disk_hits": 0,
            "syntheses": 0,
            "corrupt_evictions": 0,
            "items": 0,
        }

    if resume_values:
        bad = [i for i in resume_values if not 0 <= int(i) < n_points]
        if bad:
            raise ConfigurationError(
                f"resume_values indices {sorted(bad)[:8]} outside the grid's "
                f"{n_points} points"
            )
        resumed = sorted(int(i) for i in resume_values)
        for index in resumed:
            taken[index] = True
        n_covered = resumed_points = len(resumed)
        shard_results.append(
            SweepResult(
                spec=scenario.sweep,
                points=[points[i] for i in resumed],
                values=[resume_values[i] for i in resumed],
                elapsed_s=0.0,
                n_workers=1,
                cache_stats=_zero_stats(),
                data=data,
                backend=f"resumed[{len(resumed)}]",
                scenario_name=scenario.name,
            )
        )

    def accept(task: Shard, values: List[object], elapsed: float, stats) -> int:
        """Record a completed shard, keeping only not-yet-covered points."""
        nonlocal n_covered
        fresh_indices: List[int] = []
        fresh_values: List[object] = []
        for offset, index in enumerate(range(task.start, task.stop)):
            if taken[index]:
                continue
            taken[index] = True
            n_covered += 1
            fresh_indices.append(index)
            fresh_values.append(values[offset])
        if not fresh_indices:
            return 0
        shard_results.append(
            SweepResult(
                spec=scenario.sweep,
                points=[points[i] for i in fresh_indices],
                values=fresh_values,
                elapsed_s=elapsed,
                n_workers=1,
                cache_stats=stats,
                data=data,
                backend=f"shard[{task.start}:{task.stop}]",
                scenario_name=scenario.name,
            )
        )
        if journal is not None:
            journal.shard_completed(job_id, fresh_indices, fresh_values, elapsed)
        return len(fresh_indices)

    def reslice(task: Shard) -> List[Shard]:
        """The uncovered remainder of ``task``, split for re-queueing.

        Contiguous uncovered runs are found (speculative halves may have
        punched holes in the range) and runs longer than one point split
        in half, so a retried range spreads across the pool instead of
        landing back on a single worker.
        """
        nonlocal next_shard_id
        runs: List[Tuple[int, int]] = []
        cursor = None
        for index in range(task.start, task.stop):
            if taken[index]:
                if cursor is not None:
                    runs.append((cursor, index))
                    cursor = None
            elif cursor is None:
                cursor = index
        if cursor is not None:
            runs.append((cursor, task.stop))
        halves: List[Tuple[int, int]] = []
        for start, stop in runs:
            mid = (start + stop) // 2
            if mid > start:
                halves.extend([(start, mid), (mid, stop)])
            else:
                halves.append((start, stop))
        sliced = []
        for start, stop in halves:
            sliced.append(
                Shard(
                    shard_id=next_shard_id,
                    start=start,
                    stop=stop,
                    attempt=task.attempt + 1,
                )
            )
            next_shard_id += 1
        return sliced

    def spawn_worker() -> None:
        nonlocal next_worker_id
        worker = _Worker(next_worker_id, ctx, init_args)
        workers[worker.worker_id] = worker
        next_worker_id += 1

    def degrade(task: Shard, reason: str) -> None:
        """Last resort: finish ``task``'s uncovered points in-process.

        The fan-out failed this range ``max_retries + 1`` times (or the
        job deadline passed); rather than throwing away every completed
        shard via an exception, the parent — whose cache is the warm
        store itself — executes the remaining points serially. The grid
        stays complete and bit-identical; only parallelism was lost,
        reported on ``LaunchReport.degraded``. A failure *here* is a
        deterministic bug in the measure and raises
        :class:`~repro.errors.LauncherError` with full provenance plus
        the partial merged result for salvage.
        """
        nonlocal degraded, degraded_points, n_covered
        degraded = True
        emit(
            {
                "kind": "degraded",
                "shard": (task.start, task.stop),
                "attempt": task.attempt,
                "reason": reason,
            }
        )
        stats_before = parent_cache.stats if parent_cache is not None else None
        started = time.perf_counter()
        fresh_indices: List[int] = []
        fresh_values: List[object] = []
        for index in range(task.start, task.stop):
            if taken[index]:
                continue
            try:
                value = execute_point(
                    scenario,
                    points[index],
                    seeds[index],
                    data,
                    parent_cache,
                    ambient_master,
                )
            except Exception as exc:
                partial = (
                    SweepResult.merge(*shard_results, partial=True)
                    if shard_results
                    else None
                )
                raise LauncherError(
                    f"shard [{task.start}:{task.stop}) of scenario "
                    f"{scenario.name!r} gave up after {task.attempt + 1} "
                    f"attempts ({reason}) and the in-process salvage failed "
                    f"at point {index} too; the engine's determinism means "
                    "the retried work was bit-identical each time — this is "
                    "a reproducible bug, not transient bad luck",
                    scenario=scenario.name,
                    shard_id=task.shard_id,
                    point_range=(task.start, task.stop),
                    attempts=task.attempt + 1,
                    exit_codes=tuple(exit_codes),
                    partial_result=partial,
                ) from exc
            taken[index] = True
            n_covered += 1
            degraded_points += 1
            fresh_indices.append(index)
            fresh_values.append(value)
        if not fresh_indices:
            return
        elapsed = time.perf_counter() - started
        stats = None
        if parent_cache is not None and stats_before is not None:
            stats = stats_delta(parent_cache.stats, stats_before)
        shard_results.append(
            SweepResult(
                spec=scenario.sweep,
                points=[points[i] for i in fresh_indices],
                values=fresh_values,
                elapsed_s=elapsed,
                n_workers=1,
                cache_stats=stats,
                data=data,
                backend=f"degraded[{task.start}:{task.stop}]",
                scenario_name=scenario.name,
            )
        )
        if journal is not None:
            journal.shard_completed(
                job_id, fresh_indices, fresh_values, elapsed, degraded=True
            )
        emit(
            {
                "kind": "shard-done",
                "shard": (task.start, task.stop),
                "attempt": task.attempt,
                "fresh": len(fresh_indices),
                "points_done": n_covered,
                "degraded": True,
            }
        )

    def requeue(task: Shard, reason: str) -> None:
        nonlocal retries
        if all(taken[i] for i in range(task.start, task.stop)):
            return  # a speculative copy already covered the whole range
        if task.attempt >= policy.max_retries:
            degrade(task, f"retry budget exhausted: {reason}")
            return
        retries += 1
        ready_at = time.perf_counter() + policy.backoff_s(
            task.start, task.stop, task.attempt
        )
        pending.extend((ready_at, piece) for piece in reslice(task))
        if journal is not None:
            journal.shard_retried(job_id, task.start, task.stop, task.attempt, reason)
        emit(
            {
                "kind": "requeue",
                "shard": (task.start, task.stop),
                "attempt": task.attempt,
                "reason": reason,
            }
        )

    def pop_ready() -> Optional[Shard]:
        """Next pending shard that is past its backoff and still needed."""
        now = time.perf_counter()
        for _ in range(len(pending)):
            ready_at, candidate = pending.popleft()
            if ready_at > now:
                pending.append((ready_at, candidate))
                continue
            if any(not taken[i] for i in range(candidate.start, candidate.stop)):
                return candidate
        return None

    def handle_message(message) -> None:
        """Fold one worker report (done/error) into the launch state."""
        nonlocal duplicates
        kind, worker_id, task = message[0], message[1], message[2]
        worker = workers.get(worker_id)
        if worker is not None and worker.assignment is not None and (
            worker.assignment.shard_id == task.shard_id
        ):
            worker.assignment = None
        if kind == "done":
            _, _, _, values, elapsed, stats = message
            fresh = accept(task, values, elapsed, stats)
            if fresh == 0:
                duplicates += 1
            emit(
                {
                    "kind": "shard-done",
                    "shard": (task.start, task.stop),
                    "attempt": task.attempt,
                    "fresh": fresh,
                    "points_done": n_covered,
                }
            )
        else:  # "error": the measure raised inside the worker
            tb = message[3]
            requeue(task, f"measure raised:\n{tb}")

    try:
        if n_covered < n_points:  # a full resume forks no workers at all
            for _ in range(min(n_workers, max(1, len(shards)))):
                spawn_worker()

        while n_covered < n_points:
            # 0) Job deadline: stop waiting on the pool, salvage in-process.
            if (
                policy.job_deadline_s is not None
                and time.perf_counter() - wall_start > policy.job_deadline_s
            ):
                probe = Shard(
                    shard_id=-1, start=0, stop=n_points, attempt=policy.max_retries
                )
                degrade(probe, "job deadline exceeded")
                break

            # 1) Drain one result (bounded wait: this is also the tick).
            #    Each worker reports over its own pipe, so the wait spans
            #    all of them; a dead writer can tear only its own channel.
            ready = mp_connection.wait(
                [w.conn for w in workers.values()], timeout=_POLL_S
            )
            for conn in ready:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    continue  # torn by a dead worker; the reap step handles it
                handle_message(message)
                break

            # 2) Reap dead workers; their in-flight shard gets re-queued.
            #    A worker may die *after* reporting (the kill-on-pickup
            #    faults do exactly this), so drain its pipe before judging
            #    what was lost — those reports are real completed work.
            for worker in [w for w in workers.values() if not w.process.is_alive()]:
                while worker.conn.poll():
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        break
                    handle_message(message)
                del workers[worker.worker_id]
                worker.conn.close()
                lost = worker.assignment
                exit_code = worker.process.exitcode
                exit_codes.append(exit_code if exit_code is not None else -1)
                failures += 1
                emit({"kind": "worker-died", "worker": worker.worker_id})
                spawn_worker()
                if lost is not None:
                    requeue(lost, f"worker died (exit code {exit_code})")

            # 3) Straggler speculation: past-deadline shards are re-queued
            #    while the original keeps running; first finish wins.
            if shard_deadline_s is not None:
                now = time.perf_counter()
                for worker in workers.values():
                    task = worker.assignment
                    if (
                        task is not None
                        and not worker.speculated
                        and now - worker.assigned_at > shard_deadline_s
                        and task.attempt < policy.max_retries
                    ):
                        worker.speculated = True
                        stragglers += 1
                        requeue(task, "straggler past deadline")

            # 4) Dispatch pending work to idle workers, skipping shards
            #    whose points were meanwhile covered by another copy.
            for worker in workers.values():
                if worker.assignment is not None:
                    continue
                task = pop_ready()
                if task is None:
                    break
                worker.assign(task)
                if journal is not None:
                    journal.shard_dispatched(
                        job_id, task.start, task.stop, task.attempt, worker.worker_id
                    )
                emit(
                    {
                        "kind": "dispatch",
                        "shard": (task.start, task.stop),
                        "attempt": task.attempt,
                        "worker": worker.worker_id,
                    }
                )

            # 5) Self-heal any lost-task race: nothing queued, nothing
            #    in flight, yet points uncovered -> requeue the gaps.
            if (
                n_covered < n_points
                and not pending
                and all(w.assignment is None for w in workers.values())
            ):
                probe = Shard(
                    shard_id=next_shard_id, start=0, stop=n_points, attempt=0
                )
                next_shard_id += 1
                pending.extend((0.0, piece) for piece in reslice(probe))
    finally:
        _shutdown(workers)
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)

    merged = SweepResult.merge(*shard_results)
    merged.backend = f"launcher[shards={len(shards)},workers={n_workers}]"
    merged.n_workers = n_workers
    return LaunchReport(
        result=merged,
        wall_s=time.perf_counter() - wall_start,
        n_workers=n_workers,
        n_points=n_points,
        n_shards=len(shards),
        retries=retries,
        failures=failures,
        stragglers=stragglers,
        duplicates=duplicates,
        warm_syntheses=warm_syntheses,
        store_dir=None if scratch is not None else store_dir,
        degraded=degraded,
        degraded_points=degraded_points,
        resumed_points=resumed_points,
        exit_codes=tuple(exit_codes),
    )


def _shutdown(workers: Dict[int, _Worker]) -> None:
    """Stop the pool: sentinel, bounded join, then terminate holdouts.

    A worker may still be running a duplicate of an already-covered shard
    (speculation's loser); it gets a grace period to finish, then is
    terminated — safe, because its result would be discarded anyway and a
    mid-write kill at worst leaves a temp file the store janitor reaps.
    Closing the parent's pipe ends unblocks any worker mid-``send`` into
    a full pipe buffer (it dies on BrokenPipeError instead of hanging).
    """
    for worker in workers.values():
        try:
            worker.task_q.put_nowait(None)
        except Exception:
            pass
    for worker in workers.values():
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already torn
            pass
    deadline = time.monotonic() + _SHUTDOWN_JOIN_S
    for worker in workers.values():
        worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
    for worker in workers.values():
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
    for worker in workers.values():
        worker.task_q.close()
        worker.task_q.cancel_join_thread()

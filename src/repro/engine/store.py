"""Persistent on-disk spill store for synthesized waveforms.

:class:`CacheStore` maps the :class:`~repro.engine.cache.AmbientCache`'s
fully-deterministic key tuples onto ``.npz`` files, so synthesized MPX /
modulated carriers survive the process: repeated benchmark runs, sweep
process-pool workers and (future) sweep shards all read the same bytes
back instead of resynthesizing. Keys are tuples of primitives whose
``repr`` is stable across interpreter runs (no ``hash()`` salting), so
the same configuration always lands on the same file.

Writes go through a temp file plus :func:`os.replace`, which is atomic on
POSIX — concurrent workers racing to fill the same key at worst duplicate
the synthesis, never corrupt the file.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Optional

import numpy as np

CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"
"""Environment variable enabling disk spill for the default ambient cache."""


def stable_key_digest(key: tuple) -> str:
    """Deterministic hex digest of a cache key tuple.

    Keys are built from primitives (ints, floats, bools, strings, None,
    nested tuples of the same), whose ``repr`` is stable across processes
    — unlike ``hash()``, which Python salts per interpreter run.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class CacheStore:
    """A directory of ``.npz`` files keyed by deterministic tuples.

    Args:
        directory: spill directory; created on first use.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: tuple) -> Path:
        """The file that does (or would) hold ``key``'s array."""
        return self.directory / f"{stable_key_digest(key)}.npz"

    def load(self, key: tuple) -> Optional[np.ndarray]:
        """Read the array stored for ``key``, or ``None`` when absent.

        A corrupt or truncated file (e.g. a machine lost power mid-write
        before the atomic rename ever happened) reads as a miss, so the
        caller falls back to synthesis rather than crashing.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                stored_key = str(archive["key"])
                if stored_key != repr(key):
                    # A digest collision is astronomically unlikely; treat
                    # it as a miss instead of returning the wrong waveform.
                    return None
                return archive["value"]
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, EOFError):
            return None

    def save(self, key: tuple, value: np.ndarray) -> Path:
        """Atomically persist ``value`` under ``key``; returns the path."""
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp.npz", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, value=np.asarray(value), key=np.asarray(repr(key)))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.npz") if ".tmp." not in _.name)

    def clear(self) -> None:
        """Delete every spilled entry (used by tests and benchmarks)."""
        for path in self.directory.glob("*.npz"):
            try:
                path.unlink()
            except OSError:
                pass

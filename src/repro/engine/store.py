"""Persistent on-disk spill store for synthesized waveforms.

:class:`CacheStore` maps the :class:`~repro.engine.cache.AmbientCache`'s
fully-deterministic key tuples onto ``.npz`` files, so synthesized MPX /
modulated carriers survive the process: repeated benchmark runs, sweep
process-pool workers and (future) sweep shards all read the same bytes
back instead of resynthesizing. Keys are tuples of primitives whose
``repr`` is stable across interpreter runs (no ``hash()`` salting), so
the same configuration always lands on the same file.

Writes go through a temp file plus :func:`os.replace`, which is atomic on
POSIX — concurrent workers racing to fill the same key at worst duplicate
the synthesis, never corrupt the file. A writer that crashes (or is
killed by the launcher) before its rename leaves a ``*.tmp.npz`` orphan
behind; opening a store sweeps temps older than
:data:`STALE_TEMP_AGE_S`, while *young* temps — possibly a live write of
a concurrent worker on the shared directory — are left alone by both the
janitor and :meth:`CacheStore.clear`.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
import zipfile
from pathlib import Path
from typing import Optional

import numpy as np

CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"
"""Environment variable enabling disk spill for the default ambient cache."""

STALE_TEMP_AGE_S = 3600.0
"""Age beyond which an orphaned ``*.tmp.npz`` is presumed dead.

A live writer holds its temp file only for the duration of one
``np.savez`` (seconds at most); an hour-old temp means its writer
crashed before the atomic rename. Generous on purpose: reaping a live
temp would make that writer's ``os.replace`` fail, so the janitor errs
far to the safe side — a leaked orphan costs only disk until the next
store open."""


def _is_temp(path: Path) -> bool:
    """Whether ``path`` is an in-flight (or orphaned) write, not an entry."""
    return ".tmp." in path.name


def stable_key_digest(key: tuple) -> str:
    """Deterministic hex digest of a cache key tuple.

    Keys are built from primitives (ints, floats, bools, strings, None,
    nested tuples of the same), whose ``repr`` is stable across processes
    — unlike ``hash()``, which Python salts per interpreter run.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class CacheStore:
    """A directory of ``.npz`` files keyed by deterministic tuples.

    Args:
        directory: spill directory; created on first use.
        stale_temp_age_s: age (seconds) beyond which an orphaned temp
            file from a crashed writer is reaped on open; defaults to
            :data:`STALE_TEMP_AGE_S`.

    Attributes:
        corrupt_evictions: how many stored entries this instance found
            unreadable (truncated archive, bad zip, torn write that
            survived its rename) and reaped. A nonzero count in a chaos
            run is the ``corrupt-cache`` fault doing its job; a nonzero
            count in production means a writer lost power after rename —
            either way the entry was resynthesized, not served.
    """

    def __init__(self, directory, stale_temp_age_s: float = STALE_TEMP_AGE_S) -> None:
        self.directory = Path(directory)
        self.stale_temp_age_s = float(stale_temp_age_s)
        self.corrupt_evictions = 0
        self._save_ordinal = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sweep_stale_temps()

    def sweep_stale_temps(self, max_age_s: Optional[float] = None) -> int:
        """Reap ``*.tmp.npz`` orphans older than ``max_age_s``.

        Crashed writers (power loss, a worker killed mid-shard) leave
        their temp files behind forever otherwise — ``save`` names each
        temp uniquely via ``mkstemp``, so nothing ever overwrites or
        removes them in the normal path. Runs on every store open; young
        temps are left untouched because they may be live writes of a
        concurrent worker sharing the directory. Returns the number of
        files removed.
        """
        cutoff = time.time() - (
            self.stale_temp_age_s if max_age_s is None else float(max_age_s)
        )
        removed = 0
        for path in self.directory.glob("*.tmp.npz"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                # Renamed away or reaped by a concurrent janitor — either
                # way it is no longer an orphan.
                pass
        return removed

    def path_for(self, key: tuple) -> Path:
        """The file that does (or would) hold ``key``'s array."""
        return self.directory / f"{stable_key_digest(key)}.npz"

    def load(self, key: tuple) -> Optional[np.ndarray]:
        """Read the array stored for ``key``, or ``None`` when absent.

        A corrupt or truncated file — a machine lost power mid-write, or
        a torn write that survived its rename — reads as a miss AND is
        reaped (counted in :attr:`corrupt_evictions`), so the caller
        falls back to synthesis and the next reader is not tripped by the
        same bad bytes. A mid-sweep corrupt entry therefore costs one
        resynthesis, never an exception out of the sweep.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                stored_key = str(archive["key"])
                if stored_key != repr(key):
                    # A digest collision is astronomically unlikely; treat
                    # it as a miss instead of returning the wrong waveform.
                    # NOT corruption — the file is someone else's valid
                    # entry, so it is left in place.
                    return None
                return archive["value"]
        except FileNotFoundError:
            # Raced a concurrent clear()/eviction — a plain miss.
            return None
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, EOFError):
            self.corrupt_evictions += 1
            try:
                path.unlink()
            except OSError:
                pass  # a concurrent reader already reaped it
            return None

    def save(self, key: tuple, value: np.ndarray) -> Path:
        """Atomically persist ``value`` under ``key``; returns the path."""
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp.npz", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, value=np.asarray(value), key=np.asarray(repr(key)))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._maybe_corrupt(path)
        return path

    def _maybe_corrupt(self, path: Path) -> None:
        """Chaos hook: tear the just-renamed entry when a fault targets it.

        ``REPRO_FAULTS=corrupt-cache:<ordinal>`` truncates this store
        instance's ``ordinal``-th save to half its bytes *after* the
        atomic rename — the signature of a writer that renamed but lost
        power before its data blocks hit disk. Ordinals advance
        monotonically, so the fault fires exactly once per instance: the
        resynthesized replacement entry lands on a later ordinal, is
        written intact, and the chaos run converges.
        """
        from repro.engine.faults import active_plan

        ordinal = self._save_ordinal
        self._save_ordinal += 1
        if not active_plan().corrupt_save(ordinal):
            return
        try:
            size = path.stat().st_size
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        except OSError:  # pragma: no cover - entry raced away mid-fault
            pass

    def __len__(self) -> int:
        return sum(1 for path in self.directory.glob("*.npz") if not _is_temp(path))

    def clear(self) -> None:
        """Delete every spilled *entry* (used by tests and benchmarks).

        Consistent with ``__len__``: temp files are not entries and are
        not touched — unlinking a concurrent writer's live temp would
        make its atomic rename fail with ``FileNotFoundError``. Orphaned
        temps are the janitor's job (:meth:`sweep_stale_temps`).
        """
        for path in self.directory.glob("*.npz"):
            if _is_temp(path):
                continue
            try:
                path.unlink()
            except OSError:
                pass

"""Cost-model backend planner: per-partition executor + chunk selection.

BENCH_engine.json shows backend choice is *grid-dependent*: the batched
backend wins ~1.3-1.5x on fading and stereo grids (short rows, wide
stacks — per-point Python dispatch amortizes across the stack) but loses
~2x on the warm-cache Fig. 8 grid (long rows narrow the
``REPRO_BATCH_MAX_MB`` chunker until the vectorized passes are
memory-bound with nothing left to amortize). Hand-picking
``REPRO_SWEEP_BACKEND`` per figure is the user's problem today; this
module makes it the engine's.

The ``auto`` backend plans before it executes:

1. :func:`extract_features` derives per-partition predictors from the
   compiled scenario *without synthesizing anything*: stack width,
   waveform length in samples (exact — the composite is the payload
   upsampled to the MPX rate), stereo/fading/receiver mix,
   measure-driven flags, and ambient-cache warmth probed through
   :meth:`~repro.engine.cache.AmbientCache.contains` on the same keys
   :func:`~repro.engine.execution.composite_entry` gives the process
   backend's store warm-up. Partitions are keyed exactly like the
   batched executor's (front-end group x receiver signature), so every
   decision maps one-to-one onto a stack the executor will actually run.
2. :func:`estimate` prices each partition under every executor with an
   analytic model parameterized by a small set of calibration constants
   (per-point dispatch cost, serial and vectorized per-sample
   throughputs at short/long row anchors, process-pool spawn cost, ...).
   Defaults ship in a versioned ``calibration.json`` measured once;
   ``repro-calibrate`` (``python -m repro.engine.planner``) re-measures
   them for the host in a few seconds, and ``REPRO_PLANNER_CALIBRATION``
   points the planner at the result.
3. :func:`plan_sweep` picks the cheapest executor per partition and
   :func:`plan_and_run` dispatches *heterogeneously* — one grid's
   short-row partitions can ride the batched stack while its long-row
   partitions run serially — reusing the same per-point pre-derived
   seeds every backend uses, so results stay bit-identical in grid
   order. Every decision (executor, chunk rows, predicted costs, feature
   vector) is recorded on :attr:`~repro.engine.results.SweepResult.plan`
   for audit and prediction-error scoring.

Heterogeneous splits are disabled (the whole grid gets the single
cheapest executor) when any link carries a *live* stateful fading model:
such models consume their random stream in grid order across points, so
splitting the grid between executors would reorder the draws. Frozen
declarative specs (:class:`~repro.channel.fading.MotionFadingSpec`)
resolve from each point's own stream and split freely.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.engine.cache import AmbientCache
from repro.engine.execution import composite_entry, execute_point
from repro.engine.scenario import GridPoint, Scenario
from repro.errors import ConfigurationError
from repro.utils.env import fast_numerics

CALIBRATION_ENV_VAR = "REPRO_PLANNER_CALIBRATION"
"""Environment override: path to a ``repro-calibrate``-written JSON file.
A set-but-unreadable/invalid path raises :class:`ConfigurationError`
naming the variable — never a silent fall-back to defaults."""

DEFAULT_CALIBRATION_PATH = Path(__file__).with_name("calibration.json")
"""The versioned default constants shipped with the package."""

CALIBRATION_VERSION = 1

EXECUTORS = ("serial", "thread", "process", "batched")
"""Executors the planner chooses among (the four explicit backends)."""

_MPX_PER_AUDIO = int(round(MPX_RATE_HZ / AUDIO_RATE_HZ))


@dataclass(frozen=True)
class CalibrationConstants:
    """Host-measured constants parameterizing the analytic cost model.

    Times are seconds unless the name says ``_ns`` (nanoseconds per
    sample — per-sample throughputs are sub-microsecond, and ns keeps the
    JSON readable). The vectorized per-sample cost is log-interpolated
    between two measured row-length anchors: short rows admit wide stacks
    whose dispatch amortization makes vector throughput *better* than
    serial, long rows narrow the chunker until it is *worse* (the
    measured Fig. 8 regression). Defaults here are conservative
    fallbacks; the shipped ``calibration.json`` overrides them with
    measured values.
    """

    point_overhead_s: float = 4.0e-3
    """Fixed per-point cost of the serial path (chain build, filter
    design, resampler setup, Python dispatch)."""

    serial_sample_ns: float = 110.0
    """Per-IQ-sample cost of the serial link + mono receive path."""

    vector_sample_short_ns: float = 55.0
    """Vectorized per-sample cost at (and below) ``short_row_samples``."""

    vector_sample_long_ns: float = 180.0
    """Vectorized per-sample cost at (and above) ``long_row_samples``."""

    short_row_samples: int = 30_000
    """Row-length anchor for ``vector_sample_short_ns``."""

    long_row_samples: int = 200_000
    """Row-length anchor for ``vector_sample_long_ns``."""

    chunk_setup_s: float = 1.0e-3
    """Per-chunk cost of one stacked transmit + demodulate pass."""

    stereo_serial_factor: float = 3.0
    """Serial sample-cost multiplier when the receiver stereo-decodes
    (the scalar pilot PLL dominates a stereo point)."""

    stereo_vector_factor: float = 1.5
    """Vectorized sample-cost multiplier for stereo partitions (the
    multi-waveform PLL amortizes most of the scalar cost)."""

    fading_serial_factor: float = 1.15
    """Serial sample-cost multiplier for a fading link (envelope
    synthesis + per-sample scaling)."""

    fading_vector_factor: float = 1.15
    """Vectorized sample-cost multiplier for a fading link (stacked
    envelope synthesis)."""

    thread_speedup: float = 1.0
    """Measured whole-grid speedup of the thread pool over serial (the
    per-point NumPy work rarely releases the GIL long enough to win)."""

    process_spawn_s: float = 0.35
    """Process-pool spawn + worker warm-up cost (paid once per sweep)."""

    process_speedup: float = 1.0
    """Measured whole-grid compute speedup of the process pool over
    serial, spawn excluded (IPC + per-worker cache loads eat the rest).
    The conservative default means pools are only ever *chosen* on hosts
    where ``repro-calibrate`` measured a real win."""

    synth_sample_ns: float = 700.0
    """Per-sample cost of one cold front-end synthesis (program audio +
    composite MPX + FM modulation), paid once per cold partition on
    every backend alike."""

    fast_vector_factor: float = 0.75
    """Vectorized sample-cost multiplier applied under
    ``REPRO_NUMERICS=fast``: the fused 2-D kernels and single-precision
    receive chain cut the batched path's per-sample cost by roughly a
    quarter on the measured grids, which shifts the serial/batched
    crossover toward wider use of the batched executor. Serial costs are
    left unscaled — fast mode's fusion only pays off across rows."""

    def vector_sample_ns(self, n_samples: int) -> float:
        """Per-sample vectorized cost at a given row length.

        Log-linear interpolation between the two measured anchors,
        clamped outside them: the regime change is driven by the chunk
        working set crossing the cache hierarchy, which tracks the
        *ratio* of row lengths rather than their difference.
        """
        lo, hi = self.short_row_samples, self.long_row_samples
        if n_samples <= lo or hi <= lo:
            return self.vector_sample_short_ns
        if n_samples >= hi:
            return self.vector_sample_long_ns
        frac = math.log(n_samples / lo) / math.log(hi / lo)
        return (
            self.vector_sample_short_ns
            + frac * (self.vector_sample_long_ns - self.vector_sample_short_ns)
        )

    def to_payload(self, host: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
        """The JSON document ``repro-calibrate`` writes."""
        return {
            "version": CALIBRATION_VERSION,
            "host": dict(host) if host is not None else host_context(),
            "constants": dataclasses.asdict(self),
        }


def host_context() -> Dict[str, object]:
    """CPU/numpy/platform fingerprint stored beside measured constants.

    Shared with the benchmark artifact writer, so crossover constants in
    the perf trajectory stay interpretable across machines.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def load_calibration(path: Optional[str] = None) -> CalibrationConstants:
    """The active calibration constants, strictly parsed.

    Resolution order: explicit ``path`` argument, the
    ``REPRO_PLANNER_CALIBRATION`` environment variable, the packaged
    ``calibration.json``, and finally the dataclass defaults (only when
    the packaged file is missing, e.g. a source tree stripped of data
    files). A path the *user* named must exist and parse — a typo'd
    override silently planning with defaults would be worse than the
    crash.
    """
    source = "argument"
    if path is None:
        path = os.environ.get(CALIBRATION_ENV_VAR, "").strip() or None
        source = CALIBRATION_ENV_VAR
    if path is None:
        if not DEFAULT_CALIBRATION_PATH.exists():
            return CalibrationConstants()
        path, source = str(DEFAULT_CALIBRATION_PATH), "default"
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"planner calibration file {path!r} (from {source}) is unreadable: {exc}"
        ) from None
    if not isinstance(payload, dict) or payload.get("version") != CALIBRATION_VERSION:
        raise ConfigurationError(
            f"planner calibration file {path!r} has version "
            f"{payload.get('version')!r}, expected {CALIBRATION_VERSION} "
            "(re-run repro-calibrate)"
        )
    constants = payload.get("constants")
    if not isinstance(constants, dict):
        raise ConfigurationError(
            f"planner calibration file {path!r} has no 'constants' table"
        )
    known = {f.name for f in dataclasses.fields(CalibrationConstants)}
    unknown = sorted(set(constants) - known)
    if unknown:
        raise ConfigurationError(
            f"planner calibration file {path!r} has unknown constants "
            f"{unknown} (version skew? re-run repro-calibrate)"
        )
    return CalibrationConstants(**constants)


@dataclass(frozen=True)
class PartitionFeatures:
    """Per-partition predictors the cost model prices.

    Attributes:
        label: human-readable partition tag (receiver kind + decode mode
            + row length), stable enough to grep in a recorded plan.
        positions: positions into the *run's* point list (after any
            ``point_slice``), in grid order.
        n_points: stack width (grid points sharing this partition).
        n_samples: IQ samples per row — exact by construction, the
            payload length upsampled to the MPX rate.
        stereo: partition decodes through the stereo (multi-waveform
            PLL) batch rather than the mono batch.
        fading_points: how many of the points carry a fading link.
        measure_driven: the measure transmits internally (no
            runner-performed transmission exists to vectorize).
        cache_warm: the partition's front-end composite is already in
            the ambient cache (memory or disk store probe) — a cold one
            pays one synthesis regardless of executor.
        chunk_rows: rows of one vectorized chunk under the current
            ``REPRO_BATCH_MAX_MB`` budget (capped by the stack width).
        batchable: the batched executor can take this partition at all.
    """

    label: str
    positions: Tuple[int, ...]
    n_points: int
    n_samples: int
    stereo: bool
    fading_points: int
    measure_driven: bool
    cache_warm: bool
    chunk_rows: int
    batchable: bool

    def as_dict(self) -> Dict[str, object]:
        record = dataclasses.asdict(self)
        record["positions"] = list(self.positions)
        return record


@dataclass(frozen=True)
class PlanDecision:
    """One partition's audited planning outcome, recorded on the result.

    Attributes:
        partition: the partition's feature label.
        point_indices: ``GridPoint.index`` of every member, grid order —
            global indices, so shard plans merge unambiguously.
        backend: the executor chosen for the partition.
        chunk_rows: vectorized chunk budget in rows (1 for serial paths).
        predicted_s: the cost model's estimate per candidate executor.
        features: the feature vector the decision was priced on.
    """

    partition: str
    point_indices: Tuple[int, ...]
    backend: str
    chunk_rows: int
    predicted_s: Mapping[str, float]
    features: Mapping[str, object]


@dataclass
class SweepPlan:
    """Everything ``auto`` decided for one grid."""

    decisions: List[PlanDecision]
    by_backend: Dict[str, List[int]]
    label: str


def _fading_value(scenario: Scenario, point: GridPoint) -> Optional[object]:
    return scenario.chain_kwargs(point).get("fading")


def _is_live_fading(fading: object) -> bool:
    """A stateful model instance (vs a frozen per-point-resolved spec)."""
    return fading is not None and hasattr(fading, "envelope")


def extract_features(
    scenario: Scenario,
    data: Mapping[str, object],
    points: Sequence[GridPoint],
    cache: Optional[AmbientCache],
    ambient_master: int,
) -> Tuple[List[PartitionFeatures], bool]:
    """Partition the grid exactly as the batched executor would and
    derive each partition's predictors.

    Returns ``(features, splittable)``: ``splittable`` is False when a
    live stateful fading model forces a single uniform executor for the
    whole grid (see module docstring).

    Cheap by construction: builds chain/stage value objects and probes
    cache keys, but never synthesizes a waveform or a receiver noise
    stream.
    """
    if scenario.measure_driven or not points:
        features = PartitionFeatures(
            label="measure-driven",
            positions=tuple(range(len(points))),
            n_points=len(points),
            n_samples=0,
            stereo=False,
            fading_points=0,
            measure_driven=True,
            cache_warm=True,
            chunk_rows=1,
            batchable=False,
        )
        return [features], True

    from repro.engine.batch_backend import chunk_limit
    from repro.experiments.common import ExperimentChain

    batchable_scenario = cache is not None and scenario.cache_ambient

    partitions: "Dict[tuple, List[int]]" = {}
    part_chain: Dict[tuple, ExperimentChain] = {}
    part_payload: Dict[tuple, np.ndarray] = {}
    fading_counts: Dict[tuple, int] = {}
    splittable = True
    for pos, point in enumerate(points):
        chain = ExperimentChain(**scenario.chain_kwargs(point))
        payload = scenario.payload_for(point, data)
        stage = chain.receive_stage()
        # Mirrors the executor's two-level grouping: the front-end group
        # key, then the receiver-homogeneity signature (derived from the
        # stage rather than a built receiver, so no RNG draw happens).
        stereo = stage.receiver_kind == "car" or stage.stereo_decode
        key = (
            chain.front_end_key(),
            scenario.variant_for(point),
            payload.shape[-1],
            id(payload),
            stage,
            stereo,
        )
        members = partitions.setdefault(key, [])
        members.append(pos)
        if key not in part_chain:
            part_chain[key] = chain
            part_payload[key] = payload
        fading = _fading_value(scenario, point)
        if fading is not None:
            fading_counts[key] = fading_counts.get(key, 0) + 1
            if _is_live_fading(fading):
                splittable = False

    features: List[PartitionFeatures] = []
    for key, positions in partitions.items():
        chain, payload = part_chain[key], part_payload[key]
        stage, stereo = key[4], key[5]
        n_samples = int(payload.shape[-1]) * _MPX_PER_AUDIO
        warm = False
        if batchable_scenario:
            _, _, composite_key = composite_entry(
                scenario, points[positions[0]], payload, cache, ambient_master
            )
            warm = cache.contains(composite_key)
        features.append(
            PartitionFeatures(
                label=(
                    f"{stage.receiver_kind}/{'stereo' if stereo else 'mono'}"
                    f"@{n_samples}"
                ),
                positions=tuple(positions),
                n_points=len(positions),
                n_samples=n_samples,
                stereo=bool(stereo),
                fading_points=fading_counts.get(key, 0),
                measure_driven=False,
                cache_warm=warm,
                chunk_rows=min(len(positions), chunk_limit(n_samples)),
                batchable=batchable_scenario,
            )
        )
    return features, splittable


def estimate(
    features: PartitionFeatures,
    calibration: Optional[CalibrationConstants] = None,
    max_workers: int = 1,
    picklable: bool = False,
) -> Dict[str, float]:
    """Predicted wall-clock seconds of one partition per executor.

    Executors a partition cannot run on are omitted: ``batched`` needs a
    batchable partition, ``process`` a picklable scenario, and pool
    backends more than one point. Measure-driven partitions price only
    ``serial`` — the engine knows nothing about the inside of their
    measures, and guessing would let noise flip the default away from
    the reference semantics.
    """
    c = calibration if calibration is not None else load_calibration()
    if features.measure_driven:
        return {"serial": features.n_points * c.point_overhead_s}

    p, s = features.n_points, features.n_samples
    fading_frac = features.fading_points / p if p else 0.0
    synth_s = 0.0 if features.cache_warm else s * c.synth_sample_ns * 1e-9

    serial_mix = 1.0 + fading_frac * (c.fading_serial_factor - 1.0)
    if features.stereo:
        serial_mix *= c.stereo_serial_factor
    serial_s = synth_s + p * (
        c.point_overhead_s + s * c.serial_sample_ns * 1e-9 * serial_mix
    )
    costs = {"serial": serial_s}

    if p > 1 and max_workers > 1:
        # Calibrated pool speedups can't exceed the workers available to
        # *this* runner — on a single-worker host pools never win.
        thread_eff = min(c.thread_speedup, float(max_workers))
        costs["thread"] = synth_s + (serial_s - synth_s) / max(thread_eff, 1e-6)
        if picklable:
            # The parent warms the shared store, so synthesis is serial
            # either way; only the compute scales with the pool.
            process_eff = min(c.process_speedup, float(max_workers))
            costs["process"] = (
                synth_s
                + c.process_spawn_s
                + (serial_s - synth_s) / max(process_eff, 1e-6)
            )
    if features.batchable:
        vector_mix = 1.0 + fading_frac * (c.fading_vector_factor - 1.0)
        if features.stereo:
            vector_mix *= c.stereo_vector_factor
        if fast_numerics():
            vector_mix *= c.fast_vector_factor
        n_chunks = math.ceil(p / features.chunk_rows)
        costs["batched"] = (
            synth_s
            + n_chunks * c.chunk_setup_s
            + p * s * c.vector_sample_ns(s) * 1e-9 * vector_mix
        )
    return costs


def plan_sweep(
    scenario: Scenario,
    data: Mapping[str, object],
    points: Sequence[GridPoint],
    cache: Optional[AmbientCache],
    ambient_master: int,
    max_workers: int = 1,
    calibration: Optional[CalibrationConstants] = None,
) -> SweepPlan:
    """Choose the cheapest executor (and chunk budget) per partition."""
    calibration = calibration if calibration is not None else load_calibration()
    features, splittable = extract_features(
        scenario, data, points, cache, ambient_master
    )
    picklable = False
    if not scenario.measure_driven and len(points) > 1:
        try:
            scenario.require_picklable()
            picklable = True
        except ConfigurationError:
            picklable = False

    predictions = [
        estimate(f, calibration, max_workers=max_workers, picklable=picklable)
        for f in features
    ]
    choices = [min(costs, key=costs.get) for costs in predictions]
    if not splittable and len(set(choices)) > 1:
        # A live stateful fading model consumes its stream in grid order
        # across the whole grid: pick ONE executor — the grid-total
        # cheapest among those every partition supports — so the
        # consumption order matches a pure single-backend run.
        common = set.intersection(*(set(costs) for costs in predictions))
        totals = {
            backend: sum(costs[backend] for costs in predictions)
            for backend in common
        }
        uniform = min(totals, key=totals.get)
        choices = [uniform] * len(features)

    decisions: List[PlanDecision] = []
    by_backend: Dict[str, List[int]] = {}
    for f, costs, backend in zip(features, predictions, choices):
        decisions.append(
            PlanDecision(
                partition=f.label,
                point_indices=tuple(points[pos].index for pos in f.positions),
                backend=backend,
                chunk_rows=f.chunk_rows if backend == "batched" else 1,
                predicted_s={k: round(v, 6) for k, v in costs.items()},
                features=f.as_dict(),
            )
        )
        by_backend.setdefault(backend, []).extend(f.positions)
    for positions in by_backend.values():
        positions.sort()
    label = "auto[" + "+".join(
        f"{backend}:{len(by_backend[backend])}" for backend in sorted(by_backend)
    ) + "]"
    return SweepPlan(decisions=decisions, by_backend=by_backend, label=label)


def plan_and_run(
    scenario: Scenario,
    data: Dict[str, object],
    points: Sequence[GridPoint],
    seeds: Sequence[int],
    cache: Optional[AmbientCache],
    ambient_master: int,
    max_workers: int = 1,
) -> Tuple[List[object], int, int, List[PlanDecision], str]:
    """Plan the grid, then execute each partition on its chosen backend.

    Bit-identity across any split holds for the same reason it holds
    across whole-grid backends: every point's stream seed is pre-derived
    before execution, and each executor rebuilds ``default_rng(seed)``
    per point (splits are disabled when a live stateful fading model
    makes grid-order consumption span points — see :func:`plan_sweep`).

    Returns:
        ``(values, n_fallbacks, n_workers, decisions, label)`` — values
        in grid order; ``n_fallbacks`` counts batch-eligible points the
        batched executor bounced to its serial fallback (points the
        *planner* routed to serial are decisions, not fallbacks).
    """
    plan = plan_sweep(
        scenario, data, points, cache, ambient_master, max_workers=max_workers
    )
    values: List[object] = [None] * len(points)
    n_fallbacks = 0
    n_workers = 1
    for backend, positions in plan.by_backend.items():
        if backend == "batched":
            from repro.engine.batch_backend import run_batched_backend

            sub_values, _, sub_fallbacks = run_batched_backend(
                scenario,
                data,
                [points[pos] for pos in positions],
                [seeds[pos] for pos in positions],
                cache,
                ambient_master,
            )
            n_fallbacks += sub_fallbacks
            for pos, value in zip(positions, sub_values):
                values[pos] = value
        elif backend == "thread":
            from concurrent.futures import ThreadPoolExecutor

            n_workers = max(n_workers, max_workers)
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                sub_values = list(
                    pool.map(
                        lambda pos: execute_point(
                            scenario, points[pos], seeds[pos], data, cache,
                            ambient_master,
                        ),
                        positions,
                    )
                )
            for pos, value in zip(positions, sub_values):
                values[pos] = value
        elif backend == "process":
            from repro.engine.process_backend import run_process_backend

            n_workers = max(n_workers, max_workers)
            sub_values = run_process_backend(
                scenario,
                data,
                [points[pos] for pos in positions],
                [seeds[pos] for pos in positions],
                cache,
                ambient_master,
                max_workers,
            )
            for pos, value in zip(positions, sub_values):
                values[pos] = value
        else:  # serial
            for pos in positions:
                values[pos] = execute_point(
                    scenario, points[pos], seeds[pos], data, cache, ambient_master
                )
    return values, n_fallbacks, n_workers, plan.decisions, plan.label


# --------------------------------------------------------------------------
# Calibration: measure the constants on this host with tiny real sweeps.
# --------------------------------------------------------------------------


def _calibration_measure(run):
    """Module-level measure (picklable) used by calibration sweeps."""
    return float(np.mean(np.abs(run.received.mono)))


def _calibration_scenario(
    name: str,
    n_points: int,
    duration_s: float,
    stereo: bool = False,
    fading: bool = False,
):
    """A one-partition link-budget grid: ``n_points`` rows of
    ``duration_s`` payload through the silence front end."""
    from repro.audio.tones import tone
    from repro.engine.scenario import Scenario, SweepSpec

    payload = tone(1000.0, duration_s, AUDIO_RATE_HZ, amplitude=0.9)
    base_chain = {
        "program": "silence",
        "power_dbm": -40.0,
        "stereo_decode": stereo,
        "back_amplitude": 0.25,
    }
    if fading:
        from repro.channel.fading import MotionFadingSpec

        base_chain["fading"] = MotionFadingSpec("running")
    return Scenario(
        name=name,
        sweep=SweepSpec.grid(distance_ft=tuple(2 + i for i in range(n_points))),
        prepare=lambda gen: {"payload": payload},
        base_chain=base_chain,
        chain_axes=("distance_ft",),
        payload="payload",
        measure=_calibration_measure,
    )


def _time_backend(scenario, backend: str, cache, repeats: int = 2, **kwargs) -> float:
    """Best-of-``repeats`` wall time of one warm run (seconds)."""
    from repro.engine.runner import SweepRunner

    best = math.inf
    for _ in range(repeats):
        result = SweepRunner(
            scenario, rng=2017, cache=cache, backend=backend, **kwargs
        ).run()
        best = min(best, result.elapsed_s)
    return best


def calibrate(quick: bool = False) -> CalibrationConstants:
    """Measure the cost-model constants on this host (a few seconds).

    Runs small *real* sweeps — the same code paths the planner prices —
    and solves for the constants: two serial mono grids at a short and a
    long row length pin the per-point overhead and serial throughput;
    their batched counterparts pin the vectorized throughput anchors; a
    cold-vs-warm pair prices synthesis; stereo/fading variants measure
    the mix multipliers; and (unless ``quick``) a thread run, a process
    run and a bare pool spawn price the pool backends.
    """
    from repro.engine.batch_backend import chunk_limit

    d = CalibrationConstants()
    cache = AmbientCache()
    p_short, dur_short = 16, 0.05
    p_long, dur_long = 6, 0.4
    s_short = int(dur_short * AUDIO_RATE_HZ) * _MPX_PER_AUDIO
    s_long = int(dur_long * AUDIO_RATE_HZ) * _MPX_PER_AUDIO
    short = _calibration_scenario("calib_short", p_short, dur_short)
    long_ = _calibration_scenario("calib_long", p_long, dur_long)

    # Cold pass: warms the cache for everything below AND prices one
    # synthesis (cold minus warm, divided by the composite length).
    t_cold_long = _time_backend(long_, "serial", cache, repeats=1)
    t_serial_short = _time_backend(short, "serial", cache)
    t_serial_long = _time_backend(long_, "serial", cache)
    synth_sample_ns = max(
        (t_cold_long - t_serial_long) / s_long * 1e9, 1.0
    )

    per_point_short = t_serial_short / p_short
    per_point_long = t_serial_long / p_long
    serial_sample_ns = max(
        (per_point_long - per_point_short) / (s_long - s_short) * 1e9, 1.0
    )
    point_overhead_s = max(
        per_point_short - s_short * serial_sample_ns * 1e-9, 1.0e-5
    )

    def vector_ns(t_batched: float, p: int, s: int) -> float:
        n_chunks = math.ceil(p / max(1, min(p, chunk_limit(s))))
        return max((t_batched - n_chunks * d.chunk_setup_s) / (p * s) * 1e9, 1.0)

    t_batched_short = _time_backend(short, "batched", cache)
    t_batched_long = _time_backend(long_, "batched", cache)
    vector_short = vector_ns(t_batched_short, p_short, s_short)
    vector_long = vector_ns(t_batched_long, p_long, s_long)

    constants = {
        "point_overhead_s": point_overhead_s,
        "serial_sample_ns": serial_sample_ns,
        "vector_sample_short_ns": vector_short,
        "vector_sample_long_ns": vector_long,
        "short_row_samples": s_short,
        "long_row_samples": s_long,
        "synth_sample_ns": synth_sample_ns,
    }
    if not quick:
        interp = CalibrationConstants(**constants)
        p_mix, dur_mix = 8, 0.1
        s_mix = int(dur_mix * AUDIO_RATE_HZ) * _MPX_PER_AUDIO
        base_serial_s = s_mix * serial_sample_ns * 1e-9
        base_vector_s = s_mix * interp.vector_sample_ns(s_mix) * 1e-9

        stereo = _calibration_scenario("calib_stereo", p_mix, dur_mix, stereo=True)
        _time_backend(stereo, "serial", cache, repeats=1)  # warm its composite
        t_ss = _time_backend(stereo, "serial", cache)
        t_sb = _time_backend(stereo, "batched", cache)
        constants["stereo_serial_factor"] = max(
            (t_ss / p_mix - point_overhead_s) / base_serial_s, 1.0
        )
        constants["stereo_vector_factor"] = max(
            vector_ns(t_sb, p_mix, s_mix) * 1e-9 * s_mix / base_vector_s, 1.0
        )

        fading = _calibration_scenario("calib_fade", p_mix, dur_mix, fading=True)
        _time_backend(fading, "serial", cache, repeats=1)
        t_fs = _time_backend(fading, "serial", cache)
        t_fb = _time_backend(fading, "batched", cache)
        constants["fading_serial_factor"] = max(
            (t_fs / p_mix - point_overhead_s) / base_serial_s, 1.0
        )
        constants["fading_vector_factor"] = max(
            vector_ns(t_fb, p_mix, s_mix) * 1e-9 * s_mix / base_vector_s, 1.0
        )

        workers = min(4, os.cpu_count() or 1)
        if workers > 1:
            t_thread = _time_backend(
                short, "thread", cache, max_workers=workers
            )
            constants["thread_speedup"] = min(
                max(t_serial_short / max(t_thread, 1e-6), 0.5), float(workers)
            )

            import time
            from concurrent.futures import ProcessPoolExecutor

            t0 = time.perf_counter()
            with ProcessPoolExecutor(max_workers=workers) as pool:
                list(pool.map(int, range(workers)))
            spawn_s = time.perf_counter() - t0
            t_process = _time_backend(
                short, "process", cache, repeats=1, max_workers=workers
            )
            constants["process_spawn_s"] = spawn_s
            constants["process_speedup"] = min(
                max(
                    t_serial_short / max(t_process - spawn_s, 1e-3), 0.1
                ),
                float(workers),
            )
    return CalibrationConstants(**constants)


def write_calibration(
    constants: CalibrationConstants, path: os.PathLike
) -> None:
    """Atomically write a ``repro-calibrate`` JSON document."""
    import tempfile

    target = Path(path)
    payload = json.dumps(constants.to_payload(), indent=2, sort_keys=True) + "\n"
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-calibrate``: measure this host, write ``calibration.json``."""
    import argparse

    default_out = os.environ.get(CALIBRATION_ENV_VAR, "").strip() or str(
        DEFAULT_CALIBRATION_PATH
    )
    parser = argparse.ArgumentParser(
        prog="repro-calibrate",
        description=(
            "Measure the sweep planner's cost-model constants on this host "
            "(a few seconds of micro-sweeps) and write them as JSON. Point "
            f"{CALIBRATION_ENV_VAR} at the output to activate it."
        ),
    )
    parser.add_argument(
        "-o",
        "--output",
        default=default_out,
        help=f"output path (default: {default_out})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the stereo/fading/pool measurements (ship defaults)",
    )
    args = parser.parse_args(argv)
    constants = calibrate(quick=args.quick)
    write_calibration(constants, args.output)
    print(f"wrote {args.output}")
    for name, value in sorted(dataclasses.asdict(constants).items()):
        print(f"  {name:>24} = {value:.6g}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Single-point execution shared by every sweep backend.

:func:`execute_point` is the one place that turns (scenario, grid point,
pre-derived seed) into a measured value. The serial and thread backends
call it directly; the process backend calls it inside each worker with
the worker's own cache; the batched backend falls back to it for points
it cannot vectorize. Keeping the RNG discipline here — build the point
generator from the pre-derived seed, attach the cached ambient, let the
chain consume its station/link/receiver children in order — is what
makes all four backends bit-identical.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.engine.cache import AmbientCache, CachedAmbient
from repro.engine.scenario import GridPoint, PointRun, Scenario
from repro.errors import ConfigurationError


def make_ambient(
    scenario: Scenario,
    point: GridPoint,
    cache: Optional[AmbientCache],
    ambient_master: int,
) -> Optional[CachedAmbient]:
    """The point's cache-backed ambient source (``None`` when caching is off)."""
    if cache is None or not scenario.cache_ambient:
        return None
    ambient = CachedAmbient(cache, ambient_master)
    if scenario.ambient_variant is not None:
        ambient = ambient.with_variant(scenario.variant_for(point))
    return ambient


def composite_entry(
    scenario: Scenario,
    point: GridPoint,
    payload: np.ndarray,
    cache: Optional[AmbientCache],
    ambient_master: int,
):
    """The point's (ambient view, front end, composite cache key) triple.

    One place derives the deterministic key a point's front-end composite
    lives under, so the process backend's store warm-up and the planner's
    cache-warmth probes can never disagree about which entry a point will
    request. Builds only cheap value objects — no synthesis happens here.
    """
    from repro.experiments.common import ExperimentChain

    front_end = ExperimentChain(**scenario.chain_kwargs(point)).front_end()
    ambient = make_ambient(scenario, point, cache, ambient_master)
    key = ambient.composite_key(front_end, payload)
    return ambient, front_end, key


def execute_point(
    scenario: Scenario,
    point: GridPoint,
    seed: int,
    data: Dict[str, object],
    cache: Optional[AmbientCache],
    ambient_master: int,
) -> object:
    """Run one grid point to its measured value.

    Args:
        scenario: the sweep being executed.
        point: the grid cell.
        seed: the point's pre-derived stream seed (already mixed from the
            sweep master and the scenario's per-point keys).
        data: the shared dict from ``scenario.prepare``.
        cache: ambient cache for this process (``None`` disables caching).
        ambient_master: sweep-level ambient seed.
    """
    point_rng = np.random.default_rng(seed)
    ambient = make_ambient(scenario, point, cache, ambient_master)
    chain = None
    received = None
    if scenario.uses_chain:
        # Imported here: repro.experiments.common is a consumer of the
        # engine package in every other respect.
        from repro.experiments.common import ExperimentChain

        chain = ExperimentChain(**scenario.chain_kwargs(point))
        chain.ambient_source = ambient
    payload = scenario.payload_for(point, data)
    if payload is not None:
        if chain is None:
            raise ConfigurationError(
                f"scenario {scenario.name!r} declares a payload but no chain "
                "(set base_chain / chain_axes / chain_value_params)"
            )
        received = chain.transmit(payload, point_rng)
    run = PointRun(
        point=point,
        rng=point_rng,
        data=data,
        ambient=ambient,
        chain=chain,
        received=received,
    )
    return scenario.measure(run, **scenario.measure_params)

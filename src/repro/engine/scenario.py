"""Declarative sweep scenarios.

A :class:`Scenario` captures everything a paper-figure experiment used to
hand-roll in nested for-loops: the parameter grid (:class:`SweepSpec`),
how each grid point configures the simulation chain, how the per-point
random stream is derived from the sweep seed, and what to measure. The
:class:`~repro.engine.runner.SweepRunner` turns the declaration into
(optionally parallel) execution with ambient caching.

Per-point RNG derivation mirrors the legacy loops exactly: child
generators are drawn from the sweep generator serially in grid order
*before* any point executes, so serial and parallel execution produce
bit-identical results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Axis:
    """One sweep dimension: a name and its ordered values."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} has no values")


class SweepSpec:
    """An ordered set of axes whose product is the sweep grid.

    Grid points enumerate in row-major order (first axis outermost),
    matching how the legacy experiment loops nested.
    """

    def __init__(self, axes: Sequence[Axis]) -> None:
        if not axes:
            raise ConfigurationError("a sweep needs at least one axis")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axis names in {names}")
        self.axes: Tuple[Axis, ...] = tuple(axes)

    @classmethod
    def grid(cls, **axes: Sequence[object]) -> "SweepSpec":
        """Build a spec from keyword axes, preserving declaration order."""
        return cls([Axis(name, tuple(values)) for name, values in axes.items()])

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(axis.values) for axis in self.axes)

    @property
    def n_points(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def axis(self, name: str) -> Axis:
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise KeyError(f"no axis named {name!r} (have {self.names})")

    def points(self) -> List["GridPoint"]:
        """All grid points in row-major order."""
        combos = itertools.product(*(axis.values for axis in self.axes))
        return [
            GridPoint(index=i, coords=dict(zip(self.names, combo)))
            for i, combo in enumerate(combos)
        ]


@dataclass(frozen=True)
class GridPoint:
    """One cell of the sweep grid.

    Attributes:
        index: position in row-major grid order.
        coords: axis name -> value for this cell.
    """

    index: int
    coords: Mapping[str, object]

    def __getitem__(self, name: str) -> object:
        return self.coords[name]

    def get(self, name: str, default: object = None) -> object:
        return self.coords.get(name, default)

    @property
    def values(self) -> Tuple[object, ...]:
        return tuple(self.coords.values())


@dataclass
class PointRun:
    """Everything a scenario's ``measure`` callable gets for one point.

    Attributes:
        point: the grid cell being evaluated.
        rng: the point's private generator (pre-derived, deterministic).
        data: the shared read-only dict returned by ``Scenario.prepare``.
        ambient: ambient-station source (cache-backed, or ``None`` when
            caching is disabled); measures that build their own chains can
            attach it or derive per-transmission variants via
            ``ambient.with_variant(...)``.
        chain: the pre-built :class:`~repro.experiments.common.ExperimentChain`
            for scenarios that declare ``chain_params`` (``None`` otherwise).
    """

    point: GridPoint
    rng: np.random.Generator
    data: Dict[str, object]
    ambient: Optional[object] = None
    chain: Optional[object] = None


def _default_rng_keys(scenario: "Scenario", point: GridPoint) -> Tuple[object, ...]:
    return (scenario.name,) + point.values


@dataclass
class Scenario:
    """Declarative description of one experiment sweep.

    Attributes:
        name: scenario label (also the default RNG key prefix).
        sweep: the parameter grid.
        measure: per-point measurement, ``measure(run: PointRun) -> value``.
        prepare: optional setup run once before the grid, receiving the
            sweep generator; returns the shared ``data`` dict (payload
            bits, reference audio, ...). Draws from the generator here
            happen *before* per-point derivation, exactly like the
            preamble of the legacy loops.
        base_chain: common :class:`ExperimentChain` kwargs; ``None`` means
            the scenario does not use runner-built chains.
        chain_params: per-point chain kwargs merged over ``base_chain``.
        rng_keys: per-point key tuple fed to
            :func:`repro.utils.rand.child_generator`; defaults to
            ``(name, *point.values)``. Figure modules override this to
            reproduce their legacy derivations.
        ambient_variant: optional per-point cache-key variant so selected
            points (e.g. MRC repetitions) get independent ambient program
            audio instead of sharing one synthesis.
        cache_ambient: share ambient MPX / modulated carriers across grid
            points through the runner's cache (the legacy loops
            resynthesized per point).
    """

    name: str
    sweep: SweepSpec
    measure: Callable[[PointRun], object]
    prepare: Optional[Callable[[np.random.Generator], Dict[str, object]]] = None
    base_chain: Optional[Dict[str, object]] = None
    chain_params: Optional[Callable[[GridPoint], Dict[str, object]]] = None
    rng_keys: Optional[Callable[[GridPoint], Tuple[object, ...]]] = None
    ambient_variant: Optional[Callable[[GridPoint], object]] = None
    cache_ambient: bool = True

    def point_rng_keys(self, point: GridPoint) -> Tuple[object, ...]:
        if self.rng_keys is not None:
            return tuple(self.rng_keys(point))
        return _default_rng_keys(self, point)

    @property
    def uses_chain(self) -> bool:
        return self.base_chain is not None or self.chain_params is not None

    def chain_kwargs(self, point: GridPoint) -> Dict[str, object]:
        kwargs: Dict[str, object] = dict(self.base_chain or {})
        if self.chain_params is not None:
            kwargs.update(self.chain_params(point))
        return kwargs

"""Declarative sweep scenarios.

A :class:`Scenario` captures everything a paper-figure experiment used to
hand-roll in nested for-loops: the parameter grid (:class:`SweepSpec`),
how each grid point configures the simulation chain, how the per-point
random stream is derived from the sweep seed, and what to measure. The
:class:`~repro.engine.runner.SweepRunner` turns the declaration into
(optionally parallel) execution with ambient caching.

Per-point RNG derivation mirrors the legacy loops exactly: child
generators are drawn from the sweep generator serially in grid order
*before* any point executes, so serial and parallel execution produce
bit-identical results.
"""

from __future__ import annotations

import dataclasses
import itertools
import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Axis:
    """One sweep dimension: a name and its ordered values."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} has no values")


class SweepSpec:
    """An ordered set of axes whose product is the sweep grid.

    Grid points enumerate in row-major order (first axis outermost),
    matching how the legacy experiment loops nested.
    """

    def __init__(self, axes: Sequence[Axis]) -> None:
        if not axes:
            raise ConfigurationError("a sweep needs at least one axis")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axis names in {names}")
        self.axes: Tuple[Axis, ...] = tuple(axes)

    @classmethod
    def grid(cls, **axes: Sequence[object]) -> "SweepSpec":
        """Build a spec from keyword axes, preserving declaration order."""
        return cls([Axis(name, tuple(values)) for name, values in axes.items()])

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(axis.values) for axis in self.axes)

    @property
    def n_points(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def axis(self, name: str) -> Axis:
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise KeyError(f"no axis named {name!r} (have {self.names})")

    def points(self) -> List["GridPoint"]:
        """All grid points in row-major order."""
        combos = itertools.product(*(axis.values for axis in self.axes))
        return [
            GridPoint(index=i, coords=dict(zip(self.names, combo)))
            for i, combo in enumerate(combos)
        ]


@dataclass(frozen=True)
class GridPoint:
    """One cell of the sweep grid.

    Attributes:
        index: position in row-major grid order.
        coords: axis name -> value for this cell.
    """

    index: int
    coords: Mapping[str, object]

    def __getitem__(self, name: str) -> object:
        return self.coords[name]

    def get(self, name: str, default: object = None) -> object:
        return self.coords.get(name, default)

    @property
    def values(self) -> Tuple[object, ...]:
        return tuple(self.coords.values())


@dataclass
class PointRun:
    """Everything a scenario's ``measure`` callable gets for one point.

    Attributes:
        point: the grid cell being evaluated.
        rng: the point's private generator (pre-derived, deterministic).
        data: the shared read-only dict returned by ``Scenario.prepare``.
        ambient: ambient-station source (cache-backed, or ``None`` when
            caching is disabled); measures that build their own chains can
            attach it or derive per-transmission variants via
            ``ambient.with_variant(...)``.
        chain: the pre-built :class:`~repro.experiments.common.ExperimentChain`
            for scenarios that declare ``chain_params`` (``None`` otherwise).
        received: the chain's decoded output for scenarios that declare a
            ``payload`` — the runner performs the transmission itself (so
            backends can batch or ship it) and the measure only scores.
            ``None`` when the scenario transmits inside ``measure``.
    """

    point: GridPoint
    rng: np.random.Generator
    data: Dict[str, object]
    ambient: Optional[object] = None
    chain: Optional[object] = None
    received: Optional[object] = None


@dataclass(frozen=True)
class AxisRef:
    """Declarative reference to an axis value, resolved per grid point.

    The spec-based counterpart of ``lambda p: p[name]``: templates built
    from :class:`AxisRef` and literals are plain data, so a scenario
    using them pickles cleanly into process-pool workers.
    """

    name: str


def resolve_template(
    template: Sequence[object], point: GridPoint
) -> Tuple[object, ...]:
    """Substitute every :class:`AxisRef` in ``template`` with the point's value."""
    return tuple(
        point[item.name] if isinstance(item, AxisRef) else item for item in template
    )


@dataclass(frozen=True)
class PayloadSelector:
    """Per-point payload lookup: an axis value chooses the data key.

    E.g. Fig. 14 transmits a tone on its ``snr`` panel and speech on its
    ``pesq`` panel: ``PayloadSelector("panel", {"snr": "tone", "pesq":
    "speech"})``.
    """

    axis: str
    keys: Mapping[object, str]

    def key_for(self, point: GridPoint) -> str:
        value = point[self.axis]
        try:
            return self.keys[value]
        except KeyError:
            raise ConfigurationError(
                f"payload selector has no data key for {self.axis}={value!r}"
            ) from None


def _default_rng_keys(scenario: "Scenario", point: GridPoint) -> Tuple[object, ...]:
    return (scenario.name,) + point.values


@dataclass
class Scenario:
    """Declarative description of one experiment sweep.

    Two styles coexist. The original *callable* style (``chain_params`` /
    ``rng_keys`` / ``ambient_variant`` as lambdas) is concise but closes
    over local state, so such scenarios can only run in-process. The
    *spec* style expresses the same per-point wiring as plain data —
    ``chain_axes`` / ``chain_value_params`` for chain kwargs,
    :class:`AxisRef` templates for RNG keys and variants, a module-level
    ``measure`` with ``measure_params``, and a ``payload`` key — which
    makes the scenario picklable, so grid points can be shipped to
    process-pool workers or regrouped by the batched backend.

    Attributes:
        name: scenario label (also the default RNG key prefix).
        sweep: the parameter grid.
        measure: per-point measurement, called as
            ``measure(run, **measure_params)``. For process execution it
            must be a module-level function (picklable by reference).
        prepare: optional setup run once before the grid, receiving the
            sweep generator; returns the shared ``data`` dict (payload
            bits, reference audio, ...). Draws from the generator here
            happen *before* per-point derivation, exactly like the
            preamble of the legacy loops. Runs only in the parent
            process; it may be (and usually is) a closure.
        base_chain: common :class:`ExperimentChain` kwargs; ``None`` means
            the scenario does not use runner-built chains.
        chain_params: per-point chain kwargs merged over ``base_chain``
            (callable style).
        rng_keys: per-point key tuple fed to
            :func:`repro.utils.rand.child_generator`; defaults to
            ``(name, *point.values)``. Either a callable or an
            :class:`AxisRef` template tuple. Figure modules set this to
            reproduce their legacy derivations.
        ambient_variant: optional per-point cache-key variant so selected
            points (e.g. MRC repetitions) get independent ambient program
            audio instead of sharing one synthesis. A callable, a single
            :class:`AxisRef`, or a template tuple.
        cache_ambient: share ambient MPX / modulated carriers across grid
            points through the runner's cache (the legacy loops
            resynthesized per point).
        measure_params: extra keyword arguments for ``measure`` (modems,
            tone frequencies, ...); must be picklable for process
            execution.
        chain_axes: axis names copied verbatim into the chain kwargs
            (spec-style replacement for the common
            ``lambda p: {"power_dbm": p["power_dbm"], ...}``).
        chain_value_params: ``{axis: {value: {kwarg: value}}}`` — chain
            kwargs switched by an axis value (receiver band, backscatter
            mode, panel program, ...), merged after ``chain_axes``.
        payload: the transmission the runner performs *for* the measure:
            a ``data`` key (or per-point :class:`PayloadSelector`) naming
            the waveform to send through the point's chain. The decoded
            output arrives as ``run.received``. Declaring it is what lets
            the batched backend stack points sharing a front end into one
            vectorized link + receive pass.
    """

    name: str
    sweep: SweepSpec
    measure: Callable[..., object]
    prepare: Optional[Callable[[np.random.Generator], Dict[str, object]]] = None
    base_chain: Optional[Dict[str, object]] = None
    chain_params: Optional[Callable[[GridPoint], Dict[str, object]]] = None
    rng_keys: Optional[
        Union[Callable[[GridPoint], Tuple[object, ...]], Tuple[object, ...]]
    ] = None
    ambient_variant: Optional[
        Union[Callable[[GridPoint], object], AxisRef, Tuple[object, ...]]
    ] = None
    cache_ambient: bool = True
    measure_params: Dict[str, object] = field(default_factory=dict)
    chain_axes: Tuple[str, ...] = ()
    chain_value_params: Mapping[str, Mapping[object, Mapping[str, object]]] = field(
        default_factory=dict
    )
    payload: Optional[Union[str, PayloadSelector]] = None

    def point_rng_keys(self, point: GridPoint) -> Tuple[object, ...]:
        if callable(self.rng_keys):
            return tuple(self.rng_keys(point))
        if self.rng_keys is not None:
            return resolve_template(self.rng_keys, point)
        return _default_rng_keys(self, point)

    def variant_for(self, point: GridPoint) -> object:
        """The point's ambient-variant value (``ambient_variant`` resolved)."""
        spec = self.ambient_variant
        if isinstance(spec, AxisRef):
            return point[spec.name]
        if callable(spec):
            return spec(point)
        if spec is not None:
            return resolve_template(spec, point)
        return None

    @property
    def measure_driven(self) -> bool:
        """Whether the *measure* performs the transmission (no runner payload).

        Measure-driven points (Fig. 12's two-phone cancellation, the
        deployment layer's MAC-gated frames, the survey figures) execute
        per point by construction: there is no runner-performed
        transmission for a backend to vectorize, ship or predict, so the
        batched backend runs them serially without counting fallbacks and
        the planner routes them straight to the serial executor.
        """
        return self.payload is None or not self.uses_chain

    @property
    def uses_chain(self) -> bool:
        return (
            self.base_chain is not None
            or self.chain_params is not None
            or bool(self.chain_axes)
            or bool(self.chain_value_params)
        )

    def chain_kwargs(self, point: GridPoint) -> Dict[str, object]:
        kwargs: Dict[str, object] = dict(self.base_chain or {})
        for axis in self.chain_axes:
            kwargs[axis] = point[axis]
        for axis, table in self.chain_value_params.items():
            value = point[axis]
            try:
                kwargs.update(table[value])
            except KeyError:
                raise ConfigurationError(
                    f"chain_value_params[{axis!r}] has no entry for {value!r}"
                ) from None
        if self.chain_params is not None:
            kwargs.update(self.chain_params(point))
        return kwargs

    def payload_for(
        self, point: GridPoint, data: Mapping[str, object]
    ) -> Optional[np.ndarray]:
        """The waveform the runner should transmit for this point, if any."""
        if self.payload is None:
            return None
        key = (
            self.payload
            if isinstance(self.payload, str)
            else self.payload.key_for(point)
        )
        try:
            return data[key]
        except KeyError:
            raise ConfigurationError(
                f"scenario {self.name!r} declares payload {key!r} but prepare() "
                f"returned keys {sorted(data)}"
            ) from None

    def shippable(self) -> "Scenario":
        """A copy suitable for crossing a process boundary.

        ``prepare`` runs only in the parent (its output ``data`` travels
        separately), so it is dropped; everything else must pickle.
        """
        return dataclasses.replace(self, prepare=None)

    def require_picklable(self) -> bytes:
        """Pickle the shippable form, or explain what to migrate.

        Returns the pickle so callers dispatching to worker processes can
        ship exactly what was validated.
        """
        try:
            return pickle.dumps(self.shippable())
        except Exception as exc:
            raise ConfigurationError(
                f"scenario {self.name!r} cannot be shipped to worker processes "
                f"({exc}); replace closures with the declarative spec form — "
                "chain_axes/chain_value_params for chain kwargs, AxisRef "
                "templates for rng_keys/ambient_variant, and a module-level "
                "measure with measure_params — or run with the serial/thread "
                "backend"
            ) from None

"""Sweep engine: declarative scenarios, multi-backend grids, ambient caching.

Every paper-figure experiment is a parameter sweep (power x distance x
rate x program x receiver) over the same physical chain. This package
separates the *what* from the *how*: a :class:`Scenario` declares the
grid, the per-point RNG derivation, the transmission payload and the
measurement — as plain data (:class:`AxisRef` templates, ``chain_axes``,
module-level measures), so a grid point can be shipped across a process
boundary; a :class:`SweepRunner` executes it through one of four
explicit backends (``serial`` / ``thread`` / ``process`` / ``batched``,
see ``REPRO_SWEEP_BACKEND``) or lets the cost-model planner pick per
partition (``auto``, the single-worker default — decisions are recorded
on ``SweepResult.plan``) with a keyed :class:`AmbientCache` so each
ambient program is synthesized and FM-modulated exactly once per sweep
instead of once per grid point — and at most once *ever* per
configuration when ``REPRO_CACHE_DIR`` points the cache at a persistent
:class:`CacheStore`.

Usage (the spec form — plain data plus a module-level measure, so the
same scenario runs on every backend including ``process``)::

    from repro.engine import AxisRef, Scenario, SweepSpec, SweepRunner

    def score_ber(run, modem):          # module level => picklable
        bits = run.data["bits"]
        audio = run.chain.payload_channel(run.received)
        return bit_error_rate(bits, modem.demodulate(audio, bits.size))

    scenario = Scenario(
        name="fig8",
        sweep=SweepSpec.grid(power_dbm=(-20.0, -40.0), distance_ft=(2, 8)),
        prepare=lambda gen: make_payload_dict(gen),   # parent-only
        base_chain={"program": "news", "stereo_decode": False},
        chain_axes=("power_dbm", "distance_ft"),
        rng_keys=("fig8", AxisRef("power_dbm"), AxisRef("distance_ft")),
        payload="waveform",             # the runner transmits it per point
        measure=score_ber,
        measure_params={"modem": modem},
    )
    result = SweepRunner(scenario, rng=2017, backend="batched").run()
    series = result.series(along="distance_ft", power_dbm=-40.0)

The callable style (``chain_params`` / ``rng_keys`` lambdas) still works
for in-process backends (``serial`` / ``thread`` / ``batched``'s
fallback); only ``process`` requires the picklable spec form.

Many-device deployments (:mod:`repro.engine.deployment`) build on the
same machinery: a :class:`DeploymentScenario` (device roster +
:class:`ChannelPlan` coexistence policy + receiver placement) compiles
into a picklable Scenario whose axes include device count, per-device
power, ALOHA slot count and sign density. Sweeps also shard:
``SweepRunner.run(point_slice=(start, stop))`` executes a contiguous
slice with the whole grid's pre-derived seeds, and
:meth:`SweepResult.merge` stitches shards back bit-identically. The
distributed launcher (:func:`launch_sweep`, :mod:`repro.engine.launcher`)
fans those shards out across worker processes — surviving crashes and
stragglers by re-slicing and re-queueing, merging back bit-identically —
and :class:`SweepService` (:mod:`repro.engine.service`) puts an asyncio
``submit`` / ``status`` / ``fetch`` front door on it so many concurrent
submissions share one warm :class:`CacheStore`.

Determinism contract: the per-point streams are pre-derived from the
sweep generator in grid order (exactly the draws the legacy nested loops
consumed), so results are bit-identical across all four backends and any
worker count. Set ``REPRO_SWEEP_WORKERS=<n>`` / ``REPRO_SWEEP_BACKEND=
<backend>`` to change execution for every figure sweep without touching
call sites.
"""

from repro.engine.cache import AmbientCache, CachedAmbient, default_cache, payload_fingerprint
from repro.engine.faults import Fault, FaultPlan, active_plan, parse_faults
from repro.engine.journal import JobJournal, JournaledJob
from repro.engine.launcher import LaunchReport, RetryPolicy, Shard, launch_sweep
from repro.engine.service import JobStatus, SweepService
from repro.engine.deployment import (
    ChannelAssignment,
    ChannelPlan,
    DeploymentScenario,
    DeviceSpec,
    ReceiverPlacement,
    make_roster,
)
from repro.engine.planner import (
    CalibrationConstants,
    PartitionFeatures,
    PlanDecision,
    calibrate,
    load_calibration,
    plan_sweep,
)
from repro.engine.results import SweepResult, format_axis_value, power_key
from repro.engine.runner import (
    AUTO_BACKEND,
    BACKEND_CHOICES,
    BACKENDS,
    SweepRunner,
    default_backend,
    default_max_workers,
    run_scenario,
)
from repro.engine.scenario import (
    Axis,
    AxisRef,
    GridPoint,
    PayloadSelector,
    PointRun,
    Scenario,
    SweepSpec,
)
from repro.engine.store import CacheStore

__all__ = [
    "AUTO_BACKEND",
    "AmbientCache",
    "Axis",
    "AxisRef",
    "BACKENDS",
    "BACKEND_CHOICES",
    "CachedAmbient",
    "CacheStore",
    "CalibrationConstants",
    "ChannelAssignment",
    "ChannelPlan",
    "DeploymentScenario",
    "DeviceSpec",
    "Fault",
    "FaultPlan",
    "GridPoint",
    "JobJournal",
    "JobStatus",
    "JournaledJob",
    "LaunchReport",
    "PartitionFeatures",
    "PayloadSelector",
    "PlanDecision",
    "PointRun",
    "ReceiverPlacement",
    "RetryPolicy",
    "Scenario",
    "Shard",
    "SweepResult",
    "SweepRunner",
    "SweepService",
    "SweepSpec",
    "active_plan",
    "calibrate",
    "default_backend",
    "default_cache",
    "default_max_workers",
    "format_axis_value",
    "launch_sweep",
    "load_calibration",
    "make_roster",
    "parse_faults",
    "payload_fingerprint",
    "plan_sweep",
    "power_key",
    "run_scenario",
]

"""Sweep engine: declarative scenarios, ambient caching, parallel grids.

Every paper-figure experiment is a parameter sweep (power x distance x
rate x program x receiver) over the same physical chain. This package
separates the *what* from the *how*: a :class:`Scenario` declares the
grid, the per-point RNG derivation, and the measurement; a
:class:`SweepRunner` executes it — serially or across a thread pool —
with a keyed :class:`AmbientCache` so each ambient program is
synthesized and FM-modulated exactly once per sweep instead of once per
grid point.

Usage::

    from repro.engine import Scenario, SweepSpec, SweepRunner, power_key
    from repro.experiments.common import measure_data_ber

    scenario = Scenario(
        name="fig8",
        sweep=SweepSpec.grid(power_dbm=(-20.0, -40.0), distance_ft=(2, 8)),
        base_chain={"program": "news", "stereo_decode": False},
        chain_params=lambda p: {
            "power_dbm": p["power_dbm"], "distance_ft": p["distance_ft"],
        },
        prepare=lambda gen: {"bits": make_payload(gen)},
        measure=lambda run: measure_data_ber(
            run.chain, modem, run.data["bits"], run.rng
        ),
    )
    result = SweepRunner(scenario, rng=2017, max_workers=4).run()
    series = result.series(along="distance_ft", power_dbm=-40.0)

Determinism contract: the per-point streams are pre-derived from the
sweep generator in grid order (exactly the draws the legacy nested loops
consumed), so results are bit-identical between serial and parallel
execution and across worker counts. Set ``REPRO_SWEEP_WORKERS=<n>`` to
parallelize every figure sweep without touching call sites.
"""

from repro.engine.cache import AmbientCache, CachedAmbient, default_cache, payload_fingerprint
from repro.engine.results import SweepResult, format_axis_value, power_key
from repro.engine.runner import SweepRunner, default_max_workers, run_scenario
from repro.engine.scenario import Axis, GridPoint, PointRun, Scenario, SweepSpec

__all__ = [
    "AmbientCache",
    "Axis",
    "CachedAmbient",
    "GridPoint",
    "PointRun",
    "Scenario",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "default_cache",
    "default_max_workers",
    "format_axis_value",
    "payload_fingerprint",
    "power_key",
    "run_scenario",
]

"""Sweep result tables and the stable series-key formatters.

:class:`SweepResult` is what a :class:`~repro.engine.runner.SweepRunner`
returns: one value per grid point, in row-major grid order, plus
execution metadata (cache hits, wall time, worker count). The figure
modules slice it back into the exact dict shapes their ``run()``
functions have always returned, via :meth:`SweepResult.series` and the
:func:`power_key` formatter.

:func:`power_key` replaces the ``f"P{int(power)}"`` pattern the legacy
loops used, which silently collided for fractional powers
(``int(-32.5) == int(-32.9) == -32``). It formats integral values
exactly like the old code (``P-30``) so existing result keys are
unchanged, while fractional powers stay distinct (``P-32.5``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.engine.scenario import GridPoint, SweepSpec
from repro.errors import ConfigurationError


def format_axis_value(value: object) -> str:
    """Render one axis value for a result key, losslessly.

    Integral floats drop their decimal point (``-30.0`` -> ``"-30"``,
    matching the legacy ``int(power)`` formatting); fractional values
    keep enough digits to stay distinct (``-32.5`` -> ``"-32.5"``).
    Non-finite values format as ``"inf"`` / ``"-inf"`` / ``"nan"`` — the
    ``int(as_float)`` normalization would raise ``OverflowError`` /
    ``ValueError`` on them, and an axis is allowed to carry e.g. an
    infinite-distance "off" sentinel.
    """
    if isinstance(value, (bool, str)):
        return str(value)
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        as_float = float(value)
        if not math.isfinite(as_float):
            if math.isnan(as_float):
                return "nan"
            return "inf" if as_float > 0 else "-inf"
        if as_float == int(as_float):
            return str(int(as_float))
        return repr(as_float)
    return str(value)


def power_key(power_dbm: float, prefix: str = "P") -> str:
    """Stable result key for a power level: ``P-30``, ``P-32.5``, ...

    Args:
        power_dbm: the power level (the axis value as passed by the user).
        prefix: key prefix; figures with several panels pass e.g.
            ``"snr_P"`` / ``"pesq_P"`` / ``"lock_P"``.
    """
    return f"{prefix}{format_axis_value(power_dbm)}"


@dataclass
class SweepResult:
    """Per-point values of one executed sweep, in row-major grid order.

    Attributes:
        spec: the grid that was executed.
        points: the grid points, ``spec.points()`` order.
        values: ``measure``'s return value for each point, same order.
        elapsed_s: wall-clock execution time of the grid.
        n_workers: pool workers used (1 == serial / batched).
        cache_stats: ambient-cache counters for this run (``hits`` /
            ``misses`` / ``items``, plus ``disk_hits`` / ``syntheses``
            when a persistent store is attached), or ``None`` when
            caching was off.
        data: the shared dict returned by the scenario's ``prepare``
            (payload bits, reference audio, ...), for post-grid steps
            like MRC combining or BER scoring.
        backend: which execution backend ran the grid; the batched
            backend reports how many points it vectorized, e.g.
            ``"batched[40/40]"``.
        n_fallbacks: how many *batch-eligible* points (the scenario
            declares a chain + ``payload``, so the runner performs the
            transmission) the batched backend executed through the
            serial per-point fallback instead of a vectorized stack.
            ``0`` means full vectorized coverage — since the
            zero-fallback backend landed, every chain feature (fading,
            stereo, de-emphasis, receiver output effects) batches, so a
            nonzero count is a regression. Points of measure-driven
            scenarios (no declared payload; the measure transmits
            itself, e.g. Fig. 12's two-phone cancellation or the
            deployment layer) execute per point by construction and are
            not counted. ``None`` when a backend without a fallback
            concept (serial/thread/process) ran.
        plan: the planner's per-partition decisions
            (:class:`~repro.engine.planner.PlanDecision` records — chosen
            backend, chunk budget, predicted costs, feature vector) when
            the ``auto`` backend ran, else ``None``. Decisions carry
            *global* grid indices, so :meth:`merge` concatenates shard
            plans (grid order) whenever every shard has one — shards may
            have chosen different backends — and drops the plan when any
            shard ran an explicit backend.
        scenario_name: name of the scenario that produced the values;
            :meth:`merge` refuses to stitch shards of different
            scenarios (same-axes grids from unrelated experiments would
            otherwise mix silently). Shards of one scenario must also
            share the sweep seed — that part of the contract cannot be
            checked here and is the caller's responsibility.
    """

    spec: SweepSpec
    points: List[GridPoint]
    values: List[object]
    elapsed_s: float = 0.0
    n_workers: int = 1
    cache_stats: Optional[Dict[str, int]] = None
    data: Dict[str, object] = field(default_factory=dict)
    backend: str = "serial"
    scenario_name: str = ""
    n_fallbacks: Optional[int] = None
    plan: Optional[List[object]] = None

    @classmethod
    def merge(cls, *results: "SweepResult", partial: bool = False) -> "SweepResult":
        """Stitch shard results back into one whole-grid result.

        The inverse of running with ``point_slice``: each shard carries a
        disjoint subset of one grid's points, and together they must
        cover it completely (the merged result's ``series`` / ``grid`` /
        ``value_at`` assume a full grid) — unless ``partial=True``, which
        skips the completeness check and returns whatever subset the
        shards cover, in grid order. The launcher uses partial merges to
        attach salvageable completed points to a
        :class:`~repro.errors.LauncherError`; full-grid accessors refuse
        a partial result, but iteration and ``to_table`` work. An
        *empty* shard — the natural remainder of the launcher's work
        re-slicing — merges as a no-op:
        it contributes no points and only its (near-zero) metadata.
        Values are reordered into row-major grid order regardless of
        shard order; ``elapsed_s`` sums the shards' individual execution
        times — aggregate compute time, NOT wall-clock; shards run
        concurrently, and the launcher's ``LaunchReport.wall_s`` carries
        the wall-clock figure — cache counters sum (``items`` takes the
        max — shards on a shared store hold overlapping entries), and the
        ``data`` dict comes from the first shard (every shard ran the
        same ``prepare``).
        """
        if not results:
            raise ConfigurationError("merge needs at least one SweepResult")
        spec = results[0].spec
        for result in results[1:]:
            if result.spec.axes != spec.axes:
                raise ConfigurationError(
                    "cannot merge results from different sweeps: "
                    f"{result.spec.names} {result.spec.shape} vs "
                    f"{spec.names} {spec.shape}"
                )
            if result.scenario_name != results[0].scenario_name:
                raise ConfigurationError(
                    "cannot merge shards of different scenarios: "
                    f"{result.scenario_name!r} vs {results[0].scenario_name!r}"
                )
        by_index: Dict[int, Tuple[GridPoint, object]] = {}
        for result in results:
            for point, value in result:
                if point.index in by_index:
                    raise ConfigurationError(
                        f"grid point {point.index} appears in more than one shard"
                    )
                by_index[point.index] = (point, value)
        if len(by_index) != spec.n_points and not partial:
            missing = sorted(set(range(spec.n_points)) - set(by_index))
            raise ConfigurationError(
                f"shards cover {len(by_index)} of {spec.n_points} grid "
                f"points (missing indices {missing[:8]}{'...' if len(missing) > 8 else ''})"
            )
        ordered = [by_index[i] for i in sorted(by_index)]

        cache_stats: Optional[Dict[str, int]] = None
        shard_stats = [r.cache_stats for r in results]
        if all(stats is not None for stats in shard_stats):
            cache_stats = {}
            for stats in shard_stats:
                for key, count in stats.items():
                    if key == "items":
                        cache_stats[key] = max(cache_stats.get(key, 0), count)
                    else:
                        cache_stats[key] = cache_stats.get(key, 0) + count
        n_fallbacks: Optional[int] = None
        if all(r.n_fallbacks is not None for r in results):
            n_fallbacks = sum(r.n_fallbacks for r in results)
        plan: Optional[List[object]] = None
        if all(r.plan is not None for r in results):
            # Grid order via each decision's first global point index —
            # decisions never span shards, so first-member order is total.
            plan = sorted(
                (d for r in results for d in r.plan),
                key=lambda d: d.point_indices[0],
            )
        return cls(
            spec=spec,
            points=[p for p, _ in ordered],
            values=[v for _, v in ordered],
            elapsed_s=sum(r.elapsed_s for r in results),
            n_workers=max(r.n_workers for r in results),
            cache_stats=cache_stats,
            data=results[0].data,
            backend=f"merged[{len(results)}]",
            scenario_name=results[0].scenario_name,
            n_fallbacks=n_fallbacks,
            plan=plan,
        )

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Tuple[GridPoint, object]]:
        return iter(zip(self.points, self.values))

    def _require_full_grid(self) -> None:
        if len(self.values) != self.spec.n_points:
            raise KeyError(
                f"result holds {len(self.values)} of {self.spec.n_points} grid "
                "points (a point_slice shard?); merge shards with "
                "SweepResult.merge before slicing"
            )

    def value_at(self, **coords: object) -> object:
        """The value of the single point matching all of ``coords``."""
        self._require_full_grid()
        matches = [v for p, v in self if all(p.coords[k] == c for k, c in coords.items())]
        if len(matches) != 1:
            raise KeyError(f"{coords} matches {len(matches)} grid points, expected 1")
        return matches[0]

    def series(self, along: str, **fixed: object) -> List[object]:
        """Values along one axis with every other axis pinned.

        This is the slice the figure modules plot: e.g.
        ``series(along="distance_ft", power_dbm=-30.0)`` is the legacy
        inner-loop list for one power level. Points appear in grid
        (declaration) order along the axis.

        Args:
            along: name of the free axis.
            fixed: ``axis=value`` for the remaining axes; every axis
                other than ``along`` must be pinned.
        """
        self._require_full_grid()
        free = [n for n in self.spec.names if n != along and n not in fixed]
        if along not in self.spec.names:
            raise KeyError(f"no axis named {along!r} (have {self.spec.names})")
        if free:
            raise KeyError(f"axes {free} must be fixed to slice along {along!r}")
        for name, value in fixed.items():
            axis = self.spec.axis(name)  # KeyError on unknown axis names
            if value not in axis.values:
                raise KeyError(
                    f"{value!r} is not on axis {name!r} (values {axis.values})"
                )
        return [
            v
            for p, v in self
            if all(p.coords[k] == c for k, c in fixed.items())
        ]

    def grid(self) -> np.ndarray:
        """Values reshaped to the sweep's grid shape (object dtype)."""
        self._require_full_grid()
        arr = np.empty(len(self.values), dtype=object)
        arr[:] = self.values
        return arr.reshape(self.spec.shape)

    def to_table(self) -> List[Dict[str, object]]:
        """Flat records — one dict of coords + value per point."""
        return [dict(p.coords, value=v) for p, v in self]

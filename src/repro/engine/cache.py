"""Keyed caching of ambient-station synthesis and FM-modulated carriers.

A P×D sweep reuses one ambient transmission per (program, duration) —
the paper's own methodology (section 5.2 replays the *same* recorded
station clips through a USRP at every grid point) — so resynthesizing
the program, the composite MPX, and the FM modulation at every point is
pure waste. :class:`AmbientCache` stores those arrays once;
:class:`CachedAmbient` is the per-sweep view the execution layer hands to
:class:`~repro.experiments.common.ExperimentChain` via its
``ambient_source`` hook.

Cached arrays are marked read-only before they are shared, so any
accidental in-place mutation by a consumer raises instead of corrupting
other grid points (important once points run concurrently).
"""

from __future__ import annotations

import os
import threading
import zlib
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.engine.store import CACHE_DIR_ENV_VAR, CacheStore
from repro.fm.modulator import fm_modulate
from repro.fm.station import FMStation, StationConfig
from repro.utils.rand import derive_seed


def payload_fingerprint(payload: np.ndarray) -> Tuple[int, int]:
    """Cheap content token for a payload waveform (size + CRC32)."""
    arr = np.ascontiguousarray(payload)
    return (arr.size, zlib.crc32(arr.tobytes()))


class AmbientCache:
    """Thread-safe LRU cache of synthesized waveforms.

    Values are keyed by fully-deterministic tuples (master seed, program,
    duration, ...), so concurrent fills of the same key compute identical
    arrays and the cache stays seed-stable no matter which worker gets
    there first.

    Args:
        max_items: in-memory LRU capacity.
        store: optional :class:`~repro.engine.store.CacheStore`; misses
            consult the disk before synthesizing, and fresh syntheses are
            spilled, so repeated runs, process-pool workers and future
            sweep shards skip synthesis entirely. ``syntheses`` /
            ``disk_hits`` count how often each path was taken.
    """

    def __init__(self, max_items: int = 64, store: Optional[CacheStore] = None) -> None:
        self.max_items = max_items
        self.store = store
        self._store: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        # In-flight fills, so workers synthesizing *different* keys run
        # concurrently while workers wanting the *same* key wait for the
        # one synthesis instead of duplicating it.
        self._pending: Dict[tuple, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.syntheses = 0

    def get(self, key: tuple, factory: Callable[[], np.ndarray]) -> np.ndarray:
        """Return the cached array for ``key``, filling it via ``factory``."""
        while True:
            with self._lock:
                if key in self._store:
                    self.hits += 1
                    self._store.move_to_end(key)
                    return self._store[key]
                pending = self._pending.get(key)
                if pending is None:
                    pending = self._pending[key] = threading.Event()
                    self.misses += 1
                    break  # this thread owns the fill
            # Another thread is synthesizing this key: wait, then re-check
            # the store (re-filling ourselves if it failed or was evicted).
            pending.wait()
        # The factory (which may itself call get() for other keys) runs
        # outside the lock, so distinct keys synthesize concurrently.
        try:
            value = None
            if self.store is not None:
                value = self.store.load(key)
            if value is not None:
                with self._lock:
                    self.disk_hits += 1
            else:
                value = np.asarray(factory())
                with self._lock:
                    self.syntheses += 1
                if self.store is not None:
                    self.store.save(key, value)
            value.setflags(write=False)
            with self._lock:
                self._store[key] = value
                while len(self._store) > self.max_items:
                    self._store.popitem(last=False)
            return value
        finally:
            with self._lock:
                self._pending.pop(key, None)
            pending.set()

    def contains(self, key: tuple) -> bool:
        """Whether ``key`` would be served without a synthesis.

        A pure probe — no counters move, no fill starts, no LRU
        reordering. True when the key sits in memory or (by file
        presence, not a load) in the attached disk store. The planner
        uses this to cost ambient warmth: a cold front end pays one
        synthesis regardless of backend, a warm one pays nothing.
        """
        with self._lock:
            if key in self._store:
                return True
        return self.store is not None and self.store.path_for(key).exists()

    def clear(self) -> None:
        """Reset the in-memory store and counters (disk spill stays)."""
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.syntheses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    @property
    def stats(self) -> dict:
        with self._lock:
            counters = {
                "hits": self.hits,
                "misses": self.misses,
                "items": len(self._store),
            }
            if self.store is not None:
                counters["disk_hits"] = self.disk_hits
                counters["syntheses"] = self.syntheses
                counters["corrupt_evictions"] = self.store.corrupt_evictions
            return counters


def stats_delta(after: dict, before: dict) -> dict:
    """Per-run cache counters: ``after - before``, except ``items``.

    ``items`` is a gauge (current in-memory entry count), not a counter,
    so it passes through as-is. Shared by every executor that brackets a
    run with two :attr:`AmbientCache.stats` snapshots — the runner, the
    distributed launcher's workers and its in-process degradation pass —
    so a new counter (``corrupt_evictions``) shows up everywhere by
    adding it in one place.
    """
    delta = {
        key: after[key] - before.get(key, 0) for key in after if key != "items"
    }
    delta["items"] = after["items"]
    return delta


_DEFAULT_CACHE: Optional[AmbientCache] = None
_DEFAULT_CACHE_DIR: Optional[str] = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_cache() -> AmbientCache:
    """Process-wide cache shared by runners that don't bring their own.

    Honors ``REPRO_CACHE_DIR``: when set, the cache spills to (and warms
    from) that directory; a change to the variable swaps in a fresh cache
    bound to the new directory.
    """
    global _DEFAULT_CACHE, _DEFAULT_CACHE_DIR
    with _DEFAULT_CACHE_LOCK:
        directory = os.environ.get(CACHE_DIR_ENV_VAR, "").strip() or None
        if _DEFAULT_CACHE is None or directory != _DEFAULT_CACHE_DIR:
            store = CacheStore(directory) if directory else None
            _DEFAULT_CACHE = AmbientCache(store=store)
            _DEFAULT_CACHE_DIR = directory
        return _DEFAULT_CACHE


class CachedAmbient:
    """One sweep's ambient-station source, backed by an :class:`AmbientCache`.

    Satisfies the ``ambient_source`` protocol of
    :class:`~repro.experiments.common.ExperimentChain`: :meth:`mpx` returns
    the station composite and :meth:`modulated_composite` the fully
    FM-modulated carrier for a (chain front-end, payload) pair. Both are
    synthesized exactly once per distinct key.

    Args:
        cache: backing store.
        master_seed: sweep-level seed mixed into every synthesis key, so
            different sweep seeds get different ambient audio.
        variant: extra key component; points that must hear *different*
            program audio (MRC repetitions, fading trials) use distinct
            variants via :meth:`with_variant`.
        mpx_rate: composite sample rate.
        audio_rate: program audio sample rate.
    """

    def __init__(
        self,
        cache: AmbientCache,
        master_seed: int,
        variant: object = None,
        mpx_rate: float = MPX_RATE_HZ,
        audio_rate: float = AUDIO_RATE_HZ,
    ) -> None:
        self.cache = cache
        self.master_seed = int(master_seed)
        self.variant = variant
        self.mpx_rate = mpx_rate
        self.audio_rate = audio_rate

    def with_variant(self, variant: object) -> "CachedAmbient":
        """A view of the same cache whose keys carry ``variant``."""
        return CachedAmbient(
            self.cache, self.master_seed, variant, self.mpx_rate, self.audio_rate
        )

    def _duration_key(self, duration_s: float) -> int:
        return int(round(duration_s * self.audio_rate))

    def mpx(self, program: str, stereo: bool, duration_s: float) -> np.ndarray:
        """The ambient station's composite MPX, synthesized once per key."""
        key = (
            "mpx",
            self.master_seed,
            self.variant,
            program,
            bool(stereo),
            self._duration_key(duration_s),
        )

        def factory() -> np.ndarray:
            station = FMStation(
                StationConfig(program=program, stereo=stereo),
                rng=np.random.default_rng(
                    derive_seed(self.master_seed, "ambient", program, stereo, repr(self.variant))
                ),
            )
            return station.mpx(duration_s)

        return self.cache.get(key, factory)

    def modulated(self, program: str, stereo: bool, duration_s: float) -> np.ndarray:
        """FM-modulated carrier of the ambient station alone (no payload)."""
        key = (
            "iq",
            self.master_seed,
            self.variant,
            program,
            bool(stereo),
            self._duration_key(duration_s),
        )
        return self.cache.get(
            key, lambda: fm_modulate(self.mpx(program, stereo, duration_s), self.mpx_rate)
        )

    def composite_key(self, front_end, payload_audio: np.ndarray) -> tuple:
        """The deterministic cache key of a (front end, payload) composite.

        Exposed so sweep backends can warm a persistent
        :class:`~repro.engine.store.CacheStore` with exactly the entries
        their workers will ask for.
        """
        duration_s = payload_audio.size / self.audio_rate
        return (
            "comp_iq",
            self.master_seed,
            self.variant,
            front_end.front_end_key(),
            self._duration_key(duration_s),
            payload_fingerprint(payload_audio),
        )

    def modulated_composite(self, chain, payload_audio: np.ndarray) -> np.ndarray:
        """FM-modulated composite carrier for (chain front end, payload).

        The front end — ambient program, device baseband, composite MPX,
        FM modulation — depends only on the chain's program/mode/amplitude
        configuration and the payload, *not* on power, distance, fading or
        receiver, so a whole link-budget grid shares one synthesis.
        ``chain`` may be a full :class:`~repro.experiments.common.ExperimentChain`
        or just its :class:`~repro.experiments.common.FrontEndStage` —
        both expose the same front-end surface.
        """
        duration_s = payload_audio.size / self.audio_rate
        key = self.composite_key(chain, payload_audio)

        def factory() -> np.ndarray:
            ambient = self.mpx(chain.program, chain.station_stereo, duration_s)
            return chain.modulate_with_ambient(ambient, payload_audio)

        return self.cache.get(key, factory)

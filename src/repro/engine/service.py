"""Async sweep service: ``submit`` / ``status`` / ``fetch`` over the launcher.

The thin service layer that turns the distributed launcher into a
multi-user front door: many concurrent submissions — each a compiled
:class:`~repro.engine.scenario.Scenario` — run through
:func:`~repro.engine.launcher.launch_sweep` in background threads while
the caller's event loop stays free. All jobs share one spill directory
(:attr:`SweepService.cache_dir`), so every submission after the first
finds the grid's front-end composites already on disk and performs zero
syntheses; the parent-side warm-up runs in this process, where the LRU
DSP plan cache is shared across jobs too.

Typical use::

    service = SweepService(n_workers=4)
    try:
        job = await service.submit(scenario, rng=2017)
        while service.status(job).state == "running":
            await asyncio.sleep(0.5)
        report = await service.fetch(job)      # the merged LaunchReport
    finally:
        await service.close()

With ``journal_dir`` set, the service is *crash-safe*: every submission
is journaled (scenario + seed pickled in), every completed shard's point
ranges and values land durably before the next dispatch, and terminal
states are recorded. A restarted service calls :meth:`SweepService.
recover` to reload the journal directory and resume every unfinished
job — journaled-complete shards are **not** recomputed (their points
reload bit-identically, and front-end composites come back through the
still-warm :class:`~repro.engine.store.CacheStore`); only missing ranges
re-launch::

    service = SweepService(journal_dir="jobs/", cache_dir="spill/")
    resumed = await service.recover()          # job ids picked back up
    for job_id in resumed:
        report = await service.fetch(job_id)

Jobs are deliberately *not* cancelled mid-flight by ``close()``: a
launch owns worker processes, and the clean place to stop them is the
launcher's own shutdown path, which runs when the launch completes.
``close()`` is idempotent — a second call is a no-op.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import pickle
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.journal import JobJournal
from repro.errors import ConfigurationError
from repro.engine.launcher import LaunchReport, RetryPolicy, launch_sweep
from repro.engine.scenario import Scenario
from repro.engine.store import CACHE_DIR_ENV_VAR
from repro.utils.rand import RngLike, as_generator

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
"""Lifecycle of a submitted job, in order (``cancelled`` is terminal too)."""


@dataclass
class JobStatus:
    """Point-in-time snapshot of one submitted job.

    Attributes:
        job_id: the handle ``submit`` returned.
        scenario: name of the submitted scenario.
        state: one of :data:`JOB_STATES`.
        points_total: grid size.
        points_done: grid points covered so far (live while running).
        shards_done: completed shard executions accepted so far.
        shards_running: shards currently dispatched to a worker.
        retries: re-queues so far (failures + errors + stragglers).
        wall_s: seconds since the job started running (final once done).
        error: the failure description when ``state == "failed"``.
        degraded: whether the launch salvaged any range in-process after
            exhausting its retry budget (result still complete).
        resumed_points: points reloaded from the journal instead of
            recomputed (nonzero only for recovered jobs).
    """

    job_id: str
    scenario: str
    state: str
    points_total: int
    points_done: int = 0
    shards_done: int = 0
    shards_running: int = 0
    retries: int = 0
    wall_s: float = 0.0
    error: Optional[str] = None
    degraded: bool = False
    resumed_points: int = 0


class _Job:
    """Mutable job record; counters are fed by the launcher's progress
    callback from the launch thread (single writer, so plain attributes
    under the GIL are race-free enough for a status snapshot)."""

    def __init__(self, job_id: str, scenario_name: str, points_total: int) -> None:
        self.job_id = job_id
        self.scenario_name = scenario_name
        self.points_total = points_total
        self.state = "queued"
        self.points_done = 0
        self.shards_done = 0
        self.retries = 0
        self.degraded = False
        self.resumed_points = 0
        self.inflight: Set[Tuple[int, int, int]] = set()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.report: Optional[LaunchReport] = None
        self.error: Optional[BaseException] = None
        self.done_event = asyncio.Event()

    def on_progress(self, event: dict) -> None:
        kind = event.get("kind")
        shard = event.get("shard")
        attempt = event.get("attempt", 0)
        if kind == "dispatch":
            self.inflight.add((*shard, attempt))
        elif kind == "shard-done":
            self.inflight.discard((*shard, attempt))
            self.points_done = event.get("points_done", self.points_done)
            self.shards_done += 1
        elif kind == "requeue":
            self.inflight.discard((*shard, attempt))
            self.retries += 1
        elif kind == "degraded":
            self.inflight.discard((*shard, attempt))
            self.degraded = True

    def snapshot(self) -> JobStatus:
        now = time.perf_counter()
        wall = 0.0
        if self.started_at is not None:
            wall = (self.finished_at or now) - self.started_at
        return JobStatus(
            job_id=self.job_id,
            scenario=self.scenario_name,
            state=self.state,
            points_total=self.points_total,
            points_done=self.points_done,
            shards_done=self.shards_done,
            shards_running=len(self.inflight),
            retries=self.retries,
            wall_s=wall,
            error=None if self.error is None else str(self.error),
            degraded=self.degraded,
            resumed_points=self.resumed_points,
        )


class SweepService:
    """Shared-cache, bounded-concurrency job runner for sweep scenarios.

    Args:
        n_workers: worker-process pool size *per job*.
        shard_points: forwarded to :func:`launch_sweep`.
        shard_deadline_s: forwarded to :func:`launch_sweep`.
        max_retries: shorthand for ``retry_policy``; ignored when
            ``retry_policy`` is given.
        cache_dir: the spill directory every job shares; defaults to
            ``REPRO_CACHE_DIR``, then a service-scoped scratch directory
            removed by :meth:`close`.
        max_parallel_jobs: how many submissions launch concurrently;
            later submissions queue (state ``"queued"``) until a slot
            frees. Bounds the total worker-process count at
            ``max_parallel_jobs * n_workers``.
        retry_policy: full :class:`~repro.engine.launcher.RetryPolicy`
            (retry budget, backoff, per-job deadline) threaded into
            every launch.
        journal_dir: directory of per-job crash-safe journals; ``None``
            (the default) keeps the pre-journal in-memory behavior.
            Point it at a *persistent* path — pair it with a persistent
            ``cache_dir`` so recovered jobs also find the store warm.
    """

    def __init__(
        self,
        n_workers: int = 2,
        shard_points: Optional[int] = None,
        shard_deadline_s: Optional[float] = None,
        max_retries: int = 2,
        cache_dir: Optional[str] = None,
        max_parallel_jobs: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        journal_dir: Optional[str] = None,
    ) -> None:
        self.n_workers = n_workers
        self.shard_points = shard_points
        self.shard_deadline_s = shard_deadline_s
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy(max_retries=max_retries)
        )
        self.retry_policy.validate()
        self._scratch: Optional[str] = None
        explicit = cache_dir or os.environ.get(CACHE_DIR_ENV_VAR, "").strip() or None
        if explicit is None:
            self._scratch = tempfile.mkdtemp(prefix="repro-sweep-service-")
        self.cache_dir = explicit or self._scratch
        self.journal: Optional[JobJournal] = (
            JobJournal(journal_dir) if journal_dir is not None else None
        )
        self._jobs: Dict[str, _Job] = {}
        self._tasks: Dict[str, "asyncio.Task[None]"] = {}
        self._counter = itertools.count(1)
        self._slots = asyncio.Semaphore(max_parallel_jobs)
        self._closed = False

    def _next_job_id(self, scenario_name: str) -> str:
        """A fresh job id — skipping ids already live *or journaled*.

        A restarted service's counter restarts at 1; without the journal
        probe it would mint ids that collide with previous-incarnation
        journal files and interleave two jobs' records in one file.
        """
        while True:
            job_id = f"{scenario_name}-{next(self._counter):04d}"
            if job_id in self._jobs:
                continue
            if self.journal is not None and self.journal.path_for(job_id).exists():
                continue
            return job_id

    async def submit(self, scenario: Scenario, rng: RngLike = None) -> str:
        """Accept a sweep for execution; returns its job id immediately.

        Validates picklability up front (the one scenario property the
        launcher cannot work without), so a closure-laden scenario fails
        at the front door with a migration hint instead of inside a
        worker. With a journal attached, the submission is durable before
        this returns: the scenario and the *pristine* rng state are
        journaled, so a crash one instant later loses nothing.
        """
        scenario.require_picklable()
        job_id = self._next_job_id(scenario.name)
        # Normalize the seed to a Generator *now* and journal that exact
        # state: replaying the journal then reproduces the very streams
        # this launch is about to derive.
        gen = as_generator(rng)
        if self.journal is not None:
            # The journal needs the FULL scenario — prepare included —
            # because recovery re-derives the shared data and per-point
            # seeds from it; the shippable (prepare-stripped) form that
            # satisfies the workers is not enough to resurrect the job.
            try:
                blob = pickle.dumps(scenario)
            except Exception as exc:
                raise ConfigurationError(
                    f"scenario {scenario.name!r} cannot be journaled "
                    f"({exc}): a journaled service must be able to rebuild "
                    "the job from its journal file alone, so prepare= must "
                    "be picklable too — bind it with functools.partial to a "
                    "module-level function instead of a closure"
                ) from None
            self.journal.job_submitted(
                job_id, blob, gen, scenario.name, scenario.sweep.n_points
            )
        job = _Job(job_id, scenario.name, scenario.sweep.n_points)
        self._jobs[job_id] = job
        self._tasks[job_id] = asyncio.create_task(
            self._execute(job, scenario, gen), name=f"sweep-{job_id}"
        )
        return job_id

    async def recover(self) -> List[str]:
        """Reload the journal directory and resume every unfinished job.

        For each journaled job without a terminal record, the scenario
        and rng are rebuilt from the journal and the launch re-enters the
        queue with ``resume_values`` pre-covering every journaled-complete
        point — those are *reloaded, not recomputed*; only missing ranges
        fan back out. Finished jobs and ids already live in this service
        are left alone. Returns the resumed job ids (await them via
        :meth:`fetch`).
        """
        if self.journal is None:
            return []
        resumed: List[str] = []
        for job_id, record in self.journal.replay().items():
            if record.finished or job_id in self._jobs:
                continue
            scenario = record.scenario()
            rng = record.rng()
            job = _Job(job_id, record.scenario_name, record.n_points)
            job.points_done = len(record.values)
            job.resumed_points = len(record.values)
            job.degraded = record.degraded
            self._jobs[job_id] = job
            self._tasks[job_id] = asyncio.create_task(
                self._execute(job, scenario, rng, resume_values=dict(record.values)),
                name=f"sweep-{job_id}",
            )
            resumed.append(job_id)
        return resumed

    async def _execute(
        self,
        job: _Job,
        scenario: Scenario,
        rng: RngLike,
        resume_values: Optional[Dict[int, object]] = None,
    ) -> None:
        async with self._slots:
            job.state = "running"
            job.started_at = time.perf_counter()
            loop = asyncio.get_running_loop()
            try:
                job.report = await loop.run_in_executor(
                    None,
                    lambda: launch_sweep(
                        scenario,
                        rng=rng,
                        n_workers=self.n_workers,
                        shard_points=self.shard_points,
                        shard_deadline_s=self.shard_deadline_s,
                        cache_dir=self.cache_dir,
                        progress=job.on_progress,
                        retry_policy=self.retry_policy,
                        resume_values=resume_values,
                        journal=self.journal,
                        job_id=job.job_id if self.journal is not None else None,
                    ),
                )
                job.state = "done"
                job.points_done = job.report.n_points
                job.retries = job.report.retries
                job.degraded = job.report.degraded
                job.resumed_points = job.report.resumed_points
                if self.journal is not None:
                    self.journal.job_done(job.job_id)
            except BaseException as exc:
                if isinstance(exc, asyncio.CancelledError):
                    job.state = "cancelled"
                    job.error = exc
                    if self.journal is not None:
                        self.journal.job_cancelled(job.job_id)
                    raise
                job.state = "failed"
                job.error = exc
                if self.journal is not None:
                    self.journal.job_failed(job.job_id, str(exc))
            finally:
                job.finished_at = time.perf_counter()
                job.inflight.clear()
                job.done_event.set()

    def _require(self, job_id: str) -> _Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(
                f"unknown job {job_id!r} (have {sorted(self._jobs)})"
            ) from None

    def status(self, job_id: str) -> JobStatus:
        """A snapshot of the job's progress — safe to poll while running."""
        return self._require(job_id).snapshot()

    async def fetch(self, job_id: str) -> LaunchReport:
        """Wait for the job and return its :class:`LaunchReport`.

        Re-raises the launch's exception when the job failed.
        """
        job = self._require(job_id)
        await job.done_event.wait()
        if job.error is not None:
            raise job.error
        assert job.report is not None
        return job.report

    async def close(self) -> None:
        """Drain every job, then remove the service-scoped scratch dir.

        Running launches are allowed to finish (their worker pools shut
        down through the launcher's own path); only then is the shared
        spill directory removed — never out from under a live worker.
        Journal files are *kept*: they are the durable record. Calling
        ``close`` again is a no-op.
        """
        if self._closed:
            return
        self._closed = True
        if self._tasks:
            await asyncio.gather(*self._tasks.values(), return_exceptions=True)
        if self._scratch is not None:
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None

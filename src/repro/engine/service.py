"""Async sweep service: ``submit`` / ``status`` / ``fetch`` over the launcher.

The thin service layer that turns the distributed launcher into a
multi-user front door: many concurrent submissions — each a compiled
:class:`~repro.engine.scenario.Scenario` — run through
:func:`~repro.engine.launcher.launch_sweep` in background threads while
the caller's event loop stays free. All jobs share one spill directory
(:attr:`SweepService.cache_dir`), so every submission after the first
finds the grid's front-end composites already on disk and performs zero
syntheses; the parent-side warm-up runs in this process, where the LRU
DSP plan cache is shared across jobs too.

Typical use::

    service = SweepService(n_workers=4)
    try:
        job = await service.submit(scenario, rng=2017)
        while service.status(job).state == "running":
            await asyncio.sleep(0.5)
        report = await service.fetch(job)      # the merged LaunchReport
    finally:
        await service.close()

Jobs are deliberately *not* cancelled mid-flight by ``close()``: a
launch owns worker processes, and the clean place to stop them is the
launcher's own shutdown path, which runs when the launch completes.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.engine.launcher import LaunchReport, launch_sweep
from repro.engine.scenario import Scenario
from repro.engine.store import CACHE_DIR_ENV_VAR
from repro.utils.rand import RngLike

JOB_STATES = ("queued", "running", "done", "failed")
"""Lifecycle of a submitted job, in order."""


@dataclass
class JobStatus:
    """Point-in-time snapshot of one submitted job.

    Attributes:
        job_id: the handle ``submit`` returned.
        scenario: name of the submitted scenario.
        state: one of :data:`JOB_STATES`.
        points_total: grid size.
        points_done: grid points covered so far (live while running).
        shards_done: completed shard executions accepted so far.
        shards_running: shards currently dispatched to a worker.
        retries: re-queues so far (failures + errors + stragglers).
        wall_s: seconds since the job started running (final once done).
        error: the failure description when ``state == "failed"``.
    """

    job_id: str
    scenario: str
    state: str
    points_total: int
    points_done: int = 0
    shards_done: int = 0
    shards_running: int = 0
    retries: int = 0
    wall_s: float = 0.0
    error: Optional[str] = None


class _Job:
    """Mutable job record; counters are fed by the launcher's progress
    callback from the launch thread (single writer, so plain attributes
    under the GIL are race-free enough for a status snapshot)."""

    def __init__(self, job_id: str, scenario_name: str, points_total: int) -> None:
        self.job_id = job_id
        self.scenario_name = scenario_name
        self.points_total = points_total
        self.state = "queued"
        self.points_done = 0
        self.shards_done = 0
        self.retries = 0
        self.inflight: Set[Tuple[int, int, int]] = set()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.report: Optional[LaunchReport] = None
        self.error: Optional[BaseException] = None
        self.done_event = asyncio.Event()

    def on_progress(self, event: dict) -> None:
        kind = event.get("kind")
        shard = event.get("shard")
        attempt = event.get("attempt", 0)
        if kind == "dispatch":
            self.inflight.add((*shard, attempt))
        elif kind == "shard-done":
            self.inflight.discard((*shard, attempt))
            self.points_done = event.get("points_done", self.points_done)
            self.shards_done += 1
        elif kind == "requeue":
            self.inflight.discard((*shard, attempt))
            self.retries += 1

    def snapshot(self) -> JobStatus:
        now = time.perf_counter()
        wall = 0.0
        if self.started_at is not None:
            wall = (self.finished_at or now) - self.started_at
        return JobStatus(
            job_id=self.job_id,
            scenario=self.scenario_name,
            state=self.state,
            points_total=self.points_total,
            points_done=self.points_done,
            shards_done=self.shards_done,
            shards_running=len(self.inflight),
            retries=self.retries,
            wall_s=wall,
            error=None if self.error is None else str(self.error),
        )


class SweepService:
    """Shared-cache, bounded-concurrency job runner for sweep scenarios.

    Args:
        n_workers: worker-process pool size *per job*.
        shard_points: forwarded to :func:`launch_sweep`.
        shard_deadline_s: forwarded to :func:`launch_sweep`.
        max_retries: forwarded to :func:`launch_sweep`.
        cache_dir: the spill directory every job shares; defaults to
            ``REPRO_CACHE_DIR``, then a service-scoped scratch directory
            removed by :meth:`close`.
        max_parallel_jobs: how many submissions launch concurrently;
            later submissions queue (state ``"queued"``) until a slot
            frees. Bounds the total worker-process count at
            ``max_parallel_jobs * n_workers``.
    """

    def __init__(
        self,
        n_workers: int = 2,
        shard_points: Optional[int] = None,
        shard_deadline_s: Optional[float] = None,
        max_retries: int = 2,
        cache_dir: Optional[str] = None,
        max_parallel_jobs: int = 2,
    ) -> None:
        self.n_workers = n_workers
        self.shard_points = shard_points
        self.shard_deadline_s = shard_deadline_s
        self.max_retries = max_retries
        self._scratch: Optional[str] = None
        explicit = cache_dir or os.environ.get(CACHE_DIR_ENV_VAR, "").strip() or None
        if explicit is None:
            self._scratch = tempfile.mkdtemp(prefix="repro-sweep-service-")
        self.cache_dir = explicit or self._scratch
        self._jobs: Dict[str, _Job] = {}
        self._tasks: Dict[str, "asyncio.Task[None]"] = {}
        self._counter = itertools.count(1)
        self._slots = asyncio.Semaphore(max_parallel_jobs)

    async def submit(self, scenario: Scenario, rng: RngLike = None) -> str:
        """Accept a sweep for execution; returns its job id immediately.

        Validates picklability up front (the one scenario property the
        launcher cannot work without), so a closure-laden scenario fails
        at the front door with a migration hint instead of inside a
        worker.
        """
        scenario.require_picklable()
        job_id = f"{scenario.name}-{next(self._counter):04d}"
        job = _Job(job_id, scenario.name, scenario.sweep.n_points)
        self._jobs[job_id] = job
        self._tasks[job_id] = asyncio.create_task(
            self._execute(job, scenario, rng), name=f"sweep-{job_id}"
        )
        return job_id

    async def _execute(self, job: _Job, scenario: Scenario, rng: RngLike) -> None:
        async with self._slots:
            job.state = "running"
            job.started_at = time.perf_counter()
            loop = asyncio.get_running_loop()
            try:
                job.report = await loop.run_in_executor(
                    None,
                    lambda: launch_sweep(
                        scenario,
                        rng=rng,
                        n_workers=self.n_workers,
                        shard_points=self.shard_points,
                        shard_deadline_s=self.shard_deadline_s,
                        max_retries=self.max_retries,
                        cache_dir=self.cache_dir,
                        progress=job.on_progress,
                    ),
                )
                job.state = "done"
                job.points_done = job.report.n_points
                job.retries = job.report.retries
            except BaseException as exc:
                job.state = "failed"
                job.error = exc
                if isinstance(exc, asyncio.CancelledError):
                    raise
            finally:
                job.finished_at = time.perf_counter()
                job.inflight.clear()
                job.done_event.set()

    def _require(self, job_id: str) -> _Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(
                f"unknown job {job_id!r} (have {sorted(self._jobs)})"
            ) from None

    def status(self, job_id: str) -> JobStatus:
        """A snapshot of the job's progress — safe to poll while running."""
        return self._require(job_id).snapshot()

    async def fetch(self, job_id: str) -> LaunchReport:
        """Wait for the job and return its :class:`LaunchReport`.

        Re-raises the launch's exception when the job failed.
        """
        job = self._require(job_id)
        await job.done_event.wait()
        if job.error is not None:
            raise job.error
        assert job.report is not None
        return job.report

    async def close(self) -> None:
        """Drain every job, then remove the service-scoped scratch dir.

        Running launches are allowed to finish (their worker pools shut
        down through the launcher's own path); only then is the shared
        spill directory removed — never out from under a live worker.
        """
        if self._tasks:
            await asyncio.gather(*self._tasks.values(), return_exceptions=True)
        if self._scratch is not None:
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None

"""Process-pool sweep execution for GIL-bound measures.

The thread backend is ideal when the per-point work is NumPy/SciPy FFTs
that release the GIL; measures dominated by Python bytecode (PLL loops,
Goertzel scans, PESQ alignment) serialize on it. This backend ships each
grid point to a ``ProcessPoolExecutor`` instead.

Bit-identity with the serial backend comes for free from the engine's
seed discipline: every point's stream seed is pre-derived in the parent,
so a worker just rebuilds ``default_rng(seed)`` and runs the exact same
:func:`~repro.engine.execution.execute_point`. What *does* need care is
the ambient cache, which is per-process:

- The scenario must be picklable — the declarative spec form
  (:class:`~repro.engine.scenario.AxisRef` templates, ``chain_axes``,
  module-level measures) exists for exactly this.
- The parent warms a disk :class:`~repro.engine.store.CacheStore` with
  every front-end composite the grid will need (one synthesis per
  distinct front end, same as in-process runs), and each worker's cache
  attaches to that store, so workers load ``.npz`` bytes instead of
  resynthesizing per worker. With ``REPRO_CACHE_DIR`` set the store is
  the user's persistent cache; otherwise a run-scoped temp directory.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import AmbientCache
from repro.engine.execution import composite_entry, execute_point
from repro.engine.scenario import GridPoint, Scenario
from repro.engine.store import CACHE_DIR_ENV_VAR, CacheStore

_WORKER_STATE: Dict[str, object] = {}


def _init_worker(scenario_blob: bytes, data: Dict[str, object], ambient_master: int,
                 store_dir: Optional[str]) -> None:
    """Per-worker setup: unpickle the scenario, attach the shared store."""
    scenario: Scenario = pickle.loads(scenario_blob)
    cache = None
    if scenario.cache_ambient:
        cache = AmbientCache(store=CacheStore(store_dir) if store_dir else None)
    _WORKER_STATE["scenario"] = scenario
    _WORKER_STATE["data"] = data
    _WORKER_STATE["ambient_master"] = ambient_master
    _WORKER_STATE["cache"] = cache


def _run_point_task(task: Tuple[int, GridPoint, int]) -> Tuple[int, object]:
    """Execute one grid point inside a worker."""
    index, point, seed = task
    value = execute_point(
        _WORKER_STATE["scenario"],
        point,
        seed,
        _WORKER_STATE["data"],
        _WORKER_STATE["cache"],
        _WORKER_STATE["ambient_master"],
    )
    return index, value


def warm_store(
    store: CacheStore,
    cache: AmbientCache,
    scenario: Scenario,
    data: Dict[str, object],
    points: Sequence[GridPoint],
    ambient_master: int,
) -> int:
    """Pre-fill ``store`` with every composite the grid will request.

    Only scenarios that declare their payload can be warmed (the runner
    then knows each point's front end + waveform up front); measures that
    transmit internally warm the store lazily from whichever worker
    synthesizes first. Returns the number of entries ensured.
    """
    ensured = 0
    seen = set()
    if not scenario.cache_ambient or scenario.measure_driven:
        return ensured

    for point in points:
        payload = scenario.payload_for(point, data)
        ambient, front_end, key = composite_entry(
            scenario, point, payload, cache, ambient_master
        )
        if key in seen:
            continue
        seen.add(key)
        ensured += 1
        # Presence check by path, not load: deserializing a multi-MB
        # composite just to discard it would dominate warm starts. A
        # corrupt file self-heals in the workers (their load-miss falls
        # back to synthesis).
        if store.path_for(key).exists():
            continue
        value = ambient.modulated_composite(front_end, payload)
        # A synthesis through a store-attached cache persists itself;
        # re-check so a memory-served composite still lands on disk
        # (e.g. the spill directory was cleared mid-session) without
        # writing the archive twice on the common cold path.
        if not store.path_for(key).exists():
            store.save(key, value)
    return ensured


def run_process_backend(
    scenario: Scenario,
    data: Dict[str, object],
    points: Sequence[GridPoint],
    seeds: Sequence[int],
    cache: Optional[AmbientCache],
    ambient_master: int,
    max_workers: int,
) -> List[object]:
    """Execute the grid across a process pool; values in grid order."""
    blob = scenario.require_picklable()

    store_dir: Optional[str] = None
    scratch_dir: Optional[str] = None
    if cache is not None and scenario.cache_ambient:
        if cache.store is not None:
            store_dir = str(cache.store.directory)
        else:
            persistent = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
            if persistent:
                store_dir = persistent
            else:
                scratch_dir = tempfile.mkdtemp(prefix="repro-sweep-spill-")
                store_dir = scratch_dir
        warm_store(
            CacheStore(store_dir), cache, scenario, data, points, ambient_master
        )

    tasks = [(i, point, seeds[i]) for i, point in enumerate(points)]
    values: List[object] = [None] * len(points)
    try:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(blob, data, ambient_master, store_dir),
        ) as pool:
            chunksize = max(1, len(tasks) // (4 * max_workers) or 1)
            for index, value in pool.map(_run_point_task, tasks, chunksize=chunksize):
                values[index] = value
    finally:
        if scratch_dir is not None:
            shutil.rmtree(scratch_dir, ignore_errors=True)
    return values

"""Declarative many-device deployments on the sweep engine.

The paper's headline vision (sections 1 and 8) is city-scale: many
street signs, posters and shirts coexisting on one FM band. Section 8
sketches the coexistence policies — devices in reach of *different*
empty channels use different ``fback`` values; devices forced onto the
*same* channel share it "with MAC protocols similar to the Aloha
protocol". This module makes that story a first-class, sweepable
workload:

- :class:`DeviceSpec` — one backscatter device (payload, power at the
  device, distance to the receiver, optional body-motion fading).
- :class:`ChannelPlan` — the coexistence policy. It routes the existing
  primitives instead of re-implementing them: channel selection through
  :class:`~repro.receiver.scanner.BandScanner` (quietest free channel in
  reach, per section 3.3) and slot contention through
  :class:`~repro.data.mac.SlottedAlohaSimulator` (framed ALOHA).
- :class:`DeploymentScenario` — N devices + a plan + a receiver
  placement, compiled by :meth:`DeploymentScenario.compile` into an
  ordinary picklable :class:`~repro.engine.scenario.Scenario`, so device
  count, per-device power, ALOHA slot count and sign density are sweep
  axes like any other: they run on all four ``REPRO_SWEEP_BACKEND``
  backends, their per-point streams are pre-derived (bit-identical
  results everywhere), and the ambient station is synthesized once per
  grid — not once per device — through the runner's
  :class:`~repro.engine.cache.AmbientCache`.

Per-point execution (``frames`` traffic): the plan assigns channels,
each frame round runs the MAC for the sharing group, and every device
that wins a clean slot transmits its frame through the full physical
chain (station + device + link + receiver + frame decode). The value is
a plain dict of per-device outcomes plus deployment-level delivery rate
and aggregate goodput. ``audio`` traffic models listeners instead:
per-device overlay PESQ, plus two-phone cooperative cancellation when
the receiver placement asks for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.constants import AUDIO_RATE_HZ
from repro.data.mac import SlottedAlohaSimulator
from repro.engine.scenario import AxisRef, Scenario, SweepSpec
from repro.errors import ConfigurationError, DemodulationError
from repro.receiver.scanner import BandScanner, ChannelObservation
from repro.utils.rand import RngLike, child_generator

DEFAULT_BAND_SNAPSHOT: Tuple[Tuple[int, float], ...] = (
    (47, -92.0),
    (48, -45.0),
    (49, -88.0),
    (50, -35.0),  # the strong local station the devices backscatter
    (51, -86.0),
    (52, -44.0),
    (53, -95.0),
)
"""Band activity around the paper's strong local station (channel 50):
two adjacent broadcasters at ±2 channels, quiet channels elsewhere."""

TRAFFIC_KINDS = ("frames", "audio")
"""Deployment traffic models: framed data uplinks, or audio listeners."""

SWEEPABLE_AXES = ("n_devices", "power_dbm", "slots_per_frame", "distance_scale")
"""Axis names a deployment sweep understands.

``n_devices`` activates the first N roster devices; ``power_dbm``
overrides every device's ambient power (the paper's link-budget knob);
``slots_per_frame`` resizes the ALOHA frame; ``distance_scale`` scales
every device-receiver distance — the sign-density knob (doubling density
shrinks distances by ``1/sqrt(2)``)."""


@dataclass(frozen=True)
class DeviceSpec:
    """One deployed backscatter device.

    Attributes:
        name: label carried into per-device results.
        payload: the frame payload the device repeats (``frames``
            traffic; unused for ``audio`` traffic).
        power_dbm: ambient FM power at the device.
        distance_ft: device-to-receiver distance.
        motion: optional body-motion fading state (``standing`` /
            ``walking`` / ``running``) for fabric devices.
        antenna: optional device antenna override (poster dipole when
            unset); fabric devices pass the sewn meander dipole.
        back_amplitude: payload amplitude in the device baseband (0, 1].
    """

    name: str
    payload: bytes = b""
    power_dbm: float = -35.0
    distance_ft: float = 8.0
    motion: Optional[str] = None
    antenna: Optional[object] = None
    back_amplitude: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("device name must be non-empty")
        if not np.isfinite(self.power_dbm):
            raise ConfigurationError(f"power_dbm must be finite, got {self.power_dbm!r}")
        if not self.distance_ft > 0:
            raise ConfigurationError(f"distance_ft must be positive, got {self.distance_ft!r}")
        if not 0.0 < self.back_amplitude <= 1.0:
            raise ConfigurationError(
                f"back_amplitude must be in (0, 1], got {self.back_amplitude!r}"
            )


@dataclass(frozen=True)
class ReceiverPlacement:
    """The listening side of a deployment.

    Attributes:
        kind: ``smartphone`` or ``car``.
        agc: enable the smartphone recording-chain AGC.
        cooperative: for ``audio`` traffic, add the second phone tuned to
            the ambient station and cancel the program (section 3.3).
    """

    kind: str = "smartphone"
    agc: bool = False
    cooperative: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("smartphone", "car"):
            raise ConfigurationError("receiver kind must be 'smartphone' or 'car'")


@dataclass(frozen=True)
class ChannelAssignment:
    """Per-device channel decisions made by a :class:`ChannelPlan`.

    Attributes:
        channels: channel index per device; ``-1`` means unserved (the
            ``dedicated`` policy ran out of free channels).
        fbacks_hz: the backscatter shift mapping the source channel onto
            each device's channel (0.0 for unserved devices).
        shared: whether the device contends for its channel via ALOHA.
    """

    channels: Tuple[int, ...]
    fbacks_hz: Tuple[float, ...]
    shared: Tuple[bool, ...]

    @property
    def sharing_indices(self) -> Tuple[int, ...]:
        """Devices contending on a shared channel, in roster order."""
        return tuple(i for i, s in enumerate(self.shared) if s)

    @property
    def n_served(self) -> int:
        return sum(1 for c in self.channels if c >= 0)

    def describe(self) -> List[str]:
        """Human-readable one-liner per device (for example drivers)."""
        lines = []
        for i, (channel, fback, shared) in enumerate(
            zip(self.channels, self.fbacks_hz, self.shared)
        ):
            if channel < 0:
                lines.append(f"device {i}: unserved (no free channel in reach)")
            else:
                mode = "shared, slotted ALOHA" if shared else "dedicated"
                lines.append(
                    f"device {i}: channel {channel} "
                    f"(fback = {fback / 1e3:.0f} kHz, {mode})"
                )
        return lines


@dataclass(frozen=True)
class ChannelPlan:
    """Coexistence policy: who transmits on which channel, and how.

    Policies (section 8):

    - ``dedicated`` — every device gets its own free channel, chosen
      quietest-first by :class:`~repro.receiver.scanner.BandScanner`;
      devices beyond the free-channel supply are unserved.
    - ``aloha`` — all devices share the single best free channel and
      contend with framed slotted ALOHA.
    - ``auto`` (default) — dedicated channels while they last, then the
      overflow shares the last assigned channel (with its owner).

    Args:
        policy: one of ``dedicated`` / ``aloha`` / ``auto``.
        band_snapshot: ``(channel, power_dbm)`` observations of the band.
        source_channel: the strong station the devices backscatter.
        occupancy_threshold_dbm: occupied-channel threshold for the
            scanner.
        max_shift_channels: how far ``fback`` can move energy.
        slots_per_frame: ALOHA frame size (slots per frame round); a
            sweep's ``slots_per_frame`` axis overrides it per point.
    """

    policy: str = "auto"
    band_snapshot: Tuple[Tuple[int, float], ...] = DEFAULT_BAND_SNAPSHOT
    source_channel: int = 50
    occupancy_threshold_dbm: float = -70.0
    max_shift_channels: int = 4
    slots_per_frame: int = 8

    def __post_init__(self) -> None:
        if self.policy not in ("dedicated", "aloha", "auto"):
            raise ConfigurationError(
                f"policy must be 'dedicated', 'aloha' or 'auto', got {self.policy!r}"
            )
        if self.slots_per_frame < 1:
            raise ConfigurationError("slots_per_frame must be >= 1")
        if self.max_shift_channels < 1:
            raise ConfigurationError("max_shift_channels must be >= 1")

    def scanner(self) -> BandScanner:
        """The configured band scanner."""
        return BandScanner(occupancy_threshold_dbm=self.occupancy_threshold_dbm)

    def observations(self) -> List[ChannelObservation]:
        """The snapshot as scanner observations."""
        return [ChannelObservation(channel=c, power_dbm=p) for c, p in self.band_snapshot]

    def occupied_channels(self) -> List[int]:
        """Channels the snapshot shows as occupied by broadcasters."""
        return self.scanner().occupied_channels(self.observations())

    def free_channels(self, limit: Optional[int] = None) -> List[int]:
        """Free channels in reach, quietest first, up to ``limit``."""
        # 2 * max_shift_channels bounds the channels in reach, so it is
        # a safe "all of them" cap when no limit is given.
        return self.scanner().allocate_channels(
            self.observations(),
            self.source_channel,
            limit if limit is not None else 2 * self.max_shift_channels,
            self.max_shift_channels,
        )

    def assign(self, n_devices: int) -> ChannelAssignment:
        """Assign ``n_devices`` roster slots to channels under the policy."""
        if n_devices < 1:
            raise ConfigurationError("n_devices must be >= 1")
        if self.policy == "aloha":
            free = self.free_channels(limit=1)
            if not free:
                raise ConfigurationError(
                    "ALOHA sharing needs at least one free channel in reach"
                )
            channels = [free[0]] * n_devices
            shared = [n_devices > 1] * n_devices
        else:
            free = self.free_channels(limit=n_devices)
            if len(free) >= n_devices:
                channels = free[:n_devices]
                shared = [False] * n_devices
            elif self.policy == "dedicated":
                channels = free + [-1] * (n_devices - len(free))
                shared = [False] * n_devices
            else:  # auto: overflow shares the last free channel with its owner
                if not free:
                    raise ConfigurationError(
                        "deployment has no free channel in reach of the source"
                    )
                channels = free + [free[-1]] * (n_devices - len(free))
                shared = [c == free[-1] for c in channels]
        fbacks = tuple(
            BandScanner.fback_for_channels(self.source_channel, c) if c >= 0 else 0.0
            for c in channels
        )
        return ChannelAssignment(
            channels=tuple(channels), fbacks_hz=fbacks, shared=tuple(shared)
        )

    def mac(self, n_sharing: int) -> SlottedAlohaSimulator:
        """The ALOHA simulator for a sharing group of ``n_sharing``."""
        return SlottedAlohaSimulator(
            n_devices=n_sharing,
            transmit_probability=SlottedAlohaSimulator.optimal_probability(n_sharing),
        )

    def frame_outcome(
        self, n_sharing: int, slots: int, rng: RngLike = None
    ) -> np.ndarray:
        """One framed-ALOHA round for the sharing group.

        Returns a boolean array: per sharing device, whether its frame
        landed in a clean (collision-free) slot.
        """
        return self.mac(n_sharing).frame_outcome(slots, rng=rng)

    def framed_success_probability(self, n_sharing: int, slots: int) -> float:
        """Analytic per-device framed-ALOHA success probability.

        An empty (or singleton) sharing group is uncontended: 1.0.
        """
        if n_sharing < 1:
            return 1.0
        return self.mac(n_sharing).framed_success_probability(slots)


def make_roster(
    n_devices: int,
    payload_format: str = "SIGN-{i:02d}",
    power_dbm: float = -35.0,
    base_distance_ft: float = 6.0,
    spacing_ft: float = 2.0,
    motion: Optional[str] = None,
) -> Tuple[DeviceSpec, ...]:
    """A uniform roster of ``n_devices`` devices with distinct payloads.

    Devices sit at cyclically staggered distances (four rings around the
    receiver) so a roster prefix — the ``n_devices`` sweep axis — keeps a
    realistic spread at every count.
    """
    if n_devices < 1:
        raise ConfigurationError("n_devices must be >= 1")
    return tuple(
        DeviceSpec(
            name=f"dev{i:02d}",
            payload=payload_format.format(i=i).encode("ascii"),
            power_dbm=power_dbm,
            distance_ft=base_distance_ft + spacing_ft * (i % 4),
            motion=motion,
        )
        for i in range(n_devices)
    )


@dataclass
class DeploymentScenario:
    """N devices + a channel plan + a receiver, as a sweepable scenario.

    :meth:`compile` lowers the deployment onto the ordinary
    :class:`~repro.engine.scenario.Scenario` machinery, in the picklable
    spec form (module-level measure, plain-data ``measure_params``,
    :class:`AxisRef` RNG template), so the compiled sweep runs on all
    four backends — including ``process`` — and every grid point shares
    one cached ambient synthesis.

    Args:
        name: scenario label (and RNG key prefix).
        devices: the full roster; an ``n_devices`` axis activates
            prefixes of it.
        plan: channel coexistence policy.
        receiver: the listening side.
        program: ambient station program all devices ride on.
        station_stereo: ambient station broadcasts stereo.
        traffic: ``frames`` (framed data uplinks, the default) or
            ``audio`` (listener PESQ, optionally cooperative).
        rate: modem rate for ``frames`` traffic (one of the paper's
            ``100bps`` / ``1.6kbps`` / ``3.2kbps``).
        frames_per_device: frame rounds each device attempts (retries).
        audio_seconds: reference-speech duration for ``audio`` traffic.
        axes: sweep axes, a subset of :data:`SWEEPABLE_AXES`; empty means
            a single point at the full roster size.
    """

    name: str
    devices: Tuple[DeviceSpec, ...]
    plan: ChannelPlan = field(default_factory=ChannelPlan)
    receiver: ReceiverPlacement = field(default_factory=ReceiverPlacement)
    program: str = "news"
    station_stereo: bool = True
    traffic: str = "frames"
    rate: str = "100bps"
    frames_per_device: int = 1
    audio_seconds: float = 1.5
    axes: Mapping[str, Tuple[object, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.devices = tuple(self.devices)
        if not self.devices:
            raise ConfigurationError("deployment needs at least one device")
        if self.traffic not in TRAFFIC_KINDS:
            raise ConfigurationError(f"traffic must be one of {TRAFFIC_KINDS}")
        if self.frames_per_device < 1:
            raise ConfigurationError("frames_per_device must be >= 1")
        self.axes = {name: tuple(values) for name, values in self.axes.items()}
        unknown = set(self.axes) - set(SWEEPABLE_AXES)
        if unknown:
            raise ConfigurationError(
                f"unknown deployment axes {sorted(unknown)}; "
                f"supported: {SWEEPABLE_AXES}"
            )
        if self.traffic == "audio" and "slots_per_frame" in self.axes:
            raise ConfigurationError(
                "audio traffic has no MAC contention; a slots_per_frame "
                "axis would sweep identical points"
            )
        for count in self.axes.get("n_devices", ()):
            if not 1 <= int(count) <= len(self.devices):
                raise ConfigurationError(
                    f"n_devices axis value {count} outside the roster "
                    f"size {len(self.devices)}"
                )
        if self.traffic == "frames":
            for device in self.devices:
                if not device.payload:
                    raise ConfigurationError(
                        f"device {device.name!r} has an empty payload "
                        "(frames traffic transmits device payloads)"
                    )

    def sweep_spec(self) -> SweepSpec:
        """The deployment's grid (a single full-roster point if no axes)."""
        return SweepSpec.grid(**(dict(self.axes) or {"n_devices": (len(self.devices),)}))

    def _modem(self):
        from repro.experiments.fig08_ber_overlay import make_modem

        return make_modem(self.rate)

    def _prepare(self, gen: np.random.Generator) -> Dict[str, object]:
        """Shared per-sweep data: encoded frame waveforms or the speech.

        Frame waveforms are zero-padded to one common length so every
        device's transmission has the same duration — which is what lets
        the whole grid share a single ambient-program synthesis.
        """
        if self.traffic == "audio":
            from repro.audio.speech import speech_like

            return {
                "message": speech_like(
                    self.audio_seconds,
                    AUDIO_RATE_HZ,
                    child_generator(gen, "speech"),
                    amplitude=0.9,
                )
            }
        from repro.data.framing import FrameCodec

        codec = FrameCodec(self._modem())
        waveforms = [codec.encode(device.payload) for device in self.devices]
        n_samples = max(w.size for w in waveforms)
        waveforms = [
            np.pad(w, (0, n_samples - w.size)) if w.size < n_samples else w
            for w in waveforms
        ]
        return {"waveforms": waveforms}

    def compile(self) -> Scenario:
        """Lower onto the engine: a picklable, backend-agnostic Scenario.

        The deployment itself travels as a ``measure_params`` entry —
        every field is plain data, so the compiled scenario pickles into
        process-pool workers unchanged.
        """
        sweep = self.sweep_spec()
        return Scenario(
            name=self.name,
            sweep=sweep,
            prepare=self._prepare,
            rng_keys=(self.name,) + tuple(AxisRef(name) for name in sweep.names),
            measure=measure_deployment,
            measure_params={"deployment": self},
        )

    def run(self, rng: RngLike = None, **runner_kwargs):
        """Compile and execute through the sweep engine."""
        from repro.engine.runner import run_scenario

        return run_scenario(self.compile(), rng=rng, **runner_kwargs)


def measure_deployment(run, deployment: DeploymentScenario) -> Dict[str, object]:
    """Per-point deployment measure (module-level: ships to any backend)."""
    if deployment.traffic == "audio":
        return _measure_audio(run, deployment)
    return _measure_frames(run, deployment)


def _point_overrides(run, deployment: DeploymentScenario):
    """Resolve the point's axis values against the deployment defaults."""
    point = run.point
    n = int(point.get("n_devices", len(deployment.devices)))
    power = point.get("power_dbm")
    slots = int(point.get("slots_per_frame", deployment.plan.slots_per_frame))
    scale = float(point.get("distance_scale", 1.0))
    return n, (None if power is None else float(power)), slots, scale


def _device_chain(
    deployment: DeploymentScenario,
    device: DeviceSpec,
    power_dbm: Optional[float],
    distance_scale: float,
    fade_rng: Optional[np.random.Generator],
):
    """Build one device's end-to-end chain (imports deferred: the engine
    package is otherwise upstream of the experiments layer)."""
    from repro.experiments.common import ExperimentChain

    fading = None
    if device.motion is not None:
        from repro.channel.fading import BodyMotionFading

        fading = BodyMotionFading(device.motion, fade_rng)
    kwargs = dict(
        program=deployment.program,
        station_stereo=deployment.station_stereo,
        power_dbm=device.power_dbm if power_dbm is None else power_dbm,
        distance_ft=device.distance_ft * distance_scale,
        receiver_kind=deployment.receiver.kind,
        back_amplitude=device.back_amplitude,
        stereo_decode=False,
        agc=deployment.receiver.agc,
        fading=fading,
    )
    if device.antenna is not None:
        kwargs["device_antenna"] = device.antenna
    return ExperimentChain(**kwargs)


def _measure_frames(run, deployment: DeploymentScenario) -> Dict[str, object]:
    """Frame-delivery outcome of one grid point.

    MAC first, PHY second: every frame round draws the sharing group's
    framed-ALOHA slots, then only collision-free winners (and dedicated
    devices) pay for a physical transmission. All generators are derived
    from the point's pre-derived stream in a fixed order, so outcomes are
    bit-identical across backends.
    """
    from repro.data.framing import FrameCodec

    n, power_dbm, slots, scale = _point_overrides(run, deployment)
    devices = deployment.devices[:n]
    n_frames = deployment.frames_per_device
    assignment = deployment.plan.assign(n)
    sharing = assignment.sharing_indices

    mac_rng = child_generator(run.rng, "mac")
    frame_rngs = [
        [child_generator(run.rng, "dev", i, f) for f in range(n_frames)]
        for i in range(n)
    ]

    codec = FrameCodec(deployment._modem())
    waveforms = run.data["waveforms"]
    frame_airtime_s = waveforms[0].size / AUDIO_RATE_HZ

    mac_lost = [0] * n
    delivered = [0] * n
    for f in range(n_frames):
        clean: Dict[int, bool] = {}
        if sharing:
            flags = deployment.plan.frame_outcome(len(sharing), slots, mac_rng)
            clean = {i: bool(flags[pos]) for pos, i in enumerate(sharing)}
        for i, device in enumerate(devices):
            if assignment.channels[i] < 0:
                continue  # unserved: every frame is lost before the MAC
            if assignment.shared[i] and not clean[i]:
                mac_lost[i] += 1
                continue
            rng_f = frame_rngs[i][f]
            fade_rng = child_generator(rng_f, "fade") if device.motion else None
            chain = _device_chain(deployment, device, power_dbm, scale, fade_rng)
            chain.ambient_source = run.ambient
            received = chain.transmit(waveforms[i], rng_f)
            try:
                sync = codec.decode(chain.payload_channel(received))
                delivered[i] += int(sync.payload == device.payload)
            except DemodulationError:
                pass

    # Airtime: channels run concurrently, so aggregate goodput is the
    # sum of per-device rates — each over its *own* channel's window: a
    # dedicated device occupies one frame airtime per round, a sharing
    # device's round spans the whole ALOHA frame of `slots`.
    per_device = []
    for i, device in enumerate(devices):
        device_window_s = (
            n_frames * frame_airtime_s * (slots if assignment.shared[i] else 1)
        )
        per_device.append(
            {
                "name": device.name,
                "channel": int(assignment.channels[i]),
                "fback_khz": assignment.fbacks_hz[i] / 1e3,
                "shared": bool(assignment.shared[i]),
                "frames": n_frames,
                "mac_lost": mac_lost[i],
                "delivered": delivered[i],
                "delivery_rate": delivered[i] / n_frames,
                "goodput_bps": delivered[i] * 8 * len(device.payload) / device_window_s,
            }
        )
    # The observation window: the slowest (shared) channel's span.
    window_s = n_frames * frame_airtime_s * (slots if sharing else 1)
    return {
        "n_devices": n,
        "slots_per_frame": slots,
        "per_device": per_device,
        "delivery_rate": float(np.mean([d["delivery_rate"] for d in per_device])),
        "aggregate_goodput_bps": float(sum(d["goodput_bps"] for d in per_device)),
        "window_s": window_s,
        "n_shared": len(sharing),
        "expected_mac_success": deployment.plan.framed_success_probability(
            len(sharing), slots
        ),
    }


def _measure_audio(run, deployment: DeploymentScenario) -> Dict[str, object]:
    """Listener-quality outcome of one grid point (``audio`` traffic)."""
    from repro.audio.pesq import pesq_like
    from repro.experiments.fig12_pesq_cooperative import simulate_two_phones

    n, power_dbm, _, scale = _point_overrides(run, deployment)
    devices = deployment.devices[:n]
    message = run.data["message"]

    per_device = []
    for i, device in enumerate(devices):
        rng_d = child_generator(run.rng, "dev", i)
        fade_rng = child_generator(rng_d, "fade") if device.motion else None
        chain = _device_chain(deployment, device, power_dbm, scale, fade_rng)
        chain.ambient_source = run.ambient
        overlay_audio = chain.payload_channel(
            chain.transmit(message, child_generator(rng_d, "overlay"))
        )
        m = min(message.size, overlay_audio.size)
        entry: Dict[str, object] = {
            "name": device.name,
            "overlay_pesq": float(pesq_like(message[:m], overlay_audio[:m], AUDIO_RATE_HZ)),
        }
        if deployment.receiver.cooperative:
            # The chain holds the resolved power/distance, so the
            # two-phone path cannot diverge from the overlay link.
            recovered, _ = simulate_two_phones(
                message,
                chain.power_dbm,
                chain.distance_ft,
                program=deployment.program,
                rng=child_generator(rng_d, "coop"),
                ambient=run.ambient,
            )
            m = min(message.size, recovered.size)
            entry["cooperative_pesq"] = float(
                pesq_like(message[:m], recovered[:m], AUDIO_RATE_HZ)
            )
        per_device.append(entry)
    return {"n_devices": n, "per_device": per_device}

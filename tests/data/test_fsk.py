"""2-FSK modem tests (the paper's 100 bps mode)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.noise import awgn
from repro.data.bits import random_bits
from repro.data.fsk import BinaryFskModem
from repro.errors import ConfigurationError, DemodulationError


class TestModulate:
    def test_waveform_length(self):
        modem = BinaryFskModem()
        wave = modem.modulate([1, 0, 1])
        assert wave.size == 3 * modem.samples_per_symbol

    def test_continuous_phase(self):
        # CPFSK: no sample-to-sample jumps larger than the max tone step.
        modem = BinaryFskModem(edge_fraction=0.0)
        wave = modem.modulate(random_bits(20, rng=0))
        max_step = 2 * np.pi * modem.freq_one_hz / modem.sample_rate
        assert np.max(np.abs(np.diff(wave))) <= max_step + 1e-6

    def test_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            BinaryFskModem().modulate([0, 2])

    def test_rejects_equal_tones(self):
        with pytest.raises(ConfigurationError):
            BinaryFskModem(freq_zero_hz=8000, freq_one_hz=8000)

    def test_bit_rate(self):
        assert BinaryFskModem().bit_rate == 100.0


class TestDemodulate:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_clean_round_trip(self, bits):
        modem = BinaryFskModem()
        recovered = modem.demodulate(modem.modulate(bits), len(bits))
        assert np.array_equal(recovered, bits)

    def test_round_trip_with_noise(self):
        modem = BinaryFskModem()
        bits = random_bits(50, rng=1)
        noisy = awgn(modem.modulate(bits), 10.0, rng=2)
        assert np.array_equal(modem.demodulate(noisy, 50), bits)

    def test_heavy_noise_causes_errors(self):
        modem = BinaryFskModem()
        bits = random_bits(200, rng=3)
        noisy = awgn(modem.modulate(bits), -20.0, rng=4)
        recovered = modem.demodulate(noisy, 200)
        assert np.mean(recovered != bits) > 0.1

    def test_rejects_short_audio(self):
        modem = BinaryFskModem()
        with pytest.raises(DemodulationError):
            modem.demodulate(np.zeros(100), 10)

    def test_soft_powers_shape(self):
        modem = BinaryFskModem()
        wave = modem.modulate([1, 0])
        powers = modem.soft_powers(wave, 2)
        assert powers.shape == (2, 2)
        assert powers[0, 1] > powers[0, 0]  # bit 1 -> power at f_one
        assert powers[1, 0] > powers[1, 1]


class TestPaperParameters:
    def test_default_tones_are_8_and_12_khz(self):
        modem = BinaryFskModem()
        assert modem.freq_zero_hz == 8000.0
        assert modem.freq_one_hz == 12_000.0

    def test_tones_above_speech_band(self):
        # Section 3.4: tones sit above most human speech frequencies.
        modem = BinaryFskModem()
        assert min(modem.freq_zero_hz, modem.freq_one_hz) >= 8000.0

"""FDM-4FSK modem tests (the paper's 1.6 / 3.2 kbps modes)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.noise import awgn
from repro.data.bits import random_bits
from repro.data.fdm import BITS_PER_SYMBOL, FdmFskModem
from repro.errors import ConfigurationError, DemodulationError


class TestStructure:
    def test_sixteen_tones(self):
        modem = FdmFskModem()
        assert modem.tones_hz.size == 16
        assert modem.tones_hz[0] == 800.0
        assert modem.tones_hz[-1] == 12_800.0

    def test_four_groups_of_four(self):
        modem = FdmFskModem()
        for group in range(4):
            assert modem.group_tones_hz(group).size == 4

    def test_bit_rates_match_paper(self):
        assert FdmFskModem(symbol_rate=200).bit_rate == 1600.0
        assert FdmFskModem(symbol_rate=400).bit_rate == 3200.0

    def test_rejects_bad_group(self):
        with pytest.raises(ConfigurationError):
            FdmFskModem().group_tones_hz(4)


class TestModulate:
    def test_four_active_tones_per_symbol(self):
        # One symbol: exactly one tone per group should carry power.
        modem = FdmFskModem(symbol_rate=200)
        wave = modem.modulate(np.zeros(8, dtype=int))  # symbol 0 everywhere
        from repro.dsp.goertzel import goertzel_power_many

        powers = goertzel_power_many(wave, modem.tones_hz, modem.sample_rate)
        active = powers > 0.25 * np.max(powers)
        assert np.sum(active) == 4

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            FdmFskModem().modulate([])


class TestDemodulate:
    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_clean_round_trip(self, n_symbols):
        modem = FdmFskModem(symbol_rate=200)
        bits = random_bits(n_symbols * BITS_PER_SYMBOL, rng=n_symbols)
        recovered = modem.demodulate(modem.modulate(bits), bits.size)
        assert np.array_equal(recovered, bits)

    def test_round_trip_at_3200bps(self):
        modem = FdmFskModem(symbol_rate=400)
        bits = random_bits(160, rng=7)
        recovered = modem.demodulate(modem.modulate(bits), bits.size)
        assert np.array_equal(recovered, bits)

    def test_noise_tolerance(self):
        modem = FdmFskModem(symbol_rate=200)
        bits = random_bits(160, rng=8)
        noisy = awgn(modem.modulate(bits), 15.0, rng=9)
        assert np.array_equal(modem.demodulate(noisy, bits.size), bits)

    def test_rejects_non_symbol_multiple(self):
        modem = FdmFskModem()
        with pytest.raises(ConfigurationError):
            modem.demodulate(np.zeros(48_000), 7)

    def test_rejects_short_audio(self):
        modem = FdmFskModem()
        with pytest.raises(DemodulationError):
            modem.demodulate(np.zeros(10), 8)


class TestRateRangeTradeoff:
    def test_higher_rate_more_fragile(self):
        # The paper's observation: 400 sym/s degrades before 200 sym/s.
        bits = random_bits(320, rng=10)
        errors = {}
        for rate in (200, 400):
            modem = FdmFskModem(symbol_rate=rate)
            noisy = awgn(modem.modulate(bits), -2.0, rng=11)
            recovered = modem.demodulate(noisy, bits.size)
            errors[rate] = np.mean(recovered != bits)
        assert errors[400] >= errors[200]

"""Frame codec tests."""

import numpy as np
import pytest

from repro.channel.noise import awgn
from repro.data.fdm import FdmFskModem
from repro.data.framing import FrameCodec
from repro.data.fsk import BinaryFskModem
from repro.errors import ConfigurationError, DemodulationError


class TestEncodeDecode:
    def test_round_trip_bfsk(self):
        codec = FrameCodec(BinaryFskModem())
        wave = codec.encode(b"HELLO")
        result = codec.decode(wave, search=False)
        assert result.payload == b"HELLO"
        assert result.preamble_errors == 0

    def test_round_trip_fdm(self):
        codec = FrameCodec(FdmFskModem(symbol_rate=200))
        wave = codec.encode(b"FM BACKSCATTER")
        result = codec.decode(wave, search=False)
        assert result.payload == b"FM BACKSCATTER"

    def test_search_finds_offset_frame(self):
        modem = BinaryFskModem()
        codec = FrameCodec(modem)
        wave = codec.encode(b"HI")
        offset = 3 * modem.samples_per_symbol
        padded = np.concatenate([np.zeros(offset), wave, np.zeros(1000)])
        result = codec.decode(padded)
        assert result.payload == b"HI"
        # Non-coherent FSK tolerates sub-symbol misalignment, so the search
        # may lock anywhere within roughly half a symbol of the true start.
        assert abs(result.sample_offset - offset) <= modem.samples_per_symbol // 2

    def test_tolerates_noise(self):
        codec = FrameCodec(BinaryFskModem())
        wave = awgn(codec.encode(b"NOISY"), 12.0, rng=0)
        assert codec.decode(wave, search=False).payload == b"NOISY"

    def test_no_frame_raises(self):
        codec = FrameCodec(BinaryFskModem())
        with pytest.raises(DemodulationError):
            codec.decode(
                np.random.default_rng(0).standard_normal(48_000), search=False
            )

    def test_rejects_empty_payload(self):
        with pytest.raises(ConfigurationError):
            FrameCodec(BinaryFskModem()).encode(b"")

    def test_frame_bits_accounting(self):
        codec = FrameCodec(BinaryFskModem())
        assert codec.frame_bits(b"AB") == 32 + 16 + 16

"""Interleaver and CRC-16 tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.coding import hamming74_decode, hamming74_encode
from repro.data.crc16 import append_crc16, crc16, verify_crc16
from repro.data.interleave import deinterleave, interleave
from repro.errors import ConfigurationError


class TestInterleave:
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=128),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, bits, depth):
        inter = interleave(np.array(bits), depth)
        recovered = deinterleave(inter, depth, len(bits))
        assert np.array_equal(recovered, bits)

    def test_burst_becomes_isolated_errors(self):
        # A burst of `depth` consecutive errors in the channel lands on
        # `depth` different rows after deinterleaving.
        depth = 7
        bits = np.zeros(49, dtype=int)
        inter = interleave(bits, depth)
        inter[10:17] ^= 1  # 7-bit burst
        recovered = deinterleave(inter, depth, 49)
        error_positions = np.flatnonzero(recovered)
        # No two errors within the same 7-bit codeword.
        codewords = error_positions // 7
        assert len(set(codewords)) == len(codewords)

    def test_interleaved_hamming_survives_burst(self):
        data = np.random.default_rng(0).integers(0, 2, size=28)
        coded = hamming74_encode(data)  # 49 bits
        sent = interleave(coded, depth=7)
        sent[20:27] ^= 1  # burst as long as a codeword
        received = deinterleave(sent, 7, coded.size)
        decoded = hamming74_decode(received)[: data.size]
        assert np.array_equal(decoded, data)

    def test_uninterleaved_hamming_fails_same_burst(self):
        data = np.random.default_rng(0).integers(0, 2, size=28)
        coded = hamming74_encode(data)
        coded[20:27] ^= 1  # burst inside one codeword region
        decoded = hamming74_decode(coded)[: data.size]
        assert not np.array_equal(decoded, data)

    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigurationError):
            interleave(np.array([1, 0]), 0)


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16(b"123456789") == 0x29B1

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, payload):
        assert verify_crc16(append_crc16(payload)) == payload

    @given(st.binary(min_size=1, max_size=32), st.integers(min_value=0, max_value=255))
    @settings(max_examples=40, deadline=None)
    def test_detects_single_byte_corruption(self, payload, flip):
        frame = bytearray(append_crc16(payload))
        pos = flip % len(frame)
        frame[pos] ^= 0xFF
        with pytest.raises(ValueError):
            verify_crc16(bytes(frame))

    def test_rejects_tiny_frame(self):
        with pytest.raises(ConfigurationError):
            verify_crc16(b"ab")

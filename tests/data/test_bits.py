"""Bit utility tests with hypothesis round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.bits import (
    bits_to_bytes,
    bits_to_symbols,
    bytes_to_bits,
    random_bits,
    symbols_to_bits,
)
from repro.errors import ConfigurationError


class TestRandomBits:
    def test_binary_valued(self):
        bits = random_bits(1000, rng=0)
        assert set(np.unique(bits)) <= {0, 1}

    def test_roughly_balanced(self):
        bits = random_bits(10_000, rng=1)
        assert 0.45 < np.mean(bits) < 0.55

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            random_bits(0)


class TestBytesBits:
    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_msb_first(self):
        assert np.array_equal(bytes_to_bits(b"\x80"), [1, 0, 0, 0, 0, 0, 0, 0])

    def test_rejects_partial_byte(self):
        with pytest.raises(ConfigurationError):
            bits_to_bytes(np.array([1, 0, 1]))


class TestSymbols:
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_with_padding(self, bits, bps):
        symbols = bits_to_symbols(np.array(bits), bps)
        recovered = symbols_to_bits(symbols, bps)
        assert np.array_equal(recovered[: len(bits)], bits)

    def test_msb_first_grouping(self):
        symbols = bits_to_symbols(np.array([1, 0, 1, 1]), 2)
        assert np.array_equal(symbols, [2, 3])

    def test_rejects_out_of_range_symbol(self):
        with pytest.raises(ConfigurationError):
            symbols_to_bits(np.array([4]), 2)

"""Slotted-ALOHA MAC tests."""

import pytest

from repro.data.mac import AlohaStats, SlottedAlohaSimulator
from repro.errors import ConfigurationError


class TestAnalytic:
    def test_optimal_probability(self):
        assert SlottedAlohaSimulator.optimal_probability(10) == pytest.approx(0.1)

    def test_peak_throughput_approaches_1_over_e(self):
        sim = SlottedAlohaSimulator(50, 1 / 50)
        assert sim.expected_throughput() == pytest.approx(1 / 2.718, abs=0.02)

    def test_single_device_always_succeeds_at_p1(self):
        sim = SlottedAlohaSimulator(1, 1.0)
        assert sim.expected_throughput() == 1.0


class TestSimulation:
    def test_matches_analytic(self):
        sim = SlottedAlohaSimulator(10, 0.1)
        stats = sim.run(200_000, rng=0)
        assert stats.throughput == pytest.approx(sim.expected_throughput(), abs=0.01)

    def test_counts_are_consistent(self):
        sim = SlottedAlohaSimulator(5, 0.3)
        stats = sim.run(10_000, rng=1)
        assert stats.successes + stats.collisions + stats.idle == stats.n_slots

    def test_overload_collapses_throughput(self):
        light = SlottedAlohaSimulator(10, 0.1).run(50_000, rng=2).throughput
        heavy = SlottedAlohaSimulator(10, 0.9).run(50_000, rng=2).throughput
        assert heavy < light / 5

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            SlottedAlohaSimulator(5, 1.5)

    def test_empty_stats_throughput(self):
        assert AlohaStats(0, 0, 0, 0).throughput == 0.0

"""MRC, BER accounting, and error-correction coding tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.ber import bit_error_rate, count_bit_errors
from repro.data.bits import random_bits
from repro.data.coding import (
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
)
from repro.data.mrc import expected_snr_gain_db, mrc_combine
from repro.errors import ConfigurationError


class TestMrc:
    def test_combining_raises_snr(self, rng):
        signal = np.sin(2 * np.pi * 0.01 * np.arange(10_000))
        receptions = [signal + rng.standard_normal(signal.size) for _ in range(4)]

        def snr(x):
            noise = x - signal
            return np.mean(signal**2) / np.mean(noise**2)

        single = snr(receptions[0])
        combined = snr(mrc_combine(receptions))
        assert combined > 2.5 * single  # up to 4x for 4 branches

    def test_weighted_combining_prefers_good_branch(self, rng):
        signal = np.sin(2 * np.pi * 0.01 * np.arange(10_000))
        good = signal + 0.1 * rng.standard_normal(signal.size)
        bad = signal + 3.0 * rng.standard_normal(signal.size)
        equal = mrc_combine([good, bad])
        weighted = mrc_combine([good, bad], snrs_db=[20.0, -9.5])

        def err(x):
            return np.mean((x - signal) ** 2)

        assert err(weighted) < err(equal)

    def test_expected_gain(self):
        assert expected_snr_gain_db(2) == pytest.approx(3.01, abs=0.01)
        assert expected_snr_gain_db(4) == pytest.approx(6.02, abs=0.01)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            mrc_combine([])

    def test_rejects_mismatched_snrs(self):
        with pytest.raises(ConfigurationError):
            mrc_combine([np.ones(10)], snrs_db=[1.0, 2.0])


class TestBer:
    def test_no_errors(self):
        bits = random_bits(100, rng=0)
        assert bit_error_rate(bits, bits.copy()) == 0.0

    def test_all_errors(self):
        bits = random_bits(100, rng=1)
        assert bit_error_rate(bits, 1 - bits) == 1.0

    def test_missing_tail_counts_as_errors(self):
        sent = np.array([1, 1, 1, 1])
        received = np.array([1, 1])
        assert count_bit_errors(sent, received) == 2

    def test_rejects_empty_sent(self):
        with pytest.raises(ConfigurationError):
            count_bit_errors(np.array([]), np.array([1]))


class TestHamming:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, bits):
        coded = hamming74_encode(np.array(bits))
        decoded = hamming74_decode(coded)
        assert np.array_equal(decoded[: len(bits)], bits)

    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_corrects_any_single_error(self, nibble, error_pos):
        bits = np.array([(nibble >> k) & 1 for k in range(4)])
        coded = hamming74_encode(bits)
        coded[error_pos] ^= 1
        assert np.array_equal(hamming74_decode(coded), bits)

    def test_rate_is_4_over_7(self):
        assert hamming74_encode(np.zeros(4, dtype=int)).size == 7

    def test_rejects_bad_length(self):
        with pytest.raises(ConfigurationError):
            hamming74_decode(np.zeros(6, dtype=int))


class TestRepetition:
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=32),
        st.sampled_from([1, 3, 5]),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, bits, factor):
        coded = repetition_encode(np.array(bits), factor)
        assert np.array_equal(repetition_decode(coded, factor), bits)

    def test_majority_corrects_minority_errors(self):
        coded = repetition_encode(np.array([1, 0]), 3)
        coded[0] ^= 1  # one of three copies of the first bit
        assert np.array_equal(repetition_decode(coded, 3), [1, 0])

    def test_rejects_even_factor(self):
        with pytest.raises(ConfigurationError):
            repetition_encode(np.array([1]), 2)

"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.audio.speech import speech_like
from repro.constants import AUDIO_RATE_HZ


@pytest.fixture
def rng():
    """Deterministic generator for stochastic tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def short_speech():
    """Half a second of deterministic speech-like audio (48 kHz)."""
    return speech_like(0.5, AUDIO_RATE_HZ, rng=7, amplitude=0.9)


@pytest.fixture(scope="session")
def one_second_speech():
    """One second of deterministic speech-like audio (48 kHz)."""
    return speech_like(1.0, AUDIO_RATE_HZ, rng=11, amplitude=0.9)

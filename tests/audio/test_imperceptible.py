"""Imperceptible-embedding tests (section 8 extension)."""

import numpy as np
import pytest

from repro.audio.imperceptible import embed_imperceptible
from repro.audio.music import music_like
from repro.audio.pesq import pesq_like
from repro.audio.speech import speech_like
from repro.data.bits import random_bits
from repro.data.fsk import BinaryFskModem
from repro.errors import ConfigurationError

FS = 48_000.0


@pytest.fixture(scope="module")
def program():
    return speech_like(2.0, FS, rng=3, amplitude=0.9)


@pytest.fixture(scope="module")
def modem():
    return BinaryFskModem()


class TestEmbedding:
    def test_data_recoverable_at_default_level(self, program, modem):
        bits = random_bits(150, rng=1)
        composite = embed_imperceptible(program, modem.modulate(bits), sample_rate=FS)
        recovered = modem.demodulate(composite, bits.size)
        assert np.mean(recovered != bits) < 0.05

    def test_perceptually_transparent_over_speech(self, program, modem):
        bits = random_bits(150, rng=2)
        composite = embed_imperceptible(program, modem.modulate(bits), sample_rate=FS)
        assert pesq_like(program, composite, FS) > 3.5

    def test_louder_embedding_is_audible(self, program, modem):
        bits = random_bits(150, rng=3)
        quiet = embed_imperceptible(program, modem.modulate(bits), embed_db=-40.0, sample_rate=FS)
        loud = embed_imperceptible(program, modem.modulate(bits), embed_db=-6.0, sample_rate=FS)
        assert pesq_like(program, loud, FS) < pesq_like(program, quiet, FS) - 0.5

    def test_music_needs_louder_embedding(self, modem):
        # Music carries real energy at the tone bins: the transparent
        # level fails, a louder (audible) level decodes — the documented
        # trade-off that full psychoacoustic masking would relax.
        program = music_like(2.0, FS, rng=4, amplitude=0.9)
        bits = random_bits(150, rng=5)
        transparent = embed_imperceptible(program, modem.modulate(bits), sample_rate=FS)
        audible = embed_imperceptible(
            program, modem.modulate(bits), embed_db=-20.0, sample_rate=FS
        )
        ber_transparent = np.mean(modem.demodulate(transparent, bits.size) != bits)
        ber_audible = np.mean(modem.demodulate(audible, bits.size) != bits)
        assert ber_audible < 0.05
        assert ber_audible <= ber_transparent

    def test_rejects_positive_margin(self, program, modem):
        with pytest.raises(ConfigurationError):
            embed_imperceptible(program, modem.modulate([1, 0]), embed_db=3.0)

    def test_pads_short_data(self, program, modem):
        composite = embed_imperceptible(program, modem.modulate([1, 0, 1]), sample_rate=FS)
        assert composite.size == program.size

"""WAV I/O tests."""

import numpy as np
import pytest

from repro.audio.io import read_wav, write_wav
from repro.errors import SignalError


class TestWavRoundTrip:
    def test_mono_round_trip(self, tmp_path):
        x = 0.5 * np.sin(2 * np.pi * 440 * np.arange(4800) / 48_000)
        path = tmp_path / "tone.wav"
        write_wav(path, x, 48_000)
        y, rate = read_wav(path)
        assert rate == 48_000
        assert y.size == x.size
        assert np.max(np.abs(x - y)) < 1e-3

    def test_overdriven_signal_normalized(self, tmp_path):
        x = 3.0 * np.sin(2 * np.pi * 440 * np.arange(4800) / 48_000)
        path = tmp_path / "loud.wav"
        write_wav(path, x, 48_000)
        y, _ = read_wav(path)
        assert np.max(np.abs(y)) <= 1.0

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(SignalError):
            write_wav(tmp_path / "e.wav", np.array([]), 48_000)

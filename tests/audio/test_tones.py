"""Tone generator tests."""

import numpy as np
import pytest

from repro.audio.tones import multitone, silence, sweep, tone
from repro.dsp.spectrum import tone_snr_db
from repro.errors import ConfigurationError

FS = 48_000.0


class TestTone:
    def test_amplitude(self):
        x = tone(1000, 0.1, FS, amplitude=0.5)
        assert np.max(np.abs(x)) == pytest.approx(0.5, abs=0.01)

    def test_frequency(self):
        x = tone(5000, 1.0, FS)
        assert tone_snr_db(x, FS, 5000) > 30

    def test_phase_offset(self):
        x = tone(1000, 0.01, FS, phase_rad=np.pi / 2)
        assert x[0] == pytest.approx(0.0, abs=1e-9)

    def test_rejects_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            tone(30_000, 0.1, FS)

    def test_length(self):
        assert tone(1000, 0.25, FS).size == 12_000


class TestMultitone:
    def test_contains_all_tones(self):
        # Each of three equal tones holds 1/3 of the power, so its SNR
        # against the other two is -3 dB; require comfortably above the
        # absent-tone level instead of above 0 dB.
        x = multitone([1000, 3000, 7000], 1.0, FS)
        for f in (1000, 3000, 7000):
            assert tone_snr_db(x, FS, f) > -4.0
        assert tone_snr_db(x, FS, 5000) < -20.0

    def test_peak_normalized(self):
        x = multitone([1000, 3000], 0.1, FS, amplitude=0.8)
        assert np.max(np.abs(x)) == pytest.approx(0.8, abs=0.01)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            multitone([], 0.1, FS)


class TestSweep:
    def test_starts_low_ends_high(self):
        x = sweep(500, 10_000, 1.0, FS)
        first = x[: 4800]
        last = x[-4800:]
        assert tone_snr_db(np.tile(first, 4), FS, 1000) > tone_snr_db(np.tile(last, 4), FS, 1000)


class TestSilence:
    def test_all_zero(self):
        assert not np.any(silence(0.1, FS))

"""Audio metric tests."""

import numpy as np
import pytest

from repro.audio.metrics import rms, segmental_snr_db, snr_db
from repro.errors import SignalError

FS = 48_000.0


class TestRms:
    def test_unit_cosine(self):
        x = np.cos(2 * np.pi * 1000 * np.arange(48_000) / FS)
        assert rms(x) == pytest.approx(np.sqrt(0.5), rel=1e-3)


class TestSnrDb:
    def test_identical_is_high(self):
        x = np.random.default_rng(0).standard_normal(4800)
        assert snr_db(x, x) > 100

    def test_scale_invariant(self):
        x = np.random.default_rng(0).standard_normal(4800)
        assert snr_db(x, 0.3 * x) > 100

    def test_known_snr(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(48_000)
        noise = 0.1 * rng.standard_normal(48_000)
        measured = snr_db(x + noise, x)  # reference = degraded-free proxy
        assert measured == pytest.approx(20.0, abs=1.5)

    def test_rejects_silent_reference(self):
        with pytest.raises(SignalError):
            snr_db(np.zeros(100), np.ones(100))


class TestSegmentalSnr:
    def test_clean_hits_ceiling(self):
        x = np.random.default_rng(0).standard_normal(48_000)
        assert segmental_snr_db(x, x, FS) == pytest.approx(35.0)

    def test_noisy_below_clean(self, one_second_speech):
        x = one_second_speech
        noisy = x + 0.2 * np.random.default_rng(2).standard_normal(x.size)
        assert segmental_snr_db(x, noisy, FS) < segmental_snr_db(x, x, FS)

    def test_rejects_all_silence(self):
        with pytest.raises(SignalError):
            segmental_snr_db(np.zeros(48_000), np.zeros(48_000), FS)

"""Perceptual metric calibration tests — the anchors DESIGN.md names."""

import numpy as np
import pytest

from repro.audio.pesq import mos_lqo, pesq_like
from repro.audio.speech import speech_like
from repro.errors import SignalError

FS = 48_000.0


@pytest.fixture(scope="module")
def speech():
    return speech_like(2.0, FS, rng=3, amplitude=0.9)


@pytest.fixture(scope="module")
def interferer():
    return speech_like(2.0, FS, rng=11, pitch_hz=95, amplitude=0.9)


def with_sir(speech, interferer, sir_db):
    scale = np.std(speech) / np.std(interferer) * 10 ** (-sir_db / 20)
    return speech + scale * interferer


class TestAnchors:
    def test_identity_scores_max(self, speech):
        assert pesq_like(speech, speech, FS) == pytest.approx(4.5)

    def test_scale_invariance(self, speech):
        assert pesq_like(speech, 0.4 * speech, FS) == pytest.approx(4.5, abs=0.05)

    def test_light_noise_stays_high(self, speech):
        rng = np.random.default_rng(0)
        degraded = speech + np.std(speech) * 10 ** (-40 / 20) * rng.standard_normal(speech.size)
        assert pesq_like(speech, degraded, FS) > 3.5

    def test_equal_level_interference_scores_about_two(self, speech, interferer):
        # The overlay-backscatter situation: payload + ambient program at
        # comparable level. Paper reads ~2.
        score = pesq_like(speech, with_sir(speech, interferer, 0), FS)
        assert 1.6 < score < 2.6

    def test_buried_speech_approaches_floor(self, speech, interferer):
        score = pesq_like(speech, with_sir(speech, interferer, -10), FS)
        assert score < 1.8

    def test_silence_scores_floor(self, speech):
        assert pesq_like(speech, np.zeros_like(speech), FS) == 1.0


class TestMonotonicity:
    def test_score_decreases_with_interference(self, speech, interferer):
        scores = [
            pesq_like(speech, with_sir(speech, interferer, sir), FS)
            for sir in (15, 5, -5, -15)
        ]
        assert all(a >= b for a, b in zip(scores, scores[1:]))

    def test_score_decreases_with_noise(self, speech):
        rng = np.random.default_rng(1)
        noise = rng.standard_normal(speech.size)
        scores = [
            pesq_like(speech, speech + np.std(speech) * 10 ** (-snr / 20) * noise, FS)
            for snr in (40, 25, 10)
        ]
        assert scores[0] > scores[1] > scores[2]


class TestAlignment:
    def test_time_shift_absorbed(self, speech):
        shifted = np.concatenate([np.zeros(2400), speech[:-2400]])
        assert pesq_like(speech, shifted, FS) > 4.0


class TestMosLqo:
    """The [1.0, 4.5] -> [0, 1] scale mapping used by the tolerance tier."""

    def test_scale_floor_maps_to_zero(self):
        assert mos_lqo(1.0) == 0.0

    def test_scale_ceiling_maps_to_one(self):
        assert mos_lqo(4.5) == 1.0

    def test_midscale_is_linear(self):
        assert mos_lqo(2.75) == pytest.approx(0.5)

    def test_out_of_range_clips(self):
        assert mos_lqo(0.5) == 0.0
        assert mos_lqo(5.0) == 1.0

    def test_scalar_in_scalar_out(self):
        assert isinstance(mos_lqo(3.0), float)

    def test_array_in_array_out(self):
        scores = np.array([1.0, 2.75, 4.5, 9.0])
        out = mos_lqo(scores)
        assert isinstance(out, np.ndarray)
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0, 1.0])


class TestValidation:
    def test_rejects_short_input(self):
        with pytest.raises(SignalError):
            pesq_like(np.ones(100), np.ones(100), FS)

    def test_rejects_silent_reference(self):
        with pytest.raises(SignalError):
            pesq_like(np.zeros(48_000), np.ones(48_000), FS)

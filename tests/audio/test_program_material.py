"""Program-material generator tests (speech, music, station formats)."""

import numpy as np
import pytest

from repro.audio.music import PROGRAM_TYPES, music_like, program_material
from repro.audio.speech import speech_like
from repro.dsp.spectrum import band_power
from repro.errors import ConfigurationError

FS = 48_000.0


class TestSpeechLike:
    def test_energy_mostly_below_4khz(self):
        x = speech_like(2.0, FS, rng=0)
        low = band_power(x, FS, 100, 4000)
        high = band_power(x, FS, 8000, 13_000)
        assert low > 20 * high

    def test_peak_normalized(self):
        x = speech_like(1.0, FS, rng=1, amplitude=0.7)
        assert np.max(np.abs(x)) == pytest.approx(0.7, abs=0.01)

    def test_deterministic_with_seed(self):
        assert np.array_equal(speech_like(0.2, FS, rng=5), speech_like(0.2, FS, rng=5))

    def test_nonstationary_envelope(self):
        x = speech_like(2.0, FS, rng=2)
        frames = x[: int(FS) * 2].reshape(-1, 4800)
        frame_rms = np.sqrt(np.mean(frames**2, axis=1))
        assert np.std(frame_rms) > 0.2 * np.mean(frame_rms)


class TestMusicLike:
    def test_wider_spectrum_than_speech(self):
        m = music_like(2.0, FS, rng=0, brightness=1.4)
        s = speech_like(2.0, FS, rng=0)
        m_high = band_power(m, FS, 6000, 13_000) / band_power(m, FS, 100, 13_000)
        s_high = band_power(s, FS, 6000, 13_000) / band_power(s, FS, 100, 13_000)
        assert m_high > s_high

    def test_brightness_raises_treble(self):
        dull = music_like(2.0, FS, rng=3, brightness=0.3)
        bright = music_like(2.0, FS, rng=3, brightness=1.8)
        ratio_dull = band_power(dull, FS, 8000, 14_000) / band_power(dull, FS, 100, 14_000)
        ratio_bright = band_power(bright, FS, 8000, 14_000) / band_power(bright, FS, 100, 14_000)
        assert ratio_bright > ratio_dull


class TestProgramMaterial:
    @pytest.mark.parametrize("program", PROGRAM_TYPES)
    def test_returns_equal_length_pair(self, program):
        left, right = program_material(program, 0.5, FS, rng=1)
        assert left.size == right.size

    def test_news_is_nearly_mono(self):
        left, right = program_material("news", 1.0, FS, rng=2)
        diff_power = np.mean((left - right) ** 2)
        sum_power = np.mean((left + right) ** 2)
        assert diff_power < 0.01 * sum_power

    def test_rock_has_stereo_content(self):
        left, right = program_material("rock", 1.0, FS, rng=2)
        diff_power = np.mean((left - right) ** 2)
        sum_power = np.mean((left + right) ** 2)
        assert diff_power > 0.05 * sum_power

    def test_rejects_unknown_program(self):
        with pytest.raises(ConfigurationError):
            program_material("jazz", 0.5, FS)

"""Survey-package tests (Figs. 2, 4, 5 machinery)."""

import numpy as np
import pytest

from repro.constants import FM_NUM_CHANNELS
from repro.errors import ConfigurationError
from repro.survey.drivetest import CitySurvey, diurnal_power_series
from repro.survey.occupancy import (
    min_shift_frequencies_hz,
    occupancy_summary,
    unoccupied_channels,
)
from repro.survey.stations import CITY_PROFILES, generate_band_plan
from repro.survey.stereo_usage import stereo_to_noise_ratios_db


class TestBandPlan:
    def test_respects_separation(self):
        plan = generate_band_plan(40, rng=0, min_separation_channels=2)
        assert np.min(np.diff(plan)) >= 2

    def test_unique_sorted(self):
        plan = generate_band_plan(30, rng=1)
        assert np.array_equal(plan, np.unique(plan))

    def test_rejects_overfull(self):
        with pytest.raises(ConfigurationError):
            generate_band_plan(60, min_separation_channels=2)

    def test_city_profiles_match_paper(self):
        # Fig. 4a encodings: Chicago has more licensed than detectable;
        # Seattle the other way around.
        assert CITY_PROFILES["Chicago"].licensed > CITY_PROFILES["Chicago"].detectable
        assert CITY_PROFILES["Seattle"].detectable > CITY_PROFILES["Seattle"].licensed
        assert len(CITY_PROFILES) == 5


class TestOccupancy:
    def test_unoccupied_complement(self):
        occupied = np.array([0, 10, 99])
        free = unoccupied_channels(occupied)
        assert free.size == FM_NUM_CHANNELS - 3
        assert 10 not in free

    def test_min_shift_one_channel_when_neighbor_free(self):
        shifts = min_shift_frequencies_hz(np.array([50]))
        assert shifts[0] == 200e3

    def test_dense_cluster_needs_larger_shift(self):
        # Station 52 in a 50..54 block must shift 3 channels (to 49 or 55... 2 channels).
        occupied = np.arange(50, 55)
        shifts = min_shift_frequencies_hz(occupied)
        middle = shifts[2]  # channel 52
        assert middle == 3 * 200e3

    def test_summary_median_is_200khz_for_sparse_plans(self):
        plan = generate_band_plan(40, rng=2, min_separation_channels=2)
        summary = occupancy_summary(plan)
        assert summary["median_min_shift_hz"] == 200e3

    def test_rejects_full_band(self):
        with pytest.raises(ConfigurationError):
            min_shift_frequencies_hz(np.arange(100))


class TestDriveTest:
    def test_power_range_matches_fig2a(self):
        result = CitySurvey().run(rng=0)
        assert -45 < result.median_dbm < -25  # paper: -35.15 dBm median
        assert np.min(result.powers_dbm) > -70
        assert np.max(result.powers_dbm) < 0

    def test_cdf_monotone(self):
        result = CitySurvey().run(rng=1)
        x, p = result.cdf()
        assert np.all(np.diff(x) >= 0)
        assert p[-1] == pytest.approx(1.0)

    def test_diurnal_std_near_paper(self):
        series = diurnal_power_series(rng=3)
        assert 0.3 < np.std(series) < 1.4  # paper: 0.7 dB

    def test_diurnal_length(self):
        assert diurnal_power_series(n_minutes=100, rng=0).size == 100


class TestStereoUsage:
    def test_news_uses_stereo_least(self):
        news = np.median(stereo_to_noise_ratios_db("news", n_snapshots=4, snapshot_seconds=1.0, rng=0))
        rock = np.median(stereo_to_noise_ratios_db("rock", n_snapshots=4, snapshot_seconds=1.0, rng=0))
        assert news < rock - 5

    def test_rejects_unknown_program(self):
        with pytest.raises(ConfigurationError):
            stereo_to_noise_ratios_db("opera")

"""Application-level integration tests: talking poster and smart fabric."""

import numpy as np
import pytest

from repro.apps.fabric import SmartFabricSensor, VitalSigns
from repro.apps.poster import TalkingPoster
from repro.audio.speech import speech_like
from repro.constants import AUDIO_RATE_HZ
from repro.errors import ConfigurationError


class TestVitalSigns:
    def test_pack_round_trip(self):
        vitals = VitalSigns(heart_rate_bpm=72, breathing_rate_bpm=16, step_count=1234)
        assert VitalSigns.unpack(vitals.pack()) == vitals

    def test_rejects_absurd_heart_rate(self):
        with pytest.raises(ConfigurationError):
            VitalSigns(heart_rate_bpm=10, breathing_rate_bpm=16, step_count=0)

    def test_rejects_wrong_payload_size(self):
        with pytest.raises(ConfigurationError):
            VitalSigns.unpack(b"abc")


class TestSmartFabric:
    def test_transmits_vitals_standing(self):
        sensor = SmartFabricSensor(motion="standing")
        vitals = VitalSigns(heart_rate_bpm=88, breathing_rate_bpm=22, step_count=400)
        decoded = sensor.transmit_vitals(vitals, distance_ft=3.0, rng=1)
        assert decoded == vitals

    def test_transmits_vitals_running(self):
        sensor = SmartFabricSensor(motion="running")
        vitals = VitalSigns(heart_rate_bpm=160, breathing_rate_bpm=35, step_count=9000)
        decoded = sensor.transmit_vitals(vitals, distance_ft=3.0, rng=2)
        # 100 bps survives running per Fig. 17b; allow a retry like the
        # real system.
        if decoded is None:
            decoded = sensor.transmit_vitals(vitals, distance_ft=3.0, rng=3)
        assert decoded == vitals

    def test_out_of_range_returns_none(self):
        sensor = SmartFabricSensor(motion="standing", ambient_power_dbm=-60.0)
        vitals = VitalSigns(heart_rate_bpm=70, breathing_rate_bpm=12, step_count=1)
        assert sensor.transmit_vitals(vitals, distance_ft=100.0, rng=4) is None


class TestTalkingPoster:
    def test_notification_decodes_at_10ft(self):
        poster = TalkingPoster(notification_text="SIMPLY THREE 50% OFF")
        result = poster.broadcast_notification(distance_ft=10.0, rng=5)
        assert result.notification == "SIMPLY THREE 50% OFF"

    def test_audio_snippet_received(self):
        poster = TalkingPoster()
        snippet = speech_like(0.7, AUDIO_RATE_HZ, rng=6, amplitude=0.9)
        audio, received = poster.broadcast_audio(snippet, distance_ft=4.0, rng=7)
        n = min(snippet.size, audio.size)
        corr = np.corrcoef(snippet[:n], audio[:n])[0, 1]
        assert corr > 0.5  # snippet clearly present in the composite

    def test_rejects_empty_text(self):
        with pytest.raises(ConfigurationError):
            TalkingPoster(notification_text="")

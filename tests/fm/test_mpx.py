"""MPX composition/decomposition tests."""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.dsp.spectrum import band_power
from repro.errors import ConfigurationError
from repro.fm.mpx import MpxComponents, compose_mpx, decompose_mpx

FS_A = AUDIO_RATE_HZ
FS_M = MPX_RATE_HZ


class TestComposeMono:
    def test_mono_has_no_pilot(self):
        left = tone(1000, 0.25, FS_A, amplitude=0.8)
        mpx = compose_mpx(MpxComponents(left=left, right=None))
        pilot = band_power(mpx, FS_M, 18_500, 19_500)
        audio = band_power(mpx, FS_M, 500, 1500)
        assert pilot < 0.001 * audio

    def test_force_pilot_adds_pilot_to_mono(self):
        left = tone(1000, 0.25, FS_A, amplitude=0.8)
        mpx = compose_mpx(MpxComponents(left=left, right=None, force_pilot=True))
        assert band_power(mpx, FS_M, 18_500, 19_500) > 1e-4

    def test_bounded(self):
        left = tone(1000, 0.25, FS_A, amplitude=1.0)
        right = tone(3000, 0.25, FS_A, amplitude=1.0)
        mpx = compose_mpx(MpxComponents(left=left, right=right))
        assert np.max(np.abs(mpx)) <= 1.0 + 1e-9


class TestComposeStereo:
    def test_pilot_present(self):
        left = tone(1000, 0.25, FS_A, amplitude=0.8)
        right = tone(3000, 0.25, FS_A, amplitude=0.8)
        mpx = compose_mpx(MpxComponents(left=left, right=right))
        assert band_power(mpx, FS_M, 18_500, 19_500) > 1e-4

    def test_stereo_band_energy_for_different_channels(self):
        left = tone(1000, 0.25, FS_A, amplitude=0.8)
        right = tone(3000, 0.25, FS_A, amplitude=0.8)
        mpx = compose_mpx(MpxComponents(left=left, right=right))
        assert band_power(mpx, FS_M, 23_000, 53_000) > 1e-3

    def test_identical_channels_leave_stereo_band_empty(self):
        left = tone(1000, 0.25, FS_A, amplitude=0.8)
        mpx = compose_mpx(MpxComponents(left=left, right=left.copy()))
        stereo = band_power(mpx, FS_M, 23_000, 53_000)
        mono = band_power(mpx, FS_M, 500, 1500)
        assert stereo < 0.01 * mono

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(Exception):
            compose_mpx(
                MpxComponents(
                    left=tone(1000, 0.25, FS_A), right=tone(1000, 0.30, FS_A)
                )
            )

    def test_rejects_low_mpx_rate(self):
        with pytest.raises(ConfigurationError):
            compose_mpx(
                MpxComponents(left=tone(1000, 0.1, FS_A), mpx_rate=96_000.0)
            )


class TestDecompose:
    def test_splits_bands(self):
        left = tone(1000, 0.25, FS_A, amplitude=0.8)
        right = tone(3000, 0.25, FS_A, amplitude=0.8)
        mpx = compose_mpx(MpxComponents(left=left, right=right))
        parts = decompose_mpx(mpx)
        assert band_power(parts["mono"], FS_M, 500, 1500) > 1e-3
        assert band_power(parts["pilot"], FS_M, 18_500, 19_500) > 1e-4
        # Pilot part should contain almost no mono-band energy.
        assert band_power(parts["pilot"], FS_M, 500, 1500) < 1e-7

"""Wideband band-simulator + channelizer integration tests."""

import numpy as np
import pytest

from repro.constants import AUDIO_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.errors import ConfigurationError
from repro.fm.band import BandStation, FMBandSimulator
from repro.receiver.channelizer import Channelizer
from repro.receiver.fm_receiver import FMReceiver
from repro.receiver.scanner import BandScanner, ChannelObservation

FS_BAND = 2_400_000.0


class TestSynthesis:
    def test_channel_powers_match_request(self):
        sim = FMBandSimulator(FS_BAND, rng=0)
        stations = [
            BandStation(channel_offset=-3, power_dbm=-40.0),
            BandStation(channel_offset=0, power_dbm=-30.0, program="pop"),
            BandStation(channel_offset=2, power_dbm=-55.0, program="rock"),
        ]
        band = sim.synthesize(stations, duration_s=0.1)
        powers = sim.channel_powers_dbm(band, [-3, 0, 2])
        assert powers[0] == pytest.approx(-30.0, abs=1.0)
        assert powers[-3] == pytest.approx(-40.0, abs=1.0)
        assert powers[2] == pytest.approx(-55.0, abs=1.0)

    def test_empty_channels_are_quiet(self):
        sim = FMBandSimulator(FS_BAND, rng=1)
        band = sim.synthesize([BandStation(0, -30.0)], duration_s=0.1)
        powers = sim.channel_powers_dbm(band, [0, 4])
        assert powers[4] < powers[0] - 35.0

    def test_rejects_duplicate_offsets(self):
        sim = FMBandSimulator(FS_BAND, rng=2)
        with pytest.raises(ConfigurationError):
            sim.synthesize([BandStation(0, -30.0), BandStation(0, -40.0)], 0.05)

    def test_rejects_offsets_outside_rate(self):
        sim = FMBandSimulator(960_000.0, rng=3)
        with pytest.raises(ConfigurationError):
            sim.synthesize([BandStation(5, -30.0)], 0.05)


class TestChannelizerIntegration:
    def test_extracted_channel_demodulates(self):
        # A mono tone station at offset +3 must survive channelization and
        # FM demodulation from the wideband slice.
        sim = FMBandSimulator(FS_BAND, rng=4)
        stations = [
            BandStation(0, -30.0, program="news"),
            BandStation(3, -45.0, program="silence", stereo=False),
        ]
        band = sim.synthesize(stations, duration_s=0.2)
        chan = Channelizer(FS_BAND)
        iq = chan.extract(band, channel_offset=0)
        audio = FMReceiver(stereo_capable=False).receive(iq).mono
        # News speech occupies the low band; just confirm real audio power.
        assert np.sqrt(np.mean(audio**2)) > 0.005

    def test_scanner_closes_the_loop(self):
        # Measure the band, hand observations to the scanner, verify it
        # picks a genuinely empty channel.
        sim = FMBandSimulator(FS_BAND, rng=5)
        stations = [
            BandStation(0, -35.0),
            BandStation(1, -60.0, program="rock"),
            BandStation(-4, -50.0, program="pop"),
        ]
        band = sim.synthesize(stations, duration_s=0.1)
        offsets = range(-4, 5)
        powers = sim.channel_powers_dbm(band, offsets)
        observations = [
            ChannelObservation(channel=50 + off, power_dbm=powers[off])
            for off in offsets
        ]
        scanner = BandScanner(occupancy_threshold_dbm=-70.0)
        best = scanner.best_backscatter_channel(observations, source_channel=50)
        assert best is not None
        assert powers[best - 50] < -70.0


class TestChannelizerValidation:
    def test_rejects_real_input(self):
        chan = Channelizer(FS_BAND)
        with pytest.raises(ConfigurationError):
            chan.extract(np.ones(1000), 0)

    def test_rejects_out_of_band_channel(self):
        chan = Channelizer(960_000.0)
        with pytest.raises(ConfigurationError):
            chan.extract(np.ones(1000, dtype=complex), 5)

"""FM modulator/demodulator round-trip tests (paper Eq. 1 and section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import MPX_RATE_HZ
from repro.errors import ConfigurationError, SignalError
from repro.fm.demodulator import fm_demodulate
from repro.fm.modulator import fm_modulate

FS = MPX_RATE_HZ


class TestModulator:
    def test_constant_envelope(self):
        mpx = 0.5 * np.sin(2 * np.pi * 1000 * np.arange(48_000) / FS)
        iq = fm_modulate(mpx)
        assert np.allclose(np.abs(iq), 1.0)

    def test_dc_input_gives_constant_frequency(self):
        mpx = 0.5 * np.ones(4800)
        iq = fm_modulate(mpx, deviation_hz=75_000)
        phase_steps = np.angle(iq[1:] * np.conj(iq[:-1]))
        freq = phase_steps * FS / (2 * np.pi)
        assert np.allclose(freq, 37_500, atol=1.0)

    def test_carrier_offset(self):
        iq = fm_modulate(np.zeros(4800), carrier_offset_hz=10_000)
        phase_steps = np.angle(iq[1:] * np.conj(iq[:-1]))
        assert np.allclose(phase_steps * FS / (2 * np.pi), 10_000, atol=1.0)

    def test_rejects_excess_deviation(self):
        with pytest.raises(ConfigurationError):
            fm_modulate(np.zeros(100), sample_rate=FS, deviation_hz=FS)


class TestRoundTrip:
    def test_tone_round_trip(self):
        mpx = 0.8 * np.sin(2 * np.pi * 5000 * np.arange(96_000) / FS)
        recovered = fm_demodulate(fm_modulate(mpx))
        assert np.max(np.abs(recovered[10:] - mpx[10:])) < 0.01

    @given(st.integers(min_value=100, max_value=50_000))
    @settings(max_examples=15, deadline=None)
    def test_round_trip_any_tone(self, freq):
        mpx = 0.7 * np.sin(2 * np.pi * freq * np.arange(24_000) / FS)
        recovered = fm_demodulate(fm_modulate(mpx))
        assert np.max(np.abs(recovered[10:] - mpx[10:])) < 0.02

    def test_overdeviation_round_trips(self):
        # Composite backscatter legitimately exceeds [-1, 1].
        mpx = 1.6 * np.sin(2 * np.pi * 1000 * np.arange(48_000) / FS)
        recovered = fm_demodulate(fm_modulate(mpx))
        assert np.max(np.abs(recovered[10:] - mpx[10:])) < 0.02


class TestDemodulator:
    def test_rejects_real_input(self):
        with pytest.raises(SignalError):
            fm_demodulate(np.ones(100))

    def test_rejects_zero_signal(self):
        with pytest.raises(SignalError):
            fm_demodulate(np.zeros(100, dtype=complex))

    def test_amplitude_invariance(self):
        # FM is amplitude-agnostic: a scaled envelope demodulates the same.
        mpx = 0.5 * np.sin(2 * np.pi * 2000 * np.arange(48_000) / FS)
        iq = fm_modulate(mpx)
        a = fm_demodulate(iq)
        b = fm_demodulate(1e-3 * iq)
        assert np.allclose(a, b)

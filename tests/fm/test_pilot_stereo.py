"""Pilot detection and stereo decoding tests."""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.errors import SignalError
from repro.fm.mpx import MpxComponents, compose_mpx
from repro.fm.pilot import detect_pilot, pilot_power_ratio_db
from repro.fm.stereo import decode_stereo, decode_stereo_batch


def stereo_mpx(left_hz=1000, right_hz=3000, duration=0.5):
    left = tone(left_hz, duration, AUDIO_RATE_HZ, amplitude=0.8)
    right = tone(right_hz, duration, AUDIO_RATE_HZ, amplitude=0.8)
    return compose_mpx(MpxComponents(left=left, right=right))


class TestPilotDetection:
    def test_detects_stereo_pilot(self):
        assert detect_pilot(stereo_mpx())

    def test_no_pilot_in_mono(self):
        left = tone(1000, 0.5, AUDIO_RATE_HZ, amplitude=0.8)
        mpx = compose_mpx(MpxComponents(left=left, right=None))
        assert not detect_pilot(mpx)

    def test_ratio_orders_correctly(self):
        mono = compose_mpx(
            MpxComponents(left=tone(1000, 0.5, AUDIO_RATE_HZ), right=None)
        )
        assert pilot_power_ratio_db(stereo_mpx()) > pilot_power_ratio_db(mono) + 10


class TestStereoDecode:
    def test_separates_channels(self):
        audio = decode_stereo(stereo_mpx())
        assert audio.stereo_locked
        # Left channel contains 1 kHz, not 3 kHz; right vice versa.
        assert tone_snr_db(audio.left, AUDIO_RATE_HZ, 1000) > 20
        assert tone_snr_db(audio.right, AUDIO_RATE_HZ, 3000) > 20
        assert tone_snr_db(audio.left, AUDIO_RATE_HZ, 3000) < 10

    def test_mono_fallback_without_pilot(self):
        left = tone(1000, 0.5, AUDIO_RATE_HZ, amplitude=0.8)
        mpx = compose_mpx(MpxComponents(left=left, right=None))
        audio = decode_stereo(mpx)
        assert not audio.stereo_locked
        assert np.array_equal(audio.left, audio.right)

    def test_difference_channel_carries_l_minus_r(self):
        audio = decode_stereo(stereo_mpx())
        # difference = (L-R)/2 -> contains both tones at equal power, so
        # each scores ~0 dB against the other; an absent frequency scores
        # far lower.
        assert tone_snr_db(audio.difference, AUDIO_RATE_HZ, 1000) > -3
        assert tone_snr_db(audio.difference, AUDIO_RATE_HZ, 3000) > -3
        assert tone_snr_db(audio.difference, AUDIO_RATE_HZ, 5000) < -20

    def test_mono_property(self):
        audio = decode_stereo(stereo_mpx())
        assert audio.mono.size == audio.left.size


def mono_mpx(freq_hz=1000, duration=0.5):
    left = tone(freq_hz, duration, AUDIO_RATE_HZ, amplitude=0.8)
    return compose_mpx(MpxComponents(left=left, right=None))


class TestBatchedPilotDetection:
    def test_batch_ratios_match_per_row(self):
        stack = np.stack([stereo_mpx(), mono_mpx()])
        ratios = pilot_power_ratio_db(stack, MPX_RATE_HZ)
        assert ratios.shape == (2,)
        assert ratios[0] == pilot_power_ratio_db(stack[0], MPX_RATE_HZ)
        assert ratios[1] == pilot_power_ratio_db(stack[1], MPX_RATE_HZ)

    def test_batch_detection_matches_per_row(self):
        stack = np.stack([stereo_mpx(), mono_mpx()])
        detected = detect_pilot(stack, MPX_RATE_HZ)
        assert detected.tolist() == [True, False]


class TestStereoDecodeBatch:
    def test_rows_bit_identical_to_scalar_decode(self):
        # A locked stereo row, a mono-fallback row and a second stereo
        # row with different content — each must decode exactly as alone.
        stack = np.stack([stereo_mpx(), mono_mpx(), stereo_mpx(500, 4000)])
        batch = decode_stereo_batch(stack, MPX_RATE_HZ)
        assert [audio.stereo_locked for audio in batch] == [True, False, True]
        for row, audio in enumerate(batch):
            single = decode_stereo(stack[row], MPX_RATE_HZ)
            assert np.array_equal(audio.left, single.left), row
            assert np.array_equal(audio.right, single.right), row
            assert audio.stereo_locked == single.stereo_locked, row

    def test_force_stereo_applies_to_every_row(self):
        stack = np.stack([stereo_mpx(), mono_mpx()])
        batch = decode_stereo_batch(stack, MPX_RATE_HZ, force_stereo=True)
        assert all(audio.stereo_locked for audio in batch)
        for row, audio in enumerate(batch):
            single = decode_stereo(stack[row], MPX_RATE_HZ, force_stereo=True)
            assert np.array_equal(audio.left, single.left), row

    def test_empty_batch(self):
        assert decode_stereo_batch(np.empty((0, 4096)), MPX_RATE_HZ) == []

    def test_rejects_1d_input(self):
        with pytest.raises(SignalError):
            decode_stereo_batch(stereo_mpx(), MPX_RATE_HZ)

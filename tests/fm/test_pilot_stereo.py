"""Pilot detection and stereo decoding tests."""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ, MPX_RATE_HZ
from repro.dsp.spectrum import tone_snr_db
from repro.fm.mpx import MpxComponents, compose_mpx
from repro.fm.pilot import detect_pilot, pilot_power_ratio_db
from repro.fm.stereo import decode_stereo


def stereo_mpx(left_hz=1000, right_hz=3000, duration=0.5):
    left = tone(left_hz, duration, AUDIO_RATE_HZ, amplitude=0.8)
    right = tone(right_hz, duration, AUDIO_RATE_HZ, amplitude=0.8)
    return compose_mpx(MpxComponents(left=left, right=right))


class TestPilotDetection:
    def test_detects_stereo_pilot(self):
        assert detect_pilot(stereo_mpx())

    def test_no_pilot_in_mono(self):
        left = tone(1000, 0.5, AUDIO_RATE_HZ, amplitude=0.8)
        mpx = compose_mpx(MpxComponents(left=left, right=None))
        assert not detect_pilot(mpx)

    def test_ratio_orders_correctly(self):
        mono = compose_mpx(
            MpxComponents(left=tone(1000, 0.5, AUDIO_RATE_HZ), right=None)
        )
        assert pilot_power_ratio_db(stereo_mpx()) > pilot_power_ratio_db(mono) + 10


class TestStereoDecode:
    def test_separates_channels(self):
        audio = decode_stereo(stereo_mpx())
        assert audio.stereo_locked
        # Left channel contains 1 kHz, not 3 kHz; right vice versa.
        assert tone_snr_db(audio.left, AUDIO_RATE_HZ, 1000) > 20
        assert tone_snr_db(audio.right, AUDIO_RATE_HZ, 3000) > 20
        assert tone_snr_db(audio.left, AUDIO_RATE_HZ, 3000) < 10

    def test_mono_fallback_without_pilot(self):
        left = tone(1000, 0.5, AUDIO_RATE_HZ, amplitude=0.8)
        mpx = compose_mpx(MpxComponents(left=left, right=None))
        audio = decode_stereo(mpx)
        assert not audio.stereo_locked
        assert np.array_equal(audio.left, audio.right)

    def test_difference_channel_carries_l_minus_r(self):
        audio = decode_stereo(stereo_mpx())
        # difference = (L-R)/2 -> contains both tones at equal power, so
        # each scores ~0 dB against the other; an absent frequency scores
        # far lower.
        assert tone_snr_db(audio.difference, AUDIO_RATE_HZ, 1000) > -3
        assert tone_snr_db(audio.difference, AUDIO_RATE_HZ, 3000) > -3
        assert tone_snr_db(audio.difference, AUDIO_RATE_HZ, 5000) < -20

    def test_mono_property(self):
        audio = decode_stereo(stereo_mpx())
        assert audio.mono.size == audio.left.size

"""FMStation wrapper tests."""

import numpy as np
import pytest

from repro.constants import MPX_RATE_HZ
from repro.dsp.spectrum import band_power
from repro.errors import ConfigurationError
from repro.fm.station import FMStation, StationConfig


class TestStationConfig:
    def test_rejects_unknown_program(self):
        with pytest.raises(ConfigurationError):
            StationConfig(program="metal")

    def test_silence_program_allowed(self):
        assert StationConfig(program="silence").program == "silence"


class TestFMStation:
    def test_transmit_constant_envelope(self):
        station = FMStation(StationConfig(program="news"), rng=1)
        iq = station.transmit(0.25)
        assert np.allclose(np.abs(iq), 1.0)

    def test_silence_station_is_unmodulated(self):
        station = FMStation(StationConfig(program="silence"), rng=1)
        iq = station.transmit(0.25)
        # Unmodulated carrier at complex baseband: constant phasor.
        assert np.allclose(iq, iq[0])

    def test_stereo_station_has_pilot(self):
        station = FMStation(StationConfig(program="pop", stereo=True), rng=2)
        mpx = station.mpx(0.25)
        assert band_power(mpx, MPX_RATE_HZ, 18_500, 19_500) > 1e-4

    def test_mono_station_has_no_pilot(self):
        station = FMStation(StationConfig(program="pop", stereo=False), rng=2)
        mpx = station.mpx(0.25)
        assert band_power(mpx, MPX_RATE_HZ, 18_500, 19_500) < 1e-6

    def test_transmit_mpx_pair_consistent(self):
        station = FMStation(StationConfig(program="news"), rng=3)
        iq, mpx = station.transmit_mpx_pair(0.2)
        assert iq.size == mpx.size

    def test_deterministic_given_seed(self):
        a = FMStation(StationConfig(program="rock"), rng=7).mpx(0.2)
        b = FMStation(StationConfig(program="rock"), rng=7).mpx(0.2)
        assert np.array_equal(a, b)

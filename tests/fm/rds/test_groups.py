"""RDS group construction/parsing tests."""

import pytest

from repro.errors import ConfigurationError
from repro.fm.rds.groups import (
    decode_groups,
    groups_for_program,
    make_group_0a,
    make_group_2a,
)


class TestGroup0A:
    def test_round_trip_ps_name(self):
        groups = [make_group_0a(0xABCD, "KEXP FM", seg) for seg in range(4)]
        decoded = decode_groups([(g.block1, g.block2, g.block3, g.block4) for g in groups])
        assert decoded["pi_code"] == 0xABCD
        assert decoded["ps_name"] == "KEXP FM"

    def test_group_type_is_zero(self):
        assert make_group_0a(1, "TEST", 0).group_type == 0

    def test_rejects_bad_segment(self):
        with pytest.raises(ConfigurationError):
            make_group_0a(1, "TEST", 4)

    def test_rejects_non_ascii(self):
        # Segment 1 carries characters 2-3 ("fé"), where the accent lives.
        with pytest.raises(ConfigurationError):
            make_group_0a(1, "café", 1)


class TestGroup2A:
    def test_round_trip_radiotext(self):
        text = "NOW PLAYING: SIMPLY THREE"
        n_segments = (len(text) + 3) // 4
        groups = [make_group_2a(0x1001, text, seg) for seg in range(n_segments)]
        decoded = decode_groups([(g.block1, g.block2, g.block3, g.block4) for g in groups])
        assert decoded["radiotext"] == text

    def test_group_type_is_two(self):
        assert make_group_2a(1, "HELLO", 0).group_type == 2

    def test_rejects_bad_segment(self):
        with pytest.raises(ConfigurationError):
            make_group_2a(1, "X", 16)


class TestSchedule:
    def test_program_schedule_covers_everything(self):
        groups = groups_for_program(0x2222, "KUOW", "LOCAL NEWS AT NOON")
        decoded = decode_groups([(g.block1, g.block2, g.block3, g.block4) for g in groups])
        assert decoded["ps_name"] == "KUOW"
        assert decoded["radiotext"] == "LOCAL NEWS AT NOON"

    def test_partial_reception_fills_partially(self):
        groups = groups_for_program(0x2222, "KUOWFM88")
        # Drop half the groups: PS name has holes but no crash.
        kept = groups[::2]
        decoded = decode_groups([(g.block1, g.block2, g.block3, g.block4) for g in kept])
        assert len(decoded["ps_name"]) <= 8

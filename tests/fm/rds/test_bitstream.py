"""RDS physical-layer coding tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, DemodulationError
from repro.fm.rds.bitstream import (
    biphase_waveform,
    bits_from_waveform,
    differential_decode,
    differential_encode,
)


class TestDifferentialCoding:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, bits):
        encoded = differential_encode(bits)
        decoded = differential_decode(encoded)
        assert np.array_equal(decoded, bits)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_polarity_inversion_only_hurts_first_bit(self, bits):
        encoded = differential_encode(bits)
        decoded_flipped = differential_decode(1 - np.asarray(encoded))
        assert np.array_equal(decoded_flipped[1:], np.asarray(bits)[1:])

    def test_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            differential_encode([0, 2, 1])


class TestBiphase:
    def test_waveform_round_trip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=104)
        wave = biphase_waveform(bits, sample_rate=480_000)
        recovered = bits_from_waveform(wave, 104, sample_rate=480_000)
        assert np.array_equal(recovered, bits)

    def test_unshaped_round_trip(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0])
        wave = biphase_waveform(bits, sample_rate=480_000, shape=False)
        assert np.array_equal(bits_from_waveform(wave, 8, sample_rate=480_000), bits)

    def test_waveform_bounded(self):
        bits = np.ones(50, dtype=int)
        wave = biphase_waveform(bits, sample_rate=480_000)
        assert np.max(np.abs(wave)) <= 1.0 + 1e-9

    def test_rejects_short_waveform(self):
        with pytest.raises(DemodulationError):
            bits_from_waveform(np.zeros(100), 104, sample_rate=480_000)

"""RDS clock-time (group 4A) tests."""

import pytest

from repro.errors import ConfigurationError
from repro.fm.rds.groups import decode_groups, make_group_4a


class TestClockGroup:
    def test_round_trip(self):
        group = make_group_4a(
            0x4B0F, mjd=59_000, hour=14, minute=37, utc_offset_half_hours=-16
        )
        decoded = decode_groups(
            [(group.block1, group.block2, group.block3, group.block4)]
        )
        clock = decoded["clock"]
        assert clock == {
            "mjd": 59_000,
            "hour": 14,
            "minute": 37,
            "utc_offset_half_hours": -16,
        }

    def test_group_type_is_four(self):
        assert make_group_4a(1, 50_000, 0, 0).group_type == 4

    def test_positive_offset(self):
        group = make_group_4a(1, 50_000, 23, 59, utc_offset_half_hours=11)
        decoded = decode_groups(
            [(group.block1, group.block2, group.block3, group.block4)]
        )
        assert decoded["clock"]["utc_offset_half_hours"] == 11

    def test_mjd_high_bits_survive(self):
        # MJD needing all 17 bits.
        group = make_group_4a(1, (1 << 17) - 1, 5, 5)
        decoded = decode_groups(
            [(group.block1, group.block2, group.block3, group.block4)]
        )
        assert decoded["clock"]["mjd"] == (1 << 17) - 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mjd": 1 << 17},
            {"hour": 24},
            {"minute": 60},
            {"utc_offset_half_hours": 40},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        base = {"mjd": 50_000, "hour": 12, "minute": 30, "utc_offset_half_hours": 0}
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            make_group_4a(1, **base)

    def test_no_clock_key_without_group(self):
        decoded = decode_groups([])
        assert decoded["clock"] is None

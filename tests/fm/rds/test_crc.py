"""RDS CRC / offset word tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.fm.rds.crc import (
    OFFSET_WORDS,
    append_checkword,
    block_information,
    compute_crc,
    syndrome,
    verify_block,
)


class TestCrc:
    def test_crc_is_10_bits(self):
        assert 0 <= compute_crc(0xFFFF) < 1024

    def test_rejects_oversized_word(self):
        with pytest.raises(ConfigurationError):
            compute_crc(1 << 16)

    def test_linear_property(self):
        # CRC of XOR equals XOR of CRCs (linear code over GF(2)).
        a, b = 0x1234, 0xABCD
        assert compute_crc(a ^ b) == compute_crc(a) ^ compute_crc(b)


class TestBlocks:
    @given(st.integers(min_value=0, max_value=0xFFFF), st.sampled_from(list(OFFSET_WORDS)))
    @settings(max_examples=50, deadline=None)
    def test_valid_block_verifies_with_correct_offset(self, info, offset):
        block = append_checkword(info, offset)
        assert verify_block(block) == offset
        assert block_information(block) == info

    @given(st.integers(min_value=0, max_value=0xFFFF), st.integers(min_value=0, max_value=25))
    @settings(max_examples=50, deadline=None)
    def test_single_bit_error_detected(self, info, bit):
        block = append_checkword(info, "A")
        corrupted = block ^ (1 << bit)
        assert verify_block(corrupted) != "A"

    def test_offsets_distinguish_positions(self):
        info = 0x5A5A
        names = {verify_block(append_checkword(info, name)) for name in OFFSET_WORDS}
        assert names == set(OFFSET_WORDS)

    def test_syndrome_rejects_oversized(self):
        with pytest.raises(ConfigurationError):
            syndrome(1 << 26)

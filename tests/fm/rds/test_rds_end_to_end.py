"""RDS end-to-end tests: encoder -> MPX -> FM -> decoder."""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.channel.noise import complex_awgn
from repro.constants import AUDIO_RATE_HZ
from repro.fm.demodulator import fm_demodulate
from repro.fm.modulator import fm_modulate
from repro.fm.mpx import MpxComponents, compose_mpx
from repro.fm.rds.decoder import RdsDecoder
from repro.fm.rds.encoder import RdsEncoder


def broadcast(duration=1.0, stereo=True, rds_kwargs=None):
    kwargs = {"pi_code": 0x4B0F, "ps_name": "KUOW", "radiotext": "NSDI 2017"}
    if rds_kwargs:
        kwargs.update(rds_kwargs)
    encoder = RdsEncoder(**kwargs)
    left = tone(1000, duration, AUDIO_RATE_HZ, amplitude=0.7)
    right = tone(2000, duration, AUDIO_RATE_HZ, amplitude=0.7) if stereo else None
    mpx = compose_mpx(
        MpxComponents(left=left, right=right, rds_bipolar=encoder.baseband(duration))
    )
    return fm_modulate(mpx)


class TestEndToEnd:
    def test_decodes_ps_and_radiotext(self):
        iq = broadcast()
        message = RdsDecoder().decode(fm_demodulate(iq))
        assert message.pi_code == 0x4B0F
        assert message.ps_name == "KUOW"
        assert message.radiotext == "NSDI 2017"
        assert message.groups_decoded >= 5

    def test_decodes_without_pilot(self):
        # Mono station with RDS: decoder falls back to a local 57 kHz ref.
        iq = broadcast(stereo=False)
        message = RdsDecoder(use_pilot=False).decode(fm_demodulate(iq))
        assert message.ps_name == "KUOW"

    def test_survives_moderate_noise(self):
        iq = complex_awgn(broadcast(), 35.0, rng=1)
        message = RdsDecoder().decode(fm_demodulate(iq))
        assert message.groups_decoded >= 1

    def test_heavy_noise_decodes_nothing_cleanly(self):
        iq = complex_awgn(broadcast(duration=0.5), -5.0, rng=2)
        message = RdsDecoder().decode(fm_demodulate(iq))
        # CRCs must reject garbage rather than hallucinate text.
        assert message.groups_decoded == 0

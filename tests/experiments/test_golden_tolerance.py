"""Tolerance-tier golden harness: the gate for ``REPRO_NUMERICS=fast``.

The exact tier (:mod:`test_golden_outputs`) pins every figure bit-for-bit
and therefore cannot run under the fast numerics mode, whose fused 2-D
kernels and batched noise draws intentionally abandon bit-identity. This
tier re-runs the same frozen-seed small grids and compares against
fixtures under ``tests/experiments/golden_tol/`` with *statistical*
tolerances instead of equality:

- **BER series** must land within a binomial confidence interval of the
  fixture value: ``|p - p0| <= z*sqrt(p0*(1-p0)/n) + floor/n`` with
  ``z = 3`` and a two-error floor, where ``n`` is the number of bits the
  grid actually decodes. A different-but-iid noise realization moves a
  48-bit BER estimate by a few errors; a broken demodulator moves it far
  outside the interval.
- **SNR / frequency-response series** (dB) must stay within an absolute
  1.5 dB window — measured fast-vs-exact deltas on these grids top out
  near 0.26 dB, while a real chain regression (wrong filter, wrong
  scaling) shifts whole series by many dB.
- **PESQ series** are compared on the normalized MOS-LQO scale via
  :func:`repro.audio.pesq.mos_lqo` with a 0.05 window (~0.18 on the raw
  1-4.5 scale; measured fast deltas are under 0.007).
- Grid axes, locks, labels and counts stay exact.

Fixtures are regenerated **under exact mode only** (the tier gates fast
*against* exact, so fast output must never become the reference):

    PYTHONPATH=src python -m pytest tests/experiments/test_golden_tolerance.py --regen-golden-tol

Because the tolerance grids deliberately reuse the exact tier's CASES,
each ``golden_tol/`` fixture must stay byte-identical to its ``golden/``
sibling; ``test_tolerance_fixtures_track_exact_tier`` enforces that in
the default (exact) suite, so an intentional exact-tier regen that
forgets to re-validate the fast gate fails loudly instead of silently
comparing fast mode against stale references.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

import pytest

from repro.audio.pesq import mos_lqo
from repro.utils.env import fast_numerics, numerics_mode

from test_golden_outputs import CASES, GOLDEN_DIR, assert_matches, canonicalize

GOLDEN_TOL_DIR = Path(__file__).with_name("golden_tol")

BER_Z = 3.0
"""Binomial CI half-width in standard errors."""

BER_FLOOR = 2.0
"""Additive floor in bit errors — keeps the interval non-degenerate at
``p0 = 0`` (a zero-BER fixture still tolerates a couple of flipped bits
from a different noise realization)."""

DB_TOL = 1.5
"""Absolute dB window for SNR-like series."""

PESQ_TOL = 0.05
"""Absolute window on the [0, 1] MOS-LQO scale."""

EXACT = ("exact",)


def DB(tol: float = DB_TOL):
    return ("db", tol)


def BER(n_bits: int):
    return ("ber", n_bits)


def PESQ(tol: float = PESQ_TOL):
    return ("pesq", tol)


# Per-case ordered rules: the first regex that matches a flattened leaf
# path (e.g. ``P-60[1]`` or ``snr_distance.P-50[0]``) picks the
# comparison kind. Float leaves matching no rule are an error — every
# new output key must be classified deliberately. Bools, ints, strings
# and None always compare exactly.
TOL_CASES = {
    "fig06_freq_response": [("freq_hz", EXACT), (r"(mono|stereo)_snr_db", DB())],
    "fig07_snr_distance": [("distances_ft", EXACT), (r"^P-", DB())],
    "fig08_ber_overlay": [("distances_ft", EXACT), (r"^P-", BER(48))],
    "fig09_mrc": [("distances_ft", EXACT), (r"^mrc", BER(160))],
    "fig10_stereo_ber": [("distances_ft", EXACT), (r"^(overlay|stereo)_", BER(48))],
    "fig11_pesq_overlay": [("distances_ft", EXACT), (r"^P-", PESQ())],
    "fig12_pesq_cooperative": [("distances_ft", EXACT), (r"^P-", PESQ())],
    "fig13_pesq_stereo": [
        ("distances_ft", EXACT),
        (r"^lock_", EXACT),
        (r"^P-", PESQ()),
    ],
    "fig14_car": [
        ("distances_ft", EXACT),
        (r"^snr_P-", DB()),
        (r"^pesq_P-", PESQ()),
    ],
    # fig17's golden grid decodes 50 low-rate and 160 high-rate bits in a
    # single trial (see CASES).
    "fig17_fabric": [
        ("motions", EXACT),
        (r"^ber_100bps", BER(50)),
        (r"^ber_1\.6kbps_mrc2", BER(160)),
    ],
    # The deployment scale-out is MAC-layer arithmetic on top of decoded
    # link budgets; its golden grid is insensitive to the fast kernels,
    # so it gates at full precision.
    "deployment_scale": [(r".", EXACT)],
    # report.collect_aggregates(fast=True) bit counts: fig08 at 120
    # bits, fig09 MRC at 800, fabric at 150/800 bits x 2 trials.
    "report_aggregates": [
        (r"^(survey|occupancy|stereo_usage|power|deployment)\.", EXACT),
        (r"\.(distances_ft|freq_hz|device_counts|motions)", EXACT),
        (r"^freq_response\.", DB()),
        (r"^snr_distance\.", DB()),
        (r"^car\.snr_db", DB()),
        (r"^car\.pesq", PESQ()),
        (r"^pesq_overlay\.", PESQ()),
        (r"^ber_100bps\.", BER(120)),
        (r"^mrc\.", BER(800)),
        (r"^fabric\.ber_100bps", BER(300)),
        (r"^fabric\.ber_1\.6kbps_mrc2", BER(1600)),
    ],
}

TOL_EXCLUDED = {
    "fig02_survey": "survey-data driven; no randomized receive chain",
    "fig04_occupancy": "station-database scan; no randomized receive chain",
    "fig05_stereo_usage": "program-audio measurement; no randomized receive chain",
}


def flatten(value, path=""):
    """Yield ``(leaf_path, leaf)`` pairs for a canonicalized output."""
    if isinstance(value, dict):
        for key, sub in value.items():
            yield from flatten(sub, f"{path}.{key}" if path else str(key))
    elif isinstance(value, list):
        for i, sub in enumerate(value):
            yield from flatten(sub, f"{path}[{i}]")
    else:
        yield path, value


def kind_for(rules, path):
    for pattern, kind in rules:
        if re.search(pattern, path):
            return kind
    return None


def assert_within_tolerance(name, rules, actual, expected):
    flat_expected = dict(flatten(expected))
    flat_actual = dict(flatten(actual))
    assert set(flat_actual) == set(flat_expected), (
        f"{name}: output keys changed; "
        f"new {sorted(set(flat_actual) - set(flat_expected))[:8]}, "
        f"gone {sorted(set(flat_expected) - set(flat_actual))[:8]}"
    )
    for path, exp in flat_expected.items():
        act = flat_actual[path]
        if isinstance(exp, bool) or exp is None or isinstance(exp, str):
            assert act == exp, f"{name}.{path}: {act!r} != fixture {exp!r}"
            continue
        kind = kind_for(rules, path)
        assert kind is not None, (
            f"{name}.{path}: no tolerance rule matches this key — classify "
            "it in TOL_CASES (exact / db / ber / pesq) before relying on it"
        )
        if kind[0] == "exact":
            assert_matches(act, exp, f"{name}.{path}")
        elif kind[0] == "db":
            assert abs(act - exp) <= kind[1], (
                f"{name}.{path}: {act} is {abs(act - exp):.3f} dB from "
                f"fixture {exp}, tolerance {kind[1]} dB"
            )
        elif kind[0] == "ber":
            n = kind[1]
            tol = BER_Z * math.sqrt(exp * (1.0 - exp) / n) + BER_FLOOR / n
            assert abs(act - exp) <= tol, (
                f"{name}.{path}: BER {act} vs fixture {exp} exceeds the "
                f"z={BER_Z} binomial interval +-{tol:.4f} at n={n}"
            )
        elif kind[0] == "pesq":
            delta = abs(mos_lqo(act) - mos_lqo(exp))
            assert delta <= kind[1], (
                f"{name}.{path}: PESQ {act} vs fixture {exp} differs by "
                f"{delta:.4f} MOS-LQO, tolerance {kind[1]}"
            )
        else:  # pragma: no cover - TOL_CASES authoring error
            raise AssertionError(f"unknown tolerance kind {kind!r}")


@pytest.mark.golden
@pytest.mark.parametrize("name", sorted(TOL_CASES))
def test_tolerance_golden_output(name, regen_golden_tol):
    fixture = GOLDEN_TOL_DIR / f"{name}.json"
    if regen_golden_tol:
        assert numerics_mode() == "exact", (
            "tolerance fixtures are the exact-mode reference that gates "
            "REPRO_NUMERICS=fast; regenerate them with the variable unset"
        )
        result = canonicalize(CASES[name]())
        GOLDEN_TOL_DIR.mkdir(exist_ok=True)
        fixture.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        return
    if not fast_numerics():
        pytest.skip(
            "tolerance tier gates REPRO_NUMERICS=fast; under exact mode "
            "the exact tier already pins these grids bit-for-bit"
        )
    assert fixture.exists(), (
        f"missing tolerance fixture {fixture}; generate it under exact "
        "mode with `pytest tests/experiments/test_golden_tolerance.py "
        "--regen-golden-tol` and commit the file"
    )
    expected = json.loads(fixture.read_text())
    result = canonicalize(CASES[name]())
    assert_within_tolerance(name, TOL_CASES[name], result, expected)


def test_tolerance_fixtures_track_exact_tier():
    """Each ``golden_tol/`` fixture mirrors its ``golden/`` sibling.

    The tolerance grids reuse the exact tier's CASES, so under exact mode
    both tiers produce the same bytes. Pinning that equality here means a
    ``--regen-golden`` that moves a figure forces a matching
    ``--regen-golden-tol`` — i.e. a conscious re-validation of the fast
    gate — instead of leaving the fast leg comparing against a stale
    reference.
    """
    for name in sorted(TOL_CASES):
        exact = GOLDEN_DIR / f"{name}.json"
        tol = GOLDEN_TOL_DIR / f"{name}.json"
        assert tol.exists(), f"missing {tol}; run --regen-golden-tol"
        assert tol.read_text() == exact.read_text(), (
            f"{tol.name} is stale relative to the exact tier; rerun "
            "--regen-golden-tol (under exact mode) and commit the diff"
        )


def test_every_figure_module_covered_or_excluded():
    """Every fig* module is tolerance-gated or explicitly excluded."""
    import pkgutil

    import repro.experiments as experiments

    modules = {
        module.name
        for module in pkgutil.iter_modules(experiments.__path__)
        if module.name.startswith("fig")
    }
    covered = {name for name in TOL_CASES if name.startswith("fig")}
    excluded = set(TOL_EXCLUDED)
    assert not covered & excluded, (
        f"modules both covered and excluded: {sorted(covered & excluded)}"
    )
    assert modules == covered | excluded, (
        "tolerance tier out of sync with repro.experiments fig* modules; "
        f"unclassified {sorted(modules - covered - excluded)}, "
        f"stale {sorted((covered | excluded) - modules)}"
    )
    assert set(TOL_CASES) <= set(CASES), (
        "tolerance cases must reuse the exact tier's frozen grids; "
        f"unknown {sorted(set(TOL_CASES) - set(CASES))}"
    )

"""Golden-regression harness: frozen-seed outputs of every fig* module,
the deployment scale-out, and the report's numeric aggregates.

Each of the 13 figure runners (plus ``deployment_scale`` and the
``report.collect_aggregates`` section numbers) executes on a small fixed
grid with a frozen seed; the full output dict is compared — element by
element — against a committed JSON fixture under
``tests/experiments/golden/``.
Any DSP, engine or backend change that drifts a figure's numbers fails
loudly here, whichever execution backend runs the suite (the engine's
backends are bit-identical by contract, so one fixture serves all four —
CI exercises the default and ``REPRO_SWEEP_BACKEND=batched`` legs).

Intentional output changes are recorded by regenerating the fixtures:

    PYTHONPATH=src python -m pytest tests/experiments/test_golden_outputs.py --regen-golden

and committing the resulting diff (which doubles as the review artifact
showing exactly which series moved).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.utils.env import fast_numerics
from repro.experiments import (
    deployment_scale,
    fig02_survey,
    fig04_occupancy,
    fig05_stereo_usage,
    fig06_freq_response,
    fig07_snr_distance,
    fig08_ber_overlay,
    fig09_mrc,
    fig10_stereo_ber,
    fig11_pesq_overlay,
    fig12_pesq_cooperative,
    fig13_pesq_stereo,
    fig14_car,
    fig17_fabric,
    report,
)

GOLDEN_DIR = Path(__file__).with_name("golden")

SEED = 2017
"""One frozen sweep seed for every figure, so a fixture regen is a
single flag, not a seed hunt."""

# Small-grid arguments per figure: big enough to exercise the real
# decision points (stereo lock on/off, BER cliff, both panels), small
# enough that the whole golden tier stays in unit-test territory.
CASES = {
    "fig02_survey": lambda: fig02_survey.run(rng=SEED),
    "fig04_occupancy": lambda: fig04_occupancy.run(rng=SEED),
    "fig05_stereo_usage": lambda: fig05_stereo_usage.run(
        n_snapshots=2, snapshot_seconds=0.5, rng=SEED
    ),
    "fig06_freq_response": lambda: fig06_freq_response.run(
        freqs_hz=(1000.0, 8000.0), duration_s=0.3, rng=SEED
    ),
    "fig07_snr_distance": lambda: fig07_snr_distance.run(
        powers_dbm=(-30.0, -60.0), distances_ft=(2, 8), duration_s=0.2, rng=SEED
    ),
    "fig08_ber_overlay": lambda: fig08_ber_overlay.run(
        rate="1.6kbps", powers_dbm=(-55.0, -60.0), distances_ft=(8, 16), n_bits=48, rng=SEED
    ),
    "fig09_mrc": lambda: fig09_mrc.run(
        distances_ft=(4,), mrc_factors=(1, 2), n_bits=160, rng=SEED
    ),
    "fig10_stereo_ber": lambda: fig10_stereo_ber.run(
        distances_ft=(2, 4), n_bits=48, rng=SEED
    ),
    "fig11_pesq_overlay": lambda: fig11_pesq_overlay.run(
        powers_dbm=(-30.0,), distances_ft=(4, 8), duration_s=0.5, rng=SEED
    ),
    "fig12_pesq_cooperative": lambda: fig12_pesq_cooperative.run(
        powers_dbm=(-30.0,), distances_ft=(4,), duration_s=0.5, rng=SEED
    ),
    "fig13_pesq_stereo": lambda: fig13_pesq_stereo.run(
        powers_dbm=(-20.0, -40.0), distances_ft=(1, 4), duration_s=0.3, rng=SEED
    ),
    "fig14_car": lambda: fig14_car.run(
        powers_dbm=(-20.0,), distances_ft=(20,), duration_s=0.3, rng=SEED
    ),
    "fig17_fabric": lambda: fig17_fabric.run(
        motions=("standing", "walking"), n_bits_low=50, n_bits_high=160, n_trials=1, rng=SEED
    ),
    # Beyond the figures: the deployment scale-out sweep (8 devices
    # overflow the dedicated channels, so the fixture pins both the
    # dedicated and the shared-ALOHA regimes) and the numeric aggregates
    # behind every report.py section.
    "deployment_scale": lambda: deployment_scale.run(
        device_counts=(1, 2, 4, 8), rng=SEED
    ),
    "report_aggregates": lambda: report.collect_aggregates(fast=True, rng=SEED),
}

REL_TOL = 1e-9
"""Relative float tolerance: loose enough for last-ULP libm variation
across platforms, tight enough that any real algorithmic drift fails."""


def canonicalize(value):
    """Reduce a runner's output to pure JSON-serializable Python."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [canonicalize(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in value.items()}
    if value is None or isinstance(value, str):
        return value
    raise TypeError(f"cannot canonicalize {type(value)!r} for a golden fixture")


def assert_matches(actual, expected, path=""):
    """Recursive comparison with a drift-pinpointing failure message."""
    if isinstance(expected, bool) or isinstance(actual, bool):
        assert actual == expected, f"{path}: {actual!r} != golden {expected!r}"
    elif isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        assert math.isclose(actual, expected, rel_tol=REL_TOL, abs_tol=1e-12), (
            f"{path}: {actual!r} drifted from golden {expected!r}"
        )
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: {type(actual)} != list"
        assert len(actual) == len(expected), (
            f"{path}: length {len(actual)} != golden {len(expected)}"
        )
        for i, (a, e) in enumerate(zip(actual, expected)):
            assert_matches(a, e, f"{path}[{i}]")
    elif isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: {type(actual)} != dict"
        assert set(actual) == set(expected), (
            f"{path}: keys {sorted(actual)} != golden {sorted(expected)}"
        )
        for key in expected:
            assert_matches(actual[key], expected[key], f"{path}.{key}")
    else:
        assert actual == expected, f"{path}: {actual!r} != golden {expected!r}"


@pytest.mark.golden
@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_output(name, regen_golden):
    if fast_numerics():
        pytest.skip(
            "exact-tier fixtures pin bit-identity; REPRO_NUMERICS=fast is "
            "gated by test_golden_tolerance.py instead"
        )
    fixture = GOLDEN_DIR / f"{name}.json"
    result = canonicalize(CASES[name]())
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        fixture.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        return
    assert fixture.exists(), (
        f"missing golden fixture {fixture}; generate it with "
        "`pytest tests/experiments/test_golden_outputs.py --regen-golden` "
        "and commit the file"
    )
    expected = json.loads(fixture.read_text())
    assert_matches(result, expected, name)


def test_every_figure_module_has_a_case():
    """The harness covers all fig* experiment modules, now and future."""
    import pkgutil

    import repro.experiments as experiments

    modules = {
        module.name
        for module in pkgutil.iter_modules(experiments.__path__)
        if module.name.startswith("fig")
    }
    fig_cases = {name for name in CASES if name.startswith("fig")}
    assert modules == fig_cases, (
        "golden CASES out of sync with repro.experiments fig* modules; "
        f"missing {sorted(modules - fig_cases)}, stale {sorted(fig_cases - modules)}"
    )

"""Determinism and API-surface tests for the experiment harness."""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.constants import AUDIO_RATE_HZ
from repro.experiments.common import ExperimentChain


class TestDeterminism:
    def test_same_seed_same_audio(self):
        payload = tone(1000, 0.3, AUDIO_RATE_HZ, amplitude=0.9)
        chain = ExperimentChain(program="pop", power_dbm=-40, distance_ft=6, stereo_decode=False)
        a = chain.transmit(payload, rng=77)
        b = chain.transmit(payload, rng=77)
        assert np.array_equal(a.mono, b.mono)

    def test_different_seed_different_noise(self):
        payload = tone(1000, 0.3, AUDIO_RATE_HZ, amplitude=0.9)
        chain = ExperimentChain(program="pop", power_dbm=-40, distance_ft=6, stereo_decode=False)
        a = chain.transmit(payload, rng=77)
        b = chain.transmit(payload, rng=78)
        assert not np.array_equal(a.mono, b.mono)

    def test_dco_bits_change_output(self):
        payload = tone(1000, 0.3, AUDIO_RATE_HZ, amplitude=0.9)
        ideal = ExperimentChain(program="silence", power_dbm=-20, distance_ft=2, stereo_decode=False)
        coarse = ExperimentChain(
            program="silence", power_dbm=-20, distance_ft=2, stereo_decode=False, dco_bits=3
        )
        a = ideal.transmit(payload, rng=1)
        b = coarse.transmit(payload, rng=1)
        assert not np.allclose(a.mono, b.mono)


class TestPublicApi:
    def test_top_level_packages_import(self):
        # Every public package imports cleanly and exposes its __all__.
        import repro.audio
        import repro.backscatter
        import repro.channel
        import repro.data
        import repro.dsp
        import repro.fm
        import repro.fm.rds
        import repro.receiver
        import repro.survey

        for module in (
            repro.audio,
            repro.backscatter,
            repro.channel,
            repro.data,
            repro.dsp,
            repro.fm,
            repro.fm.rds,
            repro.receiver,
            repro.survey,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"

"""End-to-end experiment chain tests — the paper's headline behaviours."""

import numpy as np
import pytest

from repro.audio.tones import tone
from repro.backscatter.device import BackscatterMode
from repro.constants import AUDIO_RATE_HZ
from repro.data.bits import random_bits
from repro.data.fsk import BinaryFskModem
from repro.dsp.spectrum import tone_snr_db
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentChain, measure_data_ber


class TestChainConfig:
    def test_rejects_unknown_receiver(self):
        with pytest.raises(ConfigurationError):
            ExperimentChain(receiver_kind="tablet")

    def test_rf_snr_monotone_in_distance(self):
        snrs = [
            ExperimentChain(power_dbm=-40, distance_ft=d).rf_snr_db()
            for d in (2, 8, 32)
        ]
        assert snrs[0] > snrs[1] > snrs[2]


class TestOverlayTransmission:
    def test_tone_arrives(self):
        chain = ExperimentChain(
            program="silence", power_dbm=-30, distance_ft=4, stereo_decode=False
        )
        payload = tone(1000, 0.4, AUDIO_RATE_HZ, amplitude=0.9)
        received = chain.transmit(payload, rng=0)
        assert tone_snr_db(chain.payload_channel(received), AUDIO_RATE_HZ, 1000) > 20

    def test_100bps_error_free_at_6ft_minus60dbm(self):
        # Fig. 8a headline: BER ~ 0 at 6 ft across all powers to -60 dBm.
        chain = ExperimentChain(
            program="news", power_dbm=-60, distance_ft=6, stereo_decode=False
        )
        bits = random_bits(100, rng=1)
        assert measure_data_ber(chain, BinaryFskModem(), bits, rng=2) < 0.02

    def test_100bps_fails_far_out_at_minus60dbm(self):
        chain = ExperimentChain(
            program="news", power_dbm=-60, distance_ft=20, stereo_decode=False
        )
        bits = random_bits(100, rng=3)
        assert measure_data_ber(chain, BinaryFskModem(), bits, rng=4) > 0.1


class TestStereoMode:
    def test_payload_channel_is_difference(self):
        chain = ExperimentChain(
            program="silence",
            station_stereo=False,
            mode=BackscatterMode.MONO_TO_STEREO,
            power_dbm=-20,
            distance_ft=2,
            stereo_decode=True,
        )
        payload = tone(3000, 0.4, AUDIO_RATE_HZ, amplitude=0.9)
        received = chain.transmit(payload, rng=5)
        assert received.stereo_locked
        diff = chain.payload_channel(received)
        mono = received.mono
        assert tone_snr_db(diff, AUDIO_RATE_HZ, 3000) > tone_snr_db(
            mono, AUDIO_RATE_HZ, 3000
        )

"""Smoke tests for every figure runner's API contract.

The benchmarks exercise the runners with shape assertions; these tests
pin the *interface* — keys present, lengths consistent, values in range —
with the tiniest possible grids so regressions in the experiment API
surface in the unit tier.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig02_survey,
    fig04_occupancy,
    fig05_stereo_usage,
    fig06_freq_response,
    fig07_snr_distance,
    fig08_ber_overlay,
    fig09_mrc,
    fig10_stereo_ber,
    fig11_pesq_overlay,
    fig13_pesq_stereo,
    fig14_car,
    fig17_fabric,
)


class TestSurveyRunners:
    def test_fig02_keys(self):
        result = fig02_survey.run(rng=1)
        assert {"median_dbm", "diurnal_std_db", "n_cells"} <= set(result)
        assert result["n_cells"] == len(result["powers_dbm"])

    def test_fig04_city_keys(self):
        result = fig04_occupancy.run(rng=1)
        assert {"SFO", "Seattle", "Boston", "Chicago", "LA"} <= set(result)
        for city in ("SFO", "Seattle"):
            assert len(result[city]["min_shifts_khz"]) == result[city]["detectable"]

    def test_fig05_all_programs(self):
        result = fig05_stereo_usage.run(n_snapshots=1, snapshot_seconds=0.5, rng=1)
        assert set(result) == {"news", "mixed", "pop", "rock"}


class TestLinkRunners:
    def test_fig06_lengths(self):
        result = fig06_freq_response.run(freqs_hz=(1000,), duration_s=0.3, rng=1)
        assert len(result["mono_snr_db"]) == len(result["freq_hz"]) == 1
        assert len(result["stereo_snr_db"]) == 1

    def test_fig07_series_per_power(self):
        result = fig07_snr_distance.run(
            powers_dbm=(-30.0,), distances_ft=(2, 8), duration_s=0.3, rng=1
        )
        assert len(result["P-30"]) == 2

    def test_fig08_rejects_unknown_rate(self):
        with pytest.raises(Exception):
            fig08_ber_overlay.make_modem("64kbps")

    def test_fig08_ber_in_unit_interval(self):
        result = fig08_ber_overlay.run(
            rate="100bps", powers_dbm=(-30.0,), distances_ft=(4,), n_bits=40, rng=1
        )
        assert 0.0 <= result["P-30"][0] <= 1.0

    def test_fig09_factor_keys(self):
        result = fig09_mrc.run(
            distances_ft=(4,), mrc_factors=(1, 2), n_bits=160, rng=1
        )
        assert {"mrc1", "mrc2"} <= set(result)

    def test_fig10_mode_rate_grid(self):
        result = fig10_stereo_ber.run(distances_ft=(2,), n_bits=160, rng=1)
        assert {
            "overlay_1.6k",
            "stereo_1.6k",
            "overlay_3.2k",
            "stereo_3.2k",
        } <= set(result)


class TestAudioRunners:
    def test_fig11_scores_in_range(self):
        result = fig11_pesq_overlay.run(
            powers_dbm=(-30.0,), distances_ft=(4,), duration_s=1.0, rng=1
        )
        assert 1.0 <= result["P-30"][0] <= 4.5

    def test_fig13_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            fig13_pesq_stereo.run(scenario="surround")

    def test_fig14_both_panels(self):
        result = fig14_car.run(
            powers_dbm=(-20.0,), distances_ft=(20,), duration_s=0.5, rng=1
        )
        assert "snr_P-20" in result and "pesq_P-20" in result

    def test_fig17_motion_labels(self):
        result = fig17_fabric.run(
            motions=("standing",), n_bits_low=50, n_bits_high=160, n_trials=1, rng=1
        )
        assert result["motions"] == ["standing"]
        assert len(result["ber_100bps"]) == 1
